//! Response-time-analysis cost: the offline price of the exact
//! schedulability test on the paper's workloads and on larger synthetic
//! sets (RTA is also the inner loop of Audsley's OPA and the
//! static-slowdown search).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lpfps_tasks::analysis::response_time::{response_times, RtaConfig};
use lpfps_tasks::gen::{generate, GenConfig};
use lpfps_workloads::{avionics, cnc, flight_control, ins};

fn bench_rta(c: &mut Criterion) {
    let mut group = c.benchmark_group("rta");
    let cfg = RtaConfig::default();

    for ts in [avionics(), ins(), flight_control(), cnc()] {
        group.bench_function(ts.name().to_string(), |b| {
            b.iter(|| response_times(black_box(&ts), black_box(&cfg)))
        });
    }

    for n in [16usize, 64, 256] {
        let ts = generate(&GenConfig::new(n, 0.7), 42);
        group.bench_function(format!("uunifast-n{n}"), |b| {
            b.iter(|| response_times(black_box(&ts), black_box(&cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rta);
criterion_main!(benches);
