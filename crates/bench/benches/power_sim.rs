//! End-to-end cost of one Figure-8 cell per application: a full power
//! simulation at BCET = 50 % of WCET over the experiment horizon.
//!
//! These are the macro-benchmarks sizing the whole reproduction: Figure 8
//! is `4 apps x 10 fractions x policies x seeds` of exactly this work.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lpfps::driver::{run, PolicyKind};
use lpfps_bench::experiment_horizon;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_workloads::applications;

fn bench_power_sim(c: &mut Criterion) {
    let cpu = CpuSpec::arm8();
    let mut group = c.benchmark_group("power_sim");
    group.sample_size(10);

    for ts in applications() {
        let horizon = experiment_horizon(&ts);
        let scaled = ts.with_bcet_fraction(0.5);
        group.bench_function(format!("{}/lpfps", ts.name()), |b| {
            b.iter_batched(
                || SimConfig::new(horizon).with_seed(1),
                |cfg| run(&scaled, &cpu, PolicyKind::Lpfps, &PaperGaussian, &cfg),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_power_sim);
criterion_main!(benches);
