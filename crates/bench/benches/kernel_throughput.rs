//! Kernel simulator throughput: simulated events per second of host time.
//!
//! Measures single-simulation latency over the full paper workload matrix
//! (Table 1, avionics, CNC, INS — under FPS and LPFPS) — the knob that
//! decides how long the Figure 8 sweeps take. The `reused-workspace`
//! variants run through one recycled [`SimWorkspace`], the sweep runner's
//! hot path. `benches/sweep_throughput.rs` covers the end-to-end grid.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lpfps::driver::{default_horizon, run, run_in, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::{SimConfig, SimWorkspace};
use lpfps_tasks::exec::PaperGaussian;
use lpfps_workloads::{avionics, cnc, ins, table1};

fn bench_kernel(c: &mut Criterion) {
    let cpu = CpuSpec::arm8();
    let mut group = c.benchmark_group("kernel_throughput");

    for (name, ts) in [
        ("table1", table1()),
        ("avionics", avionics()),
        ("cnc", cnc()),
        ("ins", ins()),
    ] {
        let ts = ts.with_bcet_fraction(0.5);
        let horizon = default_horizon(&ts);
        for policy in [PolicyKind::Fps, PolicyKind::Lpfps] {
            group.bench_function(format!("{name}/{policy}"), |b| {
                b.iter_batched(
                    || SimConfig::new(horizon).with_seed(7),
                    |cfg| run(&ts, &cpu, policy, &PaperGaussian, &cfg),
                    BatchSize::SmallInput,
                )
            });
        }
        // The sweep runner's path: buffers recycled across iterations.
        let cfg = SimConfig::new(horizon).with_seed(7);
        let mut ws = SimWorkspace::new();
        group.bench_function(format!("{name}/lpfps/reused-workspace"), |b| {
            b.iter(|| run_in(&ts, &cpu, PolicyKind::Lpfps, &PaperGaussian, &cfg, &mut ws))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
