//! Kernel simulator throughput: simulated events per second of host time.
//!
//! Measures the cost of simulating one hyperperiod of the Table 1 example
//! and of the CNC controller under FPS and LPFPS — the knob that decides
//! how long the Figure 8 sweeps take.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lpfps::driver::{run, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::time::Dur;
use lpfps_workloads::{cnc, table1};

fn bench_kernel(c: &mut Criterion) {
    let cpu = CpuSpec::arm8();
    let mut group = c.benchmark_group("kernel_throughput");

    for (name, ts, horizon) in [
        ("table1", table1(), Dur::from_us(400)),
        ("cnc", cnc(), Dur::from_us(9_600)),
    ] {
        let ts = ts.with_bcet_fraction(0.5);
        for policy in [PolicyKind::Fps, PolicyKind::Lpfps] {
            group.bench_function(format!("{name}/{policy}"), |b| {
                b.iter_batched(
                    || SimConfig::new(horizon).with_seed(7),
                    |cfg| run(&ts, &cpu, policy, &PaperGaussian, &cfg),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
