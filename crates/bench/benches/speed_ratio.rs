//! Scheduler-overhead micro-benchmark: the cost of computing the speed
//! ratio — the paper's §3.3 argument for preferring the heuristic.
//!
//! Eq. 3 is one division; Eq. 2 adds multiplications and a square root.
//! Both are nanoseconds on a modern host, but the *relative* cost is what
//! the paper reasons about for a kernel running on the target processor:
//! scheduler overhead eats into schedulability and burns power itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lpfps::speed::{r_heu, r_opt, r_opt_trapezoid};
use lpfps_tasks::time::Dur;

fn bench_speed_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("speed_ratio");
    let cases: Vec<(Dur, Dur)> = (1..=64u64)
        .map(|i| {
            (
                Dur::from_us(i * 7 % 500 + 1),
                Dur::from_us(i * 31 % 2900 + 600),
            )
        })
        .collect();

    group.bench_function("r_heu (Eq. 3)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(rem, win) in &cases {
                acc += r_heu(black_box(rem), black_box(win));
            }
            acc
        })
    });

    group.bench_function("r_opt (Eq. 2)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(rem, win) in &cases {
                acc += r_opt(black_box(rem), black_box(win), black_box(0.07));
            }
            acc
        })
    });

    group.bench_function("r_opt_trapezoid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(rem, win) in &cases {
                acc += r_opt_trapezoid(black_box(rem), black_box(win), black_box(0.07));
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_speed_ratio);
criterion_main!(benches);
