//! Cost of the related-work DVS algorithms: the YDS optimal schedule
//! (O(n^2) per round) and an AVR EDF simulation, as a function of job
//! count — the practicality axis behind the paper's preference for a
//! constant-time run-time heuristic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lpfps_cpu::power::PowerModel;
use lpfps_edf::{simulate_edf, JobSet, SpeedProfile, YdsSchedule};
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::time::Dur;
use lpfps_workloads::cnc;

fn bench_edf_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("edf_algos");
    group.sample_size(10);
    let power = PowerModel::default();

    for hyperperiods in [1u64, 4, 16] {
        let horizon = Dur::from_us(9_600 * hyperperiods);
        let jobs = JobSet::from_taskset(&cnc(), horizon, &AlwaysWcet, 0);
        let n = jobs.len();
        group.bench_function(format!("yds/{n}-jobs"), |b| {
            b.iter(|| YdsSchedule::compute(black_box(&jobs)))
        });
        group.bench_function(format!("avr-sim/{n}-jobs"), |b| {
            let profile = SpeedProfile::avr(&jobs);
            b.iter(|| simulate_edf(black_box(&jobs), black_box(&profile), &power))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_edf_algos);
criterion_main!(benches);
