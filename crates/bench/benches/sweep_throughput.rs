//! End-to-end sweep throughput: the utilization-sweep grid (the same
//! UUniFast construction as the `sweep_utilization` experiment, reduced)
//! through the parallel runner at one thread and at all host threads.
//!
//! This is the workload the committed `BENCH_kernel.json` trajectory
//! tracks: per-worker `SimWorkspace` reuse, the cached event horizon, and
//! the zero-allocation queues all land on this path. `bench_kernel`
//! (`src/bin/bench_kernel.rs`) measures the full grid and maintains the
//! committed before/after numbers; this bench is the quick,
//! statistics-backed view of the same path.

use criterion::{criterion_group, criterion_main, Criterion};
use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, ExecKind, RunOptions, SweepSpec};

/// A reduced utilization grid (2 utilizations x 2 sets x 2 policies =
/// 8 cells) so a criterion round stays in the tens of milliseconds.
fn grid() -> SweepSpec {
    SweepSpec::utilization(
        "bench_utilization_quick",
        &CpuSpec::arm8(),
        &[0.3, 0.6],
        2,
        8,
        &[PolicyKind::Fps, PolicyKind::Lpfps],
        0.5,
        ExecKind::PaperGaussian,
    )
}

fn bench_sweep(c: &mut Criterion) {
    let spec = grid();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("sweep_throughput");
    for threads in [1, host] {
        group.bench_function(format!("utilization-grid/{threads}-threads"), |b| {
            let opts = RunOptions::serial().with_threads(threads);
            b.iter(|| run_sweep(&spec, &opts))
        });
        if host == 1 {
            break;
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
