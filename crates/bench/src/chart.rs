//! Minimal self-contained SVG line charts for the experiment reports.
//!
//! The paper's Figure 8 is a set of line charts (average power vs BCET
//! fraction, one panel per application). `report_svg` regenerates them as
//! standalone SVG files from the measured data — no plotting dependency,
//! just coordinate math and SVG text, which keeps the workspace inside
//! the approved crate set and makes the charts bit-reproducible.

use std::fmt::Write;

/// One plotted series: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, in x order.
    pub points: Vec<(f64, f64)>,
    /// Stroke color (any SVG color string).
    pub color: String,
}

/// Chart geometry and labels.
#[derive(Debug, Clone)]
pub struct ChartSpec {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Y-axis range (x range comes from the data).
    pub y_range: (f64, f64),
}

impl Default for ChartSpec {
    fn default() -> Self {
        ChartSpec {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 480,
            height: 320,
            y_range: (0.0, 1.0),
        }
    }
}

/// Maps data space to pixel space inside fixed margins.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    x_min: f64,
    x_max: f64,
    y_min: f64,
    y_max: f64,
    left: f64,
    right: f64,
    top: f64,
    bottom: f64,
}

impl Scale {
    const MARGIN_LEFT: f64 = 56.0;
    const MARGIN_RIGHT: f64 = 16.0;
    const MARGIN_TOP: f64 = 32.0;
    const MARGIN_BOTTOM: f64 = 44.0;

    /// Builds the mapping for a chart of the given pixel size and ranges.
    ///
    /// # Panics
    ///
    /// Panics if either range is empty.
    pub fn new(spec: &ChartSpec, x_min: f64, x_max: f64) -> Self {
        assert!(x_max > x_min, "x range must be non-empty");
        assert!(spec.y_range.1 > spec.y_range.0, "y range must be non-empty");
        Scale {
            x_min,
            x_max,
            y_min: spec.y_range.0,
            y_max: spec.y_range.1,
            left: Self::MARGIN_LEFT,
            right: spec.width as f64 - Self::MARGIN_RIGHT,
            top: Self::MARGIN_TOP,
            bottom: spec.height as f64 - Self::MARGIN_BOTTOM,
        }
    }

    /// Data x to pixel x.
    pub fn px(&self, x: f64) -> f64 {
        self.left + (x - self.x_min) / (self.x_max - self.x_min) * (self.right - self.left)
    }

    /// Data y to pixel y (inverted: larger y is higher on screen).
    pub fn py(&self, y: f64) -> f64 {
        self.bottom - (y - self.y_min) / (self.y_max - self.y_min) * (self.bottom - self.top)
    }
}

/// Renders a complete standalone SVG document for the chart.
///
/// # Panics
///
/// Panics if no series has at least two points.
pub fn render_line_chart(spec: &ChartSpec, series: &[Series]) -> String {
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    assert!(
        xs.len() >= 2,
        "a line chart needs at least two data points overall"
    );
    let x_min = xs.iter().copied().fold(f64::MAX, f64::min);
    let x_max = xs.iter().copied().fold(f64::MIN, f64::max);
    let scale = Scale::new(spec, x_min, x_max);

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}" font-family="sans-serif" font-size="11">"#,
        spec.width, spec.height, spec.width, spec.height
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
    // Title and axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="18" text-anchor="middle" font-size="13">{}</text>"#,
        spec.width / 2,
        xml_escape(&spec.title)
    );
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        spec.width / 2,
        spec.height - 8,
        xml_escape(&spec.x_label)
    );
    let _ = writeln!(
        svg,
        r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
        spec.height / 2,
        spec.height / 2,
        xml_escape(&spec.y_label)
    );

    // Gridlines + tick labels (5 ticks per axis).
    for i in 0..=4 {
        let fy = spec.y_range.0 + (spec.y_range.1 - spec.y_range.0) * i as f64 / 4.0;
        let y = scale.py(fy);
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            scale.px(x_min),
            scale.px(x_max)
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{fy:.2}</text>"#,
            scale.px(x_min) - 6.0,
            y + 4.0
        );
        let fx = x_min + (x_max - x_min) * i as f64 / 4.0;
        let x = scale.px(fx);
        let _ = writeln!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{fx:.1}</text>"#,
            scale.py(spec.y_range.0) + 16.0
        );
    }
    // Axes.
    let _ = writeln!(
        svg,
        r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
        scale.px(x_min),
        scale.py(spec.y_range.0),
        scale.px(x_max),
        scale.py(spec.y_range.0)
    );
    let _ = writeln!(
        svg,
        r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
        scale.px(x_min),
        scale.py(spec.y_range.0),
        scale.px(x_min),
        scale.py(spec.y_range.1)
    );

    // Series polylines + legend.
    for (i, s) in series.iter().enumerate() {
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", scale.px(x), scale.py(y)))
            .collect();
        let _ = writeln!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
            path.join(" "),
            s.color
        );
        for &(x, y) in &s.points {
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="{}"/>"#,
                scale.px(x),
                scale.py(y),
                s.color
            );
        }
        let ly = Scale::MARGIN_TOP + 14.0 * i as f64;
        let _ = writeln!(
            svg,
            r#"<line x1="{0}" y1="{ly:.1}" x2="{1}" y2="{ly:.1}" stroke="{2}" stroke-width="2"/>
<text x="{3}" y="{4:.1}">{5}</text>"#,
            spec.width - 130,
            spec.width - 110,
            s.color,
            spec.width - 104,
            ly + 4.0,
            xml_escape(&s.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Escapes the five XML special characters.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChartSpec {
        ChartSpec {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            ..ChartSpec::default()
        }
    }

    fn series() -> Vec<Series> {
        vec![Series {
            label: "fps".into(),
            points: vec![(0.1, 0.5), (0.5, 0.7), (1.0, 0.9)],
            color: "#1f77b4".into(),
        }]
    }

    #[test]
    fn scale_maps_corners_to_margins() {
        let sp = spec();
        let sc = Scale::new(&sp, 0.0, 1.0);
        assert_eq!(sc.px(0.0), Scale::MARGIN_LEFT);
        assert_eq!(sc.px(1.0), sp.width as f64 - Scale::MARGIN_RIGHT);
        assert_eq!(sc.py(1.0), Scale::MARGIN_TOP);
        assert_eq!(sc.py(0.0), sp.height as f64 - Scale::MARGIN_BOTTOM);
    }

    #[test]
    fn scale_is_monotone() {
        let sc = Scale::new(&spec(), 0.0, 10.0);
        assert!(sc.px(3.0) < sc.px(7.0));
        assert!(sc.py(0.2) > sc.py(0.8)); // inverted
    }

    #[test]
    fn render_produces_wellformed_svg() {
        let svg = render_line_chart(&spec(), &series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.matches("<circle").count() == 3);
        // Every open tag family is closed or self-closed: cheap sanity.
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn labels_are_escaped() {
        let mut sp = spec();
        sp.title = "a < b & c".into();
        let svg = render_line_chart(&sp, &series());
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    #[should_panic(expected = "two data points")]
    fn empty_chart_rejected() {
        let _ = render_line_chart(&spec(), &[]);
    }
}
