//! Content fingerprints of simulation reports.
//!
//! The golden determinism tests pin a 64-bit hash of the *entire*
//! [`SimReport`] — counters, energy accounting, per-task responses,
//! histograms, misses, idle gaps — captured on a reference engine. Any
//! engine change that alters a single byte of any field for a fixed
//! `(taskset, cpu, policy, exec, cfg)` flips the fingerprint, so hot-path
//! optimizations are provably behaviorally invisible.

use lpfps_kernel::report::SimReport;

/// 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The canonical content hash of a full report: FNV-1a over its JSON
/// serialization (field order is declaration order, floats print via
/// Rust's shortest-roundtrip formatter, so the byte stream — and hence
/// the hash — is a pure function of the report's value).
pub fn report_fingerprint(report: &SimReport) -> u64 {
    let json = serde_json::to_string(report).expect("reports serialize");
    fnv1a(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv1a_is_order_sensitive() {
        // The whole point of hashing the serialized report is that field
        // and event *order* matter; a multiplicative chained hash must not
        // collapse permutations (unlike, say, a byte-sum).
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        assert_ne!(fnv1a(b"\x00\x01"), fnv1a(b"\x01\x00"));
        assert_ne!(fnv1a(b"release,dispatch"), fnv1a(b"dispatch,release"));
    }

    #[test]
    fn fnv1a_discriminates_single_bit_flips() {
        let base = b"lpfps-report".to_vec();
        let reference = fnv1a(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv1a(&flipped), reference, "blind to a flip at byte {i}");
        }
    }
}
