//! # lpfps-bench
//!
//! The experiment harness: one binary per table/figure of the paper plus
//! extension ablations, and Criterion micro-benchmarks.
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig1_bcet_ratio`     | Figure 1 — BCET/WCET ratios |
//! | `fig2_schedule`       | Figures 2, 3, 5 — Table 1 schedules and queue snapshots |
//! | `table2_summary`      | Table 2 — workload summary |
//! | `fig7_ratio`          | Figure 7 — optimal vs heuristic ratio |
//! | `fig8_power`          | Figure 8 — average power, FPS vs LPFPS, four apps |
//! | `report_svg`          | Figure 8 panels as standalone SVG charts |
//! | `ablation_policies`   | power-down-only / DVS-only / static slowdown split |
//! | `ablation_ratio`      | heuristic vs optimal ratio energy |
//! | `ablation_shutdown`   | exact vs timeout power-down (+ idle-gap stats) |
//! | `ablation_overhead`   | context-switch cost vs RTA admission |
//! | `ablation_sleep_modes`| multi-level sleep-mode selection |
//! | `ablation_ladder`     | frequency-ladder granularity |
//! | `ablation_tick`       | tick-driven kernel vs jitter-aware RTA |
//! | `tradeoff_scheduler`  | the paper's §5 future-work trade-off, carried out |
//! | `related_work_dvs`    | §2.2 baselines: EDF@1, AVR, YDS, Ishihara–Yasuura |
//! | `sweep_utilization`   | synthetic UUniFast utilization sweep |
//! | `multicore_sweep`     | partitioned fleets: cores × partitioner × policy |
//! | `simulate`            | ad-hoc CLI (named apps or `--taskset file.json`) |
//!
//! Each binary prints a human-readable table to stdout and asserts its own
//! qualitative claims. Simulation grids are declared as
//! [`lpfps_sweep::SweepSpec`]s and executed by the multi-threaded
//! [`lpfps_sweep::run_sweep`] runner; every binary shares the
//! [`lpfps_sweep::Cli`] flags (`--json`, `--metrics`, `--threads`,
//! `--seeds`, `--horizon-scale`, `--quiet` — see `README.md`), so
//! `--json <path>` emits machine-readable results for EXPERIMENTS.md
//! regeneration and unknown flags are hard errors everywhere.

pub mod chart;
pub mod fingerprint;
pub mod golden;
pub mod long_horizon;

use lpfps_sweep::CellResult;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::Serialize;

/// The BCET/WCET fractions swept in Figure 8 (10 % steps).
pub const BCET_FRACTIONS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// One measured cell of a power experiment, possibly aggregated across
/// seeds (the Figure-8 table averages power over the seed list).
#[derive(Debug, Clone, Serialize)]
pub struct PowerCell {
    /// Application name.
    pub app: String,
    /// Scheduling policy.
    pub policy: String,
    /// BCET as a fraction of WCET.
    pub bcet_fraction: f64,
    /// Average normalized power (1.0 = flat-out busy processor).
    pub average_power: f64,
    /// Deadline misses observed (must be zero).
    pub misses: usize,
}

impl PowerCell {
    /// Builds a cell from a single sweep result.
    pub fn from_result(result: &CellResult) -> Self {
        PowerCell {
            app: result.app.clone(),
            policy: result.policy.clone(),
            bcet_fraction: result.bcet_fraction,
            average_power: result.average_power,
            misses: result.misses,
        }
    }

    /// Averages power (and sums misses) over one `(app, policy, fraction)`
    /// group of per-seed results.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty or mixes apps/policies/fractions.
    pub fn mean_over_seeds(group: &[&CellResult]) -> Self {
        let first = group.first().expect("non-empty seed group");
        assert!(
            group.iter().all(|r| r.app == first.app
                && r.policy == first.policy
                && r.bcet_fraction == first.bcet_fraction),
            "seed group must share (app, policy, fraction)"
        );
        PowerCell {
            app: first.app.clone(),
            policy: first.policy.clone(),
            bcet_fraction: first.bcet_fraction,
            average_power: group.iter().map(|r| r.average_power).sum::<f64>() / group.len() as f64,
            misses: group.iter().map(|r| r.misses).sum(),
        }
    }
}

/// Formats a Figure-8-style table: one row per BCET fraction, one column
/// pair (power, reduction vs the first policy) per policy.
pub fn render_power_table(app: &str, policies: &[&str], cells: &[PowerCell]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "== {app} ==");
    let _ = write!(out, "{:>6}", "bcet%");
    for p in policies {
        let _ = write!(out, " {p:>11}");
    }
    let _ = writeln!(out, " {:>11}", "reduction");
    for &frac in BCET_FRACTIONS.iter() {
        let row: Vec<&PowerCell> = policies
            .iter()
            .map(|p| {
                cells
                    .iter()
                    .find(|c| {
                        c.app == app && &c.policy == p && (c.bcet_fraction - frac).abs() < 1e-9
                    })
                    .unwrap_or_else(|| panic!("missing cell {app}/{p}/{frac}"))
            })
            .collect();
        let _ = write!(out, "{:>6.0}", frac * 100.0);
        for c in &row {
            let _ = write!(out, " {:>11.4}", c.average_power);
        }
        let red = 1.0 - row.last().unwrap().average_power / row[0].average_power;
        let _ = writeln!(out, " {:>10.1}%", red * 100.0);
    }
    out
}

/// The per-application simulation horizons used by the power experiments:
/// long enough to sample several of the longest periods (and whole
/// hyperperiods where reachable) while keeping the full Figure-8 sweep in
/// seconds of wall time.
pub fn experiment_horizon(ts: &TaskSet) -> Dur {
    lpfps::driver::default_horizon(ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps::driver::PolicyKind;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_sweep::{run_sweep, ExecKind, RunOptions, SweepSpec};

    fn cells_for(policies: &[PolicyKind], fractions: &[f64], seed: u64) -> Vec<CellResult> {
        let ts = lpfps_workloads::table1();
        let spec = SweepSpec::grid(
            "bench-test",
            std::slice::from_ref(&ts),
            &CpuSpec::arm8(),
            policies,
            fractions,
            &[seed],
            ExecKind::PaperGaussian,
        );
        run_sweep(&spec, &RunOptions::serial()).results
    }

    #[test]
    fn power_cell_from_result_checks_out() {
        let results = cells_for(&[PolicyKind::Fps], &[1.0], 0);
        let cell = PowerCell::from_result(&results[0]);
        assert_eq!(cell.app, "table1");
        assert_eq!(cell.policy, "fps");
        assert!(cell.average_power > 0.5 && cell.average_power <= 1.0);
        assert_eq!(cell.misses, 0);
    }

    #[test]
    fn mean_over_seeds_averages_power_and_sums_misses() {
        let ts = lpfps_workloads::table1();
        let spec = SweepSpec::grid(
            "bench-test",
            std::slice::from_ref(&ts),
            &CpuSpec::arm8(),
            &[PolicyKind::Lpfps],
            &[0.5],
            &[0, 1, 2],
            ExecKind::PaperGaussian,
        );
        let results = run_sweep(&spec, &RunOptions::serial()).results;
        let group: Vec<&CellResult> = results.iter().collect();
        let mean = PowerCell::mean_over_seeds(&group);
        let expected = results.iter().map(|r| r.average_power).sum::<f64>() / results.len() as f64;
        assert!((mean.average_power - expected).abs() < 1e-12);
        assert_eq!(mean.misses, 0);
    }

    #[test]
    fn table_renderer_includes_all_fractions() {
        let cells: Vec<PowerCell> =
            cells_for(&[PolicyKind::Fps, PolicyKind::Lpfps], &BCET_FRACTIONS, 1)
                .iter()
                .map(PowerCell::from_result)
                .collect();
        let table = render_power_table("table1", &["fps", "lpfps"], &cells);
        assert!(table.contains("== table1 =="));
        assert_eq!(table.lines().count(), 2 + BCET_FRACTIONS.len());
    }
}
