//! # lpfps-bench
//!
//! The experiment harness: one binary per table/figure of the paper plus
//! extension ablations, and Criterion micro-benchmarks.
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig1_bcet_ratio`     | Figure 1 — BCET/WCET ratios |
//! | `fig2_schedule`       | Figures 2, 3, 5 — Table 1 schedules and queue snapshots |
//! | `table2_summary`      | Table 2 — workload summary |
//! | `fig7_ratio`          | Figure 7 — optimal vs heuristic ratio |
//! | `fig8_power`          | Figure 8 — average power, FPS vs LPFPS, four apps |
//! | `report_svg`          | Figure 8 panels as standalone SVG charts |
//! | `ablation_policies`   | power-down-only / DVS-only / static slowdown split |
//! | `ablation_ratio`      | heuristic vs optimal ratio energy |
//! | `ablation_shutdown`   | exact vs timeout power-down (+ idle-gap stats) |
//! | `ablation_overhead`   | context-switch cost vs RTA admission |
//! | `ablation_sleep_modes`| multi-level sleep-mode selection |
//! | `ablation_ladder`     | frequency-ladder granularity |
//! | `ablation_tick`       | tick-driven kernel vs jitter-aware RTA |
//! | `tradeoff_scheduler`  | the paper's §5 future-work trade-off, carried out |
//! | `related_work_dvs`    | §2.2 baselines: EDF@1, AVR, YDS, Ishihara–Yasuura |
//! | `sweep_utilization`   | synthetic UUniFast utilization sweep |
//! | `simulate`            | ad-hoc CLI (named apps or `--taskset file.json`) |
//!
//! Each binary prints a human-readable table to stdout, asserts its own
//! qualitative claims, and, when invoked with `--json <path>`, emits
//! machine-readable results for EXPERIMENTS.md regeneration.

pub mod chart;

use lpfps::driver::{power_reduction, run, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_kernel::report::SimReport;
use lpfps_tasks::exec::ExecModel;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::Serialize;

/// The BCET/WCET fractions swept in Figure 8 (10 % steps).
pub const BCET_FRACTIONS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// One measured cell of a power experiment.
#[derive(Debug, Clone, Serialize)]
pub struct PowerCell {
    /// Application name.
    pub app: String,
    /// Scheduling policy.
    pub policy: String,
    /// BCET as a fraction of WCET.
    pub bcet_fraction: f64,
    /// Average normalized power (1.0 = flat-out busy processor).
    pub average_power: f64,
    /// Deadline misses observed (must be zero).
    pub misses: usize,
}

impl PowerCell {
    /// Builds a cell from a finished report.
    pub fn from_report(report: &SimReport, bcet_fraction: f64) -> Self {
        PowerCell {
            app: report.taskset.clone(),
            policy: report.policy.clone(),
            bcet_fraction,
            average_power: report.average_power(),
            misses: report.misses.len(),
        }
    }
}

/// Runs one `(app, policy, BCET fraction)` cell and asserts its
/// correctness invariant (no deadline misses on these schedulable sets).
pub fn power_cell(
    ts: &TaskSet,
    cpu: &CpuSpec,
    policy: PolicyKind,
    exec: &dyn ExecModel,
    frac: f64,
    horizon: Dur,
    seed: u64,
) -> PowerCell {
    let scaled = ts.with_bcet_fraction(frac);
    let cfg = SimConfig::new(horizon).with_seed(seed);
    let report = run(&scaled, cpu, policy, exec, &cfg);
    assert!(
        report.all_deadlines_met(),
        "{} under {} at BCET {frac} missed deadlines: {:?}",
        ts.name(),
        policy,
        report.misses
    );
    PowerCell::from_report(&report, frac)
}

/// Formats a Figure-8-style table: one row per BCET fraction, one column
/// pair (power, reduction vs the first policy) per policy.
pub fn render_power_table(app: &str, policies: &[&str], cells: &[PowerCell]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "== {app} ==");
    let _ = write!(out, "{:>6}", "bcet%");
    for p in policies {
        let _ = write!(out, " {p:>11}");
    }
    let _ = writeln!(out, " {:>11}", "reduction");
    for &frac in BCET_FRACTIONS.iter() {
        let row: Vec<&PowerCell> = policies
            .iter()
            .map(|p| {
                cells
                    .iter()
                    .find(|c| {
                        c.app == app && &c.policy == p && (c.bcet_fraction - frac).abs() < 1e-9
                    })
                    .unwrap_or_else(|| panic!("missing cell {app}/{p}/{frac}"))
            })
            .collect();
        let _ = write!(out, "{:>6.0}", frac * 100.0);
        for c in &row {
            let _ = write!(out, " {:>11.4}", c.average_power);
        }
        let red = 1.0 - row.last().unwrap().average_power / row[0].average_power;
        let _ = writeln!(out, " {:>10.1}%", red * 100.0);
    }
    out
}

/// Writes `values` as pretty JSON to `path` if the user passed
/// `--json <path>` on the command line.
pub fn maybe_write_json<T: Serialize>(values: &T) {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json requires a path");
            let body = serde_json::to_string_pretty(values).expect("results serialize");
            std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
            return;
        }
    }
}

/// The per-application simulation horizons used by the power experiments:
/// long enough to sample several of the longest periods (and whole
/// hyperperiods where reachable) while keeping the full Figure-8 sweep in
/// seconds of wall time.
pub fn experiment_horizon(ts: &TaskSet) -> Dur {
    lpfps::driver::default_horizon(ts)
}

/// Convenience: FPS-vs-LPFPS reduction for one app/fraction (the paper's
/// headline metric).
pub fn fps_vs_lpfps(
    ts: &TaskSet,
    cpu: &CpuSpec,
    exec: &dyn ExecModel,
    frac: f64,
    seed: u64,
) -> (PowerCell, PowerCell, f64) {
    let horizon = experiment_horizon(ts);
    let scaled = ts.with_bcet_fraction(frac);
    let cfg = SimConfig::new(horizon).with_seed(seed);
    let fps = run(&scaled, cpu, PolicyKind::Fps, exec, &cfg);
    let lpfps = run(&scaled, cpu, PolicyKind::Lpfps, exec, &cfg);
    let red = power_reduction(&fps, &lpfps);
    (
        PowerCell::from_report(&fps, frac),
        PowerCell::from_report(&lpfps, frac),
        red,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::exec::AlwaysWcet;

    #[test]
    fn power_cell_runs_and_checks_deadlines() {
        let ts = lpfps_workloads::table1();
        let cpu = CpuSpec::arm8();
        let cell = power_cell(
            &ts,
            &cpu,
            PolicyKind::Fps,
            &AlwaysWcet,
            1.0,
            Dur::from_us(800),
            0,
        );
        assert_eq!(cell.app, "table1");
        assert_eq!(cell.policy, "fps");
        assert!((cell.average_power - 0.88).abs() < 1e-6);
        assert_eq!(cell.misses, 0);
    }

    #[test]
    fn table_renderer_includes_all_fractions() {
        let ts = lpfps_workloads::table1();
        let cpu = CpuSpec::arm8();
        let mut cells = Vec::new();
        for &f in BCET_FRACTIONS.iter() {
            for p in [PolicyKind::Fps, PolicyKind::Lpfps] {
                cells.push(power_cell(
                    &ts,
                    &cpu,
                    p,
                    &lpfps_tasks::exec::PaperGaussian,
                    f,
                    Dur::from_us(800),
                    1,
                ));
            }
        }
        let table = render_power_table("table1", &["fps", "lpfps"], &cells);
        assert!(table.contains("== table1 =="));
        assert_eq!(table.lines().count(), 2 + BCET_FRACTIONS.len());
    }

    #[test]
    fn fps_vs_lpfps_reports_positive_reduction() {
        let ts = lpfps_workloads::table1();
        let cpu = CpuSpec::arm8();
        let (_, _, red) = fps_vs_lpfps(&ts, &cpu, &lpfps_tasks::exec::PaperGaussian, 0.5, 3);
        assert!(red > 0.0);
    }
}
