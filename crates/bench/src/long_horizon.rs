//! The long-horizon benchmark behind the steady-state fast-forward
//! acceptance numbers.
//!
//! Deterministic cells (`AlwaysWcet`) on the paper's catalog workloads,
//! run at a large `--horizon-scale`, once with the kernel's steady-state
//! detector enabled and once forced through the full event-by-event
//! simulation. Both runs must serialize to byte-identical reports — the
//! measurement *is* the equivalence gate — and the wall-clock ratio is
//! the committed speedup in `BENCH_kernel.json`.

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimWorkspace;
use lpfps_sweep::{Cell, ExecKind};
use lpfps_tasks::analysis::hyperperiod;
use lpfps_workloads::{avionics, cnc, ins, table1};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One workload's measured fast-forward vs full-simulation pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongHorizonRow {
    /// Workload name.
    pub app: String,
    /// Policy name.
    pub policy: String,
    /// Horizon stretch factor the pair ran at.
    pub horizon_scale: f64,
    /// Kernel decision points in the report (identical for both runs).
    pub events: u64,
    /// Whole hyperperiods the detector skipped.
    pub cycles_detected: u64,
    /// Decision points covered by extrapolation instead of simulation.
    pub events_skipped: u64,
    /// Best-of-rounds wall time of the forced-full run, nanoseconds.
    pub full_ns: u64,
    /// Best-of-rounds wall time of the fast-forward run, nanoseconds.
    pub fast_ns: u64,
    /// `full_ns / fast_ns` — the headline number.
    pub speedup: f64,
}

/// The full benchmark result set for one invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongHorizonResults {
    /// Horizon stretch factor shared by every row.
    pub horizon_scale: f64,
    /// One row per (workload, policy) pair, in catalog order.
    pub rows: Vec<LongHorizonRow>,
}

/// The benchmark cells: catalog workloads under LPFPS with every job at
/// its WCET — the deterministic regime where a real schedule settles into
/// a steady state within a few hyperperiods.
///
/// Each cell's base horizon is exactly **one hyperperiod**, so the
/// uniform `--horizon-scale N` means "simulate N whole cycles". (The
/// catalog's default horizons are a handful of longest-periods, which for
/// avionics is a *fraction* of its 118 s hyperperiod — no stretch of that
/// base would ever complete two full cycles for the detector to match.)
pub fn long_horizon_cells() -> Vec<Cell> {
    [table1(), avionics(), cnc(), ins()]
        .into_iter()
        .map(|ts| {
            let h = hyperperiod(&ts).expect("catalog hyperperiods are representable");
            Cell::new(ts, CpuSpec::arm8(), PolicyKind::Lpfps)
                .with_exec(ExecKind::AlwaysWcet)
                .with_horizon(h)
        })
        .collect()
}

/// Times one `(cell, force_full)` combination, best of `rounds`, and
/// returns the report of the last run alongside the best wall time.
fn time_cell(
    cell: &Cell,
    scale: f64,
    force_full: bool,
    rounds: usize,
) -> (lpfps_kernel::report::SimReport, u64, u64, u64) {
    let mut ws = SimWorkspace::new();
    let mut best = u64::MAX;
    let mut report = None;
    let mut cycles = 0;
    let mut skipped = 0;
    for _ in 0..rounds.max(1) {
        let start = Instant::now();
        let r = cell
            .run_opts(scale, &mut ws, force_full)
            .expect("benchmark cell is a valid simulation");
        best = best.min(start.elapsed().as_nanos().max(1) as u64);
        let ff = ws.fast_forward_stats();
        cycles = ff.cycles_detected;
        skipped = ff.events_skipped;
        report = Some(r);
    }
    (
        report.expect("at least one round ran"),
        best,
        cycles,
        skipped,
    )
}

/// Runs the benchmark at `scale`, asserting byte-identical reports
/// between the fast-forward and forced-full runs of every cell.
///
/// # Panics
///
/// Panics if any cell's two reports differ in a single serialized byte —
/// that is the point: a speedup measured against a divergent slow path
/// would be meaningless.
pub fn run_long_horizon(scale: f64, rounds: usize) -> LongHorizonResults {
    let mut rows = Vec::new();
    for cell in long_horizon_cells() {
        let (fast_report, fast_ns, cycles, skipped) = time_cell(&cell, scale, false, rounds);
        let (full_report, full_ns, _, _) = time_cell(&cell, scale, true, rounds);
        let fast_json = serde_json::to_string(&fast_report).expect("report serializes");
        let full_json = serde_json::to_string(&full_report).expect("report serializes");
        assert_eq!(
            fast_json,
            full_json,
            "{}: fast-forward report differs from the full simulation",
            cell.label()
        );
        assert!(
            cycles > 0,
            "{}: detector failed to engage on a deterministic workload",
            cell.label()
        );
        rows.push(LongHorizonRow {
            app: cell.app.clone(),
            policy: cell.policy.name(),
            horizon_scale: scale,
            events: fast_report.counters.events,
            cycles_detected: cycles,
            events_skipped: skipped,
            full_ns,
            fast_ns,
            speedup: full_ns as f64 / fast_ns.max(1) as f64,
        });
    }
    LongHorizonResults {
        horizon_scale: scale,
        rows,
    }
}

/// Renders the result table.
pub fn render(results: &LongHorizonResults) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<8} {:>8} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "app", "policy", "cycles", "events", "skipped", "full ns", "fast ns", "speedup"
    );
    for r in &results.rows {
        let _ = writeln!(
            out,
            "{:<10} {:<8} {:>8} {:>10} {:>10} {:>12} {:>12} {:>8.1}x",
            r.app,
            r.policy,
            r.cycles_detected,
            r.events,
            r.events_skipped,
            r.full_ns,
            r.fast_ns,
            r.speedup
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The equivalence assertion inside `run_long_horizon` is the test;
    /// a small scale keeps it fast in debug builds.
    #[test]
    fn fast_forward_matches_full_on_every_catalog_workload() {
        let results = run_long_horizon(3.0, 1);
        assert_eq!(results.rows.len(), 4);
        for row in &results.rows {
            assert!(row.cycles_detected > 0, "{}: no cycles skipped", row.app);
            assert!(row.events_skipped > 0, "{}: nothing extrapolated", row.app);
        }
    }
}
