//! The golden workload matrix behind the engine's determinism tests and
//! the benchmark suite.
//!
//! All four paper workloads × {fps, lpfps, lpfps-wd}, fault-free and
//! under an injected WCET-overrun model, at fixed seeds. The matrix is a
//! shared definition so `tests/golden_determinism.rs` (which pins the
//! fingerprints) and `bench_kernel --golden` (which regenerates them)
//! can never drift apart.

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_kernel::engine::SimConfig;
use lpfps_kernel::report::SimReport;
use lpfps_oracle::{first_divergence, oracle_run};
use lpfps_sweep::{Cell, ExecKind, PolicyChoice};
use lpfps_workloads::{avionics, cnc, ins, table1};

/// `(label, fingerprint)` of every golden cell, in [`golden_cells`]
/// order — captured with `bench_kernel --golden` on the engine as of
/// PR 2. Pinned by `tests/golden_determinism.rs` (uniprocessor engine)
/// and `tests/multicore_golden.rs` (one-core multicore runs must
/// reproduce it byte for byte).
pub const GOLDEN_FINGERPRINTS: [(&str, u64); 24] = [
    ("table1/fps/b50%/s42", 0x6980f6940f8b88e2),
    ("table1/lpfps/b50%/s42", 0x96ba117d5e644651),
    ("table1/lpfps-wd/b50%/s42", 0x4f91fe31f8e73a47),
    ("avionics/fps/b50%/s42", 0x9023ab159b4c1e9d),
    ("avionics/lpfps/b50%/s42", 0x839bbdc8814168ef),
    ("avionics/lpfps-wd/b50%/s42", 0xe89d5889a58c6415),
    ("cnc/fps/b50%/s42", 0xae118dff6f934ca8),
    ("cnc/lpfps/b50%/s42", 0x01360554c39bb965),
    ("cnc/lpfps-wd/b50%/s42", 0xfeb19d4178a8fafb),
    ("ins/fps/b50%/s42", 0xd21c5a0aecdea464),
    ("ins/lpfps/b50%/s42", 0xe3eb67e9d52ce4a7),
    ("ins/lpfps-wd/b50%/s42", 0xa6375d9915c03891),
    ("table1/fps/b50%/s42/overrun", 0x088bd9b2a5ed849b),
    ("table1/lpfps/b50%/s42/overrun", 0xa21f3f5d348b69f5),
    ("table1/lpfps-wd/b50%/s42/overrun", 0x0fadb77d1da5d7d4),
    ("avionics/fps/b50%/s42/overrun", 0x396a5075e5188c26),
    ("avionics/lpfps/b50%/s42/overrun", 0xb00f54b5a098d2a1),
    ("avionics/lpfps-wd/b50%/s42/overrun", 0x180a8c14817052fc),
    ("cnc/fps/b50%/s42/overrun", 0x0b42ba74343c5603),
    ("cnc/lpfps/b50%/s42/overrun", 0x96e0023be650f2a5),
    ("cnc/lpfps-wd/b50%/s42/overrun", 0xeb78f7fa9942d149),
    ("ins/fps/b50%/s42/overrun", 0x450e1ddf13defd4f),
    ("ins/lpfps/b50%/s42/overrun", 0x9aca5885ab758e3b),
    ("ins/lpfps-wd/b50%/s42/overrun", 0x2f37d14c71b5e28f),
];

/// The execution-time seed every golden cell runs with.
pub const GOLDEN_SEED: u64 = 42;

/// The fault-stream seed of the faulted half of the matrix.
pub const GOLDEN_FAULT_SEED: u64 = 7;

/// The golden cells, in a fixed, documented order: workload-major,
/// policy-minor, fault-free matrix first, then the overrun-fault matrix.
pub fn golden_cells() -> Vec<Cell> {
    let cpu = CpuSpec::arm8();
    let policies = [
        PolicyKind::Fps,
        PolicyKind::Lpfps,
        PolicyKind::LpfpsWatchdog,
    ];
    let overrun = FaultConfig::none()
        .with_seed(GOLDEN_FAULT_SEED)
        .with_overrun(OverrunFault::clamped(0.2, 0.3, 1.3));
    let mut cells = Vec::new();
    for faults in [FaultConfig::none(), overrun] {
        for ts in [table1(), avionics(), cnc(), ins()] {
            for policy in policies {
                cells.push(
                    Cell::new(ts.clone(), cpu.clone(), policy)
                        .with_exec(ExecKind::PaperGaussian)
                        .with_bcet_fraction(0.5)
                        .with_seed(GOLDEN_SEED)
                        .with_faults(faults),
                );
            }
        }
    }
    cells
}

/// Runs every golden cell, yielding `(label, report)` in matrix order.
pub fn golden_runs() -> impl Iterator<Item = (String, SimReport)> {
    golden_cells().into_iter().map(|cell| {
        let report = cell
            .run(1.0)
            .expect("every golden cell is a valid simulation");
        (cell.label(), report)
    })
}

/// Runs a cell through the naive reference simulator (`lpfps-oracle`)
/// under the exact configuration [`Cell::run`] builds, or `None` for the
/// timeout-shutdown policy (which has no `PolicyKind` dispatch).
pub fn oracle_report(cell: &Cell) -> Option<SimReport> {
    let PolicyChoice::Kind(kind) = cell.policy else {
        return None;
    };
    let scaled = cell.ts.with_bcet_fraction(cell.bcet_fraction);
    let mut cfg = SimConfig::new(cell.effective_horizon(1.0))
        .with_seed(cell.seed)
        .with_context_switch(cell.context_switch)
        .with_ratio_overhead(cell.ratio_overhead);
    if let Some(tick) = cell.tick {
        cfg = cfg.with_tick(tick);
    }
    cfg = cfg.with_faults(cell.faults);
    if cell.trace {
        cfg = cfg.with_trace();
    }
    let mut report = oracle_run(&scaled, &cell.cpu, kind, cell.exec.model(), &cfg)
        .expect("every golden cell is a valid simulation for the oracle too");
    report.taskset = cell.app.clone();
    Some(report)
}

/// Explains a golden fingerprint mismatch: instead of "hash A != hash B",
/// run the cell through the naive oracle and report either the first
/// diverging field (an engine bug) or full agreement (an intentional
/// behavior change whose fingerprints need regenerating).
pub fn diagnose_mismatch(cell: &Cell, engine: &SimReport) -> String {
    let Some(oracle) = oracle_report(cell) else {
        return "no oracle dispatch for this policy; diff the serialized reports by hand".into();
    };
    match first_divergence(engine, &oracle) {
        Some(d) => format!(
            "the engine DISAGREES with the naive reference simulator — likely an engine bug.\n{d}"
        ),
        None => "the engine agrees with the naive reference simulator field for field — \
                 the behavior change looks intentional; regenerate the pinned fingerprints \
                 with `cargo run --release --bin bench_kernel -- --golden`."
            .into(),
    }
}
