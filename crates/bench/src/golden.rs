//! The golden workload matrix behind the engine's determinism tests and
//! the benchmark suite.
//!
//! All four paper workloads × {fps, lpfps, lpfps-wd}, fault-free and
//! under an injected WCET-overrun model, at fixed seeds. The matrix is a
//! shared definition so `tests/golden_determinism.rs` (which pins the
//! fingerprints) and `bench_kernel --golden` (which regenerates them)
//! can never drift apart.

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_kernel::report::SimReport;
use lpfps_sweep::{Cell, ExecKind};
use lpfps_workloads::{avionics, cnc, ins, table1};

/// The execution-time seed every golden cell runs with.
pub const GOLDEN_SEED: u64 = 42;

/// The fault-stream seed of the faulted half of the matrix.
pub const GOLDEN_FAULT_SEED: u64 = 7;

/// The golden cells, in a fixed, documented order: workload-major,
/// policy-minor, fault-free matrix first, then the overrun-fault matrix.
pub fn golden_cells() -> Vec<Cell> {
    let cpu = CpuSpec::arm8();
    let policies = [
        PolicyKind::Fps,
        PolicyKind::Lpfps,
        PolicyKind::LpfpsWatchdog,
    ];
    let overrun = FaultConfig::none()
        .with_seed(GOLDEN_FAULT_SEED)
        .with_overrun(OverrunFault::clamped(0.2, 0.3, 1.3));
    let mut cells = Vec::new();
    for faults in [FaultConfig::none(), overrun] {
        for ts in [table1(), avionics(), cnc(), ins()] {
            for policy in policies {
                cells.push(
                    Cell::new(ts.clone(), cpu.clone(), policy)
                        .with_exec(ExecKind::PaperGaussian)
                        .with_bcet_fraction(0.5)
                        .with_seed(GOLDEN_SEED)
                        .with_faults(faults),
                );
            }
        }
    }
    cells
}

/// Runs every golden cell, yielding `(label, report)` in matrix order.
pub fn golden_runs() -> impl Iterator<Item = (String, SimReport)> {
    golden_cells()
        .into_iter()
        .map(|cell| (cell.label(), cell.run(1.0)))
}
