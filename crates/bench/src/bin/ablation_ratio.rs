//! Ablation: heuristic (Eq. 3) versus optimal speed ratio.
//!
//! The paper's §5 leaves the heuristic/optimal trade-off as future work:
//! the optimal ratio extracts more slack when windows are short relative
//! to the transition delay, at the cost of a more expensive scheduler.
//! This ablation measures the energy side (the scheduler-cost side is the
//! `speed_ratio` Criterion bench), sweeping BCET on all four applications.
//!
//! Usage: `cargo run --release --bin ablation_ratio -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_bench::BCET_FRACTIONS;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cli, ExecKind, SweepSpec};
use lpfps_workloads::applications;

fn main() {
    let parsed = Cli::new(
        "ablation_ratio",
        "heuristic (Eq. 3) vs optimal (Eq. 2) speed-ratio energy",
    )
    .parse();

    let spec = SweepSpec::grid(
        "ablation_ratio",
        &applications(),
        &CpuSpec::arm8(),
        &[PolicyKind::Lpfps, PolicyKind::LpfpsOptimal],
        &BCET_FRACTIONS,
        &[1],
        ExecKind::PaperGaussian,
    );
    let outcome = run_sweep(&spec, &parsed.run_options());
    let cells = &outcome.results;
    for c in cells {
        assert_eq!(c.misses, 0, "{}/{} missed deadlines", c.app, c.policy);
    }
    let get = |app: &str, pol: &str, frac: f64| {
        cells
            .iter()
            .find(|c| c.app == app && c.policy == pol && (c.bcet_fraction - frac).abs() < 1e-9)
            .unwrap()
            .average_power
    };

    println!("Heuristic vs optimal speed ratio (average power)\n");
    for ts in applications() {
        println!("== {} ==", ts.name());
        println!(
            "{:>6} {:>11} {:>11} {:>10}",
            "bcet%", "lpfps", "lpfps-opt", "opt gain"
        );
        for &frac in BCET_FRACTIONS.iter() {
            let heu = get(ts.name(), "lpfps", frac);
            let opt = get(ts.name(), "lpfps-opt", frac);
            let gain = 1.0 - opt / heu;
            println!(
                "{:>6.0} {:>11.4} {:>11.4} {:>9.2}%",
                frac * 100.0,
                heu,
                opt,
                gain * 100.0
            );
        }
        println!();
    }

    // The paper's expectation: the optimal ratio helps only marginally for
    // workloads whose windows dwarf the 10 us transition, and most for CNC
    // whose WCETs are comparable to it.
    let avg_gain = |app: &str| {
        BCET_FRACTIONS
            .iter()
            .map(|&f| 1.0 - get(app, "lpfps-opt", f) / get(app, "lpfps", f))
            .sum::<f64>()
            / BCET_FRACTIONS.len() as f64
    };
    for ts in applications() {
        let app = ts.name();
        let g = avg_gain(app);
        println!("{app:<16} mean optimal-ratio gain: {:.3}%", g * 100.0);
        assert!(
            g > -0.02,
            "{app}: the optimal ratio should never cost energy materially"
        );
    }
    parsed.emit(cells, &outcome.metrics);
}
