//! Ablation: heuristic (Eq. 3) versus optimal speed ratio.
//!
//! The paper's §5 leaves the heuristic/optimal trade-off as future work:
//! the optimal ratio extracts more slack when windows are short relative
//! to the transition delay, at the cost of a more expensive scheduler.
//! This ablation measures the energy side (the scheduler-cost side is the
//! `speed_ratio` Criterion bench), sweeping BCET on all four applications.
//!
//! Usage: `cargo run --release --bin ablation_ratio [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_bench::{maybe_write_json, power_cell, PowerCell, BCET_FRACTIONS};
use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_workloads::applications;

fn main() {
    let cpu = CpuSpec::arm8();
    let exec = PaperGaussian;
    let mut cells: Vec<PowerCell> = Vec::new();

    println!("Heuristic vs optimal speed ratio (average power)\n");
    for ts in applications() {
        let horizon = lpfps_bench::experiment_horizon(&ts);
        println!("== {} ==", ts.name());
        println!(
            "{:>6} {:>11} {:>11} {:>10}",
            "bcet%", "lpfps", "lpfps-opt", "opt gain"
        );
        for &frac in BCET_FRACTIONS.iter() {
            let heu = power_cell(&ts, &cpu, PolicyKind::Lpfps, &exec, frac, horizon, 1);
            let opt = power_cell(&ts, &cpu, PolicyKind::LpfpsOptimal, &exec, frac, horizon, 1);
            let gain = 1.0 - opt.average_power / heu.average_power;
            println!(
                "{:>6.0} {:>11.4} {:>11.4} {:>9.2}%",
                frac * 100.0,
                heu.average_power,
                opt.average_power,
                gain * 100.0
            );
            cells.push(heu);
            cells.push(opt);
        }
        println!();
    }

    // The paper's expectation: the optimal ratio helps only marginally for
    // workloads whose windows dwarf the 10 us transition, and most for CNC
    // whose WCETs are comparable to it.
    let avg_gain = |app: &str| {
        let pairs: Vec<(f64, f64)> = BCET_FRACTIONS
            .iter()
            .map(|&f| {
                let get = |p: &str| {
                    cells
                        .iter()
                        .find(|c| {
                            c.app == app && c.policy == p && (c.bcet_fraction - f).abs() < 1e-9
                        })
                        .unwrap()
                        .average_power
                };
                (get("lpfps"), get("lpfps-opt"))
            })
            .collect();
        pairs.iter().map(|(h, o)| 1.0 - o / h).sum::<f64>() / pairs.len() as f64
    };
    for ts in applications() {
        let app = ts.name();
        let g = avg_gain(app);
        println!("{app:<16} mean optimal-ratio gain: {:.3}%", g * 100.0);
        assert!(
            g > -0.02,
            "{app}: the optimal ratio should never cost energy materially"
        );
    }
    maybe_write_json(&cells);
}
