//! Fixed-priority vs. earliest-deadline-first through the one shared
//! kernel.
//!
//! The discipline refactor's payoff experiment: Table 1, the flight
//! controller, and the INS workload, each run under {fps, lpfps,
//! lpfps-wd, edf, cc-edf} with identical execution streams (PaperGaussian
//! at BCET = 50 % of WCET). The FP columns are the paper's scheduler; the
//! EDF columns are the same engine with the run queue ordered by absolute
//! deadline — `edf` is the full-speed baseline, `cc-edf` runs the LPFPS
//! power manager (exact power-down + lone-task DVS) under EDF dispatch,
//! in the spirit of Pillai & Shin's cycle-conserving EDF.
//!
//! Asserted invariants:
//! * every cell keeps every deadline (all three sets are schedulable, and
//!   EDF is optimal on a uniprocessor, so its columns must be clean);
//! * `edf` at full speed burns the same power as `fps` — both are
//!   work-conserving full-speed schedules of the same jobs, so only the
//!   dispatch order differs;
//! * `cc-edf` strictly beats full-speed `edf`, mirroring `lpfps` vs
//!   `fps` on the fixed-priority side.
//!
//! Usage: `cargo run --release --bin fp_vs_edf -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cli, ExecKind, SweepSpec};
use lpfps_tasks::taskset::TaskSet;
use lpfps_workloads::{flight_control, ins, table1};

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Fps,
    PolicyKind::Lpfps,
    PolicyKind::LpfpsWatchdog,
    PolicyKind::Edf,
    PolicyKind::CcEdf,
];
const FRAC: f64 = 0.5;

fn apps() -> Vec<TaskSet> {
    vec![table1(), flight_control(), ins()]
}

fn main() {
    let parsed = Cli::new(
        "fp_vs_edf",
        "fixed-priority vs EDF dispatch through the shared kernel",
    )
    .parse();

    let spec = SweepSpec::grid(
        "fp_vs_edf",
        &apps(),
        &CpuSpec::arm8(),
        &POLICIES,
        &[FRAC],
        &[1],
        ExecKind::PaperGaussian,
    );
    let outcome = run_sweep(&spec, &parsed.run_options());
    let cells = &outcome.results;
    for c in cells {
        assert_eq!(c.misses, 0, "{}/{} missed deadlines", c.app, c.policy);
    }

    println!(
        "FP vs EDF dispatch, one kernel, BCET = {}% of WCET\n",
        (FRAC * 100.0) as u32
    );
    print!("{:<16}", "application");
    for p in POLICIES {
        print!(" {:>11}", p.name());
    }
    println!();
    for ts in apps() {
        print!("{:<16}", ts.name());
        for policy in POLICIES {
            let cell = cells
                .iter()
                .find(|c| c.app == ts.name() && c.policy == policy.name())
                .unwrap();
            print!(" {:>11.4}", cell.average_power);
        }
        println!();
    }

    let power = |app: &str, pol: PolicyKind| {
        cells
            .iter()
            .find(|c| c.app == app && c.policy == pol.name())
            .unwrap()
            .average_power
    };
    println!();
    for ts in apps() {
        let app = ts.name();
        assert!(
            (power(app, PolicyKind::Edf) - power(app, PolicyKind::Fps)).abs() < 1e-9,
            "{app}: full-speed EDF and FPS are both work-conserving full-speed \
             schedules; their power must coincide"
        );
        assert!(
            power(app, PolicyKind::CcEdf) < power(app, PolicyKind::Edf),
            "{app}: cycle-conserving EDF must beat full-speed EDF"
        );
        assert!(
            power(app, PolicyKind::Lpfps) < power(app, PolicyKind::Fps),
            "{app}: LPFPS must beat FPS"
        );
    }
    println!(
        "invariants verified: edf == fps at full speed, cc-edf < edf, lpfps < fps.\n\
         One engine serves both dispatch families; the power manager's wins\n\
         carry over from fixed priorities to deadline order."
    );
    parsed.emit(cells, &outcome.metrics);
    parsed.maybe_export_trace(&spec, &outcome);
}
