//! Robustness experiment: degradation curves under WCET-overrun faults.
//!
//! Theorem 1 (and every DVS slow-down built on it) assumes jobs never
//! exceed their WCET budget. This sweep measures what happens when they
//! do: a grid of overrun probability × policy on a mid-slack workload
//! where plain FPS has enough headroom to absorb bounded overruns at full
//! speed, but vanilla LPFPS has stretched the active job onto the
//! critical path — so the unbudgeted excess lands after the planned
//! completion bound and deadlines fall. LPFPS with the safety watchdog
//! reverts to full speed on each budget overrun and rides out a cooldown
//! before trusting slow-down again, which restores FPS-grade robustness
//! while keeping the DVS savings between fault bursts.
//!
//! Usage: `cargo run --release --bin fault_sweep -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_sweep::{run_sweep, Cell, CellResult, Cli, ExecKind, SweepSpec};
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::Serialize;

/// Per-job overrun probabilities swept (0.0 = the idealized fault-free
/// kernel, the control column).
const PROBABILITIES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// Mean extra demand of a firing overrun, as a fraction of the WCET.
const MAGNITUDE: f64 = 0.5;

/// Total demand cap as a multiple of WCET. At 1.5× the inflated
/// utilization is 0.9 — still feasible at full speed for this harmonic
/// set (RM bound 1.0), so every miss below is a *policy* failure, not an
/// overload.
const CLAMP: f64 = 1.5;

/// Seed of the fault coin-flip streams (independent of the cell seed).
const FAULT_SEED: u64 = 21;

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Fps,
    PolicyKind::Lpfps,
    PolicyKind::LpfpsWatchdog,
];

/// One aggregated grid point: a (probability, policy) pair averaged over
/// the seed list.
#[derive(Debug, Serialize)]
struct FaultPoint {
    probability: f64,
    policy: String,
    seeds: usize,
    /// Overruns injected across all seeds (identical streams per policy).
    overruns: u64,
    /// Deadline misses across all seeds.
    misses: usize,
    /// Watchdog degradations engaged across all seeds.
    degradations: u64,
    /// Mean normalized power across seeds.
    average_power: f64,
}

/// Everything `--json` persists: the aggregated curves plus the raw
/// per-cell results (with their typed `status` fields).
#[derive(Debug, Serialize)]
struct FaultSweepJson {
    points: Vec<FaultPoint>,
    cells: Vec<CellResult>,
}

/// Mid-slack harmonic set (U = 0.6): enough headroom that FPS absorbs
/// clamped overruns, enough idle time that LPFPS slows down aggressively.
fn workload() -> TaskSet {
    TaskSet::rate_monotonic(
        "midslack",
        vec![
            Task::new("a", Dur::from_us(100), Dur::from_us(20)),
            Task::new("b", Dur::from_us(200), Dur::from_us(40)),
            Task::new("c", Dur::from_us(400), Dur::from_us(80)),
        ],
    )
}

fn faults_at(probability: f64) -> FaultConfig {
    if probability == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::none()
            .with_seed(FAULT_SEED)
            .with_overrun(OverrunFault::clamped(probability, MAGNITUDE, CLAMP))
    }
}

fn main() {
    let parsed = Cli::new(
        "fault_sweep",
        "degradation curves: overrun probability × policy, vanilla LPFPS vs watchdog",
    )
    .parse();
    let seeds = parsed.seed_list();

    let ts = workload();
    let mut spec = SweepSpec::new("fault_sweep");
    for &probability in &PROBABILITIES {
        for policy in POLICIES {
            for &seed in &seeds {
                spec.push(
                    Cell::new(ts.clone(), CpuSpec::arm8(), policy)
                        .with_exec(ExecKind::AlwaysWcet)
                        .with_seed(seed)
                        .with_horizon(Dur::from_ms(20))
                        .with_faults(faults_at(probability)),
                );
            }
        }
    }
    let outcome = run_sweep(&spec, &parsed.run_options());
    assert!(outcome.all_ok(), "fault_sweep cells must all complete");

    println!("Fault sweep: WCET overruns (mean +{MAGNITUDE:.0}0% of WCET, clamped at {CLAMP}x)");
    println!("workload {ts}");
    println!();
    println!(
        "{:>6} {:>10} | {:>8} {:>8} {:>8} {:>10}",
        "p", "policy", "overruns", "misses", "degrade", "power"
    );
    let mut points = Vec::new();
    let per_policy = seeds.len();
    let per_prob = POLICIES.len() * per_policy;
    for (pi, &probability) in PROBABILITIES.iter().enumerate() {
        for (li, policy) in POLICIES.iter().enumerate() {
            let base = pi * per_prob + li * per_policy;
            let mut overruns = 0;
            let mut misses = 0;
            let mut degradations = 0;
            let mut power = 0.0;
            for s in 0..per_policy {
                let r = &outcome.results[base + s];
                let report = outcome.report(base + s).expect("cell completed");
                overruns += report.counters.overruns;
                misses += r.misses;
                degradations += r.degradations;
                power += r.average_power;
            }
            let average_power = power / per_policy as f64;
            println!(
                "{probability:>6.2} {:>10} | {overruns:>8} {misses:>8} {degradations:>8} {average_power:>10.4}",
                policy.name()
            );
            points.push(FaultPoint {
                probability,
                policy: policy.name().to_string(),
                seeds: per_policy,
                overruns,
                misses,
                degradations,
                average_power,
            });
        }
    }

    // The qualitative claims need the full horizon; a scaled-down smoke
    // run (CI) still exercises every cell but skips them.
    if parsed.horizon_scale >= 1.0 {
        fn by<'a>(
            points: &'a [FaultPoint],
            policy: &'a str,
        ) -> impl Iterator<Item = &'a FaultPoint> {
            points.iter().filter(move |p| p.policy == policy)
        }
        for p in &points {
            if p.probability == 0.0 {
                assert_eq!(p.overruns, 0, "{}: control column must be clean", p.policy);
                assert_eq!(p.misses, 0, "{}: control column must be clean", p.policy);
                assert_eq!(p.degradations, 0, "{}: watchdog must stay silent", p.policy);
            } else {
                assert!(p.overruns > 0, "{}: faults must inject at p>0", p.policy);
            }
        }
        // FPS has the headroom to absorb clamped overruns at full speed...
        assert!(
            by(&points, "fps").all(|p| p.misses == 0),
            "fps must absorb overruns"
        );
        // ...vanilla LPFPS does not: its slow-down spent the very slack the
        // overruns need...
        assert!(
            by(&points, "lpfps").map(|p| p.misses).sum::<usize>() > 0,
            "vanilla LPFPS should miss under overruns"
        );
        // ...and the watchdog restores FPS-grade robustness.
        assert!(
            by(&points, "lpfps-wd").all(|p| p.misses == 0),
            "watchdog must recover every overrun"
        );
        assert!(
            by(&points, "lpfps-wd")
                .filter(|p| p.probability > 0.0)
                .all(|p| p.degradations > 0),
            "watchdog must engage under faults"
        );
        // Degradation costs energy: watchdog power sits between vanilla
        // LPFPS (oblivious) and FPS (always flat out) at the fault-free end.
        let power_at_zero = |policy: &str| {
            by(&points, policy)
                .find(|p| p.probability == 0.0)
                .expect("control column present")
                .average_power
        };
        assert!(power_at_zero("lpfps") < power_at_zero("fps"));
        assert_eq!(
            power_at_zero("lpfps"),
            power_at_zero("lpfps-wd"),
            "fault-free watchdog must cost nothing"
        );
        println!();
        println!("fps absorbs every clamped overrun; vanilla lpfps trades that slack");
        println!("for power and misses deadlines; lpfps-wd degrades to full speed on");
        println!("each budget overrun and misses nothing — at zero cost when fault-free.");
    }

    let payload = FaultSweepJson {
        points,
        cells: outcome.results.clone(),
    };
    parsed.emit(&payload, &outcome.metrics);
    parsed.maybe_export_trace(&spec, &outcome);
}
