//! Long-horizon fast-forward benchmark: steady-state detection ON vs
//! forced-full simulation on the catalog workloads, with byte-identical
//! reports asserted for every pair (the run aborts on any divergence).
//!
//! Usage:
//!   long_horizon                      full run at --horizon-scale 50
//!   long_horizon --quick              CI smoke at scale 10, one round
//!   long_horizon --horizon-scale F    explicit scale (overrides both)
//!   long_horizon --json results.json  write the result table as JSON

use lpfps_bench::long_horizon::{render, run_long_horizon};
use lpfps_sweep::Cli;

fn main() {
    let parsed = Cli::new(
        "long_horizon",
        "steady-state fast-forward vs full simulation (byte-identical by assertion)",
    )
    .switch("--quick", "CI smoke: horizon scale 10, one timing round")
    .parse();

    let quick = parsed.has("--quick");
    // The uniform `--horizon-scale` default of 1.0 is a no-op stretch;
    // this benchmark only makes sense at a large scale, so an untouched
    // flag means "the committed default" (50), and `--quick` means the CI
    // smoke scale (10). An explicit flag wins over both.
    let scale = if parsed.horizon_scale != 1.0 {
        parsed.horizon_scale
    } else if quick {
        10.0
    } else {
        50.0
    };
    let rounds = if quick { 1 } else { 3 };

    eprintln!("long_horizon: scale {scale}, best of {rounds} round(s), equivalence asserted");
    let results = run_long_horizon(scale, rounds);
    print!("{}", render(&results));
    parsed.write_json(&results);
    eprintln!(
        "all {} cells byte-identical between fast-forward and full simulation",
        results.rows.len()
    );
}
