//! Ablation: exact-knowledge power-down versus timeout-based shutdown.
//!
//! §2.1 of the paper argues that conventional timeout shutdown "fails to
//! obtain a large reduction in energy when the idle interval occurs
//! intermittently and its length is short", while LPFPS's delay-queue
//! timer enters power-down immediately with an exact wake-up. This
//! ablation quantifies the gap on every application, sweeping the idle
//! timeout.
//!
//! Usage: `cargo run --release --bin ablation_shutdown [--json out.json]`

use lpfps::{LpfpsPolicy, TimeoutShutdown};
use lpfps_bench::maybe_write_json;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::policy::AlwaysFullSpeed;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::time::Dur;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ShutdownCell {
    app: String,
    policy: String,
    timeout_us: Option<u64>,
    average_power: f64,
}

fn main() {
    let cpu = CpuSpec::arm8();
    let exec = PaperGaussian;
    let timeouts_us: [u64; 4] = [50, 200, 1_000, 5_000];
    let mut cells = Vec::new();

    println!("Idle shutdown ablation at BCET = 50% of WCET (average power)\n");
    print!("{:<16} {:>9} {:>9}", "application", "fps", "exact-pd");
    for t in timeouts_us {
        print!(" {:>8}us", t);
    }
    println!();

    for ts in applications() {
        let ts = ts.with_bcet_fraction(0.5);
        let cfg = SimConfig::new(lpfps_bench::experiment_horizon(&ts)).with_seed(1);
        let fps = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &exec, &cfg);
        let exact = simulate(&ts, &cpu, &mut LpfpsPolicy::power_down_only(), &exec, &cfg);
        print!(
            "{:<16} {:>9.4} {:>9.4}",
            ts.name(),
            fps.average_power(),
            exact.average_power()
        );
        cells.push(ShutdownCell {
            app: ts.name().into(),
            policy: "fps".into(),
            timeout_us: None,
            average_power: fps.average_power(),
        });
        cells.push(ShutdownCell {
            app: ts.name().into(),
            policy: "exact-pd".into(),
            timeout_us: None,
            average_power: exact.average_power(),
        });
        for t in timeouts_us {
            let mut pol = TimeoutShutdown::new(Dur::from_us(t));
            let report = simulate(&ts, &cpu, &mut pol, &exec, &cfg);
            assert!(report.all_deadlines_met());
            // The timeout policy can never beat exact knowledge, and can
            // never lose to plain FPS.
            assert!(report.average_power() >= exact.average_power() - 1e-9);
            assert!(report.average_power() <= fps.average_power() + 1e-9);
            print!(" {:>10.4}", report.average_power());
            cells.push(ShutdownCell {
                app: ts.name().into(),
                policy: "timeout-pd".into(),
                timeout_us: Some(t),
                average_power: report.average_power(),
            });
        }
        println!();
    }

    println!();
    println!("idle-gap distributions (why timeouts hurt short-gap workloads):");
    for ts in applications() {
        let ts = ts.with_bcet_fraction(0.5);
        let cfg = SimConfig::new(lpfps_bench::experiment_horizon(&ts)).with_seed(1);
        let report = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &exec, &cfg);
        println!("  {:<16} {}", ts.name(), report.idle_gaps);
    }
    println!();
    println!("exact-pd <= timeout-pd <= fps verified for every timeout; the gap");
    println!("widens with the timeout, worst where idle intervals are short (CNC).");
    maybe_write_json(&cells);
}
