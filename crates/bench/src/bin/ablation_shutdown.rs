//! Ablation: exact-knowledge power-down versus timeout-based shutdown.
//!
//! §2.1 of the paper argues that conventional timeout shutdown "fails to
//! obtain a large reduction in energy when the idle interval occurs
//! intermittently and its length is short", while LPFPS's delay-queue
//! timer enters power-down immediately with an exact wake-up. This
//! ablation quantifies the gap on every application, sweeping the idle
//! timeout.
//!
//! Usage: `cargo run --release --bin ablation_shutdown -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cell, Cli, ExecKind, PolicyChoice, SweepSpec};
use lpfps_tasks::time::Dur;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ShutdownCell {
    app: String,
    policy: String,
    timeout_us: Option<u64>,
    average_power: f64,
}

const TIMEOUTS_US: [u64; 4] = [50, 200, 1_000, 5_000];

fn main() {
    let parsed = Cli::new(
        "ablation_shutdown",
        "exact-knowledge power-down vs timeout shutdown (idle-gap ablation)",
    )
    .parse();

    // Per app: FPS baseline, LPFPS's exact power-down (FPS+PD), then the
    // timeout ladder — one column order per row of the printed table.
    let choices: Vec<(PolicyChoice, Option<u64>, &str)> = [
        (PolicyChoice::Kind(PolicyKind::Fps), None, "fps"),
        (PolicyChoice::Kind(PolicyKind::FpsPd), None, "exact-pd"),
    ]
    .into_iter()
    .chain(TIMEOUTS_US.iter().map(|&t| {
        (
            PolicyChoice::TimeoutShutdown(Dur::from_us(t)),
            Some(t),
            "timeout-pd",
        )
    }))
    .collect();

    let mut spec = SweepSpec::new("ablation_shutdown");
    for ts in applications() {
        for (choice, _, _) in &choices {
            spec.push(
                Cell::new(ts.clone(), CpuSpec::arm8(), *choice)
                    .with_exec(ExecKind::PaperGaussian)
                    .with_bcet_fraction(0.5)
                    .with_seed(1),
            );
        }
    }
    let outcome = run_sweep(&spec, &parsed.run_options());

    println!("Idle shutdown ablation at BCET = 50% of WCET (average power)\n");
    print!("{:<16} {:>9} {:>9}", "application", "fps", "exact-pd");
    for t in TIMEOUTS_US {
        print!(" {:>8}us", t);
    }
    println!();

    let mut cells = Vec::new();
    let per_app = choices.len();
    for (app_index, ts) in applications().iter().enumerate() {
        let row = &outcome.results[app_index * per_app..(app_index + 1) * per_app];
        let fps = row[0].average_power;
        let exact = row[1].average_power;
        print!("{:<16} {:>9.4} {:>9.4}", ts.name(), fps, exact);
        for (result, (_, timeout_us, name)) in row.iter().zip(&choices) {
            assert_eq!(result.misses, 0, "{}/{} missed", result.app, result.policy);
            if timeout_us.is_some() {
                // The timeout policy can never beat exact knowledge, and
                // can never lose to plain FPS.
                assert!(result.average_power >= exact - 1e-9);
                assert!(result.average_power <= fps + 1e-9);
                print!(" {:>10.4}", result.average_power);
            }
            cells.push(ShutdownCell {
                app: result.app.clone(),
                policy: name.to_string(),
                timeout_us: *timeout_us,
                average_power: result.average_power,
            });
        }
        println!();
    }

    println!();
    println!("idle-gap distributions (why timeouts hurt short-gap workloads):");
    for (app_index, ts) in applications().iter().enumerate() {
        // The FPS report is the first cell of each app's row.
        let report = outcome
            .report(app_index * per_app)
            .expect("ablation cells are fault-free and complete");
        println!("  {:<16} {}", ts.name(), report.idle_gaps);
    }
    println!();
    println!("exact-pd <= timeout-pd <= fps verified for every timeout; the gap");
    println!("widens with the timeout, worst where idle intervals are short (CNC).");
    parsed.emit(&cells, &outcome.metrics);
}
