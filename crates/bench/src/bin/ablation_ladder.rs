//! Extension: how fine must the frequency ladder be?
//!
//! The paper's processor steps in 1 MHz increments (93 levels). Real DVS
//! parts often expose far fewer operating points. Because LPFPS quantizes
//! the desired ratio *upward*, a coarser ladder wastes the gap between
//! the ideal ratio and the next level — this ablation measures how much.
//!
//! Usage: `cargo run --release --bin ablation_ladder -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::ladder::FrequencyLadder;
use lpfps_cpu::power::PowerModel;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cell, Cli, ExecKind, SweepSpec};
use lpfps_tasks::freq::Freq;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct LadderCell {
    app: String,
    step_mhz: u64,
    levels: usize,
    lpfps_power: f64,
}

const STEPS_MHZ: [u64; 4] = [1, 4, 23, 92];

fn ladder_cpu(step: u64) -> CpuSpec {
    let ladder = FrequencyLadder::new(Freq::from_mhz(8), Freq::from_mhz(100), Freq::from_mhz(step));
    CpuSpec::new(ladder, PowerModel::default(), 0.07, 10)
}

fn main() {
    let parsed = Cli::new(
        "ablation_ladder",
        "frequency-ladder granularity: LPFPS power vs operating-point count",
    )
    .parse();

    let mut spec = SweepSpec::new("ablation_ladder");
    for ts in applications() {
        for step in STEPS_MHZ {
            spec.push(
                Cell::new(ts.clone(), ladder_cpu(step), PolicyKind::Lpfps)
                    .with_exec(ExecKind::PaperGaussian)
                    .with_bcet_fraction(0.4)
                    .with_seed(1),
            );
        }
    }
    let outcome = run_sweep(&spec, &parsed.run_options());

    println!("Frequency-ladder granularity ablation (LPFPS, BCET = 40% of WCET)\n");
    print!("{:<16}", "application");
    for s in STEPS_MHZ {
        print!(" {:>7}MHz", s);
    }
    println!("   (ladder step; 92 MHz = on/off DVS)");

    let mut cells = Vec::new();
    let mut rows = outcome.results.chunks(STEPS_MHZ.len());
    for ts in applications() {
        let row = rows.next().unwrap();
        print!("{:<16}", ts.name());
        let mut prev = 0.0;
        for (result, step) in row.iter().zip(STEPS_MHZ) {
            assert_eq!(result.misses, 0, "{} step {step}", ts.name());
            let p = result.average_power;
            print!(" {:>10.4}", p);
            // Coarser ladders can only cost energy (upward quantization).
            assert!(
                p + 1e-9 >= prev,
                "{}: coarser ladder got cheaper?",
                ts.name()
            );
            prev = p;
            cells.push(LadderCell {
                app: ts.name().into(),
                step_mhz: step,
                levels: ladder_cpu(step).ladder().level_count(),
                lpfps_power: p,
            });
        }
        println!();
    }

    println!();
    println!("a handful of levels captures most of the benefit: the jump from 93");
    println!("levels (1 MHz) to 24 (4 MHz) costs almost nothing, and even the");
    println!("2-level on/off ladder retains the power-down half of the saving.");
    parsed.emit(&cells, &outcome.metrics);
}
