//! Ablation: which half of LPFPS buys what?
//!
//! Splits the policy into its two mechanisms — the power-down timer
//! (FPS+PD) and the single-task DVS (LPFPS-DVS) — and compares against
//! plain FPS, full LPFPS, and the classical offline static slowdown, at
//! BCET = 50 % of WCET on all four applications.
//!
//! Usage: `cargo run --release --bin ablation_policies -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cli, ExecKind, SweepSpec};
use lpfps_workloads::applications;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Fps,
    PolicyKind::FpsPd,
    PolicyKind::StaticSlowdown,
    PolicyKind::LpfpsDvsOnly,
    PolicyKind::Lpfps,
];
const FRAC: f64 = 0.5;

fn main() {
    let parsed = Cli::new(
        "ablation_policies",
        "policy ablation: FPS / FPS+PD / static slowdown / DVS-only / LPFPS",
    )
    .parse();

    let spec = SweepSpec::grid(
        "ablation_policies",
        &applications(),
        &CpuSpec::arm8(),
        &POLICIES,
        &[FRAC],
        &[1],
        ExecKind::PaperGaussian,
    );
    let outcome = run_sweep(&spec, &parsed.run_options());
    let cells = &outcome.results;
    for c in cells {
        assert_eq!(c.misses, 0, "{}/{} missed deadlines", c.app, c.policy);
    }

    println!(
        "Policy ablation at BCET = {}% of WCET\n",
        (FRAC * 100.0) as u32
    );
    print!("{:<16}", "application");
    for p in POLICIES {
        print!(" {:>11}", p.name());
    }
    println!();
    for ts in applications() {
        print!("{:<16}", ts.name());
        for policy in POLICIES {
            let cell = cells
                .iter()
                .find(|c| c.app == ts.name() && c.policy == policy.name())
                .unwrap();
            print!(" {:>11.4}", cell.average_power);
        }
        println!();
    }

    let power = |app: &str, pol: PolicyKind| {
        cells
            .iter()
            .find(|c| c.app == app && c.policy == pol.name())
            .unwrap()
            .average_power
    };
    println!();
    for ts in applications() {
        let app = ts.name();
        assert!(
            power(app, PolicyKind::FpsPd) < power(app, PolicyKind::Fps),
            "{app}: power-down alone must beat FPS"
        );
        assert!(
            power(app, PolicyKind::Lpfps) < power(app, PolicyKind::FpsPd),
            "{app}: full LPFPS must beat power-down alone"
        );
        assert!(
            power(app, PolicyKind::Lpfps) < power(app, PolicyKind::LpfpsDvsOnly),
            "{app}: full LPFPS must beat DVS alone"
        );
    }
    println!("invariants verified: fps > fps-pd > lpfps and fps > lpfps-dvs > lpfps.");
    println!(
        "static slowdown wins only what offline analysis can prove; LPFPS\n\
         reclaims the dynamic slack it cannot see."
    );
    parsed.emit(cells, &outcome.metrics);
}
