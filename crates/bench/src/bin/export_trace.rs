//! Exports a Perfetto / Chrome-trace-event rendering of the Figure 2
//! cell: Table 1 under LPFPS with the paper's clamped Gaussian at
//! BCET = 50 % of WCET, seed 42, over one 400 µs window.
//!
//! The output JSON carries one lane per task (execution segments from the
//! traced schedule), a CPU condition lane (run / ramp / power-down /
//! idle spans with instant markers at each transition), and counter
//! tracks for instantaneous power, cumulative energy, and clock
//! frequency. Load it in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The default output path is the committed golden snapshot
//! (`results/fig2_trace.perfetto.json`); the obs crate's snapshot test
//! pins that file byte for byte, so regenerate it with this binary only
//! when a change is *meant* to alter the schedule or the exporter.
//!
//! Usage: `cargo run --release --bin export_trace -- [--trace-out PATH]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimWorkspace;
use lpfps_obs::{export_chrome_trace, validate_chrome_trace};
use lpfps_sweep::{Cell, Cli, ExecKind};
use lpfps_tasks::time::{Dur, Time};
use lpfps_workloads::table1;

const DEFAULT_OUT: &str = "results/fig2_trace.perfetto.json";

fn main() {
    let parsed = Cli::new(
        "export_trace",
        "Perfetto/Chrome trace-event export of the Figure 2 schedule",
    )
    .parse();

    let cell = Cell::new(table1(), CpuSpec::arm8(), PolicyKind::Lpfps)
        .with_exec(ExecKind::PaperGaussian)
        .with_bcet_fraction(0.5)
        .with_seed(42)
        .with_horizon(Dur::from_us(400))
        .with_trace();
    let report = cell
        .run_in(parsed.horizon_scale, &mut SimWorkspace::new())
        .expect("the Figure 2 cell simulates");
    let trace = report.trace.as_ref().expect("tracing was enabled");
    let scaled = cell.ts.with_bcet_fraction(cell.bcet_fraction);
    let end = Time::ZERO + cell.effective_horizon(parsed.horizon_scale);

    let json = export_chrome_trace(trace, &scaled, end);
    let stats = validate_chrome_trace(&json).expect("freshly exported trace validates");

    let path = parsed.trace_out.as_deref().unwrap_or(DEFAULT_OUT);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "wrote {path}: {} events ({} spans, {} instants, {} counter samples) from {} trace events",
        stats.events,
        stats.spans,
        stats.instants,
        stats.counters,
        trace.len()
    );
    println!("load it in chrome://tracing or https://ui.perfetto.dev");
}
