//! Extension experiment: LPFPS gain versus task-set utilization on
//! synthetic UUniFast workloads.
//!
//! The paper observes that FPS power tracks utilization while LPFPS power
//! does not (INS, with high but concentrated utilization, gains most).
//! This sweep quantifies that: for each target utilization, generate
//! random 8-task sets (UUniFast utilizations, log-uniform 1–100 ms
//! periods), keep the RM-schedulable ones, and measure both policies at
//! BCET = 50 % of WCET.
//!
//! Usage: `cargo run --release --bin sweep_utilization [--json out.json]`

use lpfps::driver::{default_horizon, run, PolicyKind};
use lpfps_bench::maybe_write_json;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_tasks::analysis::rta_schedulable;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::gen::{generate, GenConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepPoint {
    utilization: f64,
    sets: usize,
    fps_power: f64,
    lpfps_power: f64,
    reduction: f64,
}

const UTILIZATIONS: [f64; 8] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
const SETS_PER_POINT: usize = 8;

fn main() {
    let cpu = CpuSpec::arm8();
    let exec = PaperGaussian;
    let mut points = Vec::new();

    println!("Utilization sweep: 8-task UUniFast sets, BCET = 50% WCET\n");
    println!(
        "{:>5} {:>6} {:>11} {:>11} {:>10}",
        "U", "#sets", "fps", "lpfps", "reduction"
    );
    for u in UTILIZATIONS {
        let mut fps_acc = 0.0;
        let mut lp_acc = 0.0;
        let mut kept = 0usize;
        let mut seed = 0u64;
        while kept < SETS_PER_POINT && seed < 200 {
            seed += 1;
            let cfg_gen = GenConfig::new(8, u).with_bcet_fraction(0.5);
            let ts = generate(&cfg_gen, seed ^ (u * 1000.0) as u64);
            if !rta_schedulable(&ts) {
                continue;
            }
            kept += 1;
            let cfg = SimConfig::new(default_horizon(&ts)).with_seed(seed);
            let fps = run(&ts, &cpu, PolicyKind::Fps, &exec, &cfg);
            let lp = run(&ts, &cpu, PolicyKind::Lpfps, &exec, &cfg);
            assert!(fps.all_deadlines_met() && lp.all_deadlines_met());
            fps_acc += fps.average_power();
            lp_acc += lp.average_power();
        }
        assert!(kept > 0, "no schedulable sets at U={u}");
        let fps_power = fps_acc / kept as f64;
        let lpfps_power = lp_acc / kept as f64;
        let reduction = 1.0 - lpfps_power / fps_power;
        println!(
            "{u:>5.1} {kept:>6} {fps_power:>11.4} {lpfps_power:>11.4} {:>9.1}%",
            reduction * 100.0
        );
        points.push(SweepPoint {
            utilization: u,
            sets: kept,
            fps_power,
            lpfps_power,
            reduction,
        });
    }

    // FPS power must track utilization (the paper's observation)...
    for pair in points.windows(2) {
        assert!(
            pair[1].fps_power > pair[0].fps_power,
            "FPS power should grow with utilization"
        );
    }
    // ...and LPFPS must win everywhere.
    for p in &points {
        assert!(p.reduction > 0.0, "LPFPS should win at U={}", p.utilization);
    }
    println!("\nFPS power tracks utilization; LPFPS wins at every load level.");
    maybe_write_json(&points);
}
