//! Extension experiment: LPFPS gain versus task-set utilization on
//! synthetic UUniFast workloads.
//!
//! The paper observes that FPS power tracks utilization while LPFPS power
//! does not (INS, with high but concentrated utilization, gains most).
//! This sweep quantifies that: for each target utilization, generate
//! random 8-task sets (UUniFast utilizations, log-uniform 1–100 ms
//! periods), keep the RM-schedulable ones, and measure both policies at
//! BCET = 50 % of WCET.
//!
//! Usage: `cargo run --release --bin sweep_utilization -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cli, ExecKind, SweepSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepPoint {
    utilization: f64,
    sets: usize,
    fps_power: f64,
    lpfps_power: f64,
    reduction: f64,
}

const UTILIZATIONS: [f64; 8] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
const SETS_PER_POINT: usize = 8;

fn main() {
    let parsed = Cli::new(
        "sweep_utilization",
        "LPFPS gain vs utilization on synthetic UUniFast task sets",
    )
    .parse();

    let spec = SweepSpec::utilization(
        "sweep_utilization",
        &CpuSpec::arm8(),
        &UTILIZATIONS,
        SETS_PER_POINT,
        8,
        &[PolicyKind::Fps, PolicyKind::Lpfps],
        0.5,
        ExecKind::PaperGaussian,
    );
    let outcome = run_sweep(&spec, &parsed.run_options());
    for r in &outcome.results {
        assert_eq!(r.misses, 0, "{}/{} missed deadlines", r.app, r.policy);
    }

    println!("Utilization sweep: 8-task UUniFast sets, BCET = 50% WCET\n");
    println!(
        "{:>5} {:>6} {:>11} {:>11} {:>10}",
        "U", "#sets", "fps", "lpfps", "reduction"
    );
    // The builder emits one (fps, lpfps) pair per kept set, utilization-major.
    let mut points = Vec::new();
    let per_point = SETS_PER_POINT * 2;
    for (chunk, u) in outcome.results.chunks(per_point).zip(UTILIZATIONS) {
        let fps_power = chunk
            .iter()
            .filter(|r| r.policy == "fps")
            .map(|r| r.average_power)
            .sum::<f64>()
            / SETS_PER_POINT as f64;
        let lpfps_power = chunk
            .iter()
            .filter(|r| r.policy == "lpfps")
            .map(|r| r.average_power)
            .sum::<f64>()
            / SETS_PER_POINT as f64;
        let reduction = 1.0 - lpfps_power / fps_power;
        println!(
            "{u:>5.1} {SETS_PER_POINT:>6} {fps_power:>11.4} {lpfps_power:>11.4} {:>9.1}%",
            reduction * 100.0
        );
        points.push(SweepPoint {
            utilization: u,
            sets: SETS_PER_POINT,
            fps_power,
            lpfps_power,
            reduction,
        });
    }

    // FPS power must track utilization (the paper's observation)...
    for pair in points.windows(2) {
        assert!(
            pair[1].fps_power > pair[0].fps_power,
            "FPS power should grow with utilization"
        );
    }
    // ...and LPFPS must win everywhere.
    for p in &points {
        assert!(p.reduction > 0.0, "LPFPS should win at U={}", p.utilization);
    }
    println!("\nFPS power tracks utilization; LPFPS wins at every load level.");
    parsed.emit(&points, &outcome.metrics);
}
