//! A small CLI around the simulator: pick an application, a policy, a
//! BCET fraction, and get the detailed report (states, per-task energy,
//! idle gaps), optionally with a Gantt chart.
//!
//! Usage:
//! ```text
//! cargo run --release --bin simulate -- \
//!     [--app avionics|ins|flight_control|cnc|table1 | --taskset <file.json>] \
//!     [--policy fps|fps-pd|static|lpfps-dvs|lpfps|lpfps-opt] \
//!     [--bcet <fraction 0..1>] [--seed <n>] [--horizon-ms <n>] \
//!     [--gantt <us-per-col>] [--json <out.json>]
//! ```
//!
//! `--taskset` loads a JSON task set (the serde form of
//! [`lpfps_tasks::taskset::TaskSet`]; see
//! `examples/data/custom_taskset.json` for the shape).

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::gantt::Gantt;
use lpfps_sweep::{run_sweep, Cell, CellStatus, Cli, ExecKind, SweepSpec};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("simulate: {msg}");
    std::process::exit(2);
}

fn workload(name: &str) -> TaskSet {
    match name {
        "avionics" => lpfps_workloads::avionics(),
        "ins" => lpfps_workloads::ins(),
        "flight_control" => lpfps_workloads::flight_control(),
        "cnc" => lpfps_workloads::cnc(),
        "table1" => lpfps_workloads::table1(),
        other => die(format_args!(
            "unknown app `{other}` (expected avionics, ins, flight_control, cnc, or table1)"
        )),
    }
}

fn policy(name: &str) -> PolicyKind {
    PolicyKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| {
            let names: Vec<_> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
            die(format_args!(
                "unknown policy `{name}` (expected one of: {})",
                names.join(", ")
            ))
        })
}

fn main() {
    let parsed = Cli::new(
        "simulate",
        "run one simulation cell and print the full report",
    )
    .opt_default("--app", "NAME", "named application workload", "table1")
    .opt("--taskset", "FILE", "load a task-set JSON instead of --app")
    .opt_default("--policy", "NAME", "scheduling policy", "lpfps")
    .opt_default("--bcet", "F", "BCET as a fraction of WCET", "0.5")
    .opt_default("--seed", "N", "execution-time seed", "0")
    .opt("--horizon-ms", "N", "simulation horizon in milliseconds")
    .opt(
        "--gantt",
        "US_PER_COL",
        "render a Gantt chart from the trace",
    )
    .parse();

    let base = match parsed.value("--taskset") {
        Some(path) => {
            let body = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
            let ts = serde_json::from_str::<TaskSet>(&body)
                .unwrap_or_else(|e| die(format_args!("{path} is not a valid task-set JSON: {e}")));
            // Deserialization is shape-only; check the scheduling rules
            // here so a broken file dies with the precise task-set error
            // instead of a downstream symptom (e.g. a zero hyperperiod).
            lpfps_tasks::error::validate_task_set(&ts)
                .unwrap_or_else(|e| die(format_args!("{path}: invalid task set: {e}")));
            ts
        }
        None => workload(parsed.value("--app").unwrap()),
    };
    let bcet: f64 = parsed
        .value("--bcet")
        .unwrap()
        .parse()
        .unwrap_or_else(|_| die("flag `--bcet` takes a fraction in 0..=1"));
    if !(0.0..=1.0).contains(&bcet) {
        die("flag `--bcet` takes a fraction in 0..=1");
    }
    let seed: u64 = parsed
        .value("--seed")
        .unwrap()
        .parse()
        .unwrap_or_else(|_| die("flag `--seed` takes a non-negative integer"));
    let gantt: Option<u64> = parsed.value("--gantt").map(|v| {
        v.parse()
            .unwrap_or_else(|_| die("flag `--gantt` takes microseconds per column"))
    });

    let mut cell = Cell::new(
        base.clone(),
        CpuSpec::arm8(),
        policy(parsed.value("--policy").unwrap()),
    )
    .with_exec(ExecKind::PaperGaussian)
    .with_bcet_fraction(bcet)
    .with_seed(seed);
    if let Some(ms) = parsed.value("--horizon-ms") {
        let ms = ms
            .parse()
            .unwrap_or_else(|_| die("flag `--horizon-ms` takes an integer"));
        cell = cell.with_horizon(Dur::from_ms(ms));
    }
    if gantt.is_some() {
        cell = cell.with_trace();
    }
    let horizon = cell.effective_horizon(parsed.horizon_scale);

    let mut spec = SweepSpec::new("simulate");
    spec.push(cell);
    let outcome = run_sweep(&spec, &parsed.run_options());
    let report = match outcome.report(0) {
        Some(report) => report,
        None => match &outcome.results[0].status {
            CellStatus::Failed { error } => die(format_args!("{}", error.message)),
            CellStatus::Ok => die("simulation produced no report"),
        },
    };

    let ts = base.with_bcet_fraction(bcet);
    println!("{ts}");
    print!("{}", report.render_detailed(&ts));
    if !report.all_deadlines_met() {
        println!("  DEADLINE MISSES: {:?}", report.misses);
    }
    if let (Some(cols), Some(trace)) = (gantt, report.trace.as_ref()) {
        println!();
        print!(
            "{}",
            Gantt::from_trace(trace, Time::ZERO + horizon).render(&ts, cols)
        );
    }
    parsed.emit(&outcome.results, &outcome.metrics);
}
