//! A small CLI around the simulator: pick an application, a policy, a
//! BCET fraction, and get the detailed report (states, per-task energy,
//! idle gaps), optionally with a Gantt chart.
//!
//! Usage:
//! ```text
//! cargo run --release --bin simulate -- \
//!     [--app avionics|ins|flight_control|cnc|table1 | --taskset <file.json>] \
//!     [--policy fps|fps-pd|static|lpfps-dvs|lpfps|lpfps-opt] \
//!     [--bcet <fraction 0..1>] [--seed <n>] [--horizon-ms <n>] [--gantt <us-per-col>]
//! ```
//!
//! `--taskset` loads a JSON task set (the serde form of
//! [`TaskSet`](lpfps_tasks::taskset::TaskSet); see
//! `examples/data/custom_taskset.json` for the shape).

use lpfps::driver::{default_horizon, run, PolicyKind};
use lpfps::SimConfig;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::gantt::Gantt;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};

struct Args {
    app: String,
    taskset_file: Option<String>,
    policy: String,
    bcet: f64,
    seed: u64,
    horizon_ms: Option<u64>,
    gantt: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        app: "table1".into(),
        taskset_file: None,
        policy: "lpfps".into(),
        bcet: 0.5,
        seed: 0,
        horizon_ms: None,
        gantt: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--app" => args.app = value("--app"),
            "--taskset" => args.taskset_file = Some(value("--taskset")),
            "--policy" => args.policy = value("--policy"),
            "--bcet" => args.bcet = value("--bcet").parse().expect("--bcet takes a fraction"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--horizon-ms" => {
                args.horizon_ms = Some(value("--horizon-ms").parse().expect("integer ms"))
            }
            "--gantt" => args.gantt = Some(value("--gantt").parse().expect("us per column")),
            "--help" | "-h" => {
                println!(
                    "usage: simulate [--app NAME | --taskset FILE.json] [--policy NAME] \
                     [--bcet F] [--seed N] [--horizon-ms N] [--gantt US_PER_COL]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    args
}

fn workload(name: &str) -> TaskSet {
    match name {
        "avionics" => lpfps_workloads::avionics(),
        "ins" => lpfps_workloads::ins(),
        "flight_control" => lpfps_workloads::flight_control(),
        "cnc" => lpfps_workloads::cnc(),
        "table1" => lpfps_workloads::table1(),
        other => panic!("unknown app {other}; see --help"),
    }
}

fn policy(name: &str) -> PolicyKind {
    PolicyKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| panic!("unknown policy {name}; see --help"))
}

fn main() {
    let args = parse_args();
    let base = match &args.taskset_file {
        Some(path) => {
            let body =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            serde_json::from_str::<TaskSet>(&body)
                .unwrap_or_else(|e| panic!("{path} is not a valid task-set JSON: {e}"))
        }
        None => workload(&args.app),
    };
    let ts = base.with_bcet_fraction(args.bcet);
    let kind = policy(&args.policy);
    let cpu = CpuSpec::arm8();
    let horizon = args
        .horizon_ms
        .map(Dur::from_ms)
        .unwrap_or_else(|| default_horizon(&ts));
    let mut cfg = SimConfig::new(horizon).with_seed(args.seed);
    if args.gantt.is_some() {
        cfg = cfg.with_trace();
    }

    println!("{ts}");
    let report = run(&ts, &cpu, kind, &PaperGaussian, &cfg);
    print!("{}", report.render_detailed(&ts));
    if !report.all_deadlines_met() {
        println!("  DEADLINE MISSES: {:?}", report.misses);
    }
    if let (Some(cols), Some(trace)) = (args.gantt, report.trace.as_ref()) {
        println!();
        print!(
            "{}",
            Gantt::from_trace(trace, Time::ZERO + horizon).render(&ts, cols)
        );
    }
}
