//! Extension: multi-level sleep modes.
//!
//! The paper's §2.1 notes that real processors (PowerPC 603) offer
//! *several* power modes, each trading residual power against wake-up
//! latency, but evaluates LPFPS with the single 5 %/10-cycle sleep mode.
//! This ablation gives LPFPS the whole family — doze (30 %, 5 cycles),
//! nap (10 %, 50), sleep (5 %, 10), deep sleep (2 %, 10⁴ cycles ≈ 100 µs)
//! — and lets it pick the energy-minimizing mode per idle window (the
//! delay-queue head makes the window length *exact*, so the choice is
//! trivially safe).
//!
//! Usage: `cargo run --release --bin ablation_sleep_modes -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cell, Cli, ExecKind, SweepSpec};
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ModeCell {
    app: String,
    bcet_fraction: f64,
    single_mode: f64,
    multi_mode: f64,
    gain: f64,
}

const FRACTIONS: [f64; 3] = [0.2, 0.6, 1.0];

fn main() {
    let parsed = Cli::new(
        "ablation_sleep_modes",
        "single sleep mode vs the full PowerPC-style mode family under LPFPS",
    )
    .parse();

    // Pairs of cells differing only in the processor's sleep-mode family.
    let mut spec = SweepSpec::new("ablation_sleep_modes");
    for ts in applications() {
        for frac in FRACTIONS {
            for cpu in [CpuSpec::arm8(), CpuSpec::arm8_multimode()] {
                spec.push(
                    Cell::new(ts.clone(), cpu, PolicyKind::Lpfps)
                        .with_exec(ExecKind::PaperGaussian)
                        .with_bcet_fraction(frac)
                        .with_seed(1),
                );
            }
        }
    }
    let outcome = run_sweep(&spec, &parsed.run_options());

    println!("Sleep-mode family ablation: LPFPS average power\n");
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>8}",
        "application", "bcet%", "single-mode", "multi-mode", "gain"
    );
    let mut cells = Vec::new();
    let mut pairs = outcome.results.chunks(2);
    for ts in applications() {
        for frac in FRACTIONS {
            let pair = pairs.next().unwrap();
            let (single, multi) = (&pair[0], &pair[1]);
            assert_eq!(single.misses + multi.misses, 0, "{} missed", ts.name());
            let gain = 1.0 - multi.average_power / single.average_power;
            println!(
                "{:<16} {:>6.0} {:>12.4} {:>12.4} {:>7.2}%",
                ts.name(),
                frac * 100.0,
                single.average_power,
                multi.average_power,
                gain * 100.0
            );
            // The richer family can only help: the paper's mode is in it.
            assert!(
                multi.average_power <= single.average_power + 1e-9,
                "{}: more modes must not cost energy",
                ts.name()
            );
            cells.push(ModeCell {
                app: ts.name().into(),
                bcet_fraction: frac,
                single_mode: single.average_power,
                multi_mode: multi.average_power,
                gain,
            });
        }
    }

    println!();
    println!("the multi-mode gain concentrates where idle windows are long enough");
    println!("for deep sleep's 100us relock (avionics, flight control, INS) and");
    println!("vanishes where gaps are short; safety is unaffected because the");
    println!("window length is exact (delay-queue head), never predicted.");
    parsed.emit(&cells, &outcome.metrics);
}
