//! Extension: multi-level sleep modes.
//!
//! The paper's §2.1 notes that real processors (PowerPC 603) offer
//! *several* power modes, each trading residual power against wake-up
//! latency, but evaluates LPFPS with the single 5 %/10-cycle sleep mode.
//! This ablation gives LPFPS the whole family — doze (30 %, 5 cycles),
//! nap (10 %, 50), sleep (5 %, 10), deep sleep (2 %, 10⁴ cycles ≈ 100 µs)
//! — and lets it pick the energy-minimizing mode per idle window (the
//! delay-queue head makes the window length *exact*, so the choice is
//! trivially safe).
//!
//! Usage: `cargo run --release --bin ablation_sleep_modes [--json out.json]`

use lpfps::driver::{run, PolicyKind};
use lpfps_bench::maybe_write_json;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ModeCell {
    app: String,
    bcet_fraction: f64,
    single_mode: f64,
    multi_mode: f64,
    gain: f64,
}

fn main() {
    let single = CpuSpec::arm8();
    let multi = CpuSpec::arm8_multimode();
    let exec = PaperGaussian;
    let mut cells = Vec::new();

    println!("Sleep-mode family ablation: LPFPS average power\n");
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>8}",
        "application", "bcet%", "single-mode", "multi-mode", "gain"
    );
    for ts in applications() {
        let horizon = lpfps_bench::experiment_horizon(&ts);
        for frac in [0.2, 0.6, 1.0] {
            let scaled = ts.with_bcet_fraction(frac);
            let cfg = SimConfig::new(horizon).with_seed(1);
            let a = run(&scaled, &single, PolicyKind::Lpfps, &exec, &cfg);
            let b = run(&scaled, &multi, PolicyKind::Lpfps, &exec, &cfg);
            assert!(a.all_deadlines_met() && b.all_deadlines_met());
            let gain = 1.0 - b.average_power() / a.average_power();
            println!(
                "{:<16} {:>6.0} {:>12.4} {:>12.4} {:>7.2}%",
                ts.name(),
                frac * 100.0,
                a.average_power(),
                b.average_power(),
                gain * 100.0
            );
            // The richer family can only help: the paper's mode is in it.
            assert!(
                b.average_power() <= a.average_power() + 1e-9,
                "{}: more modes must not cost energy",
                ts.name()
            );
            cells.push(ModeCell {
                app: ts.name().into(),
                bcet_fraction: frac,
                single_mode: a.average_power(),
                multi_mode: b.average_power(),
                gain,
            });
        }
    }

    println!();
    println!("the multi-mode gain concentrates where idle windows are long enough");
    println!("for deep sleep's 100us relock (avionics, flight control, INS) and");
    println!("vanishes where gaps are short; safety is unaffected because the");
    println!("window length is exact (delay-queue head), never predicted.");
    maybe_write_json(&cells);
}
