//! Reproduces **Figure 7**: optimal ratio versus heuristic ratio over time
//! intervals.
//!
//! The paper computes `r_opt` (Eq. 2) with `rho = 0.07/us` while varying
//! `t_a - t_c` from 50 us to 3000 us, for each `r_heu` in 0.1 .. 0.9, and
//! observes that the heuristic closely matches the optimal except for
//! small windows and low ratios.
//!
//! Usage: `cargo run --release --bin fig7_ratio [--json out.json]`

use lpfps::speed::{r_heu, r_opt};
use lpfps_sweep::Cli;
use lpfps_tasks::time::Dur;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig7Point {
    window_us: u64,
    r_heu: f64,
    r_opt: f64,
}

const RHO: f64 = 0.07;
const WINDOWS_US: [u64; 13] = [
    50, 75, 100, 150, 200, 300, 500, 750, 1000, 1500, 2000, 2500, 3000,
];
const HEURISTIC_LEVELS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

fn main() {
    let parsed = Cli::new(
        "fig7_ratio",
        "Figure 7: optimal (Eq. 2) vs heuristic (Eq. 3) speed ratio",
    )
    .parse();
    println!("Figure 7: optimal ratio vs heuristic ratio (rho = {RHO}/us)");
    print!("{:>9}", "t_a-t_c");
    for r in HEURISTIC_LEVELS {
        print!("  r_heu={r:.1}");
    }
    println!();

    let mut points = Vec::new();
    for w in WINDOWS_US {
        let window = Dur::from_us(w);
        print!("{w:>7}us");
        for target in HEURISTIC_LEVELS {
            // Choose the remaining work that realizes this r_heu exactly.
            let remaining = Dur::from_ns((target * window.as_ns() as f64).round() as u64);
            let heu = r_heu(remaining, window);
            let opt = r_opt(remaining, window, RHO);
            debug_assert!((heu - target).abs() < 1e-6);
            print!("  {opt:>8.3}");
            points.push(Fig7Point {
                window_us: w,
                r_heu: heu,
                r_opt: opt,
            });
        }
        println!();
    }

    println!();
    println!(
        "r_heu >= r_opt everywhere (Theorem 1); the gap exceeds 0.05 only for \
         short windows / low ratios, where Eq. 2's ramp credit dominates."
    );
    let worst = points
        .iter()
        .map(|p| p.r_heu - p.r_opt)
        .fold(f64::MIN, f64::max);
    println!("largest heuristic overshoot: {worst:.3}");
    parsed.write_json(&points);
}
