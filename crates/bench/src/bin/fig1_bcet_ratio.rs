//! Reproduces **Figure 1**: the ratio between BCET and WCET for a number
//! of applications (data after Ernst & Ye, ICCAD 1997).
//!
//! Usage: `cargo run --release --bin fig1_bcet_ratio [--json out.json]`

use lpfps_sweep::Cli;
use lpfps_workloads::{bcet_ratios, BenchmarkClass};

fn main() {
    let parsed = Cli::new(
        "fig1_bcet_ratio",
        "Figure 1: BCET/WCET ratio per application (Ernst & Ye data)",
    )
    .parse();
    println!("Figure 1: BCET/WCET ratio per application");
    println!("{:<20} {:>8}  {:<16} bar", "application", "ratio", "class");
    for b in bcet_ratios() {
        let class = match b.class {
            BenchmarkClass::DataIndependent => "data-independent",
            BenchmarkClass::DataDependent => "data-dependent",
        };
        let bar = "#".repeat((b.ratio * 40.0).round() as usize);
        println!("{:<20} {:>8.2}  {:<16} {bar}", b.name, b.ratio, class);
    }
    let min = bcet_ratios()
        .iter()
        .map(|b| b.ratio)
        .fold(f64::MAX, f64::min);
    let max = bcet_ratios()
        .iter()
        .map(|b| b.ratio)
        .fold(f64::MIN, f64::max);
    println!();
    println!(
        "ratios span {min:.2}..{max:.2}: execution times frequently deviate far \
         below the WCET, the slack LPFPS reclaims"
    );
    parsed.write_json(&bcet_ratios().to_vec());
}
