//! Differential oracle run: the optimized kernel against the naive
//! reference simulator (`lpfps-oracle`), field for field.
//!
//! All four catalog workloads × {fps, fps-pd, lpfps, lpfps-wd, edf,
//! cc-edf}, fault-free and under the overrun stream (p = 0.1), with
//! tracing enabled so the comparison also covers the per-segment energy
//! stream — the EDF columns exercise the shared engine's deadline-ordered
//! dispatch against the oracle's naive transcription. Any divergence
//! prints the first differing field with both values and exits nonzero —
//! this is the CI gate proving the engine's optimizations (event-horizon
//! cache, power memo, workspace reuse, tuned queues) are behaviorally
//! invisible.
//!
//! A second matrix covers the steady-state fast-forward: the same
//! workload × policy grid under `AlwaysWcet` without tracing (the
//! detector's eligible regime), where each cell is checked two ways —
//! the fast-forwarding engine against the naive oracle (which always
//! simulates every event), and against its own forced-full run
//! byte-for-byte.
//!
//! Usage: `cargo run --release --bin diff_kernel -- [--horizon-scale F]`

use lpfps::driver::PolicyKind;
use lpfps_bench::golden::oracle_report;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_kernel::engine::SimWorkspace;
use lpfps_oracle::first_divergence;
use lpfps_sweep::{Cell, Cli, ExecKind};
use lpfps_workloads::{avionics, cnc, ins, table1};

fn main() {
    let parsed = Cli::new(
        "diff_kernel",
        "differential check: optimized kernel vs naive oracle simulator",
    )
    .parse();

    let policies = [
        PolicyKind::Fps,
        PolicyKind::FpsPd,
        PolicyKind::Lpfps,
        PolicyKind::LpfpsWatchdog,
        PolicyKind::Edf,
        PolicyKind::CcEdf,
    ];
    let overrun = FaultConfig::none()
        .with_seed(7)
        .with_overrun(OverrunFault::clamped(0.1, 0.3, 1.3));

    let mut cells = Vec::new();
    for faults in [FaultConfig::none(), overrun] {
        for ts in [table1(), avionics(), cnc(), ins()] {
            for policy in policies {
                cells.push(
                    Cell::new(ts.clone(), CpuSpec::arm8(), policy)
                        .with_exec(ExecKind::PaperGaussian)
                        .with_bcet_fraction(0.5)
                        .with_seed(42)
                        .with_faults(faults)
                        .with_trace(),
                );
            }
        }
    }
    if parsed.horizon_scale != 1.0 {
        // The uniform flag scales through the cell horizon so engine and
        // oracle stay on the exact same configuration.
        for cell in &mut cells {
            let h = cell.effective_horizon(parsed.horizon_scale);
            *cell = cell.clone().with_horizon(h);
        }
    }

    println!(
        "{:<42} {:>10} {:>10} {:>8}",
        "cell", "events", "trace", "verdict"
    );
    let mut divergences = 0;
    for cell in &cells {
        let engine = cell.run(1.0).expect("all diff cells are valid simulations");
        let oracle = oracle_report(cell).expect("all diff cells use PolicyKind policies");
        let verdict = match first_divergence(&engine, &oracle) {
            None => "ok".to_string(),
            Some(d) => {
                divergences += 1;
                eprintln!("{}: engine diverged from the oracle\n{d}\n", cell.label());
                "DIVERGED".to_string()
            }
        };
        println!(
            "{:<42} {:>10} {:>10} {:>8}",
            cell.label(),
            engine.counters.events,
            engine.trace.as_ref().map_or(0, |t| t.len()),
            verdict
        );
    }

    // Second matrix: the steady-state fast-forward's eligible regime
    // (AlwaysWcet, fault-free, no trace). Each cell is diffed two ways:
    // the fast-forwarding engine against the naive oracle, and against
    // its own forced-full run, byte for byte.
    let mut ff_cells = Vec::new();
    for ts in [table1(), avionics(), cnc(), ins()] {
        for policy in policies {
            ff_cells.push(
                Cell::new(ts.clone(), CpuSpec::arm8(), policy)
                    .with_exec(ExecKind::AlwaysWcet)
                    .with_seed(42),
            );
        }
    }
    if parsed.horizon_scale != 1.0 {
        for cell in &mut ff_cells {
            let h = cell.effective_horizon(parsed.horizon_scale);
            *cell = cell.clone().with_horizon(h);
        }
    }

    println!(
        "\nfast-forward matrix (AlwaysWcet, detector eligible):\n{:<42} {:>10} {:>8} {:>8}",
        "cell", "events", "cycles", "verdict"
    );
    let mut ws = SimWorkspace::new();
    for cell in &ff_cells {
        let fast = cell
            .run_opts(1.0, &mut ws, false)
            .expect("all diff cells are valid simulations");
        let cycles = ws.fast_forward_stats().cycles_detected;
        let full = cell
            .run_opts(1.0, &mut ws, true)
            .expect("all diff cells are valid simulations");
        let oracle = oracle_report(cell).expect("all diff cells use PolicyKind policies");
        let mut verdict = "ok".to_string();
        if let Some(d) = first_divergence(&fast, &oracle) {
            divergences += 1;
            eprintln!(
                "{}: fast-forward engine diverged from the oracle\n{d}\n",
                cell.label()
            );
            verdict = "DIVERGED".to_string();
        }
        let fast_json = serde_json::to_string(&fast).expect("report serializes");
        let full_json = serde_json::to_string(&full).expect("report serializes");
        if fast_json != full_json {
            divergences += 1;
            eprintln!(
                "{}: fast-forward report is not byte-identical to the forced-full report",
                cell.label()
            );
            verdict = "DIVERGED".to_string();
        }
        println!(
            "{:<42} {:>10} {:>8} {:>8}",
            cell.label(),
            fast.counters.events,
            cycles,
            verdict
        );
    }

    let total = cells.len() + ff_cells.len();
    if divergences > 0 {
        eprintln!("{divergences}/{total} cells diverged from the oracle");
        std::process::exit(1);
    }
    eprintln!("all {total} cells match the naive reference simulator field for field");
}
