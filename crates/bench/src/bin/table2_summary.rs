//! Reproduces **Table 2**: the task sets used in the experiments.
//!
//! Usage: `cargo run --release --bin table2_summary [--json out.json]`

use lpfps_sweep::Cli;
use lpfps_workloads::{applications, table2};

fn main() {
    let parsed = Cli::new("table2_summary", "Table 2: the experiment task sets").parse();
    println!("Table 2: task sets for experiments");
    println!(
        "{:<16} {:>7} {:>22} {:>12}",
        "application", "#tasks", "range of WCETs (us)", "utilization"
    );
    let apps = applications();
    for (row, ts) in table2().iter().zip(&apps) {
        println!(
            "{:<16} {:>7} {:>9} ~ {:>10} {:>12.3}",
            row.application,
            row.tasks,
            row.wcet_min.as_us(),
            row.wcet_max.as_us(),
            ts.utilization(),
        );
    }
    println!();
    for ts in &apps {
        println!("{ts}");
    }
    parsed.write_json(&table2());
}
