//! Reproduces **Figure 8**: simulation results for (a) Avionics, (b) INS,
//! (c) Flight control, and (d) CNC.
//!
//! For each application, the BCET is varied from 10 % to 100 % of the WCET
//! (execution times drawn from the paper's clamped Gaussian, Eqs. 4–5) and
//! the average normalized power of FPS and LPFPS is measured; the final
//! column gives LPFPS's power reduction relative to FPS at the same BCET.
//!
//! Usage: `cargo run --release --bin fig8_power -- [--json out.json]
//! [--seeds N] [--threads N] [--help]` (see `lpfps_sweep::Cli`).

use lpfps::driver::PolicyKind;
use lpfps_bench::{render_power_table, PowerCell, BCET_FRACTIONS};
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, CellResult, Cli, ExecKind, SweepSpec};
use lpfps_workloads::applications;

fn main() {
    let parsed = Cli::new(
        "fig8_power",
        "Figure 8: average power of FPS vs LPFPS over the BCET/WCET sweep",
    )
    .default_seeds(3)
    .parse();

    let spec = SweepSpec::grid(
        "fig8_power",
        &applications(),
        &CpuSpec::arm8(),
        &[PolicyKind::Fps, PolicyKind::Lpfps],
        &BCET_FRACTIONS,
        &parsed.seed_list(),
        ExecKind::PaperGaussian,
    );
    let outcome = run_sweep(&spec, &parsed.run_options());

    // Correctness first (previously asserted per seed inside power_cell):
    // these sets are schedulable, so no policy may miss at any seed.
    for r in &outcome.results {
        assert_eq!(
            r.misses, 0,
            "{}/{} missed at seed {}",
            r.app, r.policy, r.seed
        );
    }

    // The Figure-8 metric averages power across seeds per (app, policy,
    // fraction); the grid puts seeds innermost, so each group is one
    // contiguous chunk of the spec-ordered results.
    let cells: Vec<PowerCell> = outcome
        .results
        .chunks(parsed.seeds as usize)
        .map(|group| PowerCell::mean_over_seeds(&group.iter().collect::<Vec<&CellResult>>()))
        .collect();

    println!("Figure 8: average power (1.0 = busy at full speed), FPS vs LPFPS\n");
    for ts in applications() {
        println!(
            "{}",
            render_power_table(ts.name(), &["fps", "lpfps"], &cells)
        );
    }

    // The paper's qualitative claims, asserted:
    let power = |app: &str, pol: &str, frac: f64| {
        cells
            .iter()
            .find(|c| c.app == app && c.policy == pol && (c.bcet_fraction - frac).abs() < 1e-9)
            .unwrap()
            .average_power
    };
    for ts in applications() {
        let app = ts.name();
        // LPFPS wins at every BCET fraction, including BCET = WCET.
        for &f in BCET_FRACTIONS.iter() {
            assert!(
                power(app, "lpfps", f) < power(app, "fps", f),
                "{app}: LPFPS must beat FPS at frac {f}"
            );
        }
        // The gain grows as BCET shrinks.
        let red = |f: f64| 1.0 - power(app, "lpfps", f) / power(app, "fps", f);
        assert!(
            red(0.1) > red(1.0),
            "{app}: gain must grow with execution-time variation"
        );
    }
    // INS gains the most (the paper's headline observation).
    let best_red = |app: &str| 1.0 - power(app, "lpfps", 0.1) / power(app, "fps", 0.1);
    for other in ["avionics", "flight_control", "cnc"] {
        assert!(
            best_red("ins") >= best_red(other),
            "INS should show the largest reduction (ins {:.3} vs {other} {:.3})",
            best_red("ins"),
            best_red(other)
        );
    }
    println!(
        "largest LPFPS reduction: INS at BCET=10%: {:.1}%",
        best_red("ins") * 100.0
    );
    println!("(paper: up to 62% for INS; see EXPERIMENTS.md for the metric discussion)");
    println!("\nall Figure 8 qualitative claims verified.");

    parsed.emit(&cells, &outcome.metrics);
    parsed.maybe_export_trace(&spec, &outcome);
}
