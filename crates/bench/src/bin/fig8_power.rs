//! Reproduces **Figure 8**: simulation results for (a) Avionics, (b) INS,
//! (c) Flight control, and (d) CNC.
//!
//! For each application, the BCET is varied from 10 % to 100 % of the WCET
//! (execution times drawn from the paper's clamped Gaussian, Eqs. 4–5) and
//! the average normalized power of FPS and LPFPS is measured; the final
//! column gives LPFPS's power reduction relative to FPS at the same BCET.
//!
//! Usage: `cargo run --release --bin fig8_power [--json out.json] [--seeds N]`

use lpfps::driver::PolicyKind;
use lpfps_bench::{maybe_write_json, power_cell, render_power_table, PowerCell, BCET_FRACTIONS};
use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_workloads::applications;

fn seeds_from_args() -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--seeds" {
            return args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--seeds requires a number");
        }
    }
    3
}

fn main() {
    let cpu = CpuSpec::arm8();
    let exec = PaperGaussian;
    let n_seeds = seeds_from_args();
    let mut cells: Vec<PowerCell> = Vec::new();

    for ts in applications() {
        let horizon = lpfps_bench::experiment_horizon(&ts);
        eprintln!("{}: horizon {horizon}, {n_seeds} seeds", ts.name());
        for &frac in BCET_FRACTIONS.iter() {
            for policy in [PolicyKind::Fps, PolicyKind::Lpfps] {
                // Average the metric across seeds; correctness (zero
                // misses) is asserted per seed inside power_cell.
                let mut acc = 0.0;
                let mut misses = 0;
                for seed in 0..n_seeds {
                    let cell = power_cell(&ts, &cpu, policy, &exec, frac, horizon, seed);
                    acc += cell.average_power;
                    misses += cell.misses;
                }
                cells.push(PowerCell {
                    app: ts.name().to_string(),
                    policy: policy.name().to_string(),
                    bcet_fraction: frac,
                    average_power: acc / n_seeds as f64,
                    misses,
                });
            }
        }
    }

    println!("Figure 8: average power (1.0 = busy at full speed), FPS vs LPFPS\n");
    for ts in applications() {
        println!(
            "{}",
            render_power_table(ts.name(), &["fps", "lpfps"], &cells)
        );
    }

    // The paper's qualitative claims, asserted:
    let power = |app: &str, pol: &str, frac: f64| {
        cells
            .iter()
            .find(|c| c.app == app && c.policy == pol && (c.bcet_fraction - frac).abs() < 1e-9)
            .unwrap()
            .average_power
    };
    for ts in applications() {
        let app = ts.name();
        // LPFPS wins at every BCET fraction, including BCET = WCET.
        for &f in BCET_FRACTIONS.iter() {
            assert!(
                power(app, "lpfps", f) < power(app, "fps", f),
                "{app}: LPFPS must beat FPS at frac {f}"
            );
        }
        // The gain grows as BCET shrinks.
        let red = |f: f64| 1.0 - power(app, "lpfps", f) / power(app, "fps", f);
        assert!(
            red(0.1) > red(1.0),
            "{app}: gain must grow with execution-time variation"
        );
    }
    // INS gains the most (the paper's headline observation).
    let best_red = |app: &str| 1.0 - power(app, "lpfps", 0.1) / power(app, "fps", 0.1);
    for other in ["avionics", "flight_control", "cnc"] {
        assert!(
            best_red("ins") >= best_red(other),
            "INS should show the largest reduction (ins {:.3} vs {other} {:.3})",
            best_red("ins"),
            best_red(other)
        );
    }
    println!(
        "largest LPFPS reduction: INS at BCET=10%: {:.1}%",
        best_red("ins") * 100.0
    );
    println!("(paper: up to 62% for INS; see EXPERIMENTS.md for the metric discussion)");
    println!("\nall Figure 8 qualitative claims verified.");

    maybe_write_json(&cells);
}
