//! Ablation: context-switch overhead.
//!
//! The paper cites Katcher et al. for the rule that scheduler overhead
//! must stay small "so as not to violate the schedulability of the
//! system". The kernel models a per-dispatch context-load cost and the
//! RTA supports the matching analytical inflation; this ablation sweeps
//! the cost and reports (a) whether the analysis still admits the set and
//! (b) the measured power of FPS and LPFPS — overhead work is real work
//! and burns real energy.
//!
//! Usage: `cargo run --release --bin ablation_overhead -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cell, Cli, ExecKind, SweepSpec};
use lpfps_tasks::analysis::response_time::{response_times, RtaConfig};
use lpfps_tasks::time::Dur;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct OverheadCell {
    app: String,
    context_switch_us: u64,
    rta_admits: bool,
    fps_power: f64,
    lpfps_power: f64,
    misses: usize,
}

const COSTS_US: [u64; 4] = [0, 1, 5, 20];

fn main() {
    let parsed = Cli::new(
        "ablation_overhead",
        "context-switch cost vs RTA admission and measured power",
    )
    .parse();

    // Two cells (FPS, LPFPS) per (app, cost), cost-major within each app.
    let mut spec = SweepSpec::new("ablation_overhead");
    for ts in applications() {
        for cs in COSTS_US {
            for policy in [PolicyKind::Fps, PolicyKind::Lpfps] {
                spec.push(
                    Cell::new(ts.clone(), CpuSpec::arm8(), policy)
                        .with_exec(ExecKind::PaperGaussian)
                        .with_bcet_fraction(0.5)
                        .with_seed(1)
                        .with_context_switch(Dur::from_us(cs)),
                );
            }
        }
    }
    let outcome = run_sweep(&spec, &parsed.run_options());

    println!("Context-switch overhead ablation at BCET = 50% of WCET\n");
    println!(
        "{:<16} {:>6} {:>10} {:>10} {:>10} {:>8}",
        "application", "cs_us", "rta-ok", "fps", "lpfps", "misses"
    );
    let mut cells = Vec::new();
    let mut rows = outcome.results.chunks(2);
    for ts in applications() {
        for cs in COSTS_US {
            let pair = rows.next().unwrap();
            let (fps, lp) = (&pair[0], &pair[1]);
            let rta_cfg = RtaConfig::default().with_context_switch(Dur::from_us(cs));
            let rta_admits = response_times(&ts, &rta_cfg)
                .iter()
                .all(|o| o.is_schedulable());
            let misses = fps.misses + lp.misses;
            println!(
                "{:<16} {:>6} {:>10} {:>10.4} {:>10.4} {:>8}",
                ts.name(),
                cs,
                rta_admits,
                fps.average_power,
                lp.average_power,
                misses
            );
            // Soundness: if the overhead-aware analysis admits the set, the
            // simulation with that overhead must not miss.
            if rta_admits {
                assert_eq!(
                    misses,
                    0,
                    "{}: RTA admitted cs={cs}us but sim missed",
                    ts.name()
                );
            }
            cells.push(OverheadCell {
                app: ts.name().into(),
                context_switch_us: cs,
                rta_admits,
                fps_power: fps.average_power,
                lpfps_power: lp.average_power,
                misses,
            });
        }
        println!();
    }

    println!("where the overhead-aware RTA admits the set, zero misses were observed;");
    println!("power rises with overhead (context loads are real cycles), and CNC —");
    println!("whose WCETs are tens of microseconds — is the first to lose feasibility.");
    parsed.emit(&cells, &outcome.metrics);
}
