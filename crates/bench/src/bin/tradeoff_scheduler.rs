//! The paper's §5 future work, carried out: the heuristic/optimal
//! trade-off including scheduler cost.
//!
//! "The heuristic solution may fail to obtain the full potential of power
//! saving when the timing parameters are comparable to the delay
//! [of changing speed] ... In this case, we can use the optimal solution
//! at the cost of increased execution time and power consumption of the
//! scheduler; this approach needs a trade-off analysis, which is included
//! in our future work."
//!
//! Here the trade-off is measured: every `SlowDown` decision charges the
//! scheduler's ratio computation as real processor work (Eq. 3 is a
//! division; Eq. 2 adds a square root — call it several times the cost),
//! and the two methods are compared as that cost grows. The crossover —
//! where the optimal ratio's energy win no longer pays for its own
//! computation — lands quickly, vindicating the paper's choice of the
//! heuristic; CNC (windows comparable to the 10 µs ramp) holds out
//! longest, exactly as §5 anticipates.
//!
//! Usage: `cargo run --release --bin tradeoff_scheduler -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cell, Cli, ExecKind, SweepSpec};
use lpfps_tasks::time::Dur;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TradeoffCell {
    app: String,
    overhead_ns: u64,
    heuristic_power: f64,
    optimal_power: f64,
    optimal_wins: bool,
    misses: usize,
}

/// Scheduler cost per SlowDown for the heuristic (one division on a
/// 100 MHz core: O(10) cycles) and the sweep of optimal-ratio costs.
const HEU_COST_NS: u64 = 100;
const OPT_COSTS_NS: [u64; 4] = [100, 1_000, 5_000, 20_000];

fn main() {
    let parsed = Cli::new(
        "tradeoff_scheduler",
        "SS5 trade-off: heuristic vs optimal ratio with scheduler cost charged",
    )
    .parse();

    // Per app: one heuristic reference cell, then the optimal-cost ladder.
    let mut spec = SweepSpec::new("tradeoff_scheduler");
    for ts in applications() {
        spec.push(
            Cell::new(ts.clone(), CpuSpec::arm8(), PolicyKind::Lpfps)
                .with_exec(ExecKind::PaperGaussian)
                .with_bcet_fraction(0.4)
                .with_seed(1)
                .with_ratio_overhead(Dur::from_ns(HEU_COST_NS)),
        );
        for opt_ns in OPT_COSTS_NS {
            spec.push(
                Cell::new(ts.clone(), CpuSpec::arm8(), PolicyKind::LpfpsOptimal)
                    .with_exec(ExecKind::PaperGaussian)
                    .with_bcet_fraction(0.4)
                    .with_seed(1)
                    .with_ratio_overhead(Dur::from_ns(opt_ns)),
            );
        }
    }
    let outcome = run_sweep(&spec, &parsed.run_options());

    println!("SS5 trade-off: heuristic vs optimal ratio with scheduler cost charged\n");
    println!("(BCET = 40% of WCET; heuristic charged {HEU_COST_NS} ns per slow-down)\n");
    println!(
        "{:<16} {:>9} {:>11} {:>11} {:>9} {:>7}",
        "application", "opt_ns", "heuristic", "optimal", "opt wins", "misses"
    );
    let mut cells = Vec::new();
    let mut rows = outcome.results.chunks(1 + OPT_COSTS_NS.len());
    for ts in applications() {
        let row = rows.next().unwrap();
        let heu = &row[0];
        assert_eq!(heu.misses, 0, "{} heuristic", ts.name());
        for (opt, opt_ns) in row[1..].iter().zip(OPT_COSTS_NS) {
            let wins = opt.average_power < heu.average_power;
            println!(
                "{:<16} {:>9} {:>11.5} {:>11.5} {:>9} {:>7}",
                ts.name(),
                opt_ns,
                heu.average_power,
                opt.average_power,
                wins,
                opt.misses
            );
            cells.push(TradeoffCell {
                app: ts.name().into(),
                overhead_ns: opt_ns,
                heuristic_power: heu.average_power,
                optimal_power: opt.average_power,
                optimal_wins: wins,
                misses: opt.misses,
            });
        }
        println!();
    }

    // What the measurement establishes, asserted:
    for ts in applications() {
        let app_cells: Vec<&TradeoffCell> = cells.iter().filter(|c| c.app == ts.name()).collect();
        // (1) The stakes are tiny: heuristic and optimal stay within 1%.
        for c in &app_cells {
            let rel = (c.optimal_power - c.heuristic_power).abs() / c.heuristic_power;
            assert!(rel < 0.01, "{}: gap {rel} too large", ts.name());
        }
        // (2) Optimal-ratio power is monotone in its own scheduler cost.
        for pair in app_cells.windows(2) {
            assert!(
                pair[1].optimal_power + 1e-12 >= pair[0].optimal_power,
                "{}: costlier scheduler cannot burn less",
                ts.name()
            );
        }
        // (3) Nothing ever misses a deadline: the overhead is charged on
        // the dispatch path but both ratios keep their safety margins.
        assert!(app_cells.iter().all(|c| c.misses == 0));
    }
    println!("the stakes are within 1% of total power everywhere; microsecond-");
    println!("scale computation costs erase the optimal ratio's edge on the");
    println!("millisecond-scale workloads (ins, avionics, flight), while CNC —");
    println!("whose windows rival the 10us ramp, exactly SS5's scenario — keeps");
    println!("a sliver of benefit. The paper's choice of the heuristic stands.");
    parsed.emit(&cells, &outcome.metrics);
}
