//! The kernel performance trajectory: measures single-simulation latency
//! (four paper workloads × {fps, lpfps}) and end-to-end sweep throughput
//! (the utilization-sweep grid at 1 and N threads), and maintains the
//! committed `BENCH_kernel.json` that every future perf PR is judged
//! against.
//!
//! Usage:
//!   bench_kernel                      measure and print the table
//!   bench_kernel --quick              reduced grid/reps (CI smoke)
//!   bench_kernel --snapshot F.json    measure, write the raw snapshot
//!   bench_kernel --baseline F.json --trajectory BENCH_kernel.json
//!                                     measure "after", pair with the
//!                                     "before" snapshot, write the
//!                                     before/after trajectory
//!   bench_kernel --golden             print the golden-report
//!                                     fingerprint table (the constants
//!                                     pinned by tests/golden_determinism)
//!   bench_kernel --remeasure BENCH_kernel.json --label L [--note N]
//!                                     re-run the single-thread sweep
//!                                     under the current engine and
//!                                     append a labelled follow-up row
//!                                     to the committed trajectory
//!                                     (before/after pair untouched)
//!
//! All simulated work is deterministic (`counters.events` is a pure
//! function of the grid), so events/sec is comparable across engine
//! versions: the numerator never changes, only the wall clock does.

use lpfps::driver::{run, PolicyKind};
use lpfps_bench::fingerprint::report_fingerprint;
use lpfps_bench::golden::golden_runs;
use lpfps_bench::long_horizon::{run_long_horizon, LongHorizonResults};
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_sweep::{run_sweep, ExecKind, RunOptions, SweepSpec};
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::taskset::TaskSet;
use lpfps_workloads::{avionics, cnc, ins, table1};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Latency of one full simulation of a (workload, policy) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SingleSim {
    app: String,
    policy: String,
    /// Kernel decision points per simulation (deterministic).
    events: u64,
    /// Best-of-rounds mean wall time per simulation, nanoseconds.
    ns_per_sim: u64,
    events_per_sec: f64,
}

/// One timed execution of the utilization-sweep grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepRun {
    name: String,
    threads: u64,
    cells: u64,
    /// Total kernel decision points across the grid (deterministic).
    total_events: u64,
    /// Best-of-rounds wall time, nanoseconds.
    wall_ns: u64,
    cells_per_sec: f64,
    events_per_sec: f64,
}

/// Everything one invocation measures.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Snapshot {
    singles: Vec<SingleSim>,
    sweeps: Vec<SweepRun>,
}

/// A labelled follow-up measurement appended by `--remeasure` — e.g. the
/// probes-off sweep taken after the observability seam landed — recorded
/// next to (never instead of) the committed before/after pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Remeasurement {
    label: String,
    note: String,
    /// The single-thread utilization sweep under the current engine.
    sweep: SweepRun,
    /// events/sec relative to the committed `after` single-thread sweep
    /// (1.0 = identical throughput; the run-to-run noise band on this
    /// host is a few percent).
    vs_after_sweep_ratio: f64,
}

/// The committed before/after trajectory (schema
/// `lpfps/bench-kernel/v2`).
///
/// v2 changes over v1: `parallel_sweep_speedup` is nullable — `null`
/// (with `parallel_sweep_note` explaining why) on single-core hosts where
/// no distinct all-threads sweep exists, instead of the misleading `1.0`
/// v1 recorded there — and the `long_horizon` section records the
/// steady-state fast-forward speedups with their equivalence-checked
/// event counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Trajectory {
    schema: String,
    generated_by: String,
    host_threads: u64,
    /// Speedup of the single-thread utilization sweep (after/before
    /// events per second) — the acceptance headline.
    single_thread_sweep_speedup: f64,
    /// Speedup of the same sweep at all host threads; `null` when the
    /// host has one core (see `parallel_sweep_note`).
    parallel_sweep_speedup: Option<f64>,
    /// Present exactly when `parallel_sweep_speedup` is `null`.
    parallel_sweep_note: Option<String>,
    /// Geometric-mean single-simulation speedup over the workload matrix.
    single_sim_speedup_geomean: f64,
    /// Fast-forward vs forced-full wall times at the committed scale
    /// (byte-identical reports asserted during measurement).
    long_horizon: LongHorizonResults,
    /// Follow-up rows appended by `--remeasure`; `None` in files written
    /// before the flag existed (absent fields deserialize as `Option`).
    remeasurements: Option<Vec<Remeasurement>>,
    before: Snapshot,
    after: Snapshot,
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Times `rounds` batches of `sims` runs and returns the best mean
/// nanoseconds per run plus the (deterministic) event count of one run.
fn time_single(ts: &TaskSet, policy: PolicyKind, rounds: usize, budget_ns: u64) -> (u64, u64) {
    let cpu = CpuSpec::arm8();
    let ts = ts.with_bcet_fraction(0.5);
    let cfg = SimConfig::new(lpfps::driver::default_horizon(&ts)).with_seed(7);
    let probe = run(&ts, &cpu, policy, &PaperGaussian, &cfg).expect("benchmark cell is valid");
    let events = probe.counters.events;
    let t0 = Instant::now();
    let _ = std::hint::black_box(run(&ts, &cpu, policy, &PaperGaussian, &cfg));
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let sims = (budget_ns / once).clamp(1, 10_000) as usize;
    let mut best = u64::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..sims {
            let _ = std::hint::black_box(run(&ts, &cpu, policy, &PaperGaussian, &cfg));
        }
        best = best.min(start.elapsed().as_nanos() as u64 / sims as u64);
    }
    (best, events)
}

/// The utilization-sweep grid the throughput numbers run on — the same
/// UUniFast construction as the `sweep_utilization` experiment.
fn sweep_grid(quick: bool) -> SweepSpec {
    let utilizations: &[f64] = if quick {
        &[0.3, 0.6]
    } else {
        &[0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    SweepSpec::utilization(
        "bench_utilization",
        &CpuSpec::arm8(),
        utilizations,
        if quick { 2 } else { 8 },
        8,
        &[PolicyKind::Fps, PolicyKind::Lpfps],
        0.5,
        ExecKind::PaperGaussian,
    )
}

fn time_sweep(spec: &SweepSpec, threads: usize, rounds: usize) -> SweepRun {
    let opts = RunOptions::serial().with_threads(threads);
    let mut best: Option<SweepRun> = None;
    for _ in 0..rounds {
        let outcome = run_sweep(spec, &opts);
        let m = &outcome.metrics;
        let run = SweepRun {
            name: spec.name.clone(),
            threads: m.threads as u64,
            cells: m.cells as u64,
            total_events: m.total_events,
            wall_ns: m.wall_ns,
            cells_per_sec: m.cells_per_sec(),
            events_per_sec: m.events_per_sec(),
        };
        if best.as_ref().is_none_or(|b| run.wall_ns < b.wall_ns) {
            best = Some(run);
        }
    }
    best.expect("at least one round")
}

fn measure(quick: bool) -> Snapshot {
    let rounds = if quick { 1 } else { 3 };
    let budget_ns = if quick { 20_000_000 } else { 300_000_000 };
    let mut singles = Vec::new();
    for (name, ts) in [
        ("table1", table1()),
        ("avionics", avionics()),
        ("cnc", cnc()),
        ("ins", ins()),
    ] {
        for policy in [PolicyKind::Fps, PolicyKind::Lpfps] {
            let (ns_per_sim, events) = time_single(&ts, policy, rounds, budget_ns);
            eprintln!(
                "  single {name}/{policy}: {:.3} µs/sim, {events} events",
                ns_per_sim as f64 / 1e3
            );
            singles.push(SingleSim {
                app: name.to_string(),
                policy: policy.name().to_string(),
                events,
                ns_per_sim,
                events_per_sec: events as f64 * 1e9 / ns_per_sim.max(1) as f64,
            });
        }
    }
    let spec = sweep_grid(quick);
    let mut sweeps = Vec::new();
    for threads in [1, host_threads()] {
        let run = time_sweep(&spec, threads, rounds);
        eprintln!(
            "  sweep {} @ {} thread(s): {:.1} cells/s, {:.2}M events/s",
            run.name,
            run.threads,
            run.cells_per_sec,
            run.events_per_sec / 1e6
        );
        sweeps.push(run);
        if host_threads() == 1 {
            break;
        }
    }
    Snapshot { singles, sweeps }
}

fn render(snap: &Snapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>12} {:>14} {:>12}",
        "app", "policy", "events/sim", "ns/sim", "Mevents/s"
    );
    for s in &snap.singles {
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>12} {:>14} {:>12.2}",
            s.app,
            s.policy,
            s.events,
            s.ns_per_sim,
            s.events_per_sec / 1e6
        );
    }
    for s in &snap.sweeps {
        let _ = writeln!(
            out,
            "sweep {} @ {:>2} thread(s): {:>6} cells in {:>10} ns — {:.1} cells/s, {:.2}M events/s",
            s.name,
            s.threads,
            s.cells,
            s.wall_ns,
            s.cells_per_sec,
            s.events_per_sec / 1e6
        );
    }
    out
}

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for r in ratios {
        log_sum += r.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

fn sweep_speedup(before: &Snapshot, after: &Snapshot, threads_one: bool) -> f64 {
    let pick = |s: &Snapshot| {
        s.sweeps
            .iter()
            .find(|r| (r.threads == 1) == threads_one)
            .map(|r| r.events_per_sec)
    };
    match (pick(before), pick(after)) {
        (Some(b), Some(a)) if b > 0.0 => a / b,
        _ => 1.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        })
    };
    for (i, a) in args.iter().enumerate() {
        let known_flag = matches!(
            a.as_str(),
            "--quick"
                | "--golden"
                | "--snapshot"
                | "--baseline"
                | "--trajectory"
                | "--remeasure"
                | "--label"
                | "--note"
        );
        let is_value = i > 0
            && matches!(
                args[i - 1].as_str(),
                "--snapshot" | "--baseline" | "--trajectory" | "--remeasure" | "--label" | "--note"
            );
        if !known_flag && !is_value {
            eprintln!("error: unknown argument `{a}`");
            eprintln!(
                "usage: bench_kernel [--quick] [--golden] [--snapshot F] \
                 [--baseline F --trajectory F] [--remeasure F --label L [--note N]]"
            );
            std::process::exit(2);
        }
    }

    if has("--golden") {
        println!("golden report fingerprints (pin these in tests/golden_determinism.rs):");
        for (label, report) in golden_runs() {
            println!("    (\"{label}\", 0x{:016x}),", report_fingerprint(&report));
        }
        return;
    }

    let quick = has("--quick");

    if let Some(path) = value("--remeasure").cloned() {
        let label = value("--label").cloned().unwrap_or_else(|| {
            eprintln!("error: --remeasure needs --label L");
            std::process::exit(2);
        });
        let note = value("--note").cloned().unwrap_or_default();
        let raw = std::fs::read_to_string(&path).expect("trajectory readable");
        let mut trajectory: Trajectory = serde_json::from_str(&raw).expect("trajectory parses");
        let after = trajectory
            .after
            .sweeps
            .iter()
            .find(|s| s.threads == 1)
            .expect("committed trajectory has a single-thread sweep")
            .clone();
        eprintln!(
            "re-measuring the single-thread utilization sweep ({} mode)...",
            if quick { "quick" } else { "full" }
        );
        let sweep = time_sweep(&sweep_grid(quick), 1, if quick { 1 } else { 3 });
        let vs_after_sweep_ratio = sweep.events_per_sec / after.events_per_sec;
        println!(
            "remeasure `{label}`: {:.2}M events/s vs committed {:.2}M events/s — ratio {:.3}",
            sweep.events_per_sec / 1e6,
            after.events_per_sec / 1e6,
            vs_after_sweep_ratio
        );
        let rows = trajectory.remeasurements.get_or_insert_with(Vec::new);
        rows.retain(|r| r.label != label);
        rows.push(Remeasurement {
            label,
            note,
            sweep,
            vs_after_sweep_ratio,
        });
        let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
        std::fs::write(&path, json + "\n").expect("trajectory written");
        eprintln!("trajectory updated at {path}");
        return;
    }

    eprintln!(
        "measuring kernel performance ({} mode, {} host threads)...",
        if quick { "quick" } else { "full" },
        host_threads()
    );
    let snapshot = measure(quick);
    print!("{}", render(&snapshot));

    if let Some(path) = value("--snapshot") {
        let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
        std::fs::write(path, json + "\n").expect("snapshot written");
        eprintln!("snapshot written to {path}");
    }

    if let Some(baseline_path) = value("--baseline") {
        let out = value("--trajectory").cloned().unwrap_or_else(|| {
            eprintln!("error: --baseline needs --trajectory OUT");
            std::process::exit(2);
        });
        let raw = std::fs::read_to_string(baseline_path).expect("baseline snapshot readable");
        let before: Snapshot = serde_json::from_str(&raw).expect("baseline snapshot parses");
        let (parallel_sweep_speedup, parallel_sweep_note) = if host_threads() > 1 {
            (Some(sweep_speedup(&before, &snapshot, false)), None)
        } else {
            (
                None,
                Some(
                    "single-core host: the all-threads sweep is the single-thread sweep, \
                     so no distinct parallel speedup exists"
                        .to_string(),
                ),
            )
        };
        eprintln!("measuring long-horizon fast-forward speedups (scale 50)...");
        let long_horizon = run_long_horizon(50.0, if quick { 1 } else { 3 });
        let trajectory = Trajectory {
            schema: "lpfps/bench-kernel/v2".to_string(),
            generated_by: "bench_kernel --baseline".to_string(),
            host_threads: host_threads() as u64,
            single_thread_sweep_speedup: sweep_speedup(&before, &snapshot, true),
            parallel_sweep_speedup,
            parallel_sweep_note,
            single_sim_speedup_geomean: geomean(before.singles.iter().zip(&snapshot.singles).map(
                |(b, a)| {
                    debug_assert_eq!((&b.app, &b.policy), (&a.app, &a.policy));
                    b.ns_per_sim as f64 / a.ns_per_sim.max(1) as f64
                },
            )),
            long_horizon,
            remeasurements: None,
            before,
            after: snapshot.clone(),
        };
        println!(
            "\nsingle-thread sweep speedup: {:.2}x   parallel: {}   single-sim geomean: {:.2}x",
            trajectory.single_thread_sweep_speedup,
            trajectory
                .parallel_sweep_speedup
                .map_or("n/a (single core)".to_string(), |s| format!("{s:.2}x")),
            trajectory.single_sim_speedup_geomean
        );
        for row in &trajectory.long_horizon.rows {
            println!(
                "long-horizon {}/{} @ scale {}: {:.1}x",
                row.app, row.policy, row.horizon_scale, row.speedup
            );
        }
        let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
        std::fs::write(&out, json + "\n").expect("trajectory written");
        eprintln!("trajectory written to {out}");
    }
}
