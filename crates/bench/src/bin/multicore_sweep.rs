//! Multicore experiment: partitioned LPFPS fleets on M identical cores.
//!
//! The paper's slow-down logic is strictly per-processor: Theorem 1
//! reasons about one ready queue and one speed knob. The natural
//! multicore extension is *partitioned* scheduling — allocate tasks to
//! cores once, then run the proven uniprocessor kernel on each core
//! independently. This sweep grids core count × partitioning heuristic ×
//! policy over replicated workloads and reports *fleet* energy: the sum
//! of the per-core normalized energies.
//!
//! Two claims are checked on the full grid:
//!
//! * LPFPS (with or without the watchdog) beats plain FPS on fleet
//!   energy at **every** (workload, cores, partitioner) point — the
//!   per-core savings survive aggregation regardless of how the load is
//!   spread;
//! * every core the RTA-gated allocator (`rta-ff`) admits is miss-free
//!   under all three policies, while the capacity heuristics (which only
//!   check `U ≤ 1`) carry no such guarantee — packing and schedulability
//!   are different contracts.
//!
//! One-core points are also asserted identical across partitioners:
//! with a single core there is nothing to decide, so the allocator must
//! not leak into the results.
//!
//! Usage: `cargo run --release --bin multicore_sweep --
//! [--quick] [--cores M] [--partitioner NAME] [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_multi::{CoreBreakdown, MultiCell, MultiEngine, Partitioner, PartitionerKind};
use lpfps_sweep::{Cell, Cli, ExecKind};
use lpfps_tasks::taskset::TaskSet;
use lpfps_workloads::{ins, table1, WorkloadBuilder};
use serde::Serialize;

/// Core counts gridded (1 is the uniprocessor control column).
const CORE_GRID: [usize; 4] = [1, 2, 4, 8];

/// Seed of the replica stagger streams (see `WorkloadBuilder`), shared
/// with the multicore equivalence gates in `tests/multicore_golden.rs`.
const REPLICA_SEED: u64 = 11;

/// Execution-time stream seed of the base cell; per-core streams are
/// re-keyed from it via `core_seed`.
const CELL_SEED: u64 = 42;

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Fps,
    PolicyKind::Lpfps,
    PolicyKind::LpfpsWatchdog,
];

/// One grid point: a (workload, cores, partitioner, policy) cell with
/// its fleet aggregates and per-core breakdown.
#[derive(Debug, Serialize)]
struct MultiPoint {
    workload: String,
    cores: usize,
    partitioner: String,
    policy: String,
    /// Cores that actually received tasks.
    cores_used: usize,
    /// Heaviest per-core WCET utilization the allocator produced.
    max_core_utilization: f64,
    fleet_average_power: f64,
    fleet_energy: f64,
    fleet_misses: usize,
    per_core: Vec<CoreBreakdown>,
}

/// Everything `--json` persists. Full per-core `SimReport`s are omitted
/// on purpose — the breakdown rows carry the fleet story, and the
/// bit-identity of the underlying reports is pinned by the test gates.
#[derive(Debug, Serialize)]
struct MultiSweepJson {
    points: Vec<MultiPoint>,
}

/// Fleet workloads: the paper's harmonic Table 1 set and the non-harmonic
/// INS avionics set, replicated once per core with staggered seeds.
fn workloads(quick: bool) -> Vec<TaskSet> {
    if quick {
        vec![table1()]
    } else {
        vec![table1(), ins()]
    }
}

fn main() {
    let parsed = Cli::new(
        "multicore_sweep",
        "partitioned fleets: cores × partitioner × policy, aggregate power accounting",
    )
    .switch(
        "--quick",
        "shrink the grid for smoke runs (table1 only, cores {1,2}, ffd + rta-ff)",
    )
    .parse();
    let quick = parsed.has("--quick");

    let core_grid: Vec<usize> = match parsed.cores {
        Some(m) => vec![m],
        None if quick => vec![1, 2],
        None => CORE_GRID.to_vec(),
    };
    let partitioners: Vec<PartitionerKind> = match parsed.partitioner.as_deref() {
        Some(name) => vec![PartitionerKind::parse(name)
            .expect("the CLI already validated --partitioner against PARTITIONER_NAMES")],
        None if quick => vec![PartitionerKind::Ffd, PartitionerKind::RtaFf],
        None => PartitionerKind::ALL.to_vec(),
    };

    let mut engine = match parsed.threads {
        Some(n) => MultiEngine::new().with_threads(n),
        None => MultiEngine::new(),
    };

    if !parsed.quiet {
        println!("Multicore sweep: partitioned fleets, normalized fleet energy");
        println!();
        println!(
            "{:>8} {:>5} {:>7} {:>10} | {:>4} {:>6} {:>8} {:>10} {:>6} {:>8}",
            "workload",
            "cores",
            "part",
            "policy",
            "used",
            "maxU",
            "power",
            "energy",
            "miss",
            "vs fps"
        );
    }

    let mut points = Vec::new();
    for base in workloads(quick) {
        for &cores in &core_grid {
            for &kind in &partitioners {
                let mut fps_energy = None;
                for policy in POLICIES {
                    let fleet = WorkloadBuilder::new(base.clone())
                        .with_seed(REPLICA_SEED)
                        .replicate(cores);
                    let cell = Cell::new(fleet, CpuSpec::arm8(), policy)
                        .with_exec(ExecKind::PaperGaussian)
                        .with_bcet_fraction(0.5)
                        .with_seed(CELL_SEED);
                    let mc = MultiCell::new(cell, cores, kind);
                    let label = mc.label();
                    let report = engine
                        .run(&mc, parsed.horizon_scale)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));

                    let cores_used = report.per_core.iter().filter(|c| c.tasks > 0).count();
                    let max_core_utilization = report
                        .per_core
                        .iter()
                        .map(|c| c.utilization)
                        .fold(0.0, f64::max);
                    if policy == PolicyKind::Fps {
                        fps_energy = Some(report.fleet_energy);
                    }
                    if !parsed.quiet {
                        let vs_fps = match fps_energy {
                            Some(f) if f > 0.0 => {
                                format!("{:>7.1}%", 100.0 * (1.0 - report.fleet_energy / f))
                            }
                            _ => String::from("       -"),
                        };
                        println!(
                            "{:>8} {cores:>5} {:>7} {:>10} | {cores_used:>4} {max_core_utilization:>6.3} {:>8.4} {:>10.4} {:>6} {vs_fps}",
                            base.name(),
                            kind.name(),
                            policy.name(),
                            report.fleet_average_power,
                            report.fleet_energy,
                            report.fleet_misses,
                        );
                    }
                    points.push(MultiPoint {
                        workload: base.name().to_string(),
                        cores,
                        partitioner: kind.name().to_string(),
                        policy: policy.name().to_string(),
                        cores_used,
                        max_core_utilization,
                        fleet_average_power: report.fleet_average_power,
                        fleet_energy: report.fleet_energy,
                        fleet_misses: report.fleet_misses,
                        per_core: report.per_core,
                    });
                }
            }
        }
    }

    // The qualitative claims need the full horizon; scaled-down smoke runs
    // still exercise every grid point but skip them.
    if parsed.horizon_scale >= 1.0 {
        let group = |p: &MultiPoint| (p.workload.clone(), p.cores, p.partitioner.clone());
        for p in &points {
            if p.policy == "fps" {
                let fps = p.fleet_energy;
                for q in points.iter().filter(|q| group(q) == group(p)) {
                    if q.policy != "fps" {
                        assert!(
                            q.fleet_energy < fps,
                            "{}/{}c/{}: {} fleet energy {:.4} must beat fps {:.4}",
                            q.workload,
                            q.cores,
                            q.partitioner,
                            q.policy,
                            q.fleet_energy,
                            fps
                        );
                    }
                }
            }
            // RTA admission is a schedulability proof; capacity packing is
            // not, so only rta-ff points carry the miss-free guarantee.
            if p.partitioner == "rta-ff" {
                assert_eq!(
                    p.fleet_misses, 0,
                    "{}/{}c/rta-ff/{}: RTA-admitted cores must be miss-free",
                    p.workload, p.cores, p.policy
                );
            }
        }
        // One core leaves the allocator nothing to decide: the control
        // column must be partitioner-independent, bit for bit.
        for p in points.iter().filter(|p| p.cores == 1) {
            for q in points
                .iter()
                .filter(|q| q.cores == 1 && q.workload == p.workload && q.policy == p.policy)
            {
                assert!(
                    q.fleet_energy == p.fleet_energy
                        && q.fleet_average_power == p.fleet_average_power
                        && q.fleet_misses == p.fleet_misses,
                    "{}/1c/{}: {} and {} disagree on the uniprocessor column",
                    p.workload,
                    p.policy,
                    p.partitioner,
                    q.partitioner
                );
            }
        }
        if !parsed.quiet {
            println!();
            println!("checked: lpfps & lpfps-wd < fps at every point; rta-ff miss-free; 1-core partitioner-independent");
        }
    }

    parsed.write_json(&MultiSweepJson { points });
}
