//! Reproduces **Figure 2** (and the queue snapshots of **Figures 3 and
//! 5**): schedules of the Table 1 task set.
//!
//! * Figure 2(a): every task at its WCET under plain FPS.
//! * Figure 2(b): the paper's narrated scenario — the first three
//!   instances of tau2 and the first instance of tau3 complete early —
//!   under LPFPS, showing the slow-down at t = 50 and t = 160 and the
//!   power-down entries at t = 90 and t = 180.
//!
//! Usage: `cargo run --release --bin fig2_schedule`

use lpfps::LpfpsPolicy;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::gantt::Gantt;
use lpfps_kernel::policy::AlwaysFullSpeed;
use lpfps_kernel::trace::{Trace, TraceEvent};
use lpfps_tasks::exec::{AlwaysWcet, ExecModel};
use lpfps_tasks::task::{Task, TaskId};
use lpfps_tasks::time::{Dur, Time};
use lpfps_workloads::table1;

/// Scripted execution times reproducing the early completions of
/// Figure 2(b); jobs beyond the script run at their WCET.
#[derive(Debug)]
struct Figure2b;

impl ExecModel for Figure2b {
    fn sample(&self, task: &Task, task_id: TaskId, job_index: u64, _seed: u64) -> Dur {
        let us = match (task_id.0, job_index) {
            (1, 0) => Some(15), // tau2 first instance
            (1, 1) => Some(10), // tau2 second instance: 80..90
            (1, 2) => Some(10), // tau2 third instance: half its WCET
            (2, 0) => Some(25), // tau3 first instance
            _ => None,
        };
        us.map(Dur::from_us).unwrap_or_else(|| task.wcet())
    }

    fn name(&self) -> &'static str {
        "figure2b-script"
    }
}

fn queue_snapshot(
    trace: &Trace,
    n_tasks: usize,
    at: Time,
) -> (Vec<usize>, Vec<usize>, Option<usize>) {
    // Replay the trace up to *and including* instant `at` to reconstruct
    // queue membership: (run queue, delay queue, active task).
    let mut delay: Vec<usize> = (0..n_tasks).collect();
    let mut run: Vec<usize> = Vec::new();
    let mut active: Option<usize> = None;
    for (t, e) in trace.iter() {
        if t > at {
            break;
        }
        match e {
            TraceEvent::Release { task, .. } => {
                delay.retain(|&x| x != task.0);
                run.push(task.0);
            }
            TraceEvent::Dispatch { task, .. } => {
                run.retain(|&x| x != task.0);
                active = Some(task.0);
            }
            TraceEvent::Preempt { task, .. } => {
                if active == Some(task.0) {
                    active = None;
                }
                run.push(task.0);
            }
            TraceEvent::Complete { task, .. } => {
                if active == Some(task.0) {
                    active = None;
                }
                delay.push(task.0);
            }
            _ => {}
        }
    }
    run.sort_unstable();
    delay.sort_unstable();
    (run, delay, active)
}

fn print_snapshot(label: &str, trace: &Trace, at: Time) {
    let (run, delay, active) = queue_snapshot(trace, 3, at);
    let names = ["tau1", "tau2", "tau3"];
    let fmt = |v: &[usize]| {
        if v.is_empty() {
            "(empty)".to_string()
        } else {
            v.iter().map(|&i| names[i]).collect::<Vec<_>>().join(", ")
        }
    };
    println!(
        "{label}: active = {}, run queue = [{}], delay queue = [{}]",
        active.map(|i| names[i]).unwrap_or("none"),
        fmt(&run),
        fmt(&delay)
    );
}

fn main() {
    // No outputs beyond stdout, but the shared CLI still rejects typos.
    let _ = lpfps_sweep::Cli::new(
        "fig2_schedule",
        "Figures 2/3/5: Table 1 schedules and queue snapshots",
    )
    .parse();
    let ts = table1();
    let cpu = CpuSpec::arm8();
    let horizon = Dur::from_us(400);
    let cfg = SimConfig::new(horizon).with_trace();

    println!("=== Figure 2(a): Table 1 at WCET under FPS ===\n");
    let fps = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg).expect("valid cell");
    let trace_a = fps.trace.as_ref().expect("traced");
    let gantt = Gantt::from_trace(trace_a, Time::from_us(400));
    print!("{}", gantt.render(&ts, 5));
    println!("\nevents:");
    print!("{}", trace_a.render());
    assert!(fps.all_deadlines_met());

    println!("\n--- Figure 3: queue snapshots under FPS ---");
    print_snapshot("t =   0 (Fig. 3a)", trace_a, Time::from_us(0));
    print_snapshot("t =  50 (Fig. 3b)", trace_a, Time::from_us(50));

    println!("\n=== Figure 2(b): early completions under LPFPS ===\n");
    let mut lpfps = LpfpsPolicy::new();
    let lp = simulate(&ts, &cpu, &mut lpfps, &Figure2b, &cfg).expect("valid cell");
    let trace_b = lp.trace.as_ref().expect("traced");
    let gantt = Gantt::from_trace(trace_b, Time::from_us(400));
    print!("{}", gantt.render(&ts, 5));
    println!("\nevents:");
    print!("{}", trace_b.render());
    assert!(lp.all_deadlines_met(), "misses: {:?}", lp.misses);

    println!("\n--- Figure 5: queue snapshots under LPFPS ---");
    print_snapshot("t = 160 (Fig. 5a)", trace_b, Time::from_us(160));
    print_snapshot("t = 180 (Fig. 5b)", trace_b, Time::from_us(180));

    // The narrated events of the paper, asserted so this binary doubles as
    // an executable regression check of the example.
    let slowdown_at_160 = trace_b
        .window(Time::from_us(160), Time::from_us(170))
        .any(|(_, e)| matches!(e, TraceEvent::RampStart { .. }));
    assert!(slowdown_at_160, "expected the t=160 slow-down of Example 2");
    let powerdown_at_180 = trace_b
        .window(Time::from_us(180), Time::from_us(200))
        .any(|(_, e)| matches!(e, TraceEvent::EnterPowerDown { .. }));
    assert!(
        powerdown_at_180,
        "expected the t=180 power-down of Example 2"
    );
    let powerdown_at_90 = trace_b
        .window(Time::from_us(90), Time::from_us(100))
        .any(|(_, e)| matches!(e, TraceEvent::EnterPowerDown { .. }));
    assert!(powerdown_at_90, "expected the t=90 power-down of Fig. 2(b)");

    println!(
        "\nFPS   average power over 400us: {:.4}",
        fps.average_power()
    );
    println!("LPFPS average power over 400us: {:.4}", lp.average_power());
    println!(
        "reduction: {:.1}%",
        (1.0 - lp.average_power() / fps.average_power()) * 100.0
    );
    println!("\nall Figure 2 narrated events verified.");
}
