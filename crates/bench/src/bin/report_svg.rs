//! Renders the paper's Figure 8 panels as standalone SVG charts from
//! freshly measured data.
//!
//! Usage: `cargo run --release --bin report_svg -- [--out results]`
//!
//! Writes `fig8_<app>.svg` (average power vs BCET fraction, FPS vs LPFPS).

use lpfps::driver::PolicyKind;
use lpfps_bench::chart::{render_line_chart, ChartSpec, Series};
use lpfps_bench::BCET_FRACTIONS;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cli, ExecKind, SweepSpec};
use lpfps_workloads::applications;

fn main() {
    let parsed = Cli::new("report_svg", "render Figure 8 panels as SVG charts")
        .opt_default("--out", "DIR", "output directory", "results")
        .parse();
    let dir = parsed.value("--out").unwrap().to_string();
    std::fs::create_dir_all(&dir).expect("create output directory");

    let spec = SweepSpec::grid(
        "report_svg",
        &applications(),
        &CpuSpec::arm8(),
        &[PolicyKind::Fps, PolicyKind::Lpfps],
        &BCET_FRACTIONS,
        &[1],
        ExecKind::PaperGaussian,
    );
    let outcome = run_sweep(&spec, &parsed.run_options());
    for r in &outcome.results {
        assert_eq!(r.misses, 0, "{}/{} missed deadlines", r.app, r.policy);
    }

    for ts in applications() {
        let points = |policy: &str| -> Vec<(f64, f64)> {
            outcome
                .results
                .iter()
                .filter(|r| r.app == ts.name() && r.policy == policy)
                .map(|r| (r.bcet_fraction, r.average_power))
                .collect()
        };
        let spec = ChartSpec {
            title: format!("Figure 8: {} — average power vs BCET/WCET", ts.name()),
            x_label: "BCET as a fraction of WCET".into(),
            y_label: "normalized average power".into(),
            ..ChartSpec::default()
        };
        let svg = render_line_chart(
            &spec,
            &[
                Series {
                    label: "FPS".into(),
                    points: points("fps"),
                    color: "#d62728".into(),
                },
                Series {
                    label: "LPFPS".into(),
                    points: points("lpfps"),
                    color: "#1f77b4".into(),
                },
            ],
        );
        let path = format!("{dir}/fig8_{}.svg", ts.name());
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {path}");
    }
    parsed.emit(&outcome.results, &outcome.metrics);
}
