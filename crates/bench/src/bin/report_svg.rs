//! Renders the paper's Figure 8 panels (and the utilization sweep) as
//! standalone SVG charts from freshly measured data.
//!
//! Usage: `cargo run --release --bin report_svg [--out results]`
//!
//! Writes `fig8_<app>.svg` (average power vs BCET fraction, FPS vs LPFPS)
//! and `sweep_utilization.svg`.

use lpfps::driver::PolicyKind;
use lpfps_bench::chart::{render_line_chart, ChartSpec, Series};
use lpfps_bench::{power_cell, BCET_FRACTIONS};
use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_workloads::applications;

fn out_dir() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            return args.next().expect("--out requires a directory");
        }
    }
    "results".to_string()
}

fn main() {
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");
    let cpu = CpuSpec::arm8();
    let exec = PaperGaussian;

    for ts in applications() {
        let horizon = lpfps_bench::experiment_horizon(&ts);
        let mut fps_pts = Vec::new();
        let mut lp_pts = Vec::new();
        for &frac in BCET_FRACTIONS.iter() {
            let fps = power_cell(&ts, &cpu, PolicyKind::Fps, &exec, frac, horizon, 1);
            let lp = power_cell(&ts, &cpu, PolicyKind::Lpfps, &exec, frac, horizon, 1);
            fps_pts.push((frac, fps.average_power));
            lp_pts.push((frac, lp.average_power));
        }
        let spec = ChartSpec {
            title: format!("Figure 8: {} — average power vs BCET/WCET", ts.name()),
            x_label: "BCET as a fraction of WCET".into(),
            y_label: "normalized average power".into(),
            ..ChartSpec::default()
        };
        let svg = render_line_chart(
            &spec,
            &[
                Series {
                    label: "FPS".into(),
                    points: fps_pts,
                    color: "#d62728".into(),
                },
                Series {
                    label: "LPFPS".into(),
                    points: lp_pts,
                    color: "#1f77b4".into(),
                },
            ],
        );
        let path = format!("{dir}/fig8_{}.svg", ts.name());
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {path}");
    }
}
