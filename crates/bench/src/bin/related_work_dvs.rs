//! Related-work experiment: the §2.2 dynamic-priority DVS algorithms.
//!
//! The paper dismisses the AVR heuristic (Yao et al.) for the same reason
//! it dismisses static schedules: "average-rate requirements are computed
//! statically with fixed numbers of execution cycles, \[so\] the same
//! problem occurs when variations of execution time exist." This
//! experiment makes that argument quantitative in Yao's own idealized
//! model (continuous speeds, free transitions, free idle):
//!
//! * **edf@1** — race-to-idle at full speed;
//! * **avr** — the Average Rate heuristic (WCET-based densities);
//! * **yds-wcet** — the optimal *offline* schedule against WCETs
//!   (clairvoyant about arrivals, pessimistic about work);
//! * **yds-real** — the optimal schedule against the *realized* work: a
//!   clairvoyant lower bound no online policy can beat.
//!
//! As BCET shrinks, `avr` and `yds-wcet` barely move (they budget WCETs)
//! while `yds-real` keeps falling — the gap is exactly the dynamic slack
//! that run-time reclamation (LPFPS, in the fixed-priority world) exists
//! to harvest.
//!
//! Usage: `cargo run --release --bin related_work_dvs [--json out.json]`

use lpfps_cpu::ladder::FrequencyLadder;
use lpfps_cpu::power::PowerModel;
use lpfps_edf::{
    simulate_edf, simulate_edf_full_speed, DiscreteSchedule, JobSet, SpeedProfile, YdsSchedule,
};
use lpfps_sweep::Cli;
use lpfps_tasks::exec::{AlwaysWcet, PaperGaussian};
use lpfps_tasks::freq::Freq;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct DvsCell {
    app: String,
    bcet_fraction: f64,
    edf_full: f64,
    avr: f64,
    yds_wcet: f64,
    yds_realized: f64,
}

/// A horizon that keeps the O(n^2)-per-round YDS runs fast even for INS.
fn edf_horizon(ts: &TaskSet) -> Dur {
    let max_period = ts.iter().map(|(_, t, _)| t.period()).max().unwrap();
    max_period * 2
}

fn main() {
    let parsed = Cli::new(
        "related_work_dvs",
        "SS2.2 dynamic-priority DVS baselines: EDF@1, AVR, YDS, discrete levels",
    )
    .parse();
    let power = PowerModel::default();
    let mut cells = Vec::new();

    println!("Related-work DVS (idealized EDF model): energy, busy-time only\n");
    println!(
        "{:<16} {:>6} {:>11} {:>11} {:>11} {:>11}",
        "application", "bcet%", "edf@1", "avr", "yds-wcet", "yds-real"
    );
    for ts in applications() {
        let horizon = edf_horizon(&ts);
        let wcet_jobs = JobSet::from_taskset(&ts, horizon, &AlwaysWcet, 0);
        let yds_wcet = YdsSchedule::compute(&wcet_jobs).energy(&power);
        for frac in [0.2, 0.6, 1.0] {
            let scaled = ts.with_bcet_fraction(frac);
            let real_jobs = JobSet::from_taskset(&scaled, horizon, &PaperGaussian, 1);

            let edf_full = simulate_edf_full_speed(&real_jobs, &power);
            assert_eq!(edf_full.misses, 0, "{} edf@1", ts.name());

            // AVR's *speeds* come from the WCET windows (the heuristic is
            // static in its rates); the *work* executed is the realized one.
            let avr_profile = SpeedProfile::avr(&wcet_jobs);
            let avr = simulate_edf(&real_jobs, &avr_profile, &power);
            assert_eq!(avr.misses, 0, "{} avr", ts.name());

            let yds_real = YdsSchedule::compute(&real_jobs).energy(&power);

            println!(
                "{:<16} {:>6.0} {:>11.6} {:>11.6} {:>11.6} {:>11.6}",
                ts.name(),
                frac * 100.0,
                edf_full.energy,
                avr.energy,
                yds_wcet,
                yds_real
            );
            // Ordering invariants of the model.
            assert!(
                yds_real <= avr.energy + 1e-9,
                "{}: optimal must win",
                ts.name()
            );
            assert!(
                avr.energy <= edf_full.energy + 1e-9,
                "{}: avr beats racing",
                ts.name()
            );
            cells.push(DvsCell {
                app: ts.name().into(),
                bcet_fraction: frac,
                edf_full: edf_full.energy,
                avr: avr.energy,
                yds_wcet,
                yds_realized: yds_real,
            });
        }
        println!();
    }

    // The §2.2 argument, asserted: the clairvoyant optimum improves
    // markedly as variation grows, while AVR barely moves.
    for ts in applications() {
        let get = |frac: f64, f: fn(&DvsCell) -> f64| {
            cells
                .iter()
                .find(|c| c.app == ts.name() && (c.bcet_fraction - frac).abs() < 1e-9)
                .map(f)
                .unwrap()
        };
        let avr_drop = 1.0 - get(0.2, |c| c.avr) / get(1.0, |c| c.avr);
        let yds_drop = 1.0 - get(0.2, |c| c.yds_realized) / get(1.0, |c| c.yds_realized);
        println!(
            "{:<16} energy drop from BCET 100% -> 20%: avr {:>5.1}%  yds-real {:>5.1}%",
            ts.name(),
            avr_drop * 100.0,
            yds_drop * 100.0
        );
        assert!(
            yds_drop > avr_drop + 0.05,
            "{}: the clairvoyant optimum should exploit variation far better than AVR",
            ts.name()
        );
    }
    // Reference [16] (Ishihara & Yasuura): the price of discrete voltage
    // levels, and how the two-adjacent-levels theorem erases most of it.
    println!("\nDiscrete-voltage realization of the optimal schedule (ref. [16]):");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "application", "continuous", "1MHz split", "20MHz split", "20MHz round"
    );
    let reference = Freq::from_mhz(100);
    let fine = FrequencyLadder::default();
    let coarse = FrequencyLadder::new(Freq::from_mhz(20), Freq::from_mhz(100), Freq::from_mhz(20));
    for ts in applications() {
        let horizon = edf_horizon(&ts);
        let jobs = JobSet::from_taskset(&ts, horizon, &AlwaysWcet, 0);
        let sched = YdsSchedule::compute(&jobs);
        let continuous = sched.energy(&power);
        let fine_split = DiscreteSchedule::realize(&sched, &fine, reference).energy(&power);
        let coarse_split = DiscreteSchedule::realize(&sched, &coarse, reference).energy(&power);
        let coarse_round = DiscreteSchedule::round_up_energy(&sched, &coarse, reference, &power);
        println!(
            "{:<16} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            ts.name(),
            continuous,
            fine_split,
            coarse_split,
            coarse_round
        );
        assert!(continuous <= fine_split + 1e-12);
        assert!(fine_split <= coarse_split + 1e-12);
        assert!(coarse_split <= coarse_round + 1e-12);
    }
    println!("continuous <= fine split <= coarse split <= coarse round-up: the");
    println!("two-adjacent-levels theorem recovers most of what coarse ladders lose.");

    println!("\nAVR's static rates leave the dynamic slack on the table — the gap");
    println!("run-time reclamation (LPFPS) exists to harvest.");
    parsed.write_json(&cells);
}
