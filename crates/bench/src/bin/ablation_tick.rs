//! Extension: tick-driven versus event-driven kernels.
//!
//! The paper's kernel reference (Katcher, Arakawa & Strosnider,
//! *Engineering and analysis of fixed priority schedulers*) is exactly
//! about this engineering choice: a tick-driven kernel notices releases
//! only at timer ticks, trading interrupt cost for up to one tick of
//! release jitter. This ablation sweeps the tick on every workload under
//! LPFPS and cross-checks the jitter-aware response-time analysis against
//! the simulation: wherever the analysis (with `J = tick`) admits the
//! set, the tick-driven run must not miss.
//!
//! Usage: `cargo run --release --bin ablation_tick -- [--json out.json]`

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cell, Cli, ExecKind, SweepSpec};
use lpfps_tasks::analysis::{response_times, RtaConfig};
use lpfps_tasks::time::Dur;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TickCell {
    app: String,
    tick_us: u64,
    rta_admits: bool,
    lpfps_power: f64,
    misses: usize,
}

const TICKS_US: [u64; 4] = [0, 100, 1_000, 10_000]; // 0 = event-driven

fn main() {
    let parsed = Cli::new(
        "ablation_tick",
        "tick-driven vs event-driven kernel, cross-checked against jitter RTA",
    )
    .parse();

    let mut spec = SweepSpec::new("ablation_tick");
    for ts in applications() {
        for tick_us in TICKS_US {
            let mut cell = Cell::new(ts.clone(), CpuSpec::arm8(), PolicyKind::Lpfps)
                .with_exec(ExecKind::PaperGaussian)
                .with_bcet_fraction(0.5)
                .with_seed(1);
            if tick_us > 0 {
                cell = cell.with_tick(Dur::from_us(tick_us));
            }
            spec.push(cell);
        }
    }
    let outcome = run_sweep(&spec, &parsed.run_options());

    println!("Tick-driven kernel ablation (LPFPS, BCET = 50% of WCET)\n");
    println!(
        "{:<16} {:>8} {:>8} {:>10} {:>8}",
        "application", "tick_us", "rta-ok", "lpfps", "misses"
    );
    let mut cells = Vec::new();
    let mut rows = outcome.results.chunks(TICKS_US.len());
    for ts in applications() {
        let row = rows.next().unwrap();
        for (result, tick_us) in row.iter().zip(TICKS_US) {
            let rta_admits = if tick_us == 0 {
                true
            } else {
                response_times(
                    &ts,
                    &RtaConfig::default().with_release_jitter(Dur::from_us(tick_us)),
                )
                .iter()
                .all(|o| o.is_schedulable())
            };
            println!(
                "{:<16} {:>8} {:>8} {:>10.4} {:>8}",
                ts.name(),
                tick_us,
                rta_admits,
                result.average_power,
                result.misses
            );
            if rta_admits {
                assert_eq!(
                    result.misses,
                    0,
                    "{}: jitter-RTA admitted tick {tick_us}us but the run missed",
                    ts.name()
                );
            }
            cells.push(TickCell {
                app: ts.name().into(),
                tick_us,
                rta_admits,
                lpfps_power: result.average_power,
                misses: result.misses,
            });
        }
        println!();
    }

    println!("wherever jitter-aware RTA admits a tick, the tick-driven LPFPS run");
    println!("meets every deadline; power is essentially tick-independent (the");
    println!("kernel defers *noticing* work, not doing it), while CNC — with");
    println!("millisecond periods — is the first to lose admission as ticks grow.");
    parsed.emit(&cells, &outcome.metrics);
}
