//! Extension: tick-driven versus event-driven kernels.
//!
//! The paper's kernel reference (Katcher, Arakawa & Strosnider,
//! *Engineering and analysis of fixed priority schedulers*) is exactly
//! about this engineering choice: a tick-driven kernel notices releases
//! only at timer ticks, trading interrupt cost for up to one tick of
//! release jitter. This ablation sweeps the tick on every workload under
//! LPFPS and cross-checks the jitter-aware response-time analysis against
//! the simulation: wherever the analysis (with `J = tick`) admits the
//! set, the tick-driven run must not miss.
//!
//! Usage: `cargo run --release --bin ablation_tick [--json out.json]`

use lpfps::driver::{run, PolicyKind};
use lpfps_bench::maybe_write_json;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_tasks::analysis::{response_times, RtaConfig};
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::time::Dur;
use lpfps_workloads::applications;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TickCell {
    app: String,
    tick_us: u64,
    rta_admits: bool,
    lpfps_power: f64,
    misses: usize,
}

const TICKS_US: [u64; 4] = [0, 100, 1_000, 10_000]; // 0 = event-driven

fn main() {
    let cpu = CpuSpec::arm8();
    let exec = PaperGaussian;
    let mut cells = Vec::new();

    println!("Tick-driven kernel ablation (LPFPS, BCET = 50% of WCET)\n");
    println!(
        "{:<16} {:>8} {:>8} {:>10} {:>8}",
        "application", "tick_us", "rta-ok", "lpfps", "misses"
    );
    for ts in applications() {
        let scaled = ts.with_bcet_fraction(0.5);
        let horizon = lpfps_bench::experiment_horizon(&scaled);
        for tick_us in TICKS_US {
            let rta_admits = if tick_us == 0 {
                true
            } else {
                response_times(
                    &ts,
                    &RtaConfig::default().with_release_jitter(Dur::from_us(tick_us)),
                )
                .iter()
                .all(|o| o.is_schedulable())
            };
            let mut cfg = SimConfig::new(horizon).with_seed(1);
            if tick_us > 0 {
                cfg = cfg.with_tick(Dur::from_us(tick_us));
            }
            let report = run(&scaled, &cpu, PolicyKind::Lpfps, &exec, &cfg);
            let misses = report.misses.len();
            println!(
                "{:<16} {:>8} {:>8} {:>10.4} {:>8}",
                ts.name(),
                tick_us,
                rta_admits,
                report.average_power(),
                misses
            );
            if rta_admits {
                assert_eq!(
                    misses,
                    0,
                    "{}: jitter-RTA admitted tick {tick_us}us but the run missed",
                    ts.name()
                );
            }
            cells.push(TickCell {
                app: ts.name().into(),
                tick_us,
                rta_admits,
                lpfps_power: report.average_power(),
                misses,
            });
        }
        println!();
    }

    println!("wherever jitter-aware RTA admits a tick, the tick-driven LPFPS run");
    println!("meets every deadline; power is essentially tick-independent (the");
    println!("kernel defers *noticing* work, not doing it), while CNC — with");
    println!("millisecond periods — is the first to lose admission as ticks grow.");
    maybe_write_json(&cells);
}
