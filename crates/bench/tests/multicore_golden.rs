//! The multicore subsystem's two load-bearing correctness gates.
//!
//! 1. **One-core reproduction**: `--cores 1` through *any* partitioner
//!    must reproduce the uniprocessor golden fingerprint matrix byte for
//!    byte — the per-core seed derivation is the identity on core 0, the
//!    derived app label is unchanged, and the pinned horizon equals the
//!    default the uniprocessor cell would pick.
//! 2. **Standalone equivalence**: every per-core report of a genuine
//!    multicore run must serialize byte-identically to running that
//!    core's derived cell standalone through the uniprocessor kernel —
//!    the engine's work-stealing parallelism and merge step must not
//!    perturb a single byte.

use lpfps::driver::PolicyKind;
use lpfps_bench::fingerprint::report_fingerprint;
use lpfps_bench::golden::{golden_cells, GOLDEN_FAULT_SEED, GOLDEN_FINGERPRINTS, GOLDEN_SEED};
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_multi::{MultiCell, MultiEngine, Partitioner, PartitionerKind};
use lpfps_sweep::{Cell, ExecKind};
use lpfps_workloads::{ins, table1, WorkloadBuilder};

#[test]
fn one_core_runs_reproduce_the_uniprocessor_golden_matrix() {
    let mut engine = MultiEngine::serial();
    for kind in PartitionerKind::ALL {
        for (cell, (label, expected)) in golden_cells().into_iter().zip(GOLDEN_FINGERPRINTS) {
            let mc = MultiCell::new(cell, 1, kind);
            let report = engine
                .run(&mc, 1.0)
                .unwrap_or_else(|e| panic!("{label} via {}: {e}", kind.name()));
            assert_eq!(report.cores, 1);
            assert_eq!(report.assignment.iter().filter(|&&c| c != 0).count(), 0);
            let core0 = report
                .core_report(0)
                .expect("one-core run must produce a core-0 report");
            assert_eq!(
                report_fingerprint(core0),
                expected,
                "{label} via {} must reproduce the uniprocessor fingerprint",
                kind.name()
            );
        }
    }
}

fn fleet_cell(
    base: lpfps_tasks::TaskSet,
    n: usize,
    policy: PolicyKind,
    faults: FaultConfig,
) -> Cell {
    let fleet = WorkloadBuilder::new(base).with_seed(11).replicate(n);
    Cell::new(fleet, CpuSpec::arm8(), policy)
        .with_exec(ExecKind::PaperGaussian)
        .with_bcet_fraction(0.5)
        .with_seed(GOLDEN_SEED)
        .with_faults(faults)
}

#[test]
fn per_core_reports_are_bit_identical_to_standalone_runs() {
    let overrun = FaultConfig::none()
        .with_seed(GOLDEN_FAULT_SEED)
        .with_overrun(OverrunFault::clamped(0.2, 0.3, 1.3));
    let policies = [
        PolicyKind::Fps,
        PolicyKind::Lpfps,
        PolicyKind::LpfpsWatchdog,
    ];
    let mut engine = MultiEngine::new().with_threads(4);
    let mut checked_cores = 0;
    for (base, cores) in [(table1(), 3usize), (ins(), 2)] {
        for policy in policies {
            for faults in [FaultConfig::none(), overrun] {
                for kind in PartitionerKind::ALL {
                    let cell = fleet_cell(base.clone(), cores, policy, faults);
                    let mc = MultiCell::new(cell, cores, kind);
                    let label = mc.label();
                    let multi = engine
                        .run(&mc, 1.0)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                    let (_, derived) = mc.derived_cells().expect("partition succeeded above");
                    assert_eq!(multi.reports.len(), cores);
                    for (k, maybe_cell) in derived.iter().enumerate() {
                        match (multi.core_report(k), maybe_cell) {
                            (Some(from_engine), Some(standalone_cell)) => {
                                let standalone = standalone_cell
                                    .run(1.0)
                                    .unwrap_or_else(|e| panic!("{label} core {k} standalone: {e}"));
                                assert_eq!(
                                    serde_json::to_string(from_engine).unwrap(),
                                    serde_json::to_string(&standalone).unwrap(),
                                    "{label}: core {k} must match its standalone run"
                                );
                                checked_cores += 1;
                            }
                            (None, None) => {}
                            _ => panic!("{label}: engine and derivation disagree on idle core {k}"),
                        }
                    }
                }
            }
        }
    }
    assert!(checked_cores > 50, "only {checked_cores} cores checked");
}

#[test]
fn multi_reports_are_byte_identical_across_thread_counts() {
    let cell = fleet_cell(table1(), 4, PolicyKind::Lpfps, FaultConfig::none());
    let mc = MultiCell::new(cell, 4, PartitionerKind::Wfd);
    let reference = serde_json::to_string(
        &MultiEngine::serial()
            .run(&mc, 1.0)
            .expect("serial multicore run succeeds"),
    )
    .unwrap();
    for threads in 2..=8 {
        let mut engine = MultiEngine::new().with_threads(threads);
        let got = serde_json::to_string(&engine.run(&mc, 1.0).unwrap()).unwrap();
        assert_eq!(got, reference, "threads={threads} must not change a byte");
    }
}
