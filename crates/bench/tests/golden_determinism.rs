//! Golden determinism: the optimized engine must produce byte-identical
//! `SimReport`s to the pre-optimization engine.
//!
//! The fingerprints below were captured with `bench_kernel --golden` on
//! the engine as of PR 2 (commit 924c03a — before the cached event
//! horizon, zero-allocation queues, and workspace reuse landed). Every
//! hot-path change since must reproduce them exactly: the hash covers the
//! *entire* serialized report — counters, energy buckets, per-task
//! responses and histograms, misses, idle gaps, task energy — so a single
//! flipped byte anywhere fails the matrix entry by name.
//!
//! Regenerate (only when a change is *meant* to alter behavior, never for
//! a perf PR): `cargo run --release --bin bench_kernel -- --golden`.

use lpfps_bench::fingerprint::report_fingerprint;
use lpfps_bench::golden::{diagnose_mismatch, golden_cells, GOLDEN_FINGERPRINTS as GOLDEN};

#[test]
fn reports_match_pre_optimization_engine() {
    let mut checked = 0;
    for (cell, (expected_label, expected)) in golden_cells().into_iter().zip(GOLDEN) {
        let label = cell.label();
        assert_eq!(
            label, expected_label,
            "golden matrix order drifted from the pinned table"
        );
        let report = cell.run(1.0).unwrap();
        let fp = report_fingerprint(&report);
        // On mismatch, don't just dump two hashes: ask the oracle where
        // the report actually diverged (or whether it agrees, meaning the
        // change is intentional and the pins need regenerating).
        if fp != expected {
            panic!(
                "report for `{label}` diverged from the pre-optimization engine \
                 ({fp:#018x} != {expected:#018x})\n{}",
                diagnose_mismatch(&cell, &report)
            );
        }
        checked += 1;
    }
    assert_eq!(checked, GOLDEN.len(), "golden matrix lost cells");
}

/// The workspace-reuse path must be invisible too: running the whole
/// golden matrix through ONE recycled [`SimWorkspace`] — every cell after
/// the first inherits dirty buffers from a *different* workload and
/// policy — still reproduces the pinned pre-optimization fingerprints.
#[test]
fn workspace_reuse_reproduces_the_golden_matrix() {
    use lpfps_bench::golden::golden_cells;
    use lpfps_kernel::engine::SimWorkspace;
    let mut ws = SimWorkspace::new();
    for (cell, (label, expected)) in golden_cells().into_iter().zip(GOLDEN) {
        let report = cell.run_in(1.0, &mut ws).unwrap();
        let fp = report_fingerprint(&report);
        if fp != expected {
            panic!(
                "workspace-reuse report for `{label}` diverged \
                 ({fp:#018x} != {expected:#018x})\n{}",
                diagnose_mismatch(&cell, &report)
            );
        }
    }
}

/// Sweep-equivalence over the per-worker-workspace runner: the full
/// golden matrix as one sweep must fingerprint identically at every
/// thread count 1..=8 (different thread counts slice the cell stream
/// into different per-workspace sequences).
#[test]
fn sweep_reports_identical_across_thread_counts() {
    use lpfps_bench::golden::golden_cells;
    use lpfps_sweep::{run_sweep, RunOptions, SweepSpec};
    let mut spec = SweepSpec::new("golden");
    for cell in golden_cells() {
        spec.push(cell);
    }
    let fingerprints = |threads: usize| -> Vec<u64> {
        run_sweep(&spec, &RunOptions::serial().with_threads(threads))
            .reports
            .iter()
            .map(|r| report_fingerprint(r.as_ref().expect("golden cells complete")))
            .collect()
    };
    let reference = fingerprints(1);
    assert_eq!(reference.len(), GOLDEN.len());
    for threads in 2..=8 {
        assert_eq!(
            fingerprints(threads),
            reference,
            "sweep reports diverged at {threads} threads"
        );
    }
}

/// Observability is free, proven against the pinned history: the full
/// golden matrix run through the probed engine entry points — with a
/// recording [`JobRecorder`] *and* a [`TraceProbe`] attached — must still
/// reproduce the pre-optimization fingerprints byte for byte. Probes may
/// observe the simulation; they may never perturb it (not even its
/// fast-forward eligibility).
#[test]
fn probed_engine_reproduces_the_golden_matrix() {
    use lpfps_bench::golden::golden_cells;
    use lpfps_kernel::engine::SimWorkspace;
    use lpfps_obs::{JobRecorder, TraceProbe};
    let mut ws = SimWorkspace::new();
    for (cell, (label, expected)) in golden_cells().into_iter().zip(GOLDEN) {
        let mut rec = JobRecorder::new();
        let report = cell.run_probed_opts(1.0, &mut ws, false, &mut rec).unwrap();
        let fp = report_fingerprint(&report);
        if fp != expected {
            panic!(
                "JobRecorder-probed report for `{label}` diverged \
                 ({fp:#018x} != {expected:#018x})\n{}",
                diagnose_mismatch(&cell, &report)
            );
        }
        let mut tp = TraceProbe::new();
        let report = cell.run_probed_opts(1.0, &mut ws, false, &mut tp).unwrap();
        let fp = report_fingerprint(&report);
        if fp != expected {
            panic!(
                "TraceProbe-probed report for `{label}` diverged \
                 ({fp:#018x} != {expected:#018x})\n{}",
                diagnose_mismatch(&cell, &report)
            );
        }
    }
}

#[test]
fn fingerprint_is_sensitive_to_the_config() {
    // Sanity check that the hash actually discriminates: a different seed
    // must flip every workload's fingerprint.
    use lpfps_bench::golden::golden_cells;
    for cell in golden_cells().into_iter().take(3) {
        let label = cell.label();
        let a = report_fingerprint(&cell.clone().run(1.0).unwrap());
        let b = report_fingerprint(&cell.with_seed(43).run(1.0).unwrap());
        assert_ne!(a, b, "fingerprint blind to the seed for `{label}`");
    }
}
