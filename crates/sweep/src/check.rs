//! Sampled invariant checking for sweep runs (the `--check N` flag).
//!
//! A full differential re-simulation of every sweep cell would double the
//! cost of a grid; sampling gives most of the assurance for a fraction of
//! it. `N` evenly-spaced completed cells are re-run with tracing enabled
//! and their traces pushed through the oracle's invariant checker
//! ([`lpfps_oracle::check_report`]) — any violation means the kernel broke
//! one of the paper's guarantees *inside this very sweep*, pinned to a
//! cell and a trace position.
//!
//! The re-run is exact: a cell is a pure function of its spec, so the
//! traced replay is the same simulation the sweep measured, plus the
//! event stream.

use crate::cell::Cell;
use crate::runner::SweepOutcome;
use crate::spec::SweepSpec;
use lpfps_oracle::{check_report, effective_cpu, Violation};

/// The invariant-check outcome of one sampled cell.
#[derive(Debug)]
pub struct CellCheck {
    /// Index of the cell in its spec.
    pub index: usize,
    /// The cell's label.
    pub label: String,
    /// Violations found (empty = the cell passed).
    pub violations: Vec<Violation>,
}

impl CellCheck {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Picks up to `sample` evenly-spaced indices of cells that completed.
fn sample_indices(outcome: &SweepOutcome, sample: usize) -> Vec<usize> {
    let completed: Vec<usize> = outcome
        .results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.status.is_ok())
        .map(|(i, _)| i)
        .collect();
    if completed.is_empty() || sample == 0 {
        return Vec::new();
    }
    let n = sample.min(completed.len());
    // Evenly spaced over the completed list: index k picks the cell at
    // floor(k * len / n), so n = len degenerates to "all of them".
    (0..n).map(|k| completed[k * completed.len() / n]).collect()
}

/// Re-runs one cell with tracing and checks every trace invariant.
fn check_cell(cell: &Cell, index: usize, horizon_scale: f64) -> CellCheck {
    let traced = cell.clone().with_trace();
    // Only completed cells are sampled, and a cell is a pure function of
    // its spec — a replay that fails where the sweep succeeded is itself
    // a determinism violation worth reporting.
    let report = match traced.run(horizon_scale) {
        Ok(report) => report,
        Err(err) => {
            return CellCheck {
                index,
                label: cell.label(),
                violations: vec![Violation {
                    index: 0,
                    at: lpfps_tasks::time::Time::ZERO,
                    invariant: "replay-determinism",
                    detail: format!("traced replay of a completed cell failed: {err}"),
                }],
            }
        }
    };
    let scaled = cell.ts.with_bcet_fraction(cell.bcet_fraction);
    let cpu = effective_cpu(&scaled, &cell.cpu, &report.policy);
    CellCheck {
        index,
        label: cell.label(),
        violations: check_report(&scaled, &cpu, &report),
    }
}

/// Samples up to `sample` completed cells of a finished sweep and runs
/// each through the invariant checker. Returns one [`CellCheck`] per
/// sampled cell, pass or fail; [`run_sweep`](crate::run_sweep) turns
/// failures into a panic when driven by `--check`.
pub fn check_sampled_cells(
    spec: &SweepSpec,
    outcome: &SweepOutcome,
    sample: usize,
    horizon_scale: f64,
) -> Vec<CellCheck> {
    sample_indices(outcome, sample)
        .into_iter()
        .map(|i| check_cell(&spec.cells[i], i, horizon_scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ExecKind;
    use crate::runner::{run_sweep, RunOptions};
    use lpfps::driver::PolicyKind;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_tasks::task::Task;
    use lpfps_tasks::taskset::TaskSet;
    use lpfps_tasks::time::Dur;

    fn spec() -> SweepSpec {
        let ts = TaskSet::rate_monotonic(
            "t",
            vec![
                Task::new("a", Dur::from_us(50), Dur::from_us(10)),
                Task::new("b", Dur::from_us(100), Dur::from_us(30)),
            ],
        );
        let mut s = SweepSpec::new("check-test");
        for (seed, kind) in [
            (0, PolicyKind::Fps),
            (1, PolicyKind::Lpfps),
            (2, PolicyKind::Lpfps),
            (3, PolicyKind::CcEdf),
        ] {
            s.push(
                Cell::new(ts.clone(), CpuSpec::arm8(), kind)
                    .with_exec(ExecKind::PaperGaussian)
                    .with_bcet_fraction(0.4)
                    .with_seed(seed),
            );
        }
        s
    }

    #[test]
    fn sampled_cells_pass_on_a_healthy_sweep() {
        // Sampling everything covers the EDF cell too, so the checker's
        // edf-dispatch invariant runs against a real sweep replay.
        let spec = spec();
        let outcome = run_sweep(&spec, &RunOptions::serial());
        let checks = check_sampled_cells(&spec, &outcome, 4, 1.0);
        assert_eq!(checks.len(), 4);
        for c in &checks {
            assert!(c.is_ok(), "{}: {}", c.label, c.violations[0]);
        }
    }

    #[test]
    fn sampling_skips_failed_cells() {
        let mut spec = spec();
        let bad = spec.cells[1].clone().with_horizon(Dur::ZERO);
        spec.cells[1] = bad;
        let outcome = run_sweep(&spec, &RunOptions::serial());
        // Ask for more checks than there are completed cells: every
        // completed cell gets checked, the failed one is skipped.
        let checks = check_sampled_cells(&spec, &outcome, 10, 1.0);
        let indices: Vec<usize> = checks.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 2, 3]);
    }

    #[test]
    fn sample_zero_checks_nothing() {
        let spec = spec();
        let outcome = run_sweep(&spec, &RunOptions::serial());
        assert!(check_sampled_cells(&spec, &outcome, 0, 1.0).is_empty());
    }
}
