//! One simulation cell: everything needed to run a single
//! (workload × policy × BCET fraction × execution model × seed) point.

use lpfps::driver::{default_horizon, run_in, run_probed_in, PolicyKind};
use lpfps::TimeoutShutdown;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::FaultConfig;
use lpfps_kernel::engine::{simulate_in, simulate_in_probed, SimConfig, SimWorkspace};
use lpfps_kernel::error::SimError;
use lpfps_kernel::probe::Probe;
use lpfps_kernel::report::SimReport;
use lpfps_obs::HistSummary;
use lpfps_tasks::exec::{AlwaysWcet, ExecModel, PaperGaussian};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};

/// The execution-time models available declaratively. (Cells must be
/// `Send + Sync + Clone`, so the model is named rather than boxed.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecKind {
    /// Every job consumes its full WCET (the grid's deterministic edge).
    AlwaysWcet,
    /// The paper's Gaussian draw over [BCET, WCET] (seeded, deterministic).
    PaperGaussian,
}

impl ExecKind {
    /// The shared model instance behind this kind.
    pub fn model(self) -> &'static dyn ExecModel {
        match self {
            ExecKind::AlwaysWcet => &AlwaysWcet,
            ExecKind::PaperGaussian => &PaperGaussian,
        }
    }
}

/// A scheduling policy as selected by a sweep cell: one of the named
/// driver policies, or the timeout-shutdown baseline (which is
/// parameterized by its timeout and therefore not a `PolicyKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    Kind(PolicyKind),
    /// FPS + power-down after the given idle timeout (no exact wake timer).
    TimeoutShutdown(Dur),
}

impl PolicyChoice {
    /// Stable report name (`"timeout-<dur>"` for the shutdown baseline).
    pub fn name(self) -> String {
        match self {
            PolicyChoice::Kind(kind) => kind.name().to_string(),
            PolicyChoice::TimeoutShutdown(t) => format!("timeout-{t}"),
        }
    }
}

impl From<PolicyKind> for PolicyChoice {
    fn from(kind: PolicyKind) -> Self {
        PolicyChoice::Kind(kind)
    }
}

/// A fully-specified simulation cell. Build with [`Cell::new`] and the
/// `with_*` modifiers; run through [`crate::run_sweep`].
#[derive(Debug, Clone)]
pub struct Cell {
    /// Label used in results ("avionics", "u0.50/s3", ...). Defaults to the
    /// task-set name.
    pub app: String,
    /// The workload, *unscaled* (the runner applies `bcet_fraction`).
    pub ts: TaskSet,
    /// The processor.
    pub cpu: CpuSpec,
    /// The scheduling policy.
    pub policy: PolicyChoice,
    /// The execution-time model.
    pub exec: ExecKind,
    /// BCET as a fraction of WCET, applied to `ts` before the run.
    pub bcet_fraction: f64,
    /// Seed for the per-job execution-time streams.
    pub seed: u64,
    /// Simulation horizon; `None` picks `default_horizon` of the scaled set.
    pub horizon: Option<Dur>,
    /// Context-switch cost (see [`SimConfig::context_switch`]).
    pub context_switch: Dur,
    /// Per-`SlowDown` scheduler cost (see [`SimConfig::ratio_overhead`]).
    pub ratio_overhead: Dur,
    /// Tick-driven kernel period; `None` = event-driven.
    pub tick: Option<Dur>,
    /// Deterministic fault-injection model ([`FaultConfig::none`] = the
    /// idealized fault-free kernel).
    pub faults: FaultConfig,
    /// Record a full event trace (memory-heavy; off for sweeps).
    pub trace: bool,
}

impl Cell {
    /// A cell with the given workload/processor/policy at WCET (fraction
    /// 1.0), seed 0, `AlwaysWcet`, default horizon, zero overheads.
    pub fn new(ts: TaskSet, cpu: CpuSpec, policy: impl Into<PolicyChoice>) -> Self {
        Cell {
            app: ts.name().to_string(),
            ts,
            cpu,
            policy: policy.into(),
            exec: ExecKind::AlwaysWcet,
            bcet_fraction: 1.0,
            seed: 0,
            horizon: None,
            context_switch: Dur::ZERO,
            ratio_overhead: Dur::ZERO,
            tick: None,
            faults: FaultConfig::none(),
            trace: false,
        }
    }

    pub fn with_app(mut self, app: impl Into<String>) -> Self {
        self.app = app.into();
        self
    }

    pub fn with_exec(mut self, exec: ExecKind) -> Self {
        self.exec = exec;
        self
    }

    pub fn with_bcet_fraction(mut self, frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac) && frac > 0.0,
            "BCET fraction in (0, 1]"
        );
        self.bcet_fraction = frac;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_horizon(mut self, horizon: Dur) -> Self {
        self.horizon = Some(horizon);
        self
    }

    pub fn with_context_switch(mut self, cs: Dur) -> Self {
        self.context_switch = cs;
        self
    }

    pub fn with_ratio_overhead(mut self, cost: Dur) -> Self {
        self.ratio_overhead = cost;
        self
    }

    pub fn with_tick(mut self, tick: Dur) -> Self {
        self.tick = Some(tick);
        self
    }

    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// A short human-readable label for progress/metrics lines.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/b{:.0}%/s{}",
            self.app,
            self.policy.name(),
            self.bcet_fraction * 100.0,
            self.seed
        );
        if !self.faults.is_none() {
            label.push('/');
            label.push_str(&self.faults.label());
        }
        label
    }

    /// The horizon this cell will simulate, after the runner's
    /// `horizon_scale` stretch factor.
    pub fn effective_horizon(&self, horizon_scale: f64) -> Dur {
        let base = self
            .horizon
            .unwrap_or_else(|| default_horizon(&self.ts.with_bcet_fraction(self.bcet_fraction)));
        if horizon_scale == 1.0 {
            base
        } else {
            assert!(horizon_scale > 0.0, "horizon scale must be positive");
            Dur::from_ns(((base.as_ns() as f64) * horizon_scale).round().max(1.0) as u64)
        }
    }

    /// Runs the cell serially. Every input is by-value or `Sync`, so the
    /// parallel runner calls this unchanged — byte-identical results by
    /// construction.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] the underlying simulation rejects the cell with
    /// (invalid inputs, overflow-scale horizons, exhausted budgets).
    pub fn run(&self, horizon_scale: f64) -> Result<SimReport, SimError> {
        self.run_in(horizon_scale, &mut SimWorkspace::new())
    }

    /// [`Cell::run`] with a caller-provided [`SimWorkspace`]. The parallel
    /// runner gives each worker thread one workspace for its whole batch,
    /// so a sweep's kernel-buffer allocations are O(threads), not O(cells).
    ///
    /// # Errors
    ///
    /// As [`Cell::run`].
    pub fn run_in(&self, horizon_scale: f64, ws: &mut SimWorkspace) -> Result<SimReport, SimError> {
        self.run_opts(horizon_scale, ws, false)
    }

    /// [`Cell::run_in`] with the steady-state fast-forward optionally
    /// forced off (`force_full = true` maps to
    /// [`SimConfig::with_force_full_simulation`]). Reports are
    /// bit-identical either way; the flag exists for A/B timing and
    /// differential testing.
    ///
    /// # Errors
    ///
    /// As [`Cell::run`].
    pub fn run_opts(
        &self,
        horizon_scale: f64,
        ws: &mut SimWorkspace,
        force_full: bool,
    ) -> Result<SimReport, SimError> {
        let scaled = self.ts.with_bcet_fraction(self.bcet_fraction);
        let cfg = self.sim_config(horizon_scale, force_full);
        let mut report = match self.policy {
            PolicyChoice::Kind(kind) => {
                run_in(&scaled, &self.cpu, kind, self.exec.model(), &cfg, ws)?
            }
            PolicyChoice::TimeoutShutdown(timeout) => simulate_in(
                &scaled,
                &self.cpu,
                &mut TimeoutShutdown::new(timeout),
                self.exec.model(),
                &cfg,
                ws,
            )?,
        };
        report.taskset = self.app.clone();
        Ok(report)
    }

    /// [`Cell::run_opts`] with a [`Probe`] attached to the kernel's
    /// observability seam. The report is bit-identical to the probe-free
    /// run (the kernel's zero-cost-observability contract); the probe
    /// accumulates whatever it watches on the side.
    ///
    /// A probe only sees events the kernel actually simulates, so callers
    /// that need *complete* event coverage (e.g. histogram collection)
    /// must pass `force_full = true` to disable the steady-state
    /// fast-forward.
    ///
    /// # Errors
    ///
    /// As [`Cell::run`].
    pub fn run_probed_opts<P: Probe>(
        &self,
        horizon_scale: f64,
        ws: &mut SimWorkspace,
        force_full: bool,
        probe: &mut P,
    ) -> Result<SimReport, SimError> {
        let scaled = self.ts.with_bcet_fraction(self.bcet_fraction);
        let cfg = self.sim_config(horizon_scale, force_full);
        let mut report = match self.policy {
            PolicyChoice::Kind(kind) => {
                run_probed_in(&scaled, &self.cpu, kind, self.exec.model(), &cfg, ws, probe)?
            }
            PolicyChoice::TimeoutShutdown(timeout) => simulate_in_probed(
                &scaled,
                &self.cpu,
                &mut TimeoutShutdown::new(timeout),
                self.exec.model(),
                &cfg,
                ws,
                probe,
            )?,
        };
        report.taskset = self.app.clone();
        Ok(report)
    }

    /// The fully-resolved [`SimConfig`] this cell runs under.
    fn sim_config(&self, horizon_scale: f64, force_full: bool) -> SimConfig {
        let mut cfg = SimConfig::new(self.effective_horizon(horizon_scale))
            .with_seed(self.seed)
            .with_context_switch(self.context_switch)
            .with_ratio_overhead(self.ratio_overhead);
        if force_full {
            cfg = cfg.with_force_full_simulation();
        }
        if let Some(tick) = self.tick {
            cfg = cfg.with_tick(tick);
        }
        cfg = cfg.with_faults(self.faults);
        if self.trace {
            cfg = cfg.with_trace();
        }
        cfg
    }
}

/// Deterministic per-cell histogram summaries, collected by the sweep
/// runner's [`JobRecorder`](lpfps_obs::JobRecorder) probe when `--hist`
/// is on. Pure functions of the cell (integer bucket counts), so they
/// serialize byte-identically across thread counts like every other
/// [`CellResult`] field. `None` in results predating histogram
/// collection — and in any sweep run without `--hist`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellHistograms {
    /// Job response times, nanoseconds.
    pub response_ns: HistSummary,
    /// Per-job busy/ramp energy, femtojoules.
    pub job_energy_fj: HistSummary,
}

/// Why a sweep cell failed: a stable machine-readable kind (the
/// [`SimError::kind`] slug, or `"panic"` for a caught panic), the full
/// human-readable message, and the cell's coordinates in the sweep grid —
/// so a failure inside a thousand-cell results file is self-locating
/// without cross-referencing indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellError {
    /// Stable error-kind slug (`"invalid-config"`, `"budget-exhausted"`,
    /// ..., or `"panic"`).
    pub kind: String,
    /// The rendered error (or panic payload) message.
    pub message: String,
    /// The failing cell's application label.
    pub app: String,
    /// The failing cell's policy report name.
    pub policy: String,
    /// The failing cell's execution-time seed.
    pub seed: u64,
}

impl CellError {
    /// The structured record of a cell a simulation rejected with a typed
    /// error.
    pub fn from_sim(cell: &Cell, err: &SimError) -> Self {
        CellError {
            kind: err.kind().to_string(),
            message: err.to_string(),
            app: cell.app.clone(),
            policy: cell.policy.name(),
            seed: cell.seed,
        }
    }

    /// The structured record of a cell whose execution *panicked* — the
    /// containment path for defects the typed taxonomy missed.
    pub fn from_panic(cell: &Cell, message: String) -> Self {
        CellError {
            kind: "panic".to_string(),
            message,
            app: cell.app.clone(),
            policy: cell.policy.name(),
            seed: cell.seed,
        }
    }

    /// A legacy record deserialized from the pre-`CellError` JSON shape
    /// (`{"Failed":{"message":"..."}}`): message only, no kind or
    /// coordinates recorded.
    fn legacy(message: String) -> Self {
        CellError {
            kind: "panic".to_string(),
            message,
            app: String::new(),
            policy: String::new(),
            seed: 0,
        }
    }
}

/// How a sweep cell finished.
///
/// Deterministic: cell execution is a pure function of the cell, so a
/// given cell either always completes or always fails with the same
/// error — across thread counts and re-runs alike. (Wall-clock facts
/// such as soft-timeout retries live in
/// [`CellMetrics`](crate::metrics::CellMetrics), never here.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum CellStatus {
    /// The simulation ran to its horizon.
    Ok,
    /// The cell was rejected with a typed error, or its execution
    /// panicked; [`CellError`] preserves the kind and origin.
    Failed { error: CellError },
}

// Hand-written to keep the *old* JSON shape parseable: committed results
// predating `CellError` serialized failures as
// `{"Failed":{"message":"..."}}`. The derive would accept only the new
// `{"Failed":{"error":{...}}}` shape, so this impl aliases the legacy
// field onto a coordinate-less `CellError` of kind `"panic"` (the only
// failure mode that era had).
impl Deserialize for CellStatus {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if value.as_str() == Some("Ok") {
            return Ok(CellStatus::Ok);
        }
        let failed = value
            .as_object()
            .and_then(|m| m.get("Failed"))
            .and_then(serde::Value::as_object)
            .ok_or_else(|| {
                serde::Error::custom("expected \"Ok\" or a {\"Failed\": {...}} object")
            })?;
        if let Some(error) = failed.get("error") {
            return Ok(CellStatus::Failed {
                error: CellError::from_value(error)?,
            });
        }
        let message = failed
            .get("message")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| {
                serde::Error::custom("Failed cell carries neither `error` nor a legacy `message`")
            })?;
        Ok(CellStatus::Failed {
            error: CellError::legacy(message.to_string()),
        })
    }
}

impl CellStatus {
    /// True if the cell completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellStatus::Ok)
    }
}

/// The deterministic, serializable summary of one finished cell — what
/// sweep binaries write to `--json`. Contains no wall-clock data, so
/// parallel and serial runs serialize byte-identically. Round-trips
/// through JSON, including results committed under the legacy failure
/// shape (see the [`CellStatus`] deserializer).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Cell label (application or synthetic-set name).
    pub app: String,
    /// Policy report name.
    pub policy: String,
    /// BCET as a fraction of WCET.
    pub bcet_fraction: f64,
    /// Execution-time seed.
    pub seed: u64,
    /// Active fault-model label (`"none"` for the idealized kernel).
    pub faults: String,
    /// Average normalized power (1.0 = flat-out busy processor).
    pub average_power: f64,
    /// Deadline misses observed.
    pub misses: usize,
    /// Watchdog degradations engaged (see
    /// [`Counters::degradations`](lpfps_kernel::report::Counters)).
    pub degradations: u64,
    /// Kernel decision points processed (deterministic work measure).
    pub events: u64,
    /// How the cell finished; the numeric fields above are zero when not
    /// [`CellStatus::Ok`].
    pub status: CellStatus,
    /// Per-cell histogram summaries (`--hist` runs only; `None`
    /// otherwise, including in all results committed before histogram
    /// collection existed).
    pub hist: Option<CellHistograms>,
}

impl CellResult {
    /// Builds the summary from a cell and its finished report.
    pub fn from_report(cell: &Cell, report: &SimReport) -> Self {
        CellResult {
            app: cell.app.clone(),
            policy: cell.policy.name(),
            bcet_fraction: cell.bcet_fraction,
            seed: cell.seed,
            faults: cell.faults.label(),
            average_power: report.average_power(),
            misses: report.misses.len(),
            degradations: report.counters.degradations,
            events: report.counters.events,
            status: CellStatus::Ok,
            hist: None,
        }
    }

    /// The summary of a cell that failed: identity fields from the cell,
    /// zeroed measurements, and the structured error.
    pub fn failed(cell: &Cell, error: CellError) -> Self {
        CellResult {
            app: cell.app.clone(),
            policy: cell.policy.name(),
            bcet_fraction: cell.bcet_fraction,
            seed: cell.seed,
            faults: cell.faults.label(),
            average_power: 0.0,
            misses: 0,
            degradations: 0,
            events: 0,
            status: CellStatus::Failed { error },
            hist: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Committed results predate `CellError`; the legacy failure shape
    /// must keep parsing (satellite requirement of the error-taxonomy PR).
    #[test]
    fn legacy_failed_json_shape_still_parses() {
        let legacy = r#"{"Failed":{"message":"attempt to add with overflow"}}"#;
        let status: CellStatus = serde_json::from_str(legacy).unwrap();
        assert_eq!(
            status,
            CellStatus::Failed {
                error: CellError::legacy("attempt to add with overflow".to_string()),
            }
        );
        assert!(!status.is_ok());
    }

    #[test]
    fn new_failed_json_shape_round_trips() {
        let status = CellStatus::Failed {
            error: CellError {
                kind: "invalid-config".to_string(),
                message: "invalid simulation config: simulation horizon must be positive"
                    .to_string(),
                app: "avionics".to_string(),
                policy: "lpfps".to_string(),
                seed: 7,
            },
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: CellStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
    }

    #[test]
    fn ok_status_round_trips_as_plain_string() {
        let json = serde_json::to_string(&CellStatus::Ok).unwrap();
        assert_eq!(json, "\"Ok\"");
        let back: CellStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, CellStatus::Ok);
    }
}
