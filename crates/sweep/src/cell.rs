//! One simulation cell: everything needed to run a single
//! (workload × policy × BCET fraction × execution model × seed) point.

use lpfps::driver::{default_horizon, run_in, PolicyKind};
use lpfps::TimeoutShutdown;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::FaultConfig;
use lpfps_kernel::engine::{simulate_in, SimConfig, SimWorkspace};
use lpfps_kernel::report::SimReport;
use lpfps_tasks::exec::{AlwaysWcet, ExecModel, PaperGaussian};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::Serialize;

/// The execution-time models available declaratively. (Cells must be
/// `Send + Sync + Clone`, so the model is named rather than boxed.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecKind {
    /// Every job consumes its full WCET (the grid's deterministic edge).
    AlwaysWcet,
    /// The paper's Gaussian draw over [BCET, WCET] (seeded, deterministic).
    PaperGaussian,
}

impl ExecKind {
    /// The shared model instance behind this kind.
    pub fn model(self) -> &'static dyn ExecModel {
        match self {
            ExecKind::AlwaysWcet => &AlwaysWcet,
            ExecKind::PaperGaussian => &PaperGaussian,
        }
    }
}

/// A scheduling policy as selected by a sweep cell: one of the named
/// driver policies, or the timeout-shutdown baseline (which is
/// parameterized by its timeout and therefore not a `PolicyKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    Kind(PolicyKind),
    /// FPS + power-down after the given idle timeout (no exact wake timer).
    TimeoutShutdown(Dur),
}

impl PolicyChoice {
    /// Stable report name (`"timeout-<dur>"` for the shutdown baseline).
    pub fn name(self) -> String {
        match self {
            PolicyChoice::Kind(kind) => kind.name().to_string(),
            PolicyChoice::TimeoutShutdown(t) => format!("timeout-{t}"),
        }
    }
}

impl From<PolicyKind> for PolicyChoice {
    fn from(kind: PolicyKind) -> Self {
        PolicyChoice::Kind(kind)
    }
}

/// A fully-specified simulation cell. Build with [`Cell::new`] and the
/// `with_*` modifiers; run through [`crate::run_sweep`].
#[derive(Debug, Clone)]
pub struct Cell {
    /// Label used in results ("avionics", "u0.50/s3", ...). Defaults to the
    /// task-set name.
    pub app: String,
    /// The workload, *unscaled* (the runner applies `bcet_fraction`).
    pub ts: TaskSet,
    /// The processor.
    pub cpu: CpuSpec,
    /// The scheduling policy.
    pub policy: PolicyChoice,
    /// The execution-time model.
    pub exec: ExecKind,
    /// BCET as a fraction of WCET, applied to `ts` before the run.
    pub bcet_fraction: f64,
    /// Seed for the per-job execution-time streams.
    pub seed: u64,
    /// Simulation horizon; `None` picks `default_horizon` of the scaled set.
    pub horizon: Option<Dur>,
    /// Context-switch cost (see [`SimConfig::context_switch`]).
    pub context_switch: Dur,
    /// Per-`SlowDown` scheduler cost (see [`SimConfig::ratio_overhead`]).
    pub ratio_overhead: Dur,
    /// Tick-driven kernel period; `None` = event-driven.
    pub tick: Option<Dur>,
    /// Deterministic fault-injection model ([`FaultConfig::none`] = the
    /// idealized fault-free kernel).
    pub faults: FaultConfig,
    /// Record a full event trace (memory-heavy; off for sweeps).
    pub trace: bool,
}

impl Cell {
    /// A cell with the given workload/processor/policy at WCET (fraction
    /// 1.0), seed 0, `AlwaysWcet`, default horizon, zero overheads.
    pub fn new(ts: TaskSet, cpu: CpuSpec, policy: impl Into<PolicyChoice>) -> Self {
        Cell {
            app: ts.name().to_string(),
            ts,
            cpu,
            policy: policy.into(),
            exec: ExecKind::AlwaysWcet,
            bcet_fraction: 1.0,
            seed: 0,
            horizon: None,
            context_switch: Dur::ZERO,
            ratio_overhead: Dur::ZERO,
            tick: None,
            faults: FaultConfig::none(),
            trace: false,
        }
    }

    pub fn with_app(mut self, app: impl Into<String>) -> Self {
        self.app = app.into();
        self
    }

    pub fn with_exec(mut self, exec: ExecKind) -> Self {
        self.exec = exec;
        self
    }

    pub fn with_bcet_fraction(mut self, frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac) && frac > 0.0,
            "BCET fraction in (0, 1]"
        );
        self.bcet_fraction = frac;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_horizon(mut self, horizon: Dur) -> Self {
        self.horizon = Some(horizon);
        self
    }

    pub fn with_context_switch(mut self, cs: Dur) -> Self {
        self.context_switch = cs;
        self
    }

    pub fn with_ratio_overhead(mut self, cost: Dur) -> Self {
        self.ratio_overhead = cost;
        self
    }

    pub fn with_tick(mut self, tick: Dur) -> Self {
        self.tick = Some(tick);
        self
    }

    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// A short human-readable label for progress/metrics lines.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/b{:.0}%/s{}",
            self.app,
            self.policy.name(),
            self.bcet_fraction * 100.0,
            self.seed
        );
        if !self.faults.is_none() {
            label.push('/');
            label.push_str(&self.faults.label());
        }
        label
    }

    /// The horizon this cell will simulate, after the runner's
    /// `horizon_scale` stretch factor.
    pub fn effective_horizon(&self, horizon_scale: f64) -> Dur {
        let base = self
            .horizon
            .unwrap_or_else(|| default_horizon(&self.ts.with_bcet_fraction(self.bcet_fraction)));
        if horizon_scale == 1.0 {
            base
        } else {
            assert!(horizon_scale > 0.0, "horizon scale must be positive");
            Dur::from_ns(((base.as_ns() as f64) * horizon_scale).round().max(1.0) as u64)
        }
    }

    /// Runs the cell serially. Every input is by-value or `Sync`, so the
    /// parallel runner calls this unchanged — byte-identical results by
    /// construction.
    pub fn run(&self, horizon_scale: f64) -> SimReport {
        self.run_in(horizon_scale, &mut SimWorkspace::new())
    }

    /// [`Cell::run`] with a caller-provided [`SimWorkspace`]. The parallel
    /// runner gives each worker thread one workspace for its whole batch,
    /// so a sweep's kernel-buffer allocations are O(threads), not O(cells).
    pub fn run_in(&self, horizon_scale: f64, ws: &mut SimWorkspace) -> SimReport {
        let scaled = self.ts.with_bcet_fraction(self.bcet_fraction);
        let mut cfg = SimConfig::new(self.effective_horizon(horizon_scale))
            .with_seed(self.seed)
            .with_context_switch(self.context_switch)
            .with_ratio_overhead(self.ratio_overhead);
        if let Some(tick) = self.tick {
            cfg = cfg.with_tick(tick);
        }
        cfg = cfg.with_faults(self.faults);
        if self.trace {
            cfg = cfg.with_trace();
        }
        let mut report = match self.policy {
            PolicyChoice::Kind(kind) => {
                run_in(&scaled, &self.cpu, kind, self.exec.model(), &cfg, ws)
            }
            PolicyChoice::TimeoutShutdown(timeout) => simulate_in(
                &scaled,
                &self.cpu,
                &mut TimeoutShutdown::new(timeout),
                self.exec.model(),
                &cfg,
                ws,
            ),
        };
        report.taskset = self.app.clone();
        report
    }
}

/// How a sweep cell finished.
///
/// Deterministic: cell execution is a pure function of the cell, so a
/// given cell either always completes or always fails with the same
/// message — across thread counts and re-runs alike. (Wall-clock facts
/// such as soft-timeout retries live in
/// [`CellMetrics`](crate::metrics::CellMetrics), never here.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum CellStatus {
    /// The simulation ran to its horizon.
    Ok,
    /// Cell execution panicked; the payload message is preserved.
    Failed { message: String },
}

impl CellStatus {
    /// True if the cell completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellStatus::Ok)
    }
}

/// The deterministic, serializable summary of one finished cell — what
/// sweep binaries write to `--json`. Contains no wall-clock data, so
/// parallel and serial runs serialize byte-identically.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Cell label (application or synthetic-set name).
    pub app: String,
    /// Policy report name.
    pub policy: String,
    /// BCET as a fraction of WCET.
    pub bcet_fraction: f64,
    /// Execution-time seed.
    pub seed: u64,
    /// Active fault-model label (`"none"` for the idealized kernel).
    pub faults: String,
    /// Average normalized power (1.0 = flat-out busy processor).
    pub average_power: f64,
    /// Deadline misses observed.
    pub misses: usize,
    /// Watchdog degradations engaged (see
    /// [`Counters::degradations`](lpfps_kernel::report::Counters)).
    pub degradations: u64,
    /// Kernel decision points processed (deterministic work measure).
    pub events: u64,
    /// How the cell finished; the numeric fields above are zero when not
    /// [`CellStatus::Ok`].
    pub status: CellStatus,
}

impl CellResult {
    /// Builds the summary from a cell and its finished report.
    pub fn from_report(cell: &Cell, report: &SimReport) -> Self {
        CellResult {
            app: cell.app.clone(),
            policy: cell.policy.name(),
            bcet_fraction: cell.bcet_fraction,
            seed: cell.seed,
            faults: cell.faults.label(),
            average_power: report.average_power(),
            misses: report.misses.len(),
            degradations: report.counters.degradations,
            events: report.counters.events,
            status: CellStatus::Ok,
        }
    }

    /// The summary of a cell whose execution panicked: identity fields
    /// from the cell, zeroed measurements, and the panic message.
    pub fn failed(cell: &Cell, message: String) -> Self {
        CellResult {
            app: cell.app.clone(),
            policy: cell.policy.name(),
            bcet_fraction: cell.bcet_fraction,
            seed: cell.seed,
            faults: cell.faults.label(),
            average_power: 0.0,
            misses: 0,
            degradations: 0,
            events: 0,
            status: CellStatus::Failed { message },
        }
    }
}
