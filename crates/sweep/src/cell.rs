//! One simulation cell: everything needed to run a single
//! (workload × policy × BCET fraction × execution model × seed) point.

use lpfps::driver::{default_horizon, run, PolicyKind};
use lpfps::TimeoutShutdown;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::report::SimReport;
use lpfps_tasks::exec::{AlwaysWcet, ExecModel, PaperGaussian};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::Serialize;

/// The execution-time models available declaratively. (Cells must be
/// `Send + Sync + Clone`, so the model is named rather than boxed.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecKind {
    /// Every job consumes its full WCET (the grid's deterministic edge).
    AlwaysWcet,
    /// The paper's Gaussian draw over [BCET, WCET] (seeded, deterministic).
    PaperGaussian,
}

impl ExecKind {
    /// The shared model instance behind this kind.
    pub fn model(self) -> &'static dyn ExecModel {
        match self {
            ExecKind::AlwaysWcet => &AlwaysWcet,
            ExecKind::PaperGaussian => &PaperGaussian,
        }
    }
}

/// A scheduling policy as selected by a sweep cell: one of the named
/// driver policies, or the timeout-shutdown baseline (which is
/// parameterized by its timeout and therefore not a `PolicyKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    Kind(PolicyKind),
    /// FPS + power-down after the given idle timeout (no exact wake timer).
    TimeoutShutdown(Dur),
}

impl PolicyChoice {
    /// Stable report name (`"timeout-<dur>"` for the shutdown baseline).
    pub fn name(self) -> String {
        match self {
            PolicyChoice::Kind(kind) => kind.name().to_string(),
            PolicyChoice::TimeoutShutdown(t) => format!("timeout-{t}"),
        }
    }
}

impl From<PolicyKind> for PolicyChoice {
    fn from(kind: PolicyKind) -> Self {
        PolicyChoice::Kind(kind)
    }
}

/// A fully-specified simulation cell. Build with [`Cell::new`] and the
/// `with_*` modifiers; run through [`crate::run_sweep`].
#[derive(Debug, Clone)]
pub struct Cell {
    /// Label used in results ("avionics", "u0.50/s3", ...). Defaults to the
    /// task-set name.
    pub app: String,
    /// The workload, *unscaled* (the runner applies `bcet_fraction`).
    pub ts: TaskSet,
    /// The processor.
    pub cpu: CpuSpec,
    /// The scheduling policy.
    pub policy: PolicyChoice,
    /// The execution-time model.
    pub exec: ExecKind,
    /// BCET as a fraction of WCET, applied to `ts` before the run.
    pub bcet_fraction: f64,
    /// Seed for the per-job execution-time streams.
    pub seed: u64,
    /// Simulation horizon; `None` picks `default_horizon` of the scaled set.
    pub horizon: Option<Dur>,
    /// Context-switch cost (see [`SimConfig::context_switch`]).
    pub context_switch: Dur,
    /// Per-`SlowDown` scheduler cost (see [`SimConfig::ratio_overhead`]).
    pub ratio_overhead: Dur,
    /// Tick-driven kernel period; `None` = event-driven.
    pub tick: Option<Dur>,
    /// Record a full event trace (memory-heavy; off for sweeps).
    pub trace: bool,
}

impl Cell {
    /// A cell with the given workload/processor/policy at WCET (fraction
    /// 1.0), seed 0, `AlwaysWcet`, default horizon, zero overheads.
    pub fn new(ts: TaskSet, cpu: CpuSpec, policy: impl Into<PolicyChoice>) -> Self {
        Cell {
            app: ts.name().to_string(),
            ts,
            cpu,
            policy: policy.into(),
            exec: ExecKind::AlwaysWcet,
            bcet_fraction: 1.0,
            seed: 0,
            horizon: None,
            context_switch: Dur::ZERO,
            ratio_overhead: Dur::ZERO,
            tick: None,
            trace: false,
        }
    }

    pub fn with_app(mut self, app: impl Into<String>) -> Self {
        self.app = app.into();
        self
    }

    pub fn with_exec(mut self, exec: ExecKind) -> Self {
        self.exec = exec;
        self
    }

    pub fn with_bcet_fraction(mut self, frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac) && frac > 0.0,
            "BCET fraction in (0, 1]"
        );
        self.bcet_fraction = frac;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_horizon(mut self, horizon: Dur) -> Self {
        self.horizon = Some(horizon);
        self
    }

    pub fn with_context_switch(mut self, cs: Dur) -> Self {
        self.context_switch = cs;
        self
    }

    pub fn with_ratio_overhead(mut self, cost: Dur) -> Self {
        self.ratio_overhead = cost;
        self
    }

    pub fn with_tick(mut self, tick: Dur) -> Self {
        self.tick = Some(tick);
        self
    }

    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// A short human-readable label for progress/metrics lines.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/b{:.0}%/s{}",
            self.app,
            self.policy.name(),
            self.bcet_fraction * 100.0,
            self.seed
        )
    }

    /// The horizon this cell will simulate, after the runner's
    /// `horizon_scale` stretch factor.
    pub fn effective_horizon(&self, horizon_scale: f64) -> Dur {
        let base = self
            .horizon
            .unwrap_or_else(|| default_horizon(&self.ts.with_bcet_fraction(self.bcet_fraction)));
        if horizon_scale == 1.0 {
            base
        } else {
            assert!(horizon_scale > 0.0, "horizon scale must be positive");
            Dur::from_ns(((base.as_ns() as f64) * horizon_scale).round().max(1.0) as u64)
        }
    }

    /// Runs the cell serially. Every input is by-value or `Sync`, so the
    /// parallel runner calls this unchanged — byte-identical results by
    /// construction.
    pub fn run(&self, horizon_scale: f64) -> SimReport {
        let scaled = self.ts.with_bcet_fraction(self.bcet_fraction);
        let mut cfg = SimConfig::new(self.effective_horizon(horizon_scale))
            .with_seed(self.seed)
            .with_context_switch(self.context_switch)
            .with_ratio_overhead(self.ratio_overhead);
        if let Some(tick) = self.tick {
            cfg = cfg.with_tick(tick);
        }
        if self.trace {
            cfg = cfg.with_trace();
        }
        let mut report = match self.policy {
            PolicyChoice::Kind(kind) => run(&scaled, &self.cpu, kind, self.exec.model(), &cfg),
            PolicyChoice::TimeoutShutdown(timeout) => simulate(
                &scaled,
                &self.cpu,
                &mut TimeoutShutdown::new(timeout),
                self.exec.model(),
                &cfg,
            ),
        };
        report.taskset = self.app.clone();
        report
    }
}

/// The deterministic, serializable summary of one finished cell — what
/// sweep binaries write to `--json`. Contains no wall-clock data, so
/// parallel and serial runs serialize byte-identically.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Cell label (application or synthetic-set name).
    pub app: String,
    /// Policy report name.
    pub policy: String,
    /// BCET as a fraction of WCET.
    pub bcet_fraction: f64,
    /// Execution-time seed.
    pub seed: u64,
    /// Average normalized power (1.0 = flat-out busy processor).
    pub average_power: f64,
    /// Deadline misses observed.
    pub misses: usize,
    /// Kernel decision points processed (deterministic work measure).
    pub events: u64,
}

impl CellResult {
    /// Builds the summary from a cell and its finished report.
    pub fn from_report(cell: &Cell, report: &SimReport) -> Self {
        CellResult {
            app: cell.app.clone(),
            policy: cell.policy.name(),
            bcet_fraction: cell.bcet_fraction,
            seed: cell.seed,
            average_power: report.average_power(),
            misses: report.misses.len(),
            events: report.counters.events,
        }
    }
}
