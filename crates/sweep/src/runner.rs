//! The parallel sweep runner.
//!
//! Work-stealing over `std::thread::scope`: workers pull the next cell
//! index from a shared atomic counter, so load balances automatically
//! across heterogeneous cell costs with no work queue and no external
//! dependencies. Each cell simulation is a pure function of the cell
//! (seeded execution-time draws, integer-exact kernel), and results land
//! in their spec-order slot — output is byte-for-byte identical for any
//! thread count, including the serial path.

use crate::cell::CellResult;
use crate::metrics::{CellMetrics, SweepMetrics};
use crate::spec::SweepSpec;
use lpfps_kernel::report::SimReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Execution options for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads. Clamped to the cell count; 1 = serial.
    pub threads: usize,
    /// Stretch factor applied to every cell's horizon (1.0 = as specified).
    pub horizon_scale: f64,
    /// Suppress per-cell progress lines on stderr.
    pub quiet: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            horizon_scale: 1.0,
            quiet: true,
        }
    }
}

impl RunOptions {
    /// Serial execution (the reference for determinism tests).
    pub fn serial() -> Self {
        RunOptions {
            threads: 1,
            ..RunOptions::default()
        }
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_horizon_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "horizon scale must be positive");
        self.horizon_scale = scale;
        self
    }
}

/// Everything a sweep produces: full reports and deterministic summaries
/// in spec order, plus (nondeterministic) timing metrics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One full report per cell, in spec order.
    pub reports: Vec<SimReport>,
    /// One deterministic summary per cell, in spec order.
    pub results: Vec<CellResult>,
    /// Wall-clock/throughput accounting for this run.
    pub metrics: SweepMetrics,
}

/// Runs every cell of `spec` across `opts.threads` workers.
///
/// # Panics
///
/// Propagates panics from cell execution (e.g. a policy asserting on an
/// illegal directive): the scope joins all workers first, so no cell
/// result is silently dropped.
pub fn run_sweep(spec: &SweepSpec, opts: &RunOptions) -> SweepOutcome {
    let n = spec.len();
    let workers = opts.threads.clamp(1, n.max(1));
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<(SimReport, CellMetrics)>>> =
        Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let cell = &spec.cells[index];
                let cell_started = Instant::now();
                let report = cell.run(opts.horizon_scale);
                let wall = cell_started.elapsed();
                let metrics = CellMetrics {
                    index,
                    label: cell.label(),
                    wall_ns: wall.as_nanos() as u64,
                    events: report.counters.events,
                };
                if !opts.quiet {
                    eprintln!(
                        "[{:>4}/{n}] {:<36} {:>9.3?}",
                        index + 1,
                        metrics.label,
                        wall
                    );
                }
                slots.lock().expect("no worker panicked holding the lock")[index] =
                    Some((report, metrics));
            });
        }
    });

    let wall_ns = started.elapsed().as_nanos() as u64;
    let mut reports = Vec::with_capacity(n);
    let mut results = Vec::with_capacity(n);
    let mut per_cell = Vec::with_capacity(n);
    for (index, slot) in slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .enumerate()
    {
        let (report, metrics) =
            slot.expect("every index below n was claimed by exactly one worker");
        results.push(CellResult::from_report(&spec.cells[index], &report));
        reports.push(report);
        per_cell.push(metrics);
    }
    let total_events = per_cell.iter().map(|m| m.events).sum();

    SweepOutcome {
        reports,
        results,
        metrics: SweepMetrics {
            sweep: spec.name.clone(),
            cells: n,
            threads: workers,
            wall_ns,
            total_events,
            per_cell,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, ExecKind};
    use lpfps::driver::PolicyKind;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_tasks::task::Task;
    use lpfps_tasks::taskset::TaskSet;
    use lpfps_tasks::time::Dur;

    fn spec() -> SweepSpec {
        let ts = TaskSet::rate_monotonic(
            "t",
            vec![
                Task::new("a", Dur::from_us(50), Dur::from_us(10)),
                Task::new("b", Dur::from_us(100), Dur::from_us(30)),
            ],
        );
        let mut s = SweepSpec::new("test");
        for seed in 0..6 {
            s.push(
                Cell::new(ts.clone(), CpuSpec::arm8(), PolicyKind::Lpfps)
                    .with_exec(ExecKind::PaperGaussian)
                    .with_bcet_fraction(0.4)
                    .with_seed(seed),
            );
        }
        s
    }

    #[test]
    fn results_arrive_in_spec_order() {
        let out = run_sweep(&spec(), &RunOptions::serial());
        assert_eq!(out.results.len(), 6);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.seed, i as u64);
        }
        assert_eq!(out.metrics.cells, 6);
        assert_eq!(
            out.metrics.total_events,
            out.reports.iter().map(|r| r.counters.events).sum::<u64>()
        );
        assert!(out.metrics.total_events > 0);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let spec = spec();
        let serial = run_sweep(&spec, &RunOptions::serial());
        for threads in 2..=4 {
            let parallel = run_sweep(&spec, &RunOptions::serial().with_threads(threads));
            for (a, b) in serial.reports.iter().zip(parallel.reports.iter()) {
                assert_eq!(a.counters, b.counters);
                assert_eq!(a.energy.total_energy(), b.energy.total_energy());
                assert_eq!(a.responses, b.responses);
            }
        }
    }

    #[test]
    fn horizon_scale_stretches_the_run() {
        let spec = spec();
        let short = run_sweep(&spec, &RunOptions::serial().with_horizon_scale(0.5));
        let long = run_sweep(&spec, &RunOptions::serial());
        assert!(short.metrics.total_events < long.metrics.total_events);
        assert!(short.reports[0].horizon < long.reports[0].horizon);
    }

    #[test]
    fn threads_are_clamped_to_cell_count() {
        let out = run_sweep(&spec(), &RunOptions::serial().with_threads(64));
        assert_eq!(out.metrics.threads, 6);
    }
}
