//! The parallel sweep runner.
//!
//! Work-stealing over `std::thread::scope`: workers pull the next cell
//! index from a shared atomic counter, so load balances automatically
//! across heterogeneous cell costs with no work queue and no external
//! dependencies. Each cell simulation is a pure function of the cell
//! (seeded execution-time draws, integer-exact kernel), and results land
//! in their spec-order slot — output is byte-for-byte identical for any
//! thread count, including the serial path.
//!
//! Cells are failure-isolated: a cell the simulation rejects with a typed
//! [`SimError`](lpfps_kernel::error::SimError) — and, as a last line of
//! defense, a cell that *panics* — is recorded as
//! [`CellStatus::Failed`](crate::cell::CellStatus) carrying a structured
//! [`CellError`] (error kind, message, and the cell's grid coordinates),
//! and every other cell still runs to completion. Failure is
//! deterministic (same pure function), so even a sweep containing failing
//! cells serializes byte-identically at any thread count, and
//! [`SweepMetrics::failure_kinds`] counts failures per error kind. An
//! optional *soft* per-cell timeout flags cells that exceed their
//! wall-clock budget and grants one retry; since results are
//! deterministic, the timeout affects only the (nondeterministic)
//! metrics, never the results.

use crate::cell::{Cell, CellError, CellHistograms, CellResult, CellStatus};
use crate::metrics::{CellMetrics, SweepMetrics};
use crate::spec::SweepSpec;
use lpfps_kernel::engine::SimWorkspace;
use lpfps_kernel::report::SimReport;
use lpfps_kernel::steady::FastForwardStats;
use lpfps_obs::{JobRecorder, LogHistogram};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Execution options for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads. Clamped to the cell count; 1 = serial.
    pub threads: usize,
    /// Stretch factor applied to every cell's horizon (1.0 = as specified).
    pub horizon_scale: f64,
    /// Suppress per-cell progress lines on stderr.
    pub quiet: bool,
    /// Soft wall-clock budget per cell: a completed cell that exceeded it
    /// is re-run once (transient contention gets a second chance) and
    /// flagged `timed_out` in its [`CellMetrics`]. `None` disables the
    /// check. Deterministic results are unaffected either way.
    pub cell_timeout: Option<Duration>,
    /// After the sweep, re-run this many evenly-spaced completed cells
    /// with tracing and push each trace through the oracle's invariant
    /// checker ([`crate::check`]); any violation panics with the cell and
    /// trace position. `0` disables the pass (the default).
    pub check_sample: usize,
    /// Force every cell through the full event-by-event simulation,
    /// disabling the kernel's steady-state fast-forward. Results are
    /// bit-identical either way (the kernel guarantees it); the flag
    /// exists for A/B timing and differential testing.
    pub no_fast_forward: bool,
    /// Attach a [`JobRecorder`] probe to every cell and aggregate per-job
    /// response-time and energy histograms (per-cell summaries in
    /// [`CellResult::hist`], sweep-wide merges in
    /// [`SweepMetrics::response_ns`]/[`SweepMetrics::job_energy_fj`]).
    /// Implies full simulation for every cell — a probe only sees events
    /// the kernel actually simulates, so the steady-state fast-forward is
    /// disabled to keep histogram coverage complete. The `SimReport`s are
    /// bit-identical either way (the kernel's zero-cost-observability
    /// contract), and the histograms themselves merge associatively, so
    /// all of it is byte-identical across thread counts.
    pub collect_histograms: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            horizon_scale: 1.0,
            quiet: true,
            cell_timeout: None,
            check_sample: 0,
            no_fast_forward: false,
            collect_histograms: false,
        }
    }
}

impl RunOptions {
    /// Serial execution (the reference for determinism tests).
    pub fn serial() -> Self {
        RunOptions {
            threads: 1,
            ..RunOptions::default()
        }
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_horizon_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "horizon scale must be positive");
        self.horizon_scale = scale;
        self
    }

    /// Sets the soft per-cell wall-clock budget.
    pub fn with_cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// Enables the post-sweep invariant sampling pass over `n` cells.
    pub fn with_check_sample(mut self, n: usize) -> Self {
        self.check_sample = n;
        self
    }

    /// Disables the steady-state fast-forward for every cell.
    pub fn with_no_fast_forward(mut self) -> Self {
        self.no_fast_forward = true;
        self
    }

    /// Enables per-job histogram collection (see
    /// [`RunOptions::collect_histograms`]).
    pub fn with_histograms(mut self) -> Self {
        self.collect_histograms = true;
        self
    }
}

/// Everything a sweep produces: full reports and deterministic summaries
/// in spec order, plus (nondeterministic) timing metrics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One full report per cell, in spec order; `None` where the cell
    /// failed (see the matching [`CellResult::status`]).
    pub reports: Vec<Option<SimReport>>,
    /// One deterministic summary per cell, in spec order — including
    /// failed cells, whose [`CellStatus::Failed`](crate::cell::CellStatus)
    /// carries the structured [`CellError`].
    pub results: Vec<CellResult>,
    /// Wall-clock/throughput accounting for this run.
    pub metrics: SweepMetrics,
}

impl SweepOutcome {
    /// The full report of cell `index`, if it completed.
    pub fn report(&self, index: usize) -> Option<&SimReport> {
        self.reports.get(index)?.as_ref()
    }

    /// True when every cell completed.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.status.is_ok())
    }

    /// The summaries of cells that failed, in spec order.
    pub fn failures(&self) -> impl Iterator<Item = &CellResult> {
        self.results.iter().filter(|r| !r.status.is_ok())
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked with a non-string payload".to_string()
    }
}

/// Per-cell raw histograms carried from the worker to the assembly loop
/// (response-time, per-job energy).
type CellHists = Option<(LogHistogram, LogHistogram)>;

/// Runs one cell behind the containment boundary: a typed [`SimError`]
/// and a caught panic both land as a structured [`CellError`] (the panic
/// under kind `"panic"`), so the sweep never aborts on a bad cell.
///
/// The returned [`FastForwardStats`] are the workspace's side-channel for
/// this run — read immediately after a completed cell (a panicked cell
/// would leave the previous cell's stats behind, so failures report
/// zeros).
///
/// With `hist = true` the cell runs with a [`JobRecorder`] probe attached
/// and the steady-state fast-forward forced off (a probe only sees
/// simulated events); the raw histograms ride back alongside the report.
fn run_cell(
    cell: &Cell,
    horizon_scale: f64,
    ws: &mut SimWorkspace,
    force_full: bool,
    hist: bool,
) -> (Result<SimReport, CellError>, FastForwardStats, CellHists) {
    if hist {
        let mut rec = JobRecorder::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            cell.run_probed_opts(horizon_scale, ws, true, &mut rec)
        }));
        match outcome {
            Ok(Ok(report)) => {
                let ff = ws.fast_forward_stats();
                let (resp, energy) = rec.into_histograms();
                (Ok(report), ff, Some((resp, energy)))
            }
            Ok(Err(err)) => (
                Err(CellError::from_sim(cell, &err)),
                FastForwardStats::default(),
                None,
            ),
            Err(payload) => (
                Err(CellError::from_panic(cell, panic_message(payload))),
                FastForwardStats::default(),
                None,
            ),
        }
    } else {
        match catch_unwind(AssertUnwindSafe(|| {
            cell.run_opts(horizon_scale, ws, force_full)
        })) {
            Ok(Ok(report)) => (Ok(report), ws.fast_forward_stats(), None),
            Ok(Err(err)) => (
                Err(CellError::from_sim(cell, &err)),
                FastForwardStats::default(),
                None,
            ),
            Err(payload) => (
                Err(CellError::from_panic(cell, panic_message(payload))),
                FastForwardStats::default(),
                None,
            ),
        }
    }
}

/// Runs every cell of `spec` across `opts.threads` workers.
///
/// Failures inside cell execution — typed
/// [`SimError`](lpfps_kernel::error::SimError)s and panics alike
/// — do **not** propagate: the offending cell is reported as
/// [`CellStatus::Failed`](crate::cell::CellStatus) with a structured
/// [`CellError`] and the sweep completes. Only runner-internal invariant
/// violations (a poisoned slot lock, an unclaimed slot) still panic.
pub fn run_sweep(spec: &SweepSpec, opts: &RunOptions) -> SweepOutcome {
    let n = spec.len();
    let workers = opts.threads.clamp(1, n.max(1));
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    type Slot = (Result<SimReport, CellError>, CellMetrics, CellHists);
    let slots: Mutex<Vec<Option<Slot>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One workspace per worker for the whole batch: kernel
                // queue/task buffers are allocated O(threads) per sweep,
                // not O(cells). A panicking cell leaves the workspace
                // empty-but-valid (its buffers were moved into the dead
                // engine), so the next cell simply reallocates.
                let mut ws = SimWorkspace::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let cell = &spec.cells[index];
                    let cell_started = Instant::now();
                    let mut attempts = 1;
                    let (mut outcome, mut ff, mut hists) = run_cell(
                        cell,
                        opts.horizon_scale,
                        &mut ws,
                        opts.no_fast_forward,
                        opts.collect_histograms,
                    );
                    let mut wall = cell_started.elapsed();
                    let mut timed_out = false;
                    if let Some(budget) = opts.cell_timeout {
                        // Soft timeout: one bounded retry for completed cells
                        // that blew their budget (failures — typed errors and
                        // panics — are deterministic and never retried). The
                        // result cannot change — only the recorded timing does.
                        if outcome.is_ok() && wall > budget {
                            timed_out = true;
                            attempts = 2;
                            let retry_started = Instant::now();
                            (outcome, ff, hists) = run_cell(
                                cell,
                                opts.horizon_scale,
                                &mut ws,
                                opts.no_fast_forward,
                                opts.collect_histograms,
                            );
                            wall = retry_started.elapsed();
                        }
                    }
                    let metrics = CellMetrics {
                        index,
                        label: cell.label(),
                        wall_ns: wall.as_nanos() as u64,
                        events: outcome.as_ref().map_or(0, |r| r.counters.events),
                        attempts,
                        timed_out,
                        cycles_detected: ff.cycles_detected,
                        events_skipped: ff.events_skipped,
                    };
                    if !opts.quiet {
                        match &outcome {
                            Ok(_) => eprintln!(
                                "[{:>4}/{n}] {:<36} {:>9.3?}{}",
                                index + 1,
                                metrics.label,
                                wall,
                                if timed_out {
                                    "  (over budget, retried)"
                                } else {
                                    ""
                                }
                            ),
                            Err(error) => eprintln!(
                                "[{:>4}/{n}] {:<36} FAILED ({}): {}",
                                index + 1,
                                metrics.label,
                                error.kind,
                                error.message
                            ),
                        }
                    }
                    slots.lock().expect("no worker panicked holding the lock")[index] =
                        Some((outcome, metrics, hists));
                }
            });
        }
    });

    let wall_ns = started.elapsed().as_nanos() as u64;
    let mut reports = Vec::with_capacity(n);
    let mut results = Vec::with_capacity(n);
    let mut per_cell = Vec::with_capacity(n);
    // Sweep-wide merges run here, in spec order — but the merge is
    // associative and commutative, so any order (and any worker
    // partition) would produce the identical histograms.
    let mut sweep_response = LogHistogram::new();
    let mut sweep_energy = LogHistogram::new();
    for (index, slot) in slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .enumerate()
    {
        let (outcome, metrics, hists) =
            slot.expect("every index below n was claimed by exactly one worker");
        match outcome {
            Ok(report) => {
                let mut result = CellResult::from_report(&spec.cells[index], &report);
                if let Some((resp, energy)) = &hists {
                    result.hist = Some(CellHistograms {
                        response_ns: resp.summary(),
                        job_energy_fj: energy.summary(),
                    });
                    sweep_response.merge(resp);
                    sweep_energy.merge(energy);
                }
                results.push(result);
                reports.push(Some(report));
            }
            Err(error) => {
                results.push(CellResult::failed(&spec.cells[index], error));
                reports.push(None);
            }
        }
        per_cell.push(metrics);
    }
    let total_events = per_cell.iter().map(|m| m.events).sum();
    let cycles_detected = per_cell.iter().map(|m| m.cycles_detected).sum();
    let events_skipped = per_cell.iter().map(|m| m.events_skipped).sum();
    let failures = results.iter().filter(|r| !r.status.is_ok()).count();
    let mut failure_kinds: BTreeMap<String, usize> = BTreeMap::new();
    for r in &results {
        if let CellStatus::Failed { error } = &r.status {
            *failure_kinds.entry(error.kind.clone()).or_insert(0) += 1;
        }
    }
    let mut cell_wall = LogHistogram::new();
    for m in &per_cell {
        cell_wall.record(m.wall_ns);
    }

    let outcome = SweepOutcome {
        reports,
        results,
        metrics: SweepMetrics {
            sweep: spec.name.clone(),
            cells: n,
            threads: workers,
            wall_ns,
            total_events,
            cycles_detected,
            events_skipped,
            failures,
            failure_kinds,
            cell_wall_ns: cell_wall.summary(),
            response_ns: opts.collect_histograms.then(|| sweep_response.summary()),
            job_energy_fj: opts.collect_histograms.then(|| sweep_energy.summary()),
            per_cell,
        },
    };

    if opts.check_sample > 0 {
        let checks = crate::check::check_sampled_cells(
            spec,
            &outcome,
            opts.check_sample,
            opts.horizon_scale,
        );
        let mut broken = 0;
        for check in &checks {
            if !opts.quiet {
                eprintln!(
                    "[check] {:<36} {}",
                    check.label,
                    if check.is_ok() {
                        "ok".to_string()
                    } else {
                        format!("{} violations", check.violations.len())
                    }
                );
            }
            for v in &check.violations {
                eprintln!("[check] cell {} ({}): {v}", check.index, check.label);
                broken += 1;
            }
        }
        assert!(
            broken == 0,
            "invariant check failed: {broken} violations across {} sampled cells (see stderr)",
            checks.len()
        );
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellStatus, ExecKind};
    use lpfps::driver::PolicyKind;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_tasks::task::Task;
    use lpfps_tasks::taskset::TaskSet;
    use lpfps_tasks::time::Dur;

    fn spec() -> SweepSpec {
        let ts = TaskSet::rate_monotonic(
            "t",
            vec![
                Task::new("a", Dur::from_us(50), Dur::from_us(10)),
                Task::new("b", Dur::from_us(100), Dur::from_us(30)),
            ],
        );
        let mut s = SweepSpec::new("test");
        for seed in 0..6 {
            s.push(
                Cell::new(ts.clone(), CpuSpec::arm8(), PolicyKind::Lpfps)
                    .with_exec(ExecKind::PaperGaussian)
                    .with_bcet_fraction(0.4)
                    .with_seed(seed),
            );
        }
        s
    }

    #[test]
    fn results_arrive_in_spec_order() {
        let out = run_sweep(&spec(), &RunOptions::serial());
        assert_eq!(out.results.len(), 6);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.seed, i as u64);
        }
        assert_eq!(out.metrics.cells, 6);
        assert_eq!(out.metrics.failures, 0);
        assert!(out.all_ok());
        assert_eq!(
            out.metrics.total_events,
            out.reports
                .iter()
                .flatten()
                .map(|r| r.counters.events)
                .sum::<u64>()
        );
        assert!(out.metrics.total_events > 0);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let spec = spec();
        let serial = run_sweep(&spec, &RunOptions::serial());
        for threads in 2..=4 {
            let parallel = run_sweep(&spec, &RunOptions::serial().with_threads(threads));
            for (a, b) in serial.reports.iter().zip(parallel.reports.iter()) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.counters, b.counters);
                assert_eq!(a.energy.total_energy(), b.energy.total_energy());
                assert_eq!(a.responses, b.responses);
            }
        }
    }

    /// Deterministic cells (AlwaysWcet) settle into a steady state, so
    /// the fast-forward engages — and must not move a single result bit
    /// relative to `--no-fast-forward`.
    #[test]
    fn fast_forward_engages_and_results_match_forced_full() {
        let ts = TaskSet::rate_monotonic(
            "t",
            vec![
                Task::new("a", Dur::from_us(50), Dur::from_us(10)),
                Task::new("b", Dur::from_us(100), Dur::from_us(30)),
            ],
        );
        let mut spec = SweepSpec::new("ff");
        spec.push(Cell::new(ts, CpuSpec::arm8(), PolicyKind::Lpfps));
        let opts = RunOptions::serial().with_horizon_scale(8.0);
        let fast = run_sweep(&spec, &opts);
        let full = run_sweep(&spec, &opts.clone().with_no_fast_forward());
        assert!(fast.metrics.cycles_detected > 0, "detector must engage");
        assert!(fast.metrics.events_skipped > 0);
        assert_eq!(full.metrics.cycles_detected, 0, "flag must disable it");
        assert_eq!(full.metrics.events_skipped, 0);
        let a = serde_json::to_string(&fast.results).unwrap();
        let b = serde_json::to_string(&full.results).unwrap();
        assert_eq!(a, b, "fast-forward must not change deterministic results");
        let (ra, rb) = (fast.report(0).unwrap(), full.report(0).unwrap());
        assert_eq!(ra.counters, rb.counters);
        assert_eq!(
            ra.energy.total_energy().to_bits(),
            rb.energy.total_energy().to_bits()
        );
    }

    /// The tentpole determinism claim: with histogram collection on, the
    /// results payload (now carrying per-cell summaries) and the merged
    /// sweep-wide percentiles are byte-identical at every thread count.
    #[test]
    fn histograms_are_byte_identical_across_thread_counts() {
        let spec = spec();
        let base = run_sweep(&spec, &RunOptions::serial().with_histograms());
        let ref_results = serde_json::to_string(&base.results).unwrap();
        let ref_resp = base.metrics.response_ns.expect("histograms collected");
        let ref_energy = base.metrics.job_energy_fj.expect("histograms collected");
        assert!(ref_resp.count > 0 && ref_energy.count > 0);
        for threads in 2..=8 {
            let out = run_sweep(
                &spec,
                &RunOptions::serial().with_histograms().with_threads(threads),
            );
            let json = serde_json::to_string(&out.results).unwrap();
            assert_eq!(json, ref_results, "results diverged at {threads} threads");
            assert_eq!(out.metrics.response_ns.unwrap(), ref_resp);
            assert_eq!(out.metrics.job_energy_fj.unwrap(), ref_energy);
        }
    }

    /// Attaching the histogram probe must not move a bit of the
    /// deterministic report — the kernel's zero-cost-observability
    /// contract, exercised through the runner.
    #[test]
    fn histogram_collection_leaves_reports_untouched() {
        let spec = spec();
        let plain = run_sweep(&spec, &RunOptions::serial());
        let probed = run_sweep(&spec, &RunOptions::serial().with_histograms());
        for (a, b) in plain.reports.iter().zip(probed.reports.iter()) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
        // Without `--hist` every cell's summary slot stays empty; with it,
        // every completed cell gets one, counting that cell's completions.
        assert!(plain.results.iter().all(|r| r.hist.is_none()));
        for (result, report) in probed.results.iter().zip(probed.reports.iter()) {
            let hist = result.hist.expect("completed cell has histograms");
            assert_eq!(
                hist.response_ns.count,
                report.as_ref().unwrap().counters.completions
            );
            assert_eq!(hist.response_ns.count, hist.job_energy_fj.count);
        }
    }

    #[test]
    fn horizon_scale_stretches_the_run() {
        let spec = spec();
        let short = run_sweep(&spec, &RunOptions::serial().with_horizon_scale(0.5));
        let long = run_sweep(&spec, &RunOptions::serial());
        assert!(short.metrics.total_events < long.metrics.total_events);
        assert!(short.report(0).unwrap().horizon < long.report(0).unwrap().horizon);
    }

    #[test]
    fn threads_are_clamped_to_cell_count() {
        let out = run_sweep(&spec(), &RunOptions::serial().with_threads(64));
        assert_eq!(out.metrics.threads, 6);
    }

    /// A spec whose middle cell always fails (zero horizon is rejected by
    /// the kernel's `SimConfig` validation with a typed error).
    fn spec_with_poison() -> SweepSpec {
        let mut s = spec();
        let bad = s.cells[2].clone().with_horizon(Dur::ZERO);
        s.cells[2] = bad;
        s
    }

    #[test]
    fn failing_cell_is_isolated() {
        let spec = spec_with_poison();
        let out = run_sweep(&spec, &RunOptions::serial());
        assert_eq!(out.results.len(), 6);
        assert_eq!(out.metrics.failures, 1);
        assert_eq!(
            out.metrics.failure_kinds.get("invalid-config").copied(),
            Some(1)
        );
        assert_eq!(out.metrics.failure_kinds.len(), 1);
        assert!(!out.all_ok());
        assert!(out.reports[2].is_none());
        assert!(out.report(2).is_none());
        match &out.results[2].status {
            CellStatus::Failed { error } => {
                assert_eq!(error.kind, "invalid-config");
                assert!(
                    error.message.contains("horizon"),
                    "error message should name the offending field, got: {}",
                    error.message
                );
                // The error is self-locating: it carries the cell's
                // coordinates in the sweep grid.
                assert_eq!(error.app, "t");
                assert_eq!(error.policy, "lpfps");
                assert_eq!(error.seed, 2);
            }
            CellStatus::Ok => panic!("poison cell must fail"),
        }
        assert_eq!(out.results[2].events, 0);
        assert_eq!(out.failures().count(), 1);
        // Every other cell still ran to completion.
        for (i, r) in out.results.iter().enumerate() {
            if i != 2 {
                assert!(r.status.is_ok());
                assert!(out.reports[i].is_some());
            }
        }
    }

    /// The last line of defense: a genuine panic inside cell execution
    /// (not a typed error) is still caught and lands under the reserved
    /// `"panic"` kind. Driven through `effective_horizon`'s scale
    /// assertion by building `RunOptions` with a field literal, bypassing
    /// the builder's own validation.
    #[test]
    fn genuine_panic_maps_to_the_panic_kind() {
        let opts = RunOptions {
            horizon_scale: -1.0,
            ..RunOptions::serial()
        };
        let out = run_sweep(&spec(), &opts);
        assert_eq!(out.metrics.failures, 6);
        assert_eq!(out.metrics.failure_kinds.get("panic").copied(), Some(6));
        for r in &out.results {
            match &r.status {
                CellStatus::Failed { error } => {
                    assert_eq!(error.kind, "panic");
                    assert!(error.message.contains("horizon scale"));
                }
                CellStatus::Ok => panic!("every cell must fail under a negative scale"),
            }
        }
    }

    #[test]
    fn failing_sweeps_stay_deterministic_across_thread_counts() {
        let spec = spec_with_poison();
        let reference = serde_json::to_string(&run_sweep(&spec, &RunOptions::serial()).results)
            .expect("results serialize");
        for threads in 1..=8 {
            let out = run_sweep(&spec, &RunOptions::serial().with_threads(threads));
            let json = serde_json::to_string(&out.results).expect("results serialize");
            assert_eq!(json, reference, "results diverged at {threads} threads");
        }
    }

    #[test]
    fn soft_timeout_retries_once_without_changing_results() {
        let spec = spec();
        let plain = run_sweep(&spec, &RunOptions::serial());
        // A zero budget forces every cell over it: each gets exactly one
        // retry, flagged in metrics, with byte-identical results.
        let timed = run_sweep(
            &spec,
            &RunOptions::serial().with_cell_timeout(Duration::ZERO),
        );
        for m in &timed.metrics.per_cell {
            assert_eq!(m.attempts, 2);
            assert!(m.timed_out);
        }
        for m in &plain.metrics.per_cell {
            assert_eq!(m.attempts, 1);
            assert!(!m.timed_out);
        }
        let a = serde_json::to_string(&plain.results).unwrap();
        let b = serde_json::to_string(&timed.results).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn panicking_cells_are_never_retried() {
        let spec = spec_with_poison();
        let out = run_sweep(
            &spec,
            &RunOptions::serial().with_cell_timeout(Duration::ZERO),
        );
        assert_eq!(out.metrics.per_cell[2].attempts, 1);
        assert!(!out.metrics.per_cell[2].timed_out);
        assert_eq!(out.metrics.failures, 1);
    }
}
