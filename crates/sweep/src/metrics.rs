//! Sweep observability: wall-clock and throughput accounting.
//!
//! Metrics are *not* part of the deterministic results: they contain
//! wall-clock timings that vary run to run, so they are printed to stderr
//! (or written to a separate `--metrics` file), never mixed into the
//! `--json` results payload.

use lpfps_obs::HistSummary;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Duration;

/// Timing for one executed cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellMetrics {
    /// Position in the spec (results index).
    pub index: usize,
    /// Human-readable cell label (`app/policy/b50%/s3`).
    pub label: String,
    /// Wall-clock time for this cell, nanoseconds.
    pub wall_ns: u64,
    /// Kernel decision points the cell processed (0 for failed cells).
    pub events: u64,
    /// Times the cell was executed (2 after a soft-timeout retry).
    pub attempts: u32,
    /// True when the first attempt exceeded the soft per-cell budget.
    pub timed_out: bool,
    /// Whole hyperperiods the kernel's steady-state detector skipped
    /// (0 when the cell was ineligible or no recurrence was found).
    pub cycles_detected: u64,
    /// Decision points covered by extrapolation instead of simulation.
    /// `events` already includes them — this is how many were free.
    pub events_skipped: u64,
}

impl CellMetrics {
    /// Events per second for this cell alone.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// Whole-sweep summary emitted by the runner.
#[derive(Debug, Clone, Serialize)]
pub struct SweepMetrics {
    /// Sweep name (from the spec).
    pub sweep: String,
    /// Cells executed.
    pub cells: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time, nanoseconds.
    pub wall_ns: u64,
    /// Total kernel decision points across all cells.
    pub total_events: u64,
    /// Total hyperperiods skipped by steady-state fast-forward.
    pub cycles_detected: u64,
    /// Total decision points extrapolated instead of simulated (already
    /// counted inside `total_events`).
    pub events_skipped: u64,
    /// Cells that finished [`CellStatus::Failed`](crate::cell::CellStatus).
    pub failures: usize,
    /// Failure count per error kind (`"invalid-config"`,
    /// `"budget-exhausted"`, ..., `"panic"`), sorted by kind. Empty for a
    /// clean sweep. Deterministic, unlike the timings — derived from the
    /// results, not the clock.
    pub failure_kinds: BTreeMap<String, usize>,
    /// Log-histogram summary of per-cell wall-clock times (nanoseconds).
    /// Nondeterministic like every other timing here.
    pub cell_wall_ns: HistSummary,
    /// Sweep-wide job response-time percentiles (nanoseconds), merged
    /// associatively across all completed cells in spec order — present
    /// only when histogram collection (`--hist`) was on. *Deterministic*:
    /// byte-identical across thread counts.
    pub response_ns: Option<HistSummary>,
    /// Sweep-wide per-job energy percentiles (femtojoules); same
    /// collection and determinism contract as `response_ns`.
    pub job_energy_fj: Option<HistSummary>,
    /// Per-cell timings, in spec order.
    pub per_cell: Vec<CellMetrics>,
}

impl SweepMetrics {
    /// Cells completed per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.cells as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Kernel decision points processed per wall-clock second, across all
    /// workers — the sweep engine's headline throughput number.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.total_events as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// End-to-end wall time.
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_ns)
    }

    /// A compact multi-line summary: totals plus the slowest cells.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep `{}`: {} cells on {} thread{} in {:.3?} — {:.1} cells/s, {:.2}M events/s ({} events)",
            self.sweep,
            self.cells,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.wall(),
            self.cells_per_sec(),
            self.events_per_sec() / 1e6,
            self.total_events,
        );
        if self.cycles_detected > 0 {
            let _ = writeln!(
                out,
                "  fast-forward: {} hyperperiod{} skipped, {} of those events extrapolated",
                self.cycles_detected,
                if self.cycles_detected == 1 { "" } else { "s" },
                self.events_skipped,
            );
        }
        if let (Some(resp), Some(energy)) = (&self.response_ns, &self.job_energy_fj) {
            let _ = writeln!(
                out,
                "  response: p50 {:.1}us / p95 {:.1}us / p99 {:.1}us / max {:.1}us over {} jobs",
                resp.p50 as f64 / 1e3,
                resp.p95 as f64 / 1e3,
                resp.p99 as f64 / 1e3,
                resp.max as f64 / 1e3,
                resp.count,
            );
            let _ = writeln!(
                out,
                "  job energy: p50 {:.3}uJ / p95 {:.3}uJ / p99 {:.3}uJ / max {:.3}uJ",
                energy.p50 as f64 / 1e9,
                energy.p95 as f64 / 1e9,
                energy.p99 as f64 / 1e9,
                energy.max as f64 / 1e9,
            );
        }
        if self.failures > 0 {
            let kinds: Vec<String> = self
                .failure_kinds
                .iter()
                .map(|(kind, count)| format!("{kind}: {count}"))
                .collect();
            let _ = writeln!(
                out,
                "  {} cell{} FAILED [{}] (see statuses in the results payload)",
                self.failures,
                if self.failures == 1 { "" } else { "s" },
                kinds.join(", "),
            );
        }
        let mut slowest: Vec<&CellMetrics> = self.per_cell.iter().collect();
        slowest.sort_by_key(|m| std::cmp::Reverse(m.wall_ns));
        for m in slowest.iter().take(3) {
            let _ = writeln!(
                out,
                "  slowest: {:<36} {:>9.3?}  {:>7.2}M events/s",
                m.label,
                Duration::from_nanos(m.wall_ns),
                m.events_per_sec() / 1e6,
            );
        }
        out
    }
}
