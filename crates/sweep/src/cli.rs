//! The shared experiment CLI.
//!
//! Every sweep binary used to scan `std::env::args` by hand, which
//! silently ignored typos (`--jsn out.json` ran the whole sweep and wrote
//! nothing) and only discovered a missing `--json` path when the iterator
//! happened to reach it. This module gives all binaries one strict parser:
//!
//! * uniform flags: `--json PATH`, `--metrics PATH`, `--threads N`,
//!   `--seeds N`, `--horizon-scale F`, `--check N`, `--cores M`,
//!   `--partitioner NAME`, `--quiet`, `--help`;
//! * binary-specific flags declared up front (`opt` / `switch`);
//! * *errors* on unknown flags, missing values, and unparsable numbers.

use crate::metrics::SweepMetrics;
use crate::runner::{RunOptions, SweepOutcome};
use crate::spec::SweepSpec;
use lpfps_kernel::engine::SimWorkspace;
use lpfps_tasks::time::Time;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// The task-to-core allocator names multicore-aware binaries accept for
/// `--partitioner`. The authoritative list is
/// `lpfps_multi::PartitionerKind` (which `lpfps-sweep` cannot depend on —
/// the multicore crate sits *above* the sweep layer); a cross-check test
/// in `lpfps-multi` pins the two lists against each other.
pub const PARTITIONER_NAMES: [&str; 4] = ["ffd", "bfd", "wfd", "rta-ff"];

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag the binary did not declare (typos land here).
    UnknownFlag(String),
    /// A valued flag appeared last with no value after it.
    MissingValue(String),
    /// A value that failed to parse (`--threads x`).
    BadValue {
        flag: String,
        value: String,
        expected: &'static str,
    },
    /// A positional argument; sweep binaries take none.
    UnexpectedPositional(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` requires a value"),
            CliError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "flag `{flag}`: `{value}` is not a valid {expected}"),
            CliError::UnexpectedPositional(arg) => {
                write!(f, "unexpected positional argument `{arg}`")
            }
        }
    }
}

impl std::error::Error for CliError {}

#[derive(Debug, Clone)]
struct OptSpec {
    flag: &'static str,
    value_name: &'static str,
    help: &'static str,
    default: Option<&'static str>,
}

#[derive(Debug, Clone)]
struct SwitchSpec {
    flag: &'static str,
    help: &'static str,
}

/// Builder for a sweep binary's command line.
#[derive(Debug, Clone)]
pub struct Cli {
    name: &'static str,
    about: &'static str,
    default_seeds: u64,
    opts: Vec<OptSpec>,
    switches: Vec<SwitchSpec>,
}

impl Cli {
    /// A CLI with the uniform sweep flags and no binary-specific ones.
    pub fn new(name: &'static str, about: &'static str) -> Self {
        Cli {
            name,
            about,
            default_seeds: 1,
            opts: Vec::new(),
            switches: Vec::new(),
        }
    }

    /// Default for `--seeds` when the flag is absent.
    pub fn default_seeds(mut self, seeds: u64) -> Self {
        self.default_seeds = seeds;
        self
    }

    /// Declares a binary-specific valued flag (e.g. `--app NAME`).
    pub fn opt(mut self, flag: &'static str, value_name: &'static str, help: &'static str) -> Self {
        self.opts.push(OptSpec {
            flag,
            value_name,
            help,
            default: None,
        });
        self
    }

    /// Declares a binary-specific valued flag with a default.
    pub fn opt_default(
        mut self,
        flag: &'static str,
        value_name: &'static str,
        help: &'static str,
        default: &'static str,
    ) -> Self {
        self.opts.push(OptSpec {
            flag,
            value_name,
            help,
            default: Some(default),
        });
        self
    }

    /// Declares a binary-specific boolean flag (e.g. `--gantt`).
    pub fn switch(mut self, flag: &'static str, help: &'static str) -> Self {
        self.switches.push(SwitchSpec { flag, help });
        self
    }

    /// The usage text.
    pub fn usage(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.name, self.about);
        let _ = writeln!(out, "\nUsage: {} [OPTIONS]", self.name);
        let _ = writeln!(out, "\nOptions:");
        let mut row = |flag: String, help: &str| {
            let _ = writeln!(out, "  {flag:<28} {help}");
        };
        for o in &self.opts {
            let help = match o.default {
                Some(d) => format!("{} [default: {d}]", o.help),
                None => o.help.to_string(),
            };
            row(format!("{} <{}>", o.flag, o.value_name), &help);
        }
        for s in &self.switches {
            row(s.flag.to_string(), s.help);
        }
        row(
            "--json <PATH>".into(),
            "write deterministic results as pretty JSON",
        );
        row(
            "--metrics <PATH>".into(),
            "write SweepMetrics (wall times, throughput) as JSON",
        );
        row(
            "--threads <N>".into(),
            "worker threads [default: all cores]",
        );
        row(
            "--seeds <N>".into(),
            &format!(
                "execution-time seeds per cell (0..N) [default: {}]",
                self.default_seeds
            ),
        );
        row(
            "--horizon-scale <F>".into(),
            "stretch every cell's horizon by F [default: 1.0]",
        );
        row(
            "--check <N>".into(),
            "invariant-check N sampled cells after the sweep [default: 0 = off]",
        );
        row(
            "--cores <M>".into(),
            "simulate M identical cores (multicore-aware binaries) [default: grid]",
        );
        row(
            "--partitioner <NAME>".into(),
            "task-to-core allocator: ffd, bfd, wfd, rta-ff [default: grid]",
        );
        row(
            "--no-fast-forward".into(),
            "disable steady-state fast-forward (results are identical; timing only)",
        );
        row(
            "--hist".into(),
            "collect per-job response/energy histograms (deterministic percentiles)",
        );
        row(
            "--trace-out <PATH>".into(),
            "export the first completed cell's schedule as Perfetto/Chrome-trace JSON",
        );
        row("--quiet".into(), "suppress per-cell progress on stderr");
        row("--help".into(), "print this help");
        out
    }

    /// Parses explicit arguments (no program name). Used directly by tests;
    /// binaries go through [`Cli::parse`].
    pub fn try_parse(&self, args: &[String]) -> Result<Parsed, CliError> {
        let mut parsed = Parsed {
            json: None,
            metrics: None,
            threads: None,
            seeds: self.default_seeds,
            horizon_scale: 1.0,
            check: 0,
            cores: None,
            partitioner: None,
            no_fast_forward: false,
            hist: false,
            trace_out: None,
            quiet: false,
            help: false,
            values: BTreeMap::new(),
            switches: BTreeSet::new(),
        };
        for o in &self.opts {
            if let Some(d) = o.default {
                parsed.values.insert(o.flag.to_string(), d.to_string());
            }
        }
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| CliError::MissingValue(flag.to_string()))
            };
            match arg.as_str() {
                "--help" | "-h" => parsed.help = true,
                "--quiet" => parsed.quiet = true,
                "--no-fast-forward" => parsed.no_fast_forward = true,
                "--hist" => parsed.hist = true,
                "--trace-out" => parsed.trace_out = Some(value_for("--trace-out")?),
                "--json" => parsed.json = Some(value_for("--json")?),
                "--metrics" => parsed.metrics = Some(value_for("--metrics")?),
                "--threads" => {
                    let v = value_for("--threads")?;
                    let n: usize = v.parse().map_err(|_| CliError::BadValue {
                        flag: "--threads".into(),
                        value: v,
                        expected: "positive integer",
                    })?;
                    if n == 0 {
                        return Err(CliError::BadValue {
                            flag: "--threads".into(),
                            value: "0".into(),
                            expected: "positive integer",
                        });
                    }
                    parsed.threads = Some(n);
                }
                "--seeds" => {
                    let v = value_for("--seeds")?;
                    parsed.seeds = v.parse().map_err(|_| CliError::BadValue {
                        flag: "--seeds".into(),
                        value: v,
                        expected: "positive integer",
                    })?;
                    if parsed.seeds == 0 {
                        return Err(CliError::BadValue {
                            flag: "--seeds".into(),
                            value: "0".into(),
                            expected: "positive integer",
                        });
                    }
                }
                "--horizon-scale" => {
                    let v = value_for("--horizon-scale")?;
                    let scale: f64 = v.parse().map_err(|_| CliError::BadValue {
                        flag: "--horizon-scale".into(),
                        value: v.clone(),
                        expected: "positive number",
                    })?;
                    if !(scale.is_finite() && scale > 0.0) {
                        return Err(CliError::BadValue {
                            flag: "--horizon-scale".into(),
                            value: v,
                            expected: "positive number",
                        });
                    }
                    parsed.horizon_scale = scale;
                }
                "--cores" => {
                    let v = value_for("--cores")?;
                    let n: usize = v.parse().map_err(|_| CliError::BadValue {
                        flag: "--cores".into(),
                        value: v,
                        expected: "positive integer",
                    })?;
                    if n == 0 {
                        return Err(CliError::BadValue {
                            flag: "--cores".into(),
                            value: "0".into(),
                            expected: "positive integer",
                        });
                    }
                    parsed.cores = Some(n);
                }
                "--partitioner" => {
                    let v = value_for("--partitioner")?;
                    if !PARTITIONER_NAMES.contains(&v.as_str()) {
                        return Err(CliError::BadValue {
                            flag: "--partitioner".into(),
                            value: v,
                            expected: "partitioner name (ffd, bfd, wfd, rta-ff)",
                        });
                    }
                    parsed.partitioner = Some(v);
                }
                "--check" => {
                    let v = value_for("--check")?;
                    parsed.check = v.parse().map_err(|_| CliError::BadValue {
                        flag: "--check".into(),
                        value: v,
                        expected: "non-negative integer",
                    })?;
                }
                flag if self.switches.iter().any(|s| s.flag == flag) => {
                    parsed.switches.insert(flag.to_string());
                }
                flag if self.opts.iter().any(|o| o.flag == flag) => {
                    let value = value_for(flag)?;
                    parsed.values.insert(flag.to_string(), value);
                }
                flag if flag.starts_with('-') && flag.len() > 1 => {
                    return Err(CliError::UnknownFlag(flag.to_string()));
                }
                positional => {
                    return Err(CliError::UnexpectedPositional(positional.to_string()));
                }
            }
        }
        Ok(parsed)
    }

    /// Parses the process arguments. Prints usage and exits 0 on `--help`;
    /// prints the error plus usage to stderr and exits 2 on a bad command
    /// line.
    pub fn parse(&self) -> Parsed {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match self.try_parse(&args) {
            Ok(parsed) if parsed.help => {
                print!("{}", self.usage());
                std::process::exit(0);
            }
            Ok(parsed) => parsed,
            Err(err) => {
                eprint!("{}: {err}\n\n{}", self.name, self.usage());
                std::process::exit(2);
            }
        }
    }
}

/// The parsed command line of a sweep binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Parsed {
    /// `--json PATH`: where to write deterministic results.
    pub json: Option<String>,
    /// `--metrics PATH`: where to write the (nondeterministic) metrics.
    pub metrics: Option<String>,
    /// `--threads N` if given; `None` = all cores.
    pub threads: Option<usize>,
    /// `--seeds N` (or the binary's default).
    pub seeds: u64,
    /// `--horizon-scale F`.
    pub horizon_scale: f64,
    /// `--check N`: sampled invariant checks after the sweep (0 = off).
    pub check: usize,
    /// `--cores M`: restrict a multicore-aware grid to M cores; `None`
    /// lets the binary use its full core-count grid.
    pub cores: Option<usize>,
    /// `--partitioner NAME`: restrict a multicore-aware grid to one
    /// allocator (one of [`PARTITIONER_NAMES`]); `None` = full grid.
    pub partitioner: Option<String>,
    /// `--no-fast-forward`: force full event-by-event simulation.
    pub no_fast_forward: bool,
    /// `--hist`: collect per-job response/energy histograms.
    pub hist: bool,
    /// `--trace-out PATH`: export the first completed cell's schedule as
    /// Perfetto/Chrome-trace JSON after the sweep.
    pub trace_out: Option<String>,
    /// `--quiet`.
    pub quiet: bool,
    /// `--help` was requested (only observable through `try_parse`).
    pub help: bool,
    values: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

impl Parsed {
    /// The seed list sweep grids should use: `0..seeds`.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds).collect()
    }

    /// The value of a declared binary-specific flag.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// Whether a declared binary-specific switch was passed.
    pub fn has(&self, flag: &str) -> bool {
        self.switches.contains(flag)
    }

    /// Runner options implied by the uniform flags.
    pub fn run_options(&self) -> RunOptions {
        let mut opts = RunOptions {
            quiet: self.quiet,
            ..RunOptions::default()
        };
        if let Some(threads) = self.threads {
            opts.threads = threads;
        }
        opts.horizon_scale = self.horizon_scale;
        opts.check_sample = self.check;
        opts.no_fast_forward = self.no_fast_forward;
        opts.collect_histograms = self.hist;
        opts
    }

    /// Honors `--trace-out PATH`: re-runs the first *completed* cell of
    /// the sweep with tracing enabled, renders the trace as a
    /// Chrome-trace-event/Perfetto JSON document
    /// ([`lpfps_obs::export_chrome_trace`]), self-validates it
    /// ([`lpfps_obs::validate_chrome_trace`]), and writes it to the
    /// requested path. No-op when the flag is absent; a warning when the
    /// sweep has no completed cell to export.
    ///
    /// # Panics
    ///
    /// Panics if the traced re-run fails (it cannot: the cell already
    /// completed, and cell execution is deterministic), if the export
    /// fails its own validator, or if the output file cannot be written.
    pub fn maybe_export_trace(&self, spec: &SweepSpec, outcome: &SweepOutcome) {
        let Some(path) = &self.trace_out else {
            return;
        };
        let Some(index) = outcome.results.iter().position(|r| r.status.is_ok()) else {
            eprintln!("--trace-out: no completed cell to export");
            return;
        };
        let cell = spec.cells[index].clone().with_trace();
        let report = cell
            .run_in(self.horizon_scale, &mut SimWorkspace::new())
            .expect("traced re-run of a completed cell succeeds");
        let trace = report
            .trace
            .as_ref()
            .expect("tracing was enabled for the re-run");
        let end = Time::ZERO + cell.effective_horizon(self.horizon_scale);
        let scaled = cell.ts.with_bcet_fraction(cell.bcet_fraction);
        let json = lpfps_obs::export_chrome_trace(trace, &scaled, end);
        let stats = lpfps_obs::validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("exported trace failed validation: {e}"));
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!(
            "wrote {path} ({} events, {} spans — load in chrome://tracing or ui.perfetto.dev)",
            stats.events, stats.spans
        );
    }

    /// Writes the deterministic results to the `--json` path, if any.
    /// For binaries whose tables are computed rather than swept (no
    /// [`SweepMetrics`] to report); sweeps use [`Parsed::emit`].
    ///
    /// # Panics
    ///
    /// Panics if the requested output file cannot be written.
    pub fn write_json<T: Serialize>(&self, results: &T) {
        if let Some(path) = &self.json {
            let body = serde_json::to_string_pretty(results).expect("results serialize");
            std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }

    /// Writes the deterministic results (`--json`) and the metrics
    /// (`--metrics` / stderr summary). The two payloads are kept strictly
    /// separate so results stay byte-identical across thread counts —
    /// with one deliberate exception: under `--hist` the sweep-wide
    /// histogram percentiles are *also* deterministic (associative
    /// merge in spec order), so they ride along in the `--json` document
    /// as a `histograms` block wrapping the results.
    ///
    /// # Panics
    ///
    /// Panics if a requested output file cannot be written.
    pub fn emit<T: Serialize>(&self, results: &T, metrics: &SweepMetrics) {
        match (&metrics.response_ns, &metrics.job_energy_fj) {
            (Some(response), Some(energy)) if self.hist => {
                if let Some(path) = &self.json {
                    let results_body =
                        serde_json::to_string_pretty(results).expect("results serialize");
                    let response_body =
                        serde_json::to_string(response).expect("summary serializes");
                    let energy_body = serde_json::to_string(energy).expect("summary serializes");
                    let body = format!(
                        "{{\n\"histograms\": {{\n\"response_ns\": {response_body},\n\
                         \"job_energy_fj\": {energy_body}\n}},\n\
                         \"results\": {results_body}\n}}"
                    );
                    std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
                    eprintln!("wrote {path}");
                }
            }
            _ => self.write_json(results),
        }
        if let Some(path) = &self.metrics {
            let body = serde_json::to_string_pretty(metrics).expect("metrics serialize");
            std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        if !self.quiet {
            eprint!("{}", metrics.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli() -> Cli {
        Cli::new("test_sweep", "a test CLI")
            .default_seeds(3)
            .opt("--app", "NAME", "application to run")
            .switch("--gantt", "render a Gantt chart")
    }

    fn parse(args: &[&str]) -> Result<Parsed, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        cli().try_parse(&owned)
    }

    #[test]
    fn defaults_apply_without_flags() {
        let p = parse(&[]).unwrap();
        assert_eq!(p.seeds, 3);
        assert_eq!(p.seed_list(), vec![0, 1, 2]);
        assert_eq!(p.horizon_scale, 1.0);
        assert!(p.json.is_none() && p.threads.is_none() && !p.quiet);
    }

    #[test]
    fn uniform_flags_parse() {
        let p = parse(&[
            "--json",
            "out.json",
            "--threads",
            "4",
            "--seeds",
            "7",
            "--horizon-scale",
            "0.25",
            "--quiet",
            "--metrics",
            "m.json",
        ])
        .unwrap();
        assert_eq!(p.json.as_deref(), Some("out.json"));
        assert_eq!(p.metrics.as_deref(), Some("m.json"));
        assert_eq!(p.threads, Some(4));
        assert_eq!(p.seeds, 7);
        assert_eq!(p.horizon_scale, 0.25);
        assert!(p.quiet);
        assert_eq!(p.run_options().threads, 4);
    }

    #[test]
    fn check_flag_parses_and_reaches_run_options() {
        let p = parse(&["--check", "8"]).unwrap();
        assert_eq!(p.check, 8);
        assert_eq!(p.run_options().check_sample, 8);
        assert_eq!(parse(&[]).unwrap().run_options().check_sample, 0);
        assert!(matches!(
            parse(&["--check", "x"]),
            Err(CliError::BadValue { .. })
        ));
        assert_eq!(
            parse(&["--check"]),
            Err(CliError::MissingValue("--check".into()))
        );
    }

    #[test]
    fn no_fast_forward_parses_and_reaches_run_options() {
        let p = parse(&["--no-fast-forward"]).unwrap();
        assert!(p.no_fast_forward);
        assert!(p.run_options().no_fast_forward);
        let p = parse(&[]).unwrap();
        assert!(!p.no_fast_forward);
        assert!(!p.run_options().no_fast_forward);
    }

    #[test]
    fn hist_and_trace_out_parse_and_reach_run_options() {
        let p = parse(&["--hist", "--trace-out", "out.perfetto.json"]).unwrap();
        assert!(p.hist);
        assert!(p.run_options().collect_histograms);
        assert_eq!(p.trace_out.as_deref(), Some("out.perfetto.json"));
        let p = parse(&[]).unwrap();
        assert!(!p.hist && p.trace_out.is_none());
        assert!(!p.run_options().collect_histograms);
        assert_eq!(
            parse(&["--trace-out"]),
            Err(CliError::MissingValue("--trace-out".into()))
        );
    }

    /// Under `--hist` the `--json` document gains a deterministic
    /// `histograms` block wrapping the results; without it (or without
    /// collected summaries) the payload is the bare results as before.
    #[test]
    fn hist_summaries_ride_along_in_the_json_document() {
        use lpfps_obs::LogHistogram;
        let dir = std::env::temp_dir().join("lpfps_cli_hist_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let path_str = path.to_str().unwrap().to_string();

        let mut h = LogHistogram::new();
        h.record(1_000);
        h.record(2_000);
        let metrics = SweepMetrics {
            sweep: "t".into(),
            cells: 1,
            threads: 1,
            wall_ns: 1,
            total_events: 2,
            cycles_detected: 0,
            events_skipped: 0,
            failures: 0,
            failure_kinds: Default::default(),
            cell_wall_ns: LogHistogram::new().summary(),
            response_ns: Some(h.summary()),
            job_energy_fj: Some(h.summary()),
            per_cell: Vec::new(),
        };

        let mut p = parse(&["--hist", "--quiet"]).unwrap();
        p.json = Some(path_str.clone());
        p.emit(&vec![41u64, 42u64], &metrics);
        let body = std::fs::read_to_string(&path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        let hist = doc.get("histograms").expect("histograms block present");
        assert_eq!(
            hist.get("response_ns")
                .and_then(|h| h.get("count"))
                .and_then(serde_json::Value::as_u64),
            Some(2)
        );
        assert!(doc.get("results").is_some());

        // No --hist: bare results, no wrapper.
        let mut p = parse(&["--quiet"]).unwrap();
        p.json = Some(path_str);
        p.emit(&vec![41u64, 42u64], &metrics);
        let body = std::fs::read_to_string(&path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(doc.get("histograms").is_none(), "bare payload: {body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cores_and_partitioner_parse_and_validate() {
        let p = parse(&["--cores", "4", "--partitioner", "rta-ff"]).unwrap();
        assert_eq!(p.cores, Some(4));
        assert_eq!(p.partitioner.as_deref(), Some("rta-ff"));
        let p = parse(&[]).unwrap();
        assert!(p.cores.is_none() && p.partitioner.is_none());
        for name in PARTITIONER_NAMES {
            assert!(parse(&["--partitioner", name]).is_ok(), "{name} must parse");
        }
        assert!(matches!(
            parse(&["--cores", "0"]),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&["--cores", "x"]),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&["--partitioner", "round-robin"]),
            Err(CliError::BadValue { .. })
        ));
        assert_eq!(
            parse(&["--partitioner"]),
            Err(CliError::MissingValue("--partitioner".into()))
        );
        let usage = cli().usage();
        assert!(usage.contains("--cores") && usage.contains("--partitioner"));
    }

    #[test]
    fn binary_specific_flags_parse() {
        let p = parse(&["--app", "ins", "--gantt"]).unwrap();
        assert_eq!(p.value("--app"), Some("ins"));
        assert!(p.has("--gantt"));
        assert!(!parse(&[]).unwrap().has("--gantt"));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        // The old maybe_write_json silently ignored typos like `--jsn`.
        assert_eq!(
            parse(&["--jsn", "out.json"]),
            Err(CliError::UnknownFlag("--jsn".into()))
        );
    }

    #[test]
    fn json_without_path_is_an_error_up_front() {
        // The old scanner only panicked when iteration happened to reach
        // the dangling flag; now it is a parse error before any work runs.
        assert_eq!(
            parse(&["--json"]),
            Err(CliError::MissingValue("--json".into()))
        );
        assert_eq!(
            parse(&["--app"]),
            Err(CliError::MissingValue("--app".into()))
        );
    }

    #[test]
    fn bad_numbers_are_errors() {
        assert!(matches!(
            parse(&["--threads", "x"]),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&["--threads", "0"]),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&["--seeds", "-1"]),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&["--horizon-scale", "-2"]),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn non_finite_and_non_positive_horizon_scales_are_errors() {
        // Regression: these used to reach `RunOptions::with_horizon_scale`
        // (an assert) or, worse, silently produce zero-length horizons.
        for bad in ["NaN", "nan", "0", "0.0", "-1", "inf", "-inf", "infinity"] {
            assert!(
                matches!(
                    parse(&["--horizon-scale", bad]),
                    Err(CliError::BadValue { .. })
                ),
                "--horizon-scale {bad} must be rejected"
            );
        }
        // The boundary stays permissive: any finite positive value parses.
        for good in ["0.001", "1", "1e3"] {
            let p = parse(&["--horizon-scale", good]).unwrap();
            assert!(p.horizon_scale > 0.0 && p.horizon_scale.is_finite());
        }
    }

    #[test]
    fn positionals_are_rejected() {
        assert_eq!(
            parse(&["out.json"]),
            Err(CliError::UnexpectedPositional("out.json".into()))
        );
    }

    #[test]
    fn help_is_recognized_and_usage_lists_flags() {
        let p = parse(&["--help"]).unwrap();
        assert!(p.help);
        let usage = cli().usage();
        for flag in [
            "--json",
            "--metrics",
            "--threads",
            "--seeds",
            "--horizon-scale",
            "--no-fast-forward",
            "--quiet",
            "--app",
            "--gantt",
        ] {
            assert!(usage.contains(flag), "usage must mention {flag}");
        }
    }

    #[test]
    fn opt_defaults_are_visible() {
        let cli = Cli::new("t", "t").opt_default("--out", "PATH", "output", "chart.svg");
        let p = cli.try_parse(&[]).unwrap();
        assert_eq!(p.value("--out"), Some("chart.svg"));
        let p = cli
            .try_parse(&["--out".to_string(), "x.svg".to_string()])
            .unwrap();
        assert_eq!(p.value("--out"), Some("x.svg"));
    }
}
