//! Declarative, multi-threaded sweep engine for LPFPS experiments.
//!
//! Every experiment binary in `lpfps-bench` used to carry its own nested
//! `for` loops, its own `std::env::args` scanning, and no timing at all.
//! This crate factors that machinery into four pieces:
//!
//! * [`spec`] — a [`SweepSpec`] is an ordered list of [`Cell`]s (workload ×
//!   policy × BCET fraction × execution model × seed × horizon), with
//!   builders for the recurring shapes: the Figure-8 cross product
//!   ([`SweepSpec::grid`]), ablation ladders ([`SweepSpec::policy_ladder`]),
//!   and the synthetic utilization sweep ([`SweepSpec::utilization`]).
//! * [`runner`] — [`run_sweep`] executes a spec across worker threads
//!   (work-stealing over `std::thread::scope`, no external dependencies)
//!   and returns results in spec order, byte-for-byte identical to the
//!   serial path. Cells are failure-isolated: a cell rejected with a
//!   typed `SimError` — or, as a last resort, one that panics — becomes a
//!   [`cell::CellStatus::Failed`] entry carrying a structured
//!   [`cell::CellError`] instead of aborting the sweep, and an optional
//!   soft per-cell timeout grants one retry.
//! * [`cli`] — the uniform experiment command line (`--json`, `--metrics`,
//!   `--threads`, `--seeds`, `--horizon-scale`, `--check`, `--quiet`),
//!   which *errors* on unknown flags instead of silently ignoring them.
//! * [`check`] — the `--check N` invariant-sampling pass: after a sweep,
//!   re-run N evenly-spaced cells with tracing and push their traces
//!   through the oracle's invariant checker (`lpfps-oracle`).
//! * [`metrics`] — per-cell and whole-sweep wall-clock/throughput
//!   accounting ([`SweepMetrics`]), kept strictly separate from the
//!   deterministic results payload.

pub mod cell;
pub mod check;
pub mod cli;
pub mod metrics;
pub mod runner;
pub mod spec;

pub use cell::{Cell, CellError, CellResult, CellStatus, ExecKind, PolicyChoice};
pub use check::{check_sampled_cells, CellCheck};
pub use cli::{Cli, CliError, Parsed, PARTITIONER_NAMES};
pub use metrics::{CellMetrics, SweepMetrics};
pub use runner::{run_sweep, RunOptions, SweepOutcome};
pub use spec::SweepSpec;
