//! Declarative sweep grids and builder helpers for the recurring shapes.

use crate::cell::{Cell, ExecKind, PolicyChoice};
use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::analysis::rta_schedulable;
use lpfps_tasks::gen::{generate, GenConfig};
use lpfps_tasks::taskset::TaskSet;

/// An ordered list of cells to execute. Order is significant: results come
/// back in spec order regardless of how many worker threads ran them.
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    /// Sweep name, used in metrics output.
    pub name: String,
    /// The cells, in result order.
    pub cells: Vec<Cell>,
}

impl SweepSpec {
    /// An empty sweep; grow it with [`SweepSpec::push`].
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpec {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    /// Appends one cell.
    pub fn push(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The Figure-8 shape (and its ablation-pair degenerations): the full
    /// cross product `apps × policies × fractions × seeds` under one
    /// execution model, in that nesting order (seeds innermost).
    ///
    /// * Figure 8 proper: all apps × `[Fps, Lpfps]` × the ten BCET
    ///   fractions × N seeds.
    /// * `ablation_policies`: all apps × five policies × `[0.5]` × 1 seed.
    /// * `ablation_ratio`: one pair of policies × all fractions.
    pub fn grid(
        name: impl Into<String>,
        apps: &[TaskSet],
        cpu: &CpuSpec,
        policies: &[PolicyKind],
        fractions: &[f64],
        seeds: &[u64],
        exec: ExecKind,
    ) -> Self {
        let mut spec = SweepSpec::new(name);
        for ts in apps {
            for &policy in policies {
                for &frac in fractions {
                    for &seed in seeds {
                        spec.push(
                            Cell::new(ts.clone(), cpu.clone(), policy)
                                .with_exec(exec)
                                .with_bcet_fraction(frac)
                                .with_seed(seed),
                        );
                    }
                }
            }
        }
        spec
    }

    /// One app under a list of policy choices (possibly parameterized, e.g.
    /// timeout-shutdown ladders) at a single BCET fraction and seed.
    pub fn policy_ladder(
        name: impl Into<String>,
        ts: &TaskSet,
        cpu: &CpuSpec,
        policies: &[PolicyChoice],
        frac: f64,
        seed: u64,
        exec: ExecKind,
    ) -> Self {
        let mut spec = SweepSpec::new(name);
        for &policy in policies {
            spec.push(
                Cell::new(ts.clone(), cpu.clone(), policy)
                    .with_exec(exec)
                    .with_bcet_fraction(frac)
                    .with_seed(seed),
            );
        }
        spec
    }

    /// The utilization-sweep shape: for each target utilization, generate
    /// UUniFast task sets (log-uniform periods), keep the RM-schedulable
    /// ones, and emit one cell per (set, policy). Cell labels encode the
    /// utilization and set index (`u0.50/3`) so results group naturally.
    // The arguments are the axes of the grid; bundling them into a
    // config struct would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub fn utilization(
        name: impl Into<String>,
        cpu: &CpuSpec,
        utilizations: &[f64],
        sets_per_point: usize,
        tasks_per_set: usize,
        policies: &[PolicyKind],
        bcet_fraction: f64,
        exec: ExecKind,
    ) -> Self {
        let mut spec = SweepSpec::new(name);
        for &u in utilizations {
            let gen_cfg = GenConfig::new(tasks_per_set, u).with_bcet_fraction(bcet_fraction);
            let mut kept = 0usize;
            let mut attempt = 0u64;
            while kept < sets_per_point {
                // Deterministic seed stream per utilization point, skipping
                // unschedulable draws (mirrors the original binary's loop).
                let seed = attempt ^ ((u * 1000.0) as u64);
                attempt += 1;
                assert!(
                    attempt < 10_000,
                    "could not draw {sets_per_point} RM-schedulable sets at U={u}"
                );
                let ts = generate(&gen_cfg, seed);
                if !rta_schedulable(&ts) {
                    continue;
                }
                for &policy in policies {
                    spec.push(
                        Cell::new(ts.clone(), cpu.clone(), policy)
                            .with_exec(exec)
                            .with_app(format!("u{u:.2}/{kept}"))
                            .with_bcet_fraction(bcet_fraction)
                            .with_seed(seed),
                    );
                }
                kept += 1;
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> TaskSet {
        use lpfps_tasks::task::Task;
        use lpfps_tasks::time::Dur;
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    #[test]
    fn grid_is_a_full_cross_product_in_spec_order() {
        let spec = SweepSpec::grid(
            "g",
            &[table1()],
            &CpuSpec::arm8(),
            &[PolicyKind::Fps, PolicyKind::Lpfps],
            &[0.5, 1.0],
            &[0, 1, 2],
            ExecKind::PaperGaussian,
        );
        assert_eq!(spec.len(), 2 * 2 * 3);
        // Seeds vary fastest, then fractions, then policies.
        assert_eq!(spec.cells[0].seed, 0);
        assert_eq!(spec.cells[1].seed, 1);
        assert_eq!(spec.cells[0].bcet_fraction, 0.5);
        assert_eq!(spec.cells[3].bcet_fraction, 1.0);
        assert_eq!(spec.cells[0].policy, PolicyChoice::Kind(PolicyKind::Fps));
        assert_eq!(spec.cells[6].policy, PolicyChoice::Kind(PolicyKind::Lpfps));
    }

    #[test]
    fn grid_runs_edf_cells_through_the_shared_kernel() {
        let spec = SweepSpec::grid(
            "edf-grid",
            &[table1()],
            &CpuSpec::arm8(),
            &[PolicyKind::Edf, PolicyKind::CcEdf],
            &[0.5],
            &[42],
            ExecKind::PaperGaussian,
        );
        assert_eq!(spec.len(), 2);
        let edf = spec.cells[0].run(1.0).unwrap();
        assert_eq!(edf.policy, "edf");
        assert_eq!(edf.discipline, "edf");
        assert!(edf.all_deadlines_met(), "misses: {:?}", edf.misses);
        let cc = spec.cells[1].run(1.0).unwrap();
        assert_eq!(cc.policy, "cc-edf");
        assert!(cc.average_power() < edf.average_power());
    }

    #[test]
    fn utilization_builder_keeps_only_schedulable_sets() {
        let spec = SweepSpec::utilization(
            "u",
            &CpuSpec::arm8(),
            &[0.5],
            2,
            4,
            &[PolicyKind::Fps],
            0.5,
            ExecKind::PaperGaussian,
        );
        assert_eq!(spec.len(), 2);
        for cell in &spec.cells {
            assert!(rta_schedulable(&cell.ts));
            assert!(cell.app.starts_with("u0.50/"));
        }
    }
}
