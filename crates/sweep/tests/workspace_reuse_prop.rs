//! Property test: a recycled [`SimWorkspace`] is behaviorally invisible.
//! Whatever ran in a workspace before — other workloads, other policies,
//! faulted runs, even a simulation that *aborted mid-run* (a tripped
//! event budget) and left the buffers in whatever state the dead engine
//! took them to — the next report out of that workspace must serialize
//! byte-identically to the same cell run in a fresh workspace, traces
//! included.

use lpfps::baselines::Fps;
use lpfps::driver::{default_horizon, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault, ReleaseJitter};
use lpfps_kernel::engine::{simulate_in, SimConfig, SimWorkspace};
use lpfps_sweep::{Cell, ExecKind};
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::time::Dur;
use lpfps_workloads::{avionics, cnc, ins, table1};
use proptest::prelude::*;

/// Runs an adversarial warm-up mix through the workspace: every catalog
/// workload (including the widest, INS, so every per-task buffer grows
/// past the target cell's needs), a faulted traced run, a zero-horizon
/// cell (rejected up front with a typed error), and a budget-aborted
/// simulation that abandons the buffers mid-run.
fn dirty(ws: &mut SimWorkspace, seed: u64) {
    let faults = FaultConfig::none()
        .with_seed(seed)
        .with_overrun(OverrunFault::clamped(0.3, 0.5, 1.5))
        .with_release_jitter(ReleaseJitter::uniform(Dur::from_us(20)));
    for (i, ts) in [ins(), avionics(), cnc(), table1()].into_iter().enumerate() {
        let cell = Cell::new(ts, CpuSpec::arm8(), PolicyKind::LpfpsWatchdog)
            .with_exec(ExecKind::PaperGaussian)
            .with_bcet_fraction(0.4)
            .with_seed(seed ^ i as u64)
            .with_faults(faults)
            .with_trace();
        cell.run_in(0.05, ws).unwrap();
    }
    // The validation poison: a zero horizon is rejected with a typed
    // error before the engine ever touches the workspace.
    let poisoned = Cell::new(table1(), CpuSpec::arm8(), PolicyKind::Lpfps).with_horizon(Dur::ZERO);
    assert!(
        poisoned.run_in(1.0, ws).is_err(),
        "the zero-horizon poison cell must be rejected"
    );
    // The abandonment poison: a tight event budget aborts a simulation
    // *mid-run*; the buffers moved into the dead engine are lost and the
    // workspace must recover empty-but-valid.
    let ts = table1();
    let tight = SimConfig::new(default_horizon(&ts)).with_max_events(40);
    assert!(
        simulate_in(&ts, &CpuSpec::arm8(), &mut Fps, &AlwaysWcet, &tight, ws).is_err(),
        "the event-budget poison must fail mid-run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dirty_workspace_reports_are_bit_identical(
        workload in 0usize..4,
        policy in 0usize..4,
        seed in 0u64..=1_000,
        frac_pct in 10u64..=100,
        faulted in proptest::bool::ANY,
    ) {
        let ts = [table1(), avionics(), cnc(), ins()][workload].clone();
        let kind = [
            PolicyKind::Fps,
            PolicyKind::FpsPd,
            PolicyKind::Lpfps,
            PolicyKind::LpfpsWatchdog,
        ][policy];
        let mut cell = Cell::new(ts, CpuSpec::arm8(), kind)
            .with_exec(ExecKind::PaperGaussian)
            .with_bcet_fraction(frac_pct as f64 / 100.0)
            .with_seed(seed)
            .with_trace();
        if faulted {
            cell = cell.with_faults(
                FaultConfig::none()
                    .with_seed(seed)
                    .with_overrun(OverrunFault::clamped(0.2, 0.3, 1.3)),
            );
        }

        let fresh = cell.run_in(0.2, &mut SimWorkspace::new()).unwrap();

        let mut ws = SimWorkspace::new();
        dirty(&mut ws, seed);
        let reused = cell.run_in(0.2, &mut ws).unwrap();

        let a = serde_json::to_string(&fresh).unwrap();
        let b = serde_json::to_string(&reused).unwrap();
        prop_assert_eq!(a, b);

        // And the workspace stays sound for a *different* follow-up cell.
        let follow = Cell::new(cnc(), CpuSpec::arm8_multimode(), PolicyKind::Lpfps)
            .with_exec(ExecKind::PaperGaussian)
            .with_bcet_fraction(0.5)
            .with_seed(seed + 1)
            .with_trace();
        let follow_fresh = follow.run_in(0.1, &mut SimWorkspace::new()).unwrap();
        let follow_reused = follow.run_in(0.1, &mut ws).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&follow_fresh).unwrap(),
            serde_json::to_string(&follow_reused).unwrap()
        );
    }
}
