//! The runner's central contract: the `--json` results payload is
//! byte-for-byte identical no matter how many worker threads executed the
//! sweep. Everything a results file contains is a pure function of the
//! cell (seeded draws, integer-exact kernel), and the runner writes each
//! cell into its spec-order slot — so `--threads 8` must serialize exactly
//! like `--threads 1`.

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, Cell, ExecKind, PolicyChoice, RunOptions, SweepSpec};
use lpfps_tasks::time::Dur;
use lpfps_workloads::{applications, table1};

fn fig8_like_spec() -> SweepSpec {
    SweepSpec::grid(
        "determinism",
        &applications(),
        &CpuSpec::arm8(),
        &[PolicyKind::Fps, PolicyKind::Lpfps],
        &[0.3, 0.7],
        &[0, 1],
        ExecKind::PaperGaussian,
    )
}

#[test]
fn parallel_json_is_byte_identical_to_serial_for_threads_1_through_8() {
    let spec = fig8_like_spec();
    let serial = run_sweep(&spec, &RunOptions::serial());
    let reference = serde_json::to_string_pretty(&serial.results).unwrap();
    assert!(reference.contains("average_power"));
    for threads in 1..=8 {
        let outcome = run_sweep(&spec, &RunOptions::serial().with_threads(threads));
        let json = serde_json::to_string_pretty(&outcome.results).unwrap();
        assert_eq!(
            json, reference,
            "results JSON diverged at --threads {threads}"
        );
    }
}

#[test]
fn full_reports_match_too_not_just_the_summaries() {
    // Stronger than the JSON check: every counter, energy total, and
    // response time of the full SimReport must agree across thread counts.
    let spec = fig8_like_spec();
    let serial = run_sweep(&spec, &RunOptions::serial());
    let parallel = run_sweep(&spec, &RunOptions::serial().with_threads(8));
    for (a, b) in serial.reports.iter().zip(parallel.reports.iter()) {
        let (a, b) = (
            a.as_ref().expect("fault-free cell completes"),
            b.as_ref().expect("fault-free cell completes"),
        );
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.energy.total_energy(), b.energy.total_energy());
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.misses, b.misses);
    }
}

#[test]
fn timeout_shutdown_cells_are_deterministic_across_threads() {
    // The non-PolicyKind path (parameterized TimeoutShutdown) goes through
    // a different driver entry point; it must honor the same contract.
    let choices: Vec<PolicyChoice> = vec![
        PolicyKind::Fps.into(),
        PolicyChoice::TimeoutShutdown(Dur::from_us(50)),
        PolicyChoice::TimeoutShutdown(Dur::from_us(1_000)),
    ];
    let spec = SweepSpec::policy_ladder(
        "shutdown-determinism",
        &table1(),
        &CpuSpec::arm8(),
        &choices,
        0.5,
        7,
        ExecKind::PaperGaussian,
    );
    let reference =
        serde_json::to_string_pretty(&run_sweep(&spec, &RunOptions::serial()).results).unwrap();
    for threads in 2..=8 {
        let outcome = run_sweep(&spec, &RunOptions::serial().with_threads(threads));
        let json = serde_json::to_string_pretty(&outcome.results).unwrap();
        assert_eq!(json, reference, "shutdown ladder diverged at {threads}");
    }
}

#[test]
fn metrics_are_kept_out_of_the_results_payload() {
    // Wall-clock timing lives in SweepMetrics, never in CellResult — this
    // is what makes the byte-identity guarantee possible at all.
    let mut spec = SweepSpec::new("metrics-separation");
    spec.push(Cell::new(table1(), CpuSpec::arm8(), PolicyKind::Lpfps));
    let outcome = run_sweep(&spec, &RunOptions::serial());
    let json = serde_json::to_string_pretty(&outcome.results).unwrap();
    assert!(!json.contains("wall_ns"), "timing leaked into results");
    let metrics = serde_json::to_string_pretty(&outcome.metrics).unwrap();
    assert!(metrics.contains("wall_ns") && metrics.contains("total_events"));
}
