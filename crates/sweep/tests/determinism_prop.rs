//! Property test: for *arbitrary* small grids (random fraction, seeds,
//! and thread count), the parallel runner's serialized results equal the
//! serial runner's.

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_sweep::{run_sweep, ExecKind, RunOptions, SweepSpec};
use lpfps_workloads::table1;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_grids_are_thread_count_invariant(
        frac_pct in 10u64..=100,
        seed in 0u64..=1_000,
        threads in 2usize..=8,
    ) {
        let spec = SweepSpec::grid(
            "prop",
            &[table1()],
            &CpuSpec::arm8(),
            &[PolicyKind::Fps, PolicyKind::Lpfps],
            &[frac_pct as f64 / 100.0],
            &[seed, seed + 1],
            ExecKind::PaperGaussian,
        );
        let serial = run_sweep(&spec, &RunOptions::serial());
        let parallel = run_sweep(&spec, &RunOptions::serial().with_threads(threads));
        let a = serde_json::to_string_pretty(&serial.results).unwrap();
        let b = serde_json::to_string_pretty(&parallel.results).unwrap();
        prop_assert_eq!(a, b);
    }
}
