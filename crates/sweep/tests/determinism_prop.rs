//! Property test: for *arbitrary* small grids (random fraction, seeds,
//! and thread count), the parallel runner's serialized results equal the
//! serial runner's — including grids with injected faults and grids
//! containing a cell that panics.

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault, ReleaseJitter, WakeupJitter};
use lpfps_sweep::{run_sweep, Cell, ExecKind, RunOptions, SweepSpec};
use lpfps_tasks::time::Dur;
use lpfps_workloads::table1;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_grids_are_thread_count_invariant(
        frac_pct in 10u64..=100,
        seed in 0u64..=1_000,
        threads in 2usize..=8,
    ) {
        let spec = SweepSpec::grid(
            "prop",
            &[table1()],
            &CpuSpec::arm8(),
            &[PolicyKind::Fps, PolicyKind::Lpfps],
            &[frac_pct as f64 / 100.0],
            &[seed, seed + 1],
            ExecKind::PaperGaussian,
        );
        let serial = run_sweep(&spec, &RunOptions::serial());
        let parallel = run_sweep(&spec, &RunOptions::serial().with_threads(threads));
        let a = serde_json::to_string_pretty(&serial.results).unwrap();
        let b = serde_json::to_string_pretty(&parallel.results).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Fault draws are counter-based (seed, task, job) rather than drawn
    /// from a shared sequential stream, so injected faults — overruns,
    /// release jitter, wake-up jitter — must not disturb the thread-count
    /// invariance, and neither must a panicking cell in the middle of the
    /// grid.
    #[test]
    fn faulted_grids_with_failures_are_thread_count_invariant(
        fault_seed in 0u64..=1_000,
        prob_pct in 1u64..=60,
        jitter_us in 0u64..=20,
        threads in 2usize..=8,
    ) {
        let mut faults = FaultConfig::none()
            .with_seed(fault_seed)
            .with_overrun(OverrunFault::clamped(prob_pct as f64 / 100.0, 0.5, 1.5))
            .with_wakeup_jitter(WakeupJitter::uniform(Dur::from_us(1)));
        if jitter_us > 0 {
            faults = faults.with_release_jitter(ReleaseJitter::uniform(Dur::from_us(jitter_us)));
        }
        let mut spec = SweepSpec::new("prop-faults");
        for (i, policy) in [PolicyKind::Fps, PolicyKind::Lpfps, PolicyKind::LpfpsWatchdog]
            .into_iter()
            .enumerate()
        {
            let cell = Cell::new(table1(), CpuSpec::arm8(), policy)
                .with_exec(ExecKind::PaperGaussian)
                .with_bcet_fraction(0.5)
                .with_seed(i as u64)
                .with_faults(faults);
            spec.push(cell);
        }
        // A poisoned cell mid-grid: failures must serialize identically too.
        spec.push(
            Cell::new(table1(), CpuSpec::arm8(), PolicyKind::Lpfps)
                .with_horizon(Dur::ZERO),
        );
        spec.push(
            Cell::new(table1(), CpuSpec::arm8(), PolicyKind::Lpfps)
                .with_faults(faults)
                .with_seed(9),
        );
        let serial = run_sweep(&spec, &RunOptions::serial());
        prop_assert_eq!(serial.metrics.failures, 1);
        let parallel = run_sweep(&spec, &RunOptions::serial().with_threads(threads));
        let a = serde_json::to_string_pretty(&serial.results).unwrap();
        let b = serde_json::to_string_pretty(&parallel.results).unwrap();
        prop_assert_eq!(a, b);
    }
}
