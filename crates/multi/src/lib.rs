// The library boundary is panic-free: partitioning and multicore
// simulation surface typed errors, never abort. Tests may unwrap freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # lpfps-multi
//!
//! Partitioned multiprocessor scheduling on M identical cores, layered on
//! the uniprocessor LPFPS kernel — the canonical multicore extension of
//! the paper (Nélis et al., *Power-Aware Real-Time Scheduling upon
//! Identical Multiprocessor Platforms*): partition the task set once,
//! offline, then run a power-conscious uniprocessor policy independently
//! per core.
//!
//! Three pieces:
//!
//! * [`partition`] — the [`Partitioner`] trait and its deterministic
//!   allocators: First-/Best-/Worst-Fit Decreasing by utilization
//!   ([`FirstFitDecreasing`], [`BestFitDecreasing`], [`WorstFitDecreasing`],
//!   capacity 1.0 per core) and the RTA-admission-gated first fit
//!   ([`RtaFirstFit`], places a task only where exact response-time
//!   analysis still passes). All emit a typed [`Partition`] — every task
//!   assigned exactly once, per-core `TaskSet`s with re-derived RM
//!   priorities — or a structured [`PartitionError`] that folds into the
//!   kernel's `SimError` taxonomy (kind `"invalid-partition"`).
//! * [`engine`] — [`MultiCell`] (a uniprocessor sweep `Cell` plus a core
//!   count and a partitioner) and [`MultiEngine`], which runs each core's
//!   subset through the existing kernel with per-worker `SimWorkspace`
//!   reuse and optional work-stealing parallelism, merging results in
//!   core order so output is byte-deterministic across thread counts.
//! * [`report`] — [`MultiReport`]: the per-core `SimReport`s plus
//!   fleet-level energy / average-power / miss aggregation and a per-core
//!   utilization/energy breakdown, with hand-written serde following the
//!   repo's stable-JSON conventions.
//!
//! # Bit-identity contract
//!
//! Each core's report is **bit-identical** to running that core's subset
//! standalone through the uniprocessor kernel: per-core seeds derive via
//! [`lpfps_faults::core_seed`] (identity on core 0), per-core task sets
//! keep the parent's declaration order, and all counter-based streams are
//! order-independent — so a one-core run through any partitioner
//! reproduces the uniprocessor golden fingerprint matrix byte for byte
//! (pinned in `crates/bench/tests/multicore_golden.rs`).

pub mod engine;
pub mod partition;
pub mod report;

pub use engine::{MultiCell, MultiEngine};
pub use partition::{
    BestFitDecreasing, FirstFitDecreasing, Partition, PartitionError, Partitioner, PartitionerKind,
    RtaFirstFit, WorstFitDecreasing,
};
pub use report::{CoreBreakdown, MultiReport};
