//! Deterministic task-to-core allocators.
//!
//! All partitioners place tasks in **decreasing-utilization order** (the
//! classic bin-packing heuristic ordering), with an *intrinsic* total
//! order so the result is a pure function of the task set's contents:
//! utilization compared exactly as the rational `wcet/period` (u128
//! cross-multiplication, no f64 ties), then period, then WCET, then name.
//! Partitioning a permuted declaration of the same tasks therefore yields
//! the same task → core mapping (pinned by proptest).
//!
//! The capacity allocators ([`FirstFitDecreasing`], [`BestFitDecreasing`],
//! [`WorstFitDecreasing`]) admit a task onto a core while the core's
//! utilization stays ≤ 1 (up to 1e-9 of f64 rounding); [`RtaFirstFit`]
//! instead admits a task only onto a core where the subset — with RM
//! priorities re-derived — still passes exact response-time analysis, so
//! every core it emits is provably schedulable at full speed under WCET
//! demand.
//!
//! Every allocator emits a typed [`Partition`] (each task assigned exactly
//! once; per-core `TaskSet`s keep the parent's declaration order) or a
//! structured [`PartitionError`] — never a panic.

use core::fmt;
use lpfps_kernel::error::SimError;
use lpfps_tasks::analysis::rta_schedulable;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;

/// Slack allowed on the unit-capacity check, absorbing f64 rounding of
/// exact rational utilizations (`10us/50us + ... == 1.0` must fit).
const CAPACITY_EPS: f64 = 1e-9;

/// Why a task set could not be partitioned onto the requested cores.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// Zero cores requested.
    NoCores,
    /// A single task's utilization exceeds one full core.
    TaskTooHeavy {
        /// The offending task.
        task: String,
        /// Its utilization.
        utilization: f64,
    },
    /// No core has the capacity left for this task (capacity allocators).
    CapacityExceeded {
        /// The task that found every core full.
        task: String,
        /// The core count it was offered.
        cores: usize,
    },
    /// No core admits this task under exact response-time analysis
    /// ([`RtaFirstFit`]).
    Unschedulable {
        /// The task every core's RTA refused.
        task: String,
        /// The core count it was offered.
        cores: usize,
    },
    /// A per-core subset failed task-set validation — unreachable for
    /// subsets of a valid parent set, surfaced instead of panicking.
    InvalidSubset {
        /// The validator's message.
        reason: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoCores => write!(f, "at least one core is required"),
            PartitionError::TaskTooHeavy { task, utilization } => write!(
                f,
                "task `{task}` (utilization {utilization:.4}) exceeds one full core"
            ),
            PartitionError::CapacityExceeded { task, cores } => {
                write!(f, "no core of {cores} has capacity left for task `{task}`")
            }
            PartitionError::Unschedulable { task, cores } => write!(
                f,
                "no core of {cores} admits task `{task}` under response-time analysis"
            ),
            PartitionError::InvalidSubset { reason } => {
                write!(f, "per-core subset failed validation: {reason}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<PartitionError> for SimError {
    fn from(e: PartitionError) -> Self {
        SimError::Partition {
            reason: e.to_string(),
        }
    }
}

/// The result of a successful partitioning: every task of the parent set
/// assigned to exactly one core.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Per-core task sets, indexed by core. Tasks keep the parent's
    /// declaration order; RM priorities are re-derived over the subset;
    /// the set is named `"{parent}.c{k}"`. `None` for a core that
    /// received no tasks (more cores than tasks).
    pub cores: Vec<Option<TaskSet>>,
    /// `assignment[i]` = the core of the parent's task `i` (declaration
    /// order).
    pub assignment: Vec<usize>,
    /// Per-core total utilization (0.0 for an idle core), summed in
    /// declaration order.
    pub utilizations: Vec<f64>,
}

impl Partition {
    /// The number of cores (including idle ones).
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// How many tasks landed on core `k`.
    pub fn tasks_on(&self, k: usize) -> usize {
        self.assignment.iter().filter(|&&c| c == k).count()
    }
}

/// A deterministic task-to-core allocator.
pub trait Partitioner {
    /// The allocator's stable report name.
    fn name(&self) -> &'static str;

    /// Partitions `ts` onto `cores` identical unit-capacity cores.
    ///
    /// # Errors
    ///
    /// A structured [`PartitionError`] when any task cannot be placed.
    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionError>;
}

/// Task indices in the intrinsic decreasing-utilization order (see the
/// module docs for the tie chain).
fn decreasing_utilization(ts: &TaskSet) -> Vec<usize> {
    let tasks = ts.tasks();
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        let (ta, tb) = (&tasks[a], &tasks[b]);
        // u_a vs u_b as wcet_a/period_a vs wcet_b/period_b, exactly.
        let lhs = ta.wcet().as_ns() as u128 * tb.period().as_ns() as u128;
        let rhs = tb.wcet().as_ns() as u128 * ta.period().as_ns() as u128;
        rhs.cmp(&lhs)
            .then_with(|| ta.period().cmp(&tb.period()))
            .then_with(|| ta.wcet().cmp(&tb.wcet()))
            .then_with(|| ta.name().cmp(tb.name()))
    });
    order
}

/// Builds the typed [`Partition`] from a complete assignment.
fn build(ts: &TaskSet, cores: usize, assignment: Vec<usize>) -> Result<Partition, PartitionError> {
    let mut per_core: Vec<Vec<Task>> = vec![Vec::new(); cores];
    let mut utilizations = vec![0.0f64; cores];
    for (i, &k) in assignment.iter().enumerate() {
        per_core[k].push(ts.tasks()[i].clone());
        utilizations[k] += ts.tasks()[i].utilization();
    }
    let mut sets = Vec::with_capacity(cores);
    for (k, tasks) in per_core.into_iter().enumerate() {
        if tasks.is_empty() {
            sets.push(None);
            continue;
        }
        let set =
            TaskSet::try_rate_monotonic(format!("{}.c{k}", ts.name()), tasks).map_err(|e| {
                PartitionError::InvalidSubset {
                    reason: e.to_string(),
                }
            })?;
        sets.push(Some(set));
    }
    Ok(Partition {
        cores: sets,
        assignment,
        utilizations,
    })
}

/// How a capacity allocator picks among the cores that can still hold a
/// task.
#[derive(Clone, Copy)]
enum Fit {
    First,
    Best,
    Worst,
}

/// Shared body of the three capacity-by-utilization allocators.
fn capacity_partition(ts: &TaskSet, cores: usize, fit: Fit) -> Result<Partition, PartitionError> {
    if cores == 0 {
        return Err(PartitionError::NoCores);
    }
    let tasks = ts.tasks();
    let mut load = vec![0.0f64; cores];
    let mut assignment = vec![0usize; tasks.len()];
    for &i in &decreasing_utilization(ts) {
        let u = tasks[i].utilization();
        if u > 1.0 + CAPACITY_EPS {
            return Err(PartitionError::TaskTooHeavy {
                task: tasks[i].name().to_string(),
                utilization: u,
            });
        }
        let fits = |k: usize| load[k] + u <= 1.0 + CAPACITY_EPS;
        let chosen = match fit {
            Fit::First => (0..cores).find(|&k| fits(k)),
            // Best fit: the fullest core that still fits (ties: lowest
            // index). Worst fit: the emptiest (ties: lowest index).
            // max_by keeps the *last* maximum, so break load ties toward
            // the lower index explicitly.
            Fit::Best => (0..cores)
                .filter(|&k| fits(k))
                .max_by(|&a, &b| load[a].total_cmp(&load[b]).then(b.cmp(&a))),
            Fit::Worst => (0..cores)
                .filter(|&k| fits(k))
                .min_by(|&a, &b| load[a].total_cmp(&load[b])),
        };
        let Some(k) = chosen else {
            return Err(PartitionError::CapacityExceeded {
                task: tasks[i].name().to_string(),
                cores,
            });
        };
        load[k] += u;
        assignment[i] = k;
    }
    build(ts, cores, assignment)
}

/// First-Fit Decreasing by utilization: each task goes to the
/// lowest-indexed core with capacity left.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFitDecreasing;

impl Partitioner for FirstFitDecreasing {
    fn name(&self) -> &'static str {
        "ffd"
    }
    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionError> {
        capacity_partition(ts, cores, Fit::First)
    }
}

/// Best-Fit Decreasing by utilization: each task goes to the *fullest*
/// core that still fits (ties: lowest index).
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitDecreasing;

impl Partitioner for BestFitDecreasing {
    fn name(&self) -> &'static str {
        "bfd"
    }
    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionError> {
        capacity_partition(ts, cores, Fit::Best)
    }
}

/// Worst-Fit Decreasing by utilization: each task goes to the *emptiest*
/// core (ties: lowest index) — the load-balancing choice, which leaves
/// the most per-core slack for DVS.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstFitDecreasing;

impl Partitioner for WorstFitDecreasing {
    fn name(&self) -> &'static str {
        "wfd"
    }
    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionError> {
        capacity_partition(ts, cores, Fit::Worst)
    }
}

/// RTA-admission-gated first fit: a task is placed on the lowest-indexed
/// core where the subset — RM priorities re-derived — passes exact
/// response-time analysis under full-WCET demand. Every core this
/// allocator emits is provably RM-schedulable at full speed, which is
/// exactly the premise the per-core LPFPS slow-down (Theorem 1) needs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RtaFirstFit;

impl Partitioner for RtaFirstFit {
    fn name(&self) -> &'static str {
        "rta-ff"
    }
    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionError> {
        if cores == 0 {
            return Err(PartitionError::NoCores);
        }
        let tasks = ts.tasks();
        // Per-core lists of task indices, kept in declaration order.
        let mut on_core: Vec<Vec<usize>> = vec![Vec::new(); cores];
        let mut assignment = vec![0usize; tasks.len()];
        for &i in &decreasing_utilization(ts) {
            let mut placed = None;
            for (k, members_on_k) in on_core.iter().enumerate() {
                let mut subset = members_on_k.clone();
                subset.push(i);
                subset.sort_unstable();
                let members: Vec<Task> = subset.iter().map(|&j| tasks[j].clone()).collect();
                let Ok(candidate) = TaskSet::try_rate_monotonic("rta-candidate", members) else {
                    continue;
                };
                if rta_schedulable(&candidate) {
                    placed = Some((k, subset));
                    break;
                }
            }
            let Some((k, subset)) = placed else {
                return Err(PartitionError::Unschedulable {
                    task: tasks[i].name().to_string(),
                    cores,
                });
            };
            on_core[k] = subset;
            assignment[i] = k;
        }
        build(ts, cores, assignment)
    }
}

/// The named allocators, for CLIs and grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// [`FirstFitDecreasing`].
    Ffd,
    /// [`BestFitDecreasing`].
    Bfd,
    /// [`WorstFitDecreasing`].
    Wfd,
    /// [`RtaFirstFit`].
    RtaFf,
}

impl PartitionerKind {
    /// All allocators, in grid order.
    pub const ALL: [PartitionerKind; 4] = [
        PartitionerKind::Ffd,
        PartitionerKind::Bfd,
        PartitionerKind::Wfd,
        PartitionerKind::RtaFf,
    ];

    /// Parses a stable name (`"ffd"`, `"bfd"`, `"wfd"`, `"rta-ff"`).
    pub fn parse(name: &str) -> Option<Self> {
        PartitionerKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl Partitioner for PartitionerKind {
    fn name(&self) -> &'static str {
        match self {
            PartitionerKind::Ffd => FirstFitDecreasing.name(),
            PartitionerKind::Bfd => BestFitDecreasing.name(),
            PartitionerKind::Wfd => WorstFitDecreasing.name(),
            PartitionerKind::RtaFf => RtaFirstFit.name(),
        }
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionError> {
        match self {
            PartitionerKind::Ffd => FirstFitDecreasing.partition(ts, cores),
            PartitionerKind::Bfd => BestFitDecreasing.partition(ts, cores),
            PartitionerKind::Wfd => WorstFitDecreasing.partition(ts, cores),
            PartitionerKind::RtaFf => RtaFirstFit.partition(ts, cores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::time::Dur;

    fn six_tasks() -> TaskSet {
        // Utilizations 0.4, 0.4, 0.25, 0.25, 0.2, 0.2 (total 1.7).
        TaskSet::rate_monotonic(
            "six",
            vec![
                Task::new("a", Dur::from_us(100), Dur::from_us(40)),
                Task::new("b", Dur::from_us(100), Dur::from_us(40)).with_phase(Dur::from_us(7)),
                Task::new("c", Dur::from_us(80), Dur::from_us(20)),
                Task::new("d", Dur::from_us(80), Dur::from_us(20)).with_phase(Dur::from_us(3)),
                Task::new("e", Dur::from_us(50), Dur::from_us(10)),
                Task::new("f", Dur::from_us(50), Dur::from_us(10)).with_phase(Dur::from_us(11)),
            ],
        )
    }

    #[test]
    fn ffd_packs_greedily_in_utilization_order() {
        let p = FirstFitDecreasing.partition(&six_tasks(), 2).unwrap();
        // Order a,b,c,d,e,f (ties by name): a+b=0.8 on c0; c would
        // overflow c0 (1.05) -> c1; d -> c1 (0.5); e -> c0 (1.0, exact
        // fit); f no longer fits c0 -> c1 (0.7).
        assert_eq!(p.assignment, vec![0, 0, 1, 1, 0, 1]);
        assert!((p.utilizations[0] - 1.0).abs() < 1e-9);
        assert!((p.utilizations[1] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn wfd_balances_load() {
        let p = WorstFitDecreasing.partition(&six_tasks(), 2).unwrap();
        // a -> c0, b -> c1, then alternating onto the emptier core.
        assert!((p.utilizations[0] - 0.85).abs() < 1e-9);
        assert!((p.utilizations[1] - 0.85).abs() < 1e-9);
    }

    #[test]
    fn bfd_fills_the_fullest_fitting_core() {
        let p = BestFitDecreasing.partition(&six_tasks(), 3).unwrap();
        // a->c0, b (fits c0? 0.8 yes, fullest) ->c0; c: c0 at 0.8+0.25
        // overflows, c1 empty vs c2 empty -> c1; d->c1 (0.5, fullest
        // fitting vs c2); e: c0 0.8+0.2=1.0 fits and c0 is fullest ->c0;
        // f: c0 full, c1 0.5 fullest ->c1.
        assert_eq!(p.assignment, vec![0, 0, 1, 1, 0, 1]);
        assert!(p.cores[2].is_none(), "third core stays idle");
        assert_eq!(p.utilizations[2], 0.0);
    }

    #[test]
    fn per_core_sets_keep_declaration_order_and_rm_priorities() {
        let p = FirstFitDecreasing.partition(&six_tasks(), 2).unwrap();
        let c0 = p.cores[0].as_ref().unwrap();
        assert_eq!(c0.name(), "six.c0");
        let names: Vec<&str> = c0.tasks().iter().map(|t| t.name()).collect();
        assert_eq!(names, ["a", "b", "e"], "declaration order preserved");
        // RM re-derived: e (50us) outranks a (100us).
        let ids = c0.ids_by_priority();
        assert_eq!(c0.task(ids[0]).name(), "e");
        // Phases survive the rebuild.
        assert_eq!(c0.tasks()[1].phase(), Dur::from_us(7));
    }

    #[test]
    fn rta_first_fit_cores_all_pass_rta() {
        let p = RtaFirstFit.partition(&six_tasks(), 2).unwrap();
        for set in p.cores.iter().flatten() {
            assert!(rta_schedulable(set), "{} must pass RTA", set.name());
        }
    }

    #[test]
    fn errors_are_structured() {
        let ts = six_tasks();
        assert!(matches!(
            FirstFitDecreasing.partition(&ts, 0),
            Err(PartitionError::NoCores)
        ));
        // Total utilization 1.7 > 1 core.
        let err = FirstFitDecreasing.partition(&ts, 1).unwrap_err();
        assert!(matches!(err, PartitionError::CapacityExceeded { .. }));
        let err = RtaFirstFit.partition(&ts, 1).unwrap_err();
        assert!(matches!(err, PartitionError::Unschedulable { .. }));
        // And they fold into the kernel taxonomy.
        let sim: SimError = err.into();
        assert_eq!(sim.kind(), "invalid-partition");
        assert!(sim.to_string().starts_with("partitioning failed: "));
    }

    #[test]
    fn heavy_task_is_named() {
        let ts = TaskSet::rate_monotonic(
            "heavy",
            vec![Task::new("whale", Dur::from_us(10), Dur::from_us(10))],
        );
        // u = 1.0 fits exactly; u > 1 is impossible to construct (C <= T),
        // so TaskTooHeavy guards deserialized/hostile inputs — here just
        // check the exact-fit boundary.
        let p = FirstFitDecreasing.partition(&ts, 1).unwrap();
        assert_eq!(p.assignment, vec![0]);
    }
}
