//! Fleet-level aggregation of per-core simulation reports.

use lpfps_kernel::report::SimReport;
use lpfps_tasks::time::Dur;
use serde::{value, Deserialize, Error, Map, Serialize, Value};

use crate::engine::MultiCell;
use crate::partition::{Partition, Partitioner};

/// Per-core summary row of a [`MultiReport`] — enough to read load
/// balance and energy split without digging into the full per-core
/// reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreBreakdown {
    /// Core index.
    pub core: usize,
    /// Tasks the partitioner placed here.
    pub tasks: usize,
    /// Total WCET utilization placed here.
    pub utilization: f64,
    /// Average normalized power over the horizon (0 for an idle core).
    pub average_power: f64,
    /// Normalized energy over the horizon (`average_power × seconds`).
    pub energy: f64,
    /// Deadline misses on this core.
    pub misses: usize,
}

/// The result of one multicore run: per-core uniprocessor reports plus
/// fleet aggregates.
///
/// Serialization is hand-written in declaration order, matching the
/// repo's stable-JSON conventions: identical runs produce identical
/// bytes, and each entry of `reports` is the *unmodified* uniprocessor
/// `SimReport` of that core (the bit-identity contract — see the crate
/// docs).
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Policy name (every core runs the same policy).
    pub policy: String,
    /// Partitioner name (`"ffd"`, `"bfd"`, `"wfd"`, `"rta-ff"`).
    pub partitioner: String,
    /// Core count, including idle cores.
    pub cores: usize,
    /// The fleet workload label (the base cell's `app`).
    pub taskset: String,
    /// The shared simulation horizon (after sweep scaling).
    pub horizon: Dur,
    /// `assignment[i]` = core of the fleet set's task `i` (declaration
    /// order).
    pub assignment: Vec<usize>,
    /// One summary row per core, in core order.
    pub per_core: Vec<CoreBreakdown>,
    /// Total normalized energy across cores.
    pub fleet_energy: f64,
    /// Mean per-core average power (idle cores count as 0), i.e. the
    /// fleet's normalized power draw per core.
    pub fleet_average_power: f64,
    /// Total deadline misses across cores.
    pub fleet_misses: usize,
    /// The per-core uniprocessor reports, in core order (`None` for a
    /// core that received no tasks).
    pub reports: Vec<Option<SimReport>>,
}

impl MultiReport {
    /// Builds the aggregate view from a run's parts. `reports` must be in
    /// core order and align with `partition`.
    pub(crate) fn assemble(
        mc: &MultiCell,
        partition: &Partition,
        horizon: Dur,
        reports: Vec<Option<SimReport>>,
    ) -> Self {
        let seconds = horizon.as_secs_f64();
        let mut per_core = Vec::with_capacity(reports.len());
        let mut fleet_energy = 0.0;
        let mut power_sum = 0.0;
        let mut fleet_misses = 0;
        for (k, report) in reports.iter().enumerate() {
            let (average_power, misses) = match report {
                Some(r) => (r.average_power(), r.misses.len()),
                None => (0.0, 0),
            };
            let energy = average_power * seconds;
            fleet_energy += energy;
            power_sum += average_power;
            fleet_misses += misses;
            per_core.push(CoreBreakdown {
                core: k,
                tasks: partition.tasks_on(k),
                utilization: partition.utilizations[k],
                average_power,
                energy,
                misses,
            });
        }
        let cores = reports.len();
        MultiReport {
            policy: mc.base.policy.name(),
            partitioner: mc.partitioner.name().to_string(),
            cores,
            taskset: mc.base.app.clone(),
            horizon,
            assignment: partition.assignment.clone(),
            per_core,
            fleet_energy,
            fleet_average_power: if cores == 0 {
                0.0
            } else {
                power_sum / cores as f64
            },
            fleet_misses,
            reports,
        }
    }

    /// The report of core `k`, if that core ran anything.
    pub fn core_report(&self, k: usize) -> Option<&SimReport> {
        self.reports.get(k).and_then(|r| r.as_ref())
    }

    /// True when no core missed a deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.fleet_misses == 0
    }
}

impl Serialize for MultiReport {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert(String::from("policy"), self.policy.to_value());
        map.insert(String::from("partitioner"), self.partitioner.to_value());
        map.insert(String::from("cores"), self.cores.to_value());
        map.insert(String::from("taskset"), self.taskset.to_value());
        map.insert(String::from("horizon"), self.horizon.to_value());
        map.insert(String::from("assignment"), self.assignment.to_value());
        map.insert(String::from("per_core"), self.per_core.to_value());
        map.insert(String::from("fleet_energy"), self.fleet_energy.to_value());
        map.insert(
            String::from("fleet_average_power"),
            self.fleet_average_power.to_value(),
        );
        map.insert(String::from("fleet_misses"), self.fleet_misses.to_value());
        map.insert(String::from("reports"), self.reports.to_value());
        Value::Object(map)
    }
}

impl Deserialize for MultiReport {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_object()
            .ok_or_else(|| Error::custom("expected an object for MultiReport"))?;
        let field = |name: &str| value::expect_field(map, "MultiReport", name);
        Ok(MultiReport {
            policy: String::from_value(field("policy")?)?,
            partitioner: String::from_value(field("partitioner")?)?,
            cores: usize::from_value(field("cores")?)?,
            taskset: String::from_value(field("taskset")?)?,
            horizon: Dur::from_value(field("horizon")?)?,
            assignment: Vec::from_value(field("assignment")?)?,
            per_core: Vec::from_value(field("per_core")?)?,
            fleet_energy: f64::from_value(field("fleet_energy")?)?,
            fleet_average_power: f64::from_value(field("fleet_average_power")?)?,
            fleet_misses: usize::from_value(field("fleet_misses")?)?,
            reports: Vec::from_value(field("reports")?)?,
        })
    }
}
