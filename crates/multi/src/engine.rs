//! The multicore run loop: partition once, then run each core's subset
//! through the uniprocessor kernel.
//!
//! [`MultiCell`] pairs a uniprocessor sweep [`Cell`] with a core count and
//! a [`PartitionerKind`]; [`MultiEngine`] executes the derived per-core
//! cells — serially or over a small work-stealing pool with per-worker
//! [`SimWorkspace`] reuse — and merges the reports **in core order**, so
//! the assembled [`MultiReport`] is byte-identical across thread counts.
//!
//! # Bit-identity by construction
//!
//! A derived core cell *is* a uniprocessor cell: same `Cell::run_in` code
//! path, same scaled horizon, with seeds re-keyed per core through
//! [`core_seed`] (identity on core 0) for both the execution-time and the
//! fault streams. Running a core's subset standalone through the
//! single-core kernel therefore reproduces the engine's per-core report
//! bit for bit, and a one-core run reproduces the uniprocessor golden
//! fingerprints (gated in `crates/bench/tests/multicore_golden.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lpfps::driver::default_horizon;
use lpfps_faults::core_seed;
use lpfps_kernel::engine::SimWorkspace;
use lpfps_kernel::error::SimError;
use lpfps_kernel::report::SimReport;
use lpfps_sweep::Cell;
use lpfps_tasks::time::Dur;

use crate::partition::{Partition, Partitioner, PartitionerKind};
use crate::report::MultiReport;

/// A multicore simulation point: a uniprocessor [`Cell`] (workload,
/// processor, policy, execution model, seed, overheads) plus the core
/// count and the partitioner that splits its task set.
#[derive(Debug, Clone)]
pub struct MultiCell {
    /// The uniprocessor cell the per-core cells derive from. Its `ts` is
    /// the *fleet* task set; its `cpu`/`policy`/overheads apply to every
    /// core (identical cores).
    pub base: Cell,
    /// The number of identical cores.
    pub cores: usize,
    /// The task-to-core allocator.
    pub partitioner: PartitionerKind,
}

impl MultiCell {
    /// A multicore point over `base` with `cores` cores and `partitioner`.
    pub fn new(base: Cell, cores: usize, partitioner: PartitionerKind) -> Self {
        MultiCell {
            base,
            cores,
            partitioner,
        }
    }

    /// Stable display label: `"{base}/m{cores}/{partitioner}"`.
    pub fn label(&self) -> String {
        format!(
            "{}/m{}/{}",
            self.base.label(),
            self.cores,
            self.partitioner.name()
        )
    }

    /// The horizon every derived core cell runs to (before sweep scaling):
    /// the base cell's explicit horizon, or `default_horizon` of the
    /// scaled fleet set — shared across cores so per-core reports align.
    pub fn shared_horizon(&self) -> Dur {
        self.base.horizon.unwrap_or_else(|| {
            default_horizon(&self.base.ts.with_bcet_fraction(self.base.bcet_fraction))
        })
    }

    /// Partitions the fleet task set and derives one uniprocessor [`Cell`]
    /// per non-idle core (`None` for cores that received no tasks).
    ///
    /// Derivation rules (the bit-identity contract):
    /// * core `k` runs the partition's `TaskSet` for core `k` (parent
    ///   declaration order, RM priorities re-derived);
    /// * `seed` and `faults.seed` re-key through [`core_seed`] — identity
    ///   on core 0, so a one-core run is byte-equal to the base cell;
    /// * the horizon is pinned to [`Self::shared_horizon`] on every core;
    /// * `app` becomes `"{base}.c{k}"` (unchanged when `cores == 1`);
    /// * everything else (cpu, policy, exec, BCET fraction, overheads,
    ///   tick, trace) copies verbatim.
    ///
    /// # Errors
    ///
    /// [`SimError::Partition`] when the partitioner cannot place every
    /// task.
    pub fn derived_cells(&self) -> Result<(Partition, Vec<Option<Cell>>), SimError> {
        let partition = self.partitioner.partition(&self.base.ts, self.cores)?;
        let horizon = self.shared_horizon();
        let mut cells = Vec::with_capacity(self.cores);
        for (k, core_set) in partition.cores.iter().enumerate() {
            let Some(ts) = core_set else {
                cells.push(None);
                continue;
            };
            let mut cell = self.base.clone();
            cell.app = if self.cores == 1 {
                self.base.app.clone()
            } else {
                format!("{}.c{k}", self.base.app)
            };
            cell.ts = ts.clone();
            cell.seed = core_seed(self.base.seed, k);
            cell.faults = self
                .base
                .faults
                .with_seed(core_seed(self.base.faults.seed, k));
            cell.horizon = Some(horizon);
            cells.push(Some(cell));
        }
        Ok((partition, cells))
    }
}

/// Runs [`MultiCell`]s, reusing per-worker simulation workspaces across
/// runs (the same allocation-reuse contract as the sweep runner).
#[derive(Debug, Default)]
pub struct MultiEngine {
    threads: usize,
    workspaces: Vec<SimWorkspace>,
}

impl MultiEngine {
    /// An engine using all available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        MultiEngine {
            threads,
            workspaces: Vec::new(),
        }
    }

    /// A single-threaded engine (cores run in index order on the caller's
    /// thread).
    pub fn serial() -> Self {
        MultiEngine {
            threads: 1,
            workspaces: Vec::new(),
        }
    }

    /// Caps the worker count (0 is treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs every core of `mc` to its shared horizon (scaled by
    /// `horizon_scale`) and aggregates the per-core reports.
    ///
    /// Cores execute on up to `threads` workers via an atomic
    /// work-stealing counter; each worker checks a [`SimWorkspace`] out of
    /// the engine's pool for its whole shift. Results land in a slot
    /// vector indexed by core, so the merged [`MultiReport`] is identical
    /// bytes regardless of worker count or completion order.
    ///
    /// # Errors
    ///
    /// [`SimError::Partition`] when partitioning fails; otherwise the
    /// lowest-indexed core's simulation error, if any.
    pub fn run(&mut self, mc: &MultiCell, horizon_scale: f64) -> Result<MultiReport, SimError> {
        let (partition, cells) = mc.derived_cells()?;
        let live: Vec<(usize, &Cell)> = cells
            .iter()
            .enumerate()
            .filter_map(|(k, c)| c.as_ref().map(|c| (k, c)))
            .collect();
        let workers = self.threads.min(live.len()).max(1);
        while self.workspaces.len() < workers {
            self.workspaces.push(SimWorkspace::new());
        }

        let mut slots: Vec<Option<Result<SimReport, SimError>>> = Vec::new();
        slots.resize_with(cells.len(), || None);

        if workers <= 1 {
            let ws = &mut self.workspaces[0];
            for &(k, cell) in &live {
                slots[k] = Some(cell.run_in(horizon_scale, ws));
            }
        } else {
            let pool: Mutex<Vec<SimWorkspace>> =
                Mutex::new(self.workspaces.drain(..workers).collect());
            let shared = Mutex::new(&mut slots);
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut ws = match pool.lock() {
                            Ok(mut g) => g.pop(),
                            Err(p) => p.into_inner().pop(),
                        }
                        .unwrap_or_default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(k, cell)) = live.get(i) else {
                                break;
                            };
                            let out = cell.run_in(horizon_scale, &mut ws);
                            match shared.lock() {
                                Ok(mut g) => g[k] = Some(out),
                                Err(p) => p.into_inner()[k] = Some(out),
                            }
                        }
                        match pool.lock() {
                            Ok(mut g) => g.push(ws),
                            Err(p) => p.into_inner().push(ws),
                        }
                    });
                }
            });
            let returned = match pool.into_inner() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            };
            self.workspaces.splice(0..0, returned);
        }

        let mut reports: Vec<Option<SimReport>> = Vec::with_capacity(cells.len());
        for slot in slots {
            match slot {
                Some(Ok(report)) => reports.push(Some(report)),
                Some(Err(e)) => return Err(e),
                None => reports.push(None),
            }
        }
        let horizon = scaled_horizon(mc.shared_horizon(), horizon_scale);
        Ok(MultiReport::assemble(mc, &partition, horizon, reports))
    }
}

/// Mirrors `Cell::effective_horizon`'s scaling so the fleet horizon
/// matches the per-core report horizons.
fn scaled_horizon(h: Dur, scale: f64) -> Dur {
    #[allow(clippy::float_cmp)] // deliberate exact mirror of the cell path
    if scale == 1.0 {
        return h;
    }
    Dur::from_ns(((h.as_ns() as f64) * scale).round().max(1.0) as u64)
}
