//! Property-based verification of the partitioners, over random
//! UUniFast-generated task sets:
//!
//! * every task lands on exactly one core, and the per-core sets are an
//!   exact partition of the parent (names, counts, utilization mass);
//! * every core [`RtaFirstFit`] admits passes exact response-time
//!   analysis;
//! * the capacity allocators and the RTA gate are *permutation
//!   deterministic*: shuffling the declaration order never changes the
//!   task → core mapping (the placement order is intrinsic);
//! * unpartitionable sets return a structured [`PartitionError`] — never
//!   a panic — and zero cores is always [`PartitionError::NoCores`].

use lpfps_multi::PartitionError;
use lpfps_multi::{Partitioner, PartitionerKind, RtaFirstFit};
use lpfps_tasks::analysis::rta_schedulable;
use lpfps_tasks::gen::{generate, GenConfig};
use lpfps_tasks::rng::SplitMix64;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn random_set(seed: u64, n: usize, util_pct: u64) -> TaskSet {
    let cfg = GenConfig::new(n, util_pct as f64 / 100.0)
        .with_periods(Dur::from_us(200), Dur::from_ms(20));
    generate(&cfg, seed)
}

/// A seeded Fisher–Yates shuffle of the declaration order. Task names
/// are unique, so the intrinsic placement order is total and the
/// assignment must not move.
fn shuffled(ts: &TaskSet, seed: u64) -> TaskSet {
    let mut tasks: Vec<Task> = ts.tasks().to_vec();
    let mut rng = SplitMix64::new(seed);
    for i in (1..tasks.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        tasks.swap(i, j);
    }
    TaskSet::rate_monotonic("shuffled", tasks)
}

/// The task name → core map of a partition.
fn placement(ts: &TaskSet, p: &lpfps_multi::Partition) -> BTreeMap<String, usize> {
    ts.tasks()
        .iter()
        .zip(&p.assignment)
        .map(|(t, &k)| (t.name().to_string(), k))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_task_is_assigned_exactly_once(
        set_seed in 0u64..=10_000,
        n in 3usize..=8,
        util_pct in 30u64..=90,
        cores in 1usize..=4,
    ) {
        let ts = random_set(set_seed, n, util_pct);
        for kind in PartitionerKind::ALL {
            // A structured error is acceptable (the set may genuinely not
            // fit); a panic or a malformed partition is not.
            let Ok(p) = kind.partition(&ts, cores) else { continue };
            prop_assert_eq!(p.assignment.len(), ts.len());
            prop_assert!(p.assignment.iter().all(|&k| k < cores));
            prop_assert_eq!(p.cores.len(), cores);
            let mut names: Vec<&str> = p
                .cores
                .iter()
                .flatten()
                .flat_map(|s| s.tasks().iter().map(Task::name))
                .collect();
            names.sort_unstable();
            let mut expected: Vec<&str> = ts.tasks().iter().map(Task::name).collect();
            expected.sort_unstable();
            prop_assert_eq!(names, expected, "{} must partition the set", kind.name());
            for k in 0..cores {
                prop_assert_eq!(
                    p.tasks_on(k),
                    p.cores[k].as_ref().map_or(0, TaskSet::len)
                );
            }
            let mass: f64 = p.utilizations.iter().sum();
            prop_assert!((mass - ts.utilization()).abs() < 1e-9);
        }
    }

    #[test]
    fn rta_admitted_cores_pass_response_time_analysis(
        set_seed in 0u64..=10_000,
        n in 3usize..=8,
        util_pct in 30u64..=90,
        cores in 1usize..=4,
    ) {
        let ts = random_set(set_seed, n, util_pct);
        let Ok(p) = RtaFirstFit.partition(&ts, cores) else { return Ok(()) };
        for set in p.cores.iter().flatten() {
            prop_assert!(
                rta_schedulable(set),
                "rta-ff emitted an unschedulable core: {}",
                set.name()
            );
        }
    }

    #[test]
    fn partitioners_are_permutation_deterministic(
        set_seed in 0u64..=10_000,
        shuffle_seed in 1u64..=10_000,
        n in 3usize..=8,
        util_pct in 30u64..=90,
        cores in 2usize..=4,
    ) {
        let ts = random_set(set_seed, n, util_pct);
        let permuted = shuffled(&ts, shuffle_seed);
        for kind in PartitionerKind::ALL {
            match (kind.partition(&ts, cores), kind.partition(&permuted, cores)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    placement(&ts, &a),
                    placement(&permuted, &b),
                    "{} moved tasks under permutation",
                    kind.name()
                ),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "{}: outcome flipped under permutation ({} vs {})",
                    kind.name(),
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }

    #[test]
    fn overloaded_sets_fail_with_structured_errors(
        cores in 1usize..=4,
        extra in 1usize..=3,
        period_us in 100u64..=10_000,
    ) {
        // cores + extra tasks at utilization 0.9 each: every core fits at
        // most one, so every allocator must refuse — with a typed error,
        // not a panic.
        let tasks: Vec<Task> = (0..cores + extra)
            .map(|i| {
                Task::new(
                    format!("heavy{i}"),
                    Dur::from_us(period_us),
                    Dur::from_ns(period_us * 900),
                )
            })
            .collect();
        let ts = TaskSet::rate_monotonic("overloaded", tasks);
        for kind in PartitionerKind::ALL {
            match kind.partition(&ts, cores) {
                Err(
                    PartitionError::CapacityExceeded { .. }
                    | PartitionError::Unschedulable { .. },
                ) => {}
                other => prop_assert!(
                    false,
                    "{} must refuse an overloaded set, got {:?}",
                    kind.name(),
                    other.map(|p| p.assignment)
                ),
            }
        }
    }
}

#[test]
fn zero_cores_is_always_no_cores() {
    let ts = random_set(1, 4, 50);
    for kind in PartitionerKind::ALL {
        assert!(matches!(
            kind.partition(&ts, 0),
            Err(PartitionError::NoCores)
        ));
    }
}

#[test]
fn kind_names_round_trip_and_match_the_sweep_cli_list() {
    for kind in PartitionerKind::ALL {
        assert_eq!(PartitionerKind::parse(kind.name()), Some(kind));
    }
    assert_eq!(PartitionerKind::parse("round-robin"), None);
    // The sweep CLI validates `--partitioner` against a copy of this
    // list (it cannot depend on this crate); keep the two in lockstep.
    let from_cli: Vec<&str> = lpfps_sweep::PARTITIONER_NAMES.to_vec();
    let from_kinds: Vec<&str> = PartitionerKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(from_cli, from_kinds);
}
