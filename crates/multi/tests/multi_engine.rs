//! Integration tests of the multicore engine: seed derivation, report
//! aggregation, serde stability, and byte-determinism across thread
//! counts. The heavyweight gates (golden-matrix reproduction, standalone
//! bit-identity over the full grid) live in
//! `crates/bench/tests/multicore_golden.rs`.

use lpfps::driver::PolicyKind;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::core_seed;
use lpfps_multi::{MultiCell, MultiEngine, MultiReport, Partitioner, PartitionerKind};
use lpfps_sweep::{Cell, ExecKind};
use lpfps_tasks::time::Dur;
use lpfps_workloads::{table1, WorkloadBuilder};
use serde::Deserialize;

fn fleet(cores: usize) -> Cell {
    let ts = WorkloadBuilder::new(table1())
        .with_seed(11)
        .replicate(cores);
    Cell::new(ts, CpuSpec::arm8(), PolicyKind::Lpfps)
        .with_exec(ExecKind::PaperGaussian)
        .with_bcet_fraction(0.5)
        .with_seed(42)
}

#[test]
fn one_core_derivation_is_the_identity() {
    let base = fleet(1);
    let mc = MultiCell::new(base.clone(), 1, PartitionerKind::Ffd);
    let (partition, cells) = mc.derived_cells().unwrap();
    assert_eq!(partition.assignment, vec![0, 0, 0]);
    let derived = cells[0].as_ref().unwrap();
    assert_eq!(
        derived.app, base.app,
        "app label must not grow a .c0 suffix"
    );
    assert_eq!(derived.seed, base.seed, "core 0 seed is the base seed");
    assert_eq!(derived.faults.seed, base.faults.seed);
    assert_eq!(
        derived.horizon,
        Some(base.effective_horizon(1.0)),
        "pinned horizon must equal the uniprocessor default"
    );
}

#[test]
fn per_core_seeds_follow_core_seed() {
    let base = fleet(4);
    let mc = MultiCell::new(base.clone(), 4, PartitionerKind::Wfd);
    let (_, cells) = mc.derived_cells().unwrap();
    for (k, cell) in cells.iter().enumerate() {
        let cell = cell
            .as_ref()
            .expect("4 replicas on 4 cores leave no core idle");
        assert_eq!(cell.seed, core_seed(base.seed, k));
        assert_eq!(cell.faults.seed, core_seed(base.faults.seed, k));
        assert_eq!(cell.app, format!("{}.c{k}", base.app));
    }
}

#[test]
fn fleet_aggregates_are_consistent_with_the_per_core_reports() {
    let mc = MultiCell::new(fleet(2), 2, PartitionerKind::Wfd);
    let report = MultiEngine::serial().run(&mc, 1.0).unwrap();
    assert_eq!(report.policy, "lpfps");
    assert_eq!(report.partitioner, "wfd");
    assert_eq!(report.cores, 2);
    assert_eq!(report.per_core.len(), 2);
    let horizon_s = report.horizon.as_secs_f64();
    let mut energy = 0.0;
    let mut power = 0.0;
    let mut misses = 0;
    for (k, row) in report.per_core.iter().enumerate() {
        assert_eq!(row.core, k);
        let core = report.core_report(k).unwrap();
        assert_eq!(row.average_power, core.average_power());
        assert_eq!(row.energy, core.average_power() * horizon_s);
        assert_eq!(row.misses, core.misses.len());
        energy += row.energy;
        power += row.average_power;
        misses += row.misses;
    }
    assert_eq!(report.fleet_energy, energy);
    assert_eq!(report.fleet_average_power, power / 2.0);
    assert_eq!(report.fleet_misses, misses);
    assert_eq!(report.all_deadlines_met(), misses == 0);
}

#[test]
fn multi_report_serde_round_trips() {
    let mc = MultiCell::new(fleet(2), 3, PartitionerKind::Bfd);
    let report = MultiEngine::serial().run(&mc, 1.0).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back = MultiReport::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
    assert_eq!(back.cores, 3);
    assert_eq!(back.reports.len(), 3);
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let mc = MultiCell::new(fleet(4), 4, PartitionerKind::RtaFf);
    let reference = serde_json::to_string(&MultiEngine::serial().run(&mc, 1.0).unwrap()).unwrap();
    for threads in [2, 4, 8] {
        let mut engine = MultiEngine::new().with_threads(threads);
        // Two runs per engine: workspace reuse must not leak state.
        for round in 0..2 {
            let got = serde_json::to_string(&engine.run(&mc, 1.0).unwrap()).unwrap();
            assert_eq!(
                got, reference,
                "threads={threads} round={round} changed bytes"
            );
        }
    }
}

#[test]
fn unpartitionable_cells_surface_a_sim_error() {
    // table1 x4 has utilization ~3.4: it cannot fit on 2 cores.
    let mc = MultiCell::new(fleet(4), 2, PartitionerKind::Ffd);
    let err = MultiEngine::serial().run(&mc, 1.0).unwrap_err();
    assert_eq!(err.kind(), "invalid-partition");
    assert!(err.to_string().starts_with("partitioning failed: "));
}

#[test]
fn label_names_the_topology() {
    let mc = MultiCell::new(fleet(2), 2, PartitionerKind::RtaFf);
    assert_eq!(mc.label(), format!("{}/m2/rta-ff", mc.base.label()));
    assert_eq!(mc.partitioner.name(), "rta-ff");
}

#[test]
fn horizon_scale_shrinks_the_shared_horizon() {
    let mc = MultiCell::new(fleet(2), 2, PartitionerKind::Wfd);
    let full = MultiEngine::serial().run(&mc, 1.0).unwrap();
    let half = MultiEngine::serial().run(&mc, 0.5).unwrap();
    assert_eq!(
        half.horizon,
        Dur::from_ns((full.horizon.as_ns() as f64 * 0.5).round() as u64)
    );
    for k in 0..2 {
        assert_eq!(half.core_report(k).unwrap().horizon, half.horizon);
    }
}
