//! Serde round-trips for the data-structure types (C-SERDE): task sets
//! and analysis inputs must survive JSON persistence bit-exactly, because
//! the experiment harness stores and reloads them.

use lpfps_tasks::analysis::{response_times, RtaConfig};
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};

fn table1() -> TaskSet {
    TaskSet::rate_monotonic(
        "table1",
        vec![
            Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
            Task::new("tau2", Dur::from_us(80), Dur::from_us(20)).with_bcet(Dur::from_us(5)),
            Task::new("tau3", Dur::from_us(100), Dur::from_us(40))
                .with_deadline(Dur::from_us(90))
                .with_phase(Dur::from_us(3)),
        ],
    )
}

#[test]
fn taskset_roundtrips_through_json() {
    let ts = table1();
    let json = serde_json::to_string_pretty(&ts).expect("serialize");
    let back: TaskSet = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(ts, back);
    // Semantics preserved, not just structure: analysis agrees.
    assert_eq!(
        response_times(&ts, &RtaConfig::default()),
        response_times(&back, &RtaConfig::default())
    );
}

#[test]
fn quantities_roundtrip_through_json() {
    let d = Dur::from_ns(123_456_789);
    let t = Time::from_ns(987_654_321);
    let d2: Dur = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
    let t2: Time = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(d, d2);
    assert_eq!(t, t2);
}

#[test]
fn taskset_json_is_human_editable() {
    // The shape users hand-edit for the `simulate --taskset` CLI flag:
    // named fields, nanosecond integers.
    let json = serde_json::to_value(table1()).unwrap();
    assert_eq!(json["name"], "table1");
    assert_eq!(json["tasks"][0]["name"], "tau1");
    assert_eq!(json["tasks"][0]["period"], 50_000);
    assert_eq!(json["priorities"][0], 0);
}
