//! Property-based tests for the task-model foundations: quantity
//! arithmetic, cycle/time conversions, analysis invariants, generators,
//! and execution-time models.

use lpfps_tasks::analysis::{
    busy_period_responses, hyperperiod, liu_layland_bound, response_time, response_times,
    rta_schedulable, utilization_schedulable, RtaConfig,
};
use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::exec::{AlwaysWcet, Bimodal, ExecModel, PaperGaussian, UniformBetween};
use lpfps_tasks::freq::Freq;
use lpfps_tasks::gen::{generate, uunifast, GenConfig};
use lpfps_tasks::rng::SplitMix64;
use lpfps_tasks::task::{Task, TaskId};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};
use proptest::prelude::*;

proptest! {
    // ---- time arithmetic ------------------------------------------------

    #[test]
    fn time_add_sub_roundtrip(base in 0u64..1_000_000_000, delta in 0u64..1_000_000_000) {
        let t = Time::from_ns(base);
        let d = Dur::from_ns(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_since(t + d), Dur::ZERO);
    }

    #[test]
    fn dur_div_rem_partition(a in 1u64..10_000_000, b in 1u64..100_000) {
        let d = Dur::from_ns(a);
        let p = Dur::from_ns(b);
        prop_assert_eq!(p * (d / p) + d % p, d);
        prop_assert!(d % p < p);
    }

    // ---- cycles <-> time ------------------------------------------------

    #[test]
    fn cycles_time_roundtrip_never_loses_work(
        cycles in 1u64..100_000_000,
        khz in 1_000u64..200_000,
    ) {
        let c = Cycles::new(cycles);
        let f = Freq::from_khz(khz);
        // time_at rounds up, so converting back recovers at least c.
        let back = Cycles::from_time_at(c.time_at(f), f);
        prop_assert!(back >= c);
        // And overshoots by less than one cycle's worth of rounding slack.
        prop_assert!(back.as_u64() - c.as_u64() <= 1);
    }

    #[test]
    fn slower_clocks_never_shorten_execution(
        cycles in 1u64..10_000_000,
        khz in 8_000u64..100_000,
    ) {
        let c = Cycles::new(cycles);
        let slow = c.time_at(Freq::from_khz(khz));
        let fast = c.time_at(Freq::from_khz(khz + 1_000));
        prop_assert!(slow >= fast);
    }

    // ---- schedulability analysis ----------------------------------------

    #[test]
    fn rta_response_at_least_wcet(
        periods in proptest::collection::vec(50u64..5_000, 1..6),
        seed in 0u64..1_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let c = 1 + (rng.next_u64() % (p / 4).max(1));
                Task::new(format!("t{i}"), Dur::from_us(p), Dur::from_us(c))
            })
            .collect();
        let ts = TaskSet::rate_monotonic("prop", tasks);
        for (i, outcome) in response_times(&ts, &RtaConfig::default()).iter().enumerate() {
            if let Some(r) = outcome.response() {
                prop_assert!(r >= ts.task(TaskId(i)).wcet());
                prop_assert!(r <= ts.task(TaskId(i)).deadline());
            }
        }
    }

    #[test]
    fn sufficient_tests_imply_the_exact_test(
        periods in proptest::collection::vec(100u64..10_000, 2..8),
        utils in proptest::collection::vec(1u64..20, 2..8),
    ) {
        let n = periods.len().min(utils.len());
        let tasks: Vec<Task> = (0..n)
            .map(|i| {
                // per-task utilization at most 20/n percent-ish, keeping the
                // sum within the Liu-Layland bound most of the time.
                let c = (periods[i] * utils[i] / (100 * n as u64)).max(1);
                Task::new(format!("t{i}"), Dur::from_us(periods[i]), Dur::from_us(c))
            })
            .collect();
        let ts = TaskSet::rate_monotonic("prop", tasks);
        if utilization_schedulable(&ts) {
            prop_assert!(rta_schedulable(&ts), "LL bound accepted an unschedulable set");
        }
    }

    #[test]
    fn rta_is_monotone_in_wcet(
        p1 in 100u64..1_000, p2 in 1_000u64..5_000, c1 in 1u64..80,
        c2 in 1u64..400, bump in 1u64..20,
    ) {
        let build = |c1: u64| {
            TaskSet::rate_monotonic(
                "mono",
                vec![
                    Task::new("hi", Dur::from_us(p1), Dur::from_us(c1.min(p1))),
                    Task::new("lo", Dur::from_us(p2), Dur::from_us(c2.min(p2))),
                ],
            )
        };
        let base = response_time(&build(c1), TaskId(1), &RtaConfig::default());
        let bumped = response_time(&build((c1 + bump).min(p1)), TaskId(1), &RtaConfig::default());
        match (base.response(), bumped.response()) {
            (Some(a), Some(b)) => prop_assert!(b >= a, "interference grew but response shrank"),
            (None, Some(_)) => prop_assert!(false, "adding load cannot make a task schedulable"),
            _ => {}
        }
    }

    #[test]
    fn hyperperiod_is_divisible_by_every_period(
        periods in proptest::collection::vec(1u64..500, 1..6),
    ) {
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| Task::new(format!("t{i}"), Dur::from_us(p), Dur::from_us(1).min(Dur::from_us(p))))
            .collect();
        let ts = TaskSet::rate_monotonic("prop", tasks);
        if let Some(h) = hyperperiod(&ts) {
            for (_, t, _) in ts.iter() {
                prop_assert_eq!(h % t.period(), Dur::ZERO);
            }
        }
    }

    // ---- generators ------------------------------------------------------

    #[test]
    fn uunifast_always_sums_to_target(n in 1usize..32, total_pct in 1u64..100, seed in 0u64..500) {
        let total = total_pct as f64 / 100.0;
        let mut rng = SplitMix64::new(seed);
        let utils = uunifast(n, total, &mut rng);
        prop_assert_eq!(utils.len(), n);
        let sum: f64 = utils.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
        prop_assert!(utils.iter().all(|&u| (0.0..=total + 1e-12).contains(&u)));
    }

    #[test]
    fn generated_sets_respect_their_config(n in 1usize..16, u_pct in 5u64..95, seed in 0u64..200) {
        let cfg = GenConfig::new(n, u_pct as f64 / 100.0)
            .with_periods(Dur::from_us(200), Dur::from_us(50_000))
            .with_bcet_fraction(0.5);
        let ts = generate(&cfg, seed);
        prop_assert_eq!(ts.len(), n);
        for (_, t, _) in ts.iter() {
            prop_assert!(t.period() >= Dur::from_us(200));
            prop_assert!(t.period() <= Dur::from_us(50_000));
            prop_assert!(t.bcet() <= t.wcet());
        }
    }

    // ---- execution-time models --------------------------------------------

    #[test]
    fn all_exec_models_respect_the_contract(
        wcet_us in 2u64..10_000,
        bcet_pct in 1u64..=100,
        job in 0u64..50,
        seed in 0u64..100,
    ) {
        let period = Dur::from_us(wcet_us * 2);
        let task = Task::new("t", period, Dur::from_us(wcet_us))
            .with_bcet_fraction(bcet_pct as f64 / 100.0);
        let models: [&dyn ExecModel; 4] =
            [&AlwaysWcet, &PaperGaussian, &UniformBetween, &Bimodal::new(0.3)];
        for m in models {
            let d = m.sample(&task, TaskId(0), job, seed);
            prop_assert!(!d.is_zero(), "{} returned zero", m.name());
            prop_assert!(d <= task.wcet(), "{} exceeded the WCET", m.name());
            // Deterministic per (job, seed).
            prop_assert_eq!(d, m.sample(&task, TaskId(0), job, seed));
        }
    }
}

proptest! {
    /// The two exact oracles — the RTA fixed point and the synchronous
    /// busy-period simulation — must agree bit-exactly on every random
    /// constrained-deadline task set with U <= 1.
    #[test]
    fn rta_and_busy_period_oracles_agree(
        periods in proptest::collection::vec(20u64..2_000, 1..7),
        seed in 0u64..2_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let c = 1 + (rng.next_u64() % (p / 3).max(1));
                Task::new(format!("t{i}"), Dur::from_us(p), Dur::from_us(c))
            })
            .collect();
        let ts = TaskSet::rate_monotonic("oracles", tasks);
        prop_assume!(ts.utilization() <= 1.0);
        let sim = busy_period_responses(&ts).expect("U <= 1");
        if rta_schedulable(&ts) {
            // Exact domain: both oracles produce identical responses.
            let rta = response_times(&ts, &RtaConfig::default());
            for (i, (s, r)) in sim.iter().zip(&rta).enumerate() {
                prop_assert!(s.is_schedulable(), "task {} verdict mismatch", i);
                prop_assert_eq!(
                    s.response(),
                    r.response().expect("schedulable"),
                    "task {} response mismatch", i
                );
            }
        } else {
            // Both must reject the set (once a job overruns, the sim's
            // per-task detail is not comparable to RTA's, but the overall
            // verdict is).
            prop_assert!(sim.iter().any(|o| !o.is_schedulable()));
        }
    }
}

#[test]
fn liu_layland_bound_brackets_ln2() {
    for n in 1..200 {
        let b = liu_layland_bound(n);
        assert!(b > (2f64).ln() && b <= 1.0);
    }
}
