//! Cyclically modulated execution times: periodic load patterns.
//!
//! Many real control loops have mode-dependent demands that repeat — a
//! video decoder's GOP structure, a radar's scan pattern, a control law
//! alternating estimation and actuation phases. This model makes the
//! per-job mean follow a sinusoid over the job index (period
//! `cycle_jobs`), with clamped Gaussian jitter around it. Unlike i.i.d.
//! models, consecutive jobs are strongly correlated, producing *sustained*
//! stretches of high slack — a stress pattern for slack-reclaiming
//! schedulers that i.i.d. draws never create.
//!
//! Like every model in this crate it is stateless per job (the mean is a
//! pure function of the job index), so all policies see identical
//! realizations.

use crate::exec::{clamp_demand, ExecModel};
use crate::rng::job_stream;
use crate::task::{Task, TaskId};
use crate::time::Dur;

/// Sinusoidal mean with Gaussian jitter, clamped to `[BCET, WCET]`.
#[derive(Debug, Clone, Copy)]
pub struct Cyclic {
    cycle_jobs: u64,
    jitter_frac: f64,
}

impl Cyclic {
    /// Creates the model: the mean demand completes one full low-high-low
    /// cycle every `cycle_jobs` jobs; `jitter_frac` scales the Gaussian
    /// jitter as a fraction of the `[BCET, WCET]` span (0 = deterministic
    /// wave).
    ///
    /// # Panics
    ///
    /// Panics if `cycle_jobs` is zero or `jitter_frac` is not in `[0, 1]`.
    pub fn new(cycle_jobs: u64, jitter_frac: f64) -> Self {
        assert!(cycle_jobs > 0, "the cycle needs at least one job");
        assert!(
            (0.0..=1.0).contains(&jitter_frac),
            "jitter fraction must be in [0, 1]"
        );
        Cyclic {
            cycle_jobs,
            jitter_frac,
        }
    }

    /// The cycle length in jobs.
    pub fn cycle_jobs(&self) -> u64 {
        self.cycle_jobs
    }
}

impl ExecModel for Cyclic {
    fn sample(&self, task: &Task, task_id: TaskId, job_index: u64, seed: u64) -> Dur {
        let b = task.bcet().as_ns() as f64;
        let w = task.wcet().as_ns() as f64;
        if task.bcet() == task.wcet() {
            return task.wcet();
        }
        let phase = (job_index % self.cycle_jobs) as f64 / self.cycle_jobs as f64;
        // Mean sweeps [BCET, WCET] sinusoidally over the cycle.
        let wave = 0.5 - 0.5 * (2.0 * core::f64::consts::PI * phase).cos();
        let mean = b + (w - b) * wave;
        let demand = if self.jitter_frac == 0.0 {
            mean
        } else {
            let sigma = (w - b) * self.jitter_frac / 6.0;
            let mut rng = job_stream(seed, task_id.0, job_index);
            let z = rng.next_gaussian();
            mean + sigma * z
        };
        clamp_demand(demand, task.bcet(), task.wcet())
    }

    fn name(&self) -> &'static str {
        "cyclic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new("t", Dur::from_us(1_000), Dur::from_us(100)).with_bcet(Dur::from_us(20))
    }

    #[test]
    fn deterministic_wave_touches_both_extremes() {
        let m = Cyclic::new(16, 0.0);
        let t = task();
        // Job 0 sits at the trough (BCET), job 8 at the crest (WCET).
        assert_eq!(m.sample(&t, TaskId(0), 0, 1), t.bcet());
        assert_eq!(m.sample(&t, TaskId(0), 8, 1), t.wcet());
    }

    #[test]
    fn wave_repeats_every_cycle() {
        let m = Cyclic::new(10, 0.0);
        let t = task();
        for j in 0..10 {
            assert_eq!(
                m.sample(&t, TaskId(0), j, 3),
                m.sample(&t, TaskId(0), j + 10, 3)
            );
        }
    }

    #[test]
    fn consecutive_jobs_are_correlated() {
        // Adjacent jobs on a long cycle differ far less than the full span
        // (the property i.i.d. models lack).
        let m = Cyclic::new(100, 0.1);
        let t = task();
        for j in 0..99 {
            let a = m.sample(&t, TaskId(0), j, 5).as_ns() as i64;
            let b = m.sample(&t, TaskId(0), j + 1, 5).as_ns() as i64;
            let span = (t.wcet().as_ns() - t.bcet().as_ns()) as i64;
            assert!((a - b).abs() < span / 4, "jump too large at job {j}");
        }
    }

    #[test]
    fn samples_respect_the_contract() {
        let m = Cyclic::new(7, 0.5);
        let t = task();
        for j in 0..500 {
            let d = m.sample(&t, TaskId(1), j, 9);
            assert!(d >= t.bcet() && d <= t.wcet());
            assert_eq!(d, m.sample(&t, TaskId(1), j, 9), "determinism");
        }
    }

    #[test]
    fn degenerate_range_returns_wcet() {
        let t = Task::new("t", Dur::from_us(100), Dur::from_us(40));
        assert_eq!(Cyclic::new(4, 0.2).sample(&t, TaskId(0), 3, 0), t.wcet());
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_cycle_rejected() {
        let _ = Cyclic::new(0, 0.1);
    }
}
