//! The degenerate model: every job takes exactly its WCET.

use crate::exec::ExecModel;
use crate::task::{Task, TaskId};
use crate::time::Dur;

/// Every job runs for exactly its task's WCET.
///
/// This is the workload assumption of classical schedulability analysis and
/// the `BCET = WCET` endpoint of the paper's Figure 8: even here LPFPS
/// saves power, purely from the schedule's inherent idle intervals.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::exec::{AlwaysWcet, ExecModel};
/// use lpfps_tasks::{task::{Task, TaskId}, time::Dur};
///
/// let t = Task::new("t", Dur::from_us(100), Dur::from_us(40));
/// assert_eq!(AlwaysWcet.sample(&t, TaskId(0), 7, 42), Dur::from_us(40));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysWcet;

impl ExecModel for AlwaysWcet {
    fn sample(&self, task: &Task, _task_id: TaskId, _job_index: u64, _seed: u64) -> Dur {
        task.wcet()
    }

    fn name(&self) -> &'static str {
        "always-wcet"
    }

    fn index_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_job_index_and_seed() {
        let t = Task::new("t", Dur::from_us(50), Dur::from_us(10));
        for job in 0..5 {
            for seed in [0u64, 1, u64::MAX] {
                assert_eq!(
                    AlwaysWcet.sample(&t, TaskId(3), job, seed),
                    Dur::from_us(10)
                );
            }
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(AlwaysWcet.name(), "always-wcet");
    }
}
