//! Uniformly distributed execution times over `[BCET, WCET]`.

use crate::exec::{clamp_demand, ExecModel};
use crate::rng::job_stream;
use crate::task::{Task, TaskId};
use crate::time::Dur;

/// Draws each job's demand uniformly from `[BCET, WCET]`.
///
/// A heavier-tailed alternative to [`PaperGaussian`](crate::exec::PaperGaussian)
/// used in ablations: the uniform law spends more probability mass near the
/// extremes, which stresses both the power-down path (very short jobs) and
/// the safety argument (near-WCET jobs at lowered speed).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformBetween;

impl ExecModel for UniformBetween {
    fn sample(&self, task: &Task, task_id: TaskId, job_index: u64, seed: u64) -> Dur {
        let b = task.bcet().as_ns() as f64;
        let w = task.wcet().as_ns() as f64;
        if task.bcet() == task.wcet() {
            return task.wcet();
        }
        let mut rng = job_stream(seed, task_id.0, job_index);
        clamp_demand(b + (w - b) * rng.next_f64(), task.bcet(), task.wcet())
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(bcet_us: u64, wcet_us: u64) -> Task {
        Task::new("t", Dur::from_us(1_000), Dur::from_us(wcet_us)).with_bcet(Dur::from_us(bcet_us))
    }

    #[test]
    fn samples_stay_in_declared_range() {
        let t = task(10, 90);
        for job in 0..2_000 {
            let d = UniformBetween.sample(&t, TaskId(0), job, 11);
            assert!(d >= t.bcet() && d <= t.wcet());
        }
    }

    #[test]
    fn mean_is_the_midpoint() {
        let t = task(10, 90);
        let n = 20_000u64;
        let mean: f64 = (0..n)
            .map(|j| UniformBetween.sample(&t, TaskId(0), j, 11).as_us_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 50.0).abs() < 0.5, "mean {mean} != 50");
    }

    #[test]
    fn covers_the_whole_range() {
        let t = task(10, 90);
        let mut saw_low = false;
        let mut saw_high = false;
        for job in 0..5_000 {
            let us = UniformBetween.sample(&t, TaskId(0), job, 11).as_us_f64();
            saw_low |= us < 14.0;
            saw_high |= us > 86.0;
        }
        assert!(saw_low && saw_high, "uniform draws should reach both tails");
    }

    #[test]
    fn degenerate_range_returns_wcet() {
        let t = task(30, 30);
        assert_eq!(UniformBetween.sample(&t, TaskId(0), 0, 0), Dur::from_us(30));
    }
}
