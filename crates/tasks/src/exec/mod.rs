//! Execution-time models: how long each job *actually* runs.
//!
//! LPFPS's power win comes from jobs finishing before their WCET, so the
//! model generating realized execution times is a first-class part of the
//! evaluation. The paper's model (§4) draws each job's time from a Gaussian
//! with mean `(BCET + WCET)/2` and standard deviation `(WCET - BCET)/6`,
//! clamped so values never exceed the WCET — implemented here as
//! [`PaperGaussian`], alongside simpler alternatives used in tests and
//! ablations.
//!
//! All models are **stateless per job**: the draw for `(task, job_index)`
//! depends only on the seed, never on simulation order, so every scheduling
//! policy sees the identical workload realization (see [`crate::rng`]).

mod bimodal;
mod constant;
mod cyclic;
mod gaussian;
mod uniform;

pub use bimodal::Bimodal;
pub use constant::AlwaysWcet;
pub use cyclic::Cyclic;
pub use gaussian::PaperGaussian;
pub use uniform::UniformBetween;

use crate::task::{Task, TaskId};
use crate::time::Dur;
use core::fmt::Debug;

/// A generator of realized per-job execution demands (at full clock speed).
///
/// Implementations must be deterministic functions of
/// `(task parameters, task_id, job_index, seed)` and must return a value in
/// `[1 ns, task.wcet()]` — the kernel debug-asserts this contract.
pub trait ExecModel: Debug + Send + Sync {
    /// The realized execution demand of job `job_index` of `task`.
    fn sample(&self, task: &Task, task_id: TaskId, job_index: u64, seed: u64) -> Dur;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// True iff [`sample`](Self::sample) ignores `job_index` entirely —
    /// every job of a task draws the same demand. Kernels exploit this for
    /// steady-state cycle detection: an index-invariant workload repeats
    /// exactly each hyperperiod, while index-dependent draws (the Gaussian
    /// and cyclic models) make every cycle unique. Defaults to `false`,
    /// the conservative answer.
    fn index_invariant(&self) -> bool {
        false
    }
}

/// Clamps a floating-point nanosecond demand into the legal `[min, wcet]`
/// range shared by all models (the paper's "clamping operation").
pub(crate) fn clamp_demand(ns: f64, bcet: Dur, wcet: Dur) -> Dur {
    let lo = bcet.as_ns().min(wcet.as_ns()).max(1);
    let hi = wcet.as_ns();
    if !ns.is_finite() {
        return Dur::from_ns(hi);
    }
    Dur::from_ns((ns.round() as i64).clamp(lo as i64, hi as i64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_keeps_values_in_range() {
        let b = Dur::from_us(10);
        let w = Dur::from_us(20);
        assert_eq!(clamp_demand(5_000.0, b, w), b);
        assert_eq!(clamp_demand(25_000_000.0, b, w), w);
        assert_eq!(clamp_demand(15_000.0, b, w), Dur::from_ns(15_000));
        assert_eq!(clamp_demand(f64::NAN, b, w), w);
        assert_eq!(clamp_demand(-1.0, b, w), b);
    }

    #[test]
    fn clamp_floor_is_one_ns_even_for_degenerate_bcet() {
        // BCET can never actually be zero (Task enforces it), but the clamp
        // is defensive anyway.
        assert_eq!(
            clamp_demand(0.0, Dur::from_ns(1), Dur::from_us(1)),
            Dur::from_ns(1)
        );
    }
}
