//! The paper's clamped-Gaussian execution-time model (§4, Eqs. 4–5).

use crate::exec::{clamp_demand, ExecModel};
use crate::rng::job_stream;
use crate::task::{Task, TaskId};
use crate::time::Dur;

/// Gaussian execution times with the paper's parameters:
///
/// ```text
/// m     = (BCET + WCET) / 2          (Eq. 4)
/// sigma = (WCET - BCET) / 6          (Eq. 5)
/// ```
///
/// With `WCET = m + 3*sigma`, about 99.7 % of draws land inside
/// `[BCET, WCET]`; the remainder are clamped into that interval (the paper
/// clamps at WCET so no job overruns; we clamp at BCET too, keeping the
/// realized times inside the declared range — the sub-0.2 % of mass this
/// moves is negligible for the power comparison and keeps BCET honest).
///
/// When `BCET = WCET` the distribution degenerates to a constant WCET,
/// which is exactly the right edge of Figure 8.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::exec::{ExecModel, PaperGaussian};
/// use lpfps_tasks::{task::{Task, TaskId}, time::Dur};
///
/// let t = Task::new("t", Dur::from_us(100), Dur::from_us(40))
///     .with_bcet(Dur::from_us(4));
/// let d = PaperGaussian.sample(&t, TaskId(0), 0, 1);
/// assert!(d >= t.bcet() && d <= t.wcet());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperGaussian;

impl ExecModel for PaperGaussian {
    fn sample(&self, task: &Task, task_id: TaskId, job_index: u64, seed: u64) -> Dur {
        let b = task.bcet().as_ns() as f64;
        let w = task.wcet().as_ns() as f64;
        if task.bcet() == task.wcet() {
            return task.wcet();
        }
        let mean = 0.5 * (b + w);
        let sigma = (w - b) / 6.0;
        let mut rng = job_stream(seed, task_id.0, job_index);
        let z = rng.next_gaussian();
        clamp_demand(mean + sigma * z, task.bcet(), task.wcet())
    }

    fn name(&self) -> &'static str {
        "paper-gaussian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(bcet_us: u64, wcet_us: u64) -> Task {
        Task::new("t", Dur::from_us(1_000), Dur::from_us(wcet_us)).with_bcet(Dur::from_us(bcet_us))
    }

    #[test]
    fn samples_stay_in_declared_range() {
        let t = task(10, 100);
        for job in 0..5_000 {
            let d = PaperGaussian.sample(&t, TaskId(0), job, 42);
            assert!(d >= t.bcet() && d <= t.wcet(), "job {job} drew {d}");
        }
    }

    #[test]
    fn mean_matches_eq4() {
        let t = task(20, 100);
        let n = 20_000u64;
        let sum: f64 = (0..n)
            .map(|j| PaperGaussian.sample(&t, TaskId(1), j, 7).as_ns() as f64)
            .sum();
        let mean_us = sum / n as f64 / 1_000.0;
        // m = (20 + 100)/2 = 60 us; clamping is symmetric so the mean holds.
        assert!((mean_us - 60.0).abs() < 1.0, "mean {mean_us} != 60");
    }

    #[test]
    fn spread_matches_eq5() {
        let t = task(20, 100);
        let n = 20_000u64;
        let xs: Vec<f64> = (0..n)
            .map(|j| PaperGaussian.sample(&t, TaskId(1), j, 7).as_us_f64())
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        // sigma = (100-20)/6 = 13.33 us; clamping trims the tails slightly,
        // so allow a loose band.
        let sigma = var.sqrt();
        assert!((sigma - 13.3).abs() < 1.0, "sigma {sigma} != ~13.3");
    }

    #[test]
    fn degenerate_range_returns_wcet() {
        let t = task(50, 50);
        assert_eq!(PaperGaussian.sample(&t, TaskId(0), 9, 3), Dur::from_us(50));
    }

    #[test]
    fn same_job_same_seed_is_reproducible() {
        let t = task(10, 100);
        let a = PaperGaussian.sample(&t, TaskId(2), 33, 5);
        let b = PaperGaussian.sample(&t, TaskId(2), 33, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_realizations() {
        let t = task(10, 100);
        let draws_a: Vec<Dur> = (0..16)
            .map(|j| PaperGaussian.sample(&t, TaskId(0), j, 1))
            .collect();
        let draws_b: Vec<Dur> = (0..16)
            .map(|j| PaperGaussian.sample(&t, TaskId(0), j, 2))
            .collect();
        assert_ne!(draws_a, draws_b);
    }
}
