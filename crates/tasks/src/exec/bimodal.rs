//! Bimodal execution times: mostly fast, occasionally worst-case.

use crate::exec::ExecModel;
use crate::rng::job_stream;
use crate::task::{Task, TaskId};
use crate::time::Dur;

/// With probability `p_wcet` a job takes its full WCET; otherwise it takes
/// its BCET.
///
/// This models control software with a rare expensive path (e.g. a mode
/// change) — the regime where WCET-based reservations waste the most time
/// and slack-reclaiming schedulers like LPFPS shine. Used in extension
/// experiments beyond the paper's Gaussian model.
#[derive(Debug, Clone, Copy)]
pub struct Bimodal {
    p_wcet: f64,
}

impl Bimodal {
    /// Creates the model with the given probability of a worst-case job.
    ///
    /// # Panics
    ///
    /// Panics if `p_wcet` is not in `[0, 1]`.
    pub fn new(p_wcet: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_wcet),
            "p_wcet must be a probability, got {p_wcet}"
        );
        Bimodal { p_wcet }
    }

    /// The probability of a worst-case job.
    pub fn p_wcet(&self) -> f64 {
        self.p_wcet
    }
}

impl ExecModel for Bimodal {
    fn sample(&self, task: &Task, task_id: TaskId, job_index: u64, seed: u64) -> Dur {
        let mut rng = job_stream(seed, task_id.0, job_index);
        if rng.next_f64() < self.p_wcet {
            task.wcet()
        } else {
            task.bcet()
        }
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new("t", Dur::from_us(100), Dur::from_us(40)).with_bcet(Dur::from_us(4))
    }

    #[test]
    fn only_two_outcomes_occur() {
        let m = Bimodal::new(0.3);
        let t = task();
        for job in 0..1_000 {
            let d = m.sample(&t, TaskId(0), job, 5);
            assert!(d == t.bcet() || d == t.wcet());
        }
    }

    #[test]
    fn frequency_matches_probability() {
        let m = Bimodal::new(0.25);
        let t = task();
        let n = 40_000u64;
        let wcet_count = (0..n)
            .filter(|&j| m.sample(&t, TaskId(0), j, 5) == t.wcet())
            .count();
        let p = wcet_count as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.01, "observed p {p} != 0.25");
    }

    #[test]
    fn extremes_are_deterministic() {
        let t = task();
        let always = Bimodal::new(1.0);
        let never = Bimodal::new(0.0);
        for job in 0..100 {
            assert_eq!(always.sample(&t, TaskId(0), job, 1), t.wcet());
            assert_eq!(never.sample(&t, TaskId(0), job, 1), t.bcet());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = Bimodal::new(1.5);
    }
}
