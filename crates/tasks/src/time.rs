//! Integer time base for the deterministic discrete-event simulation.
//!
//! All simulation timestamps are absolute nanoseconds held in a [`Time`]
//! newtype; all time spans are nanoseconds held in a [`Dur`] newtype. The
//! paper quotes task parameters in microseconds, so both types provide
//! microsecond constructors and accessors, but the nanosecond base leaves
//! headroom to represent sub-microsecond artifacts exactly (e.g. the
//! 10-cycle wake-up delay at 100 MHz is 100 ns).
//!
//! Keeping time integral (rather than `f64`) makes the simulator bit-exact
//! and platform-independent: two runs with the same seed produce identical
//! schedules, which the integration tests rely on.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Nanoseconds per microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NS_PER_S: u64 = 1_000_000_000;

/// An absolute simulation instant, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::time::{Dur, Time};
///
/// let t = Time::from_us(160);
/// assert_eq!(t + Dur::from_us(40), Time::from_us(200));
/// assert_eq!(Time::from_us(200) - t, Dur::from_us(40));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

/// A non-negative time span, in nanoseconds.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::time::Dur;
///
/// let c = Dur::from_us(20);
/// assert_eq!(c * 2, Dur::from_us(40));
/// assert_eq!(c.as_us_f64(), 20.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Dur(u64);

impl Time {
    /// The simulation origin (t = 0).
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_us(us: u64) -> Self {
        Time(us * NS_PER_US)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * NS_PER_MS)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, truncated.
    pub const fn as_us(self) -> u64 {
        self.0 / NS_PER_US
    }

    /// Microseconds since simulation start, as a float (for reporting only).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / NS_PER_US as f64
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_S as f64
    }

    /// The span from `earlier` to `self`, or [`Dur::ZERO`] if `earlier` is later.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: Dur) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }

    /// Returns `self + d`, clamping at [`Time::MAX`] instead of overflowing.
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// Returns `self - d`, clamping at [`Time::ZERO`] instead of underflowing.
    pub fn saturating_sub(self, d: Dur) -> Time {
        Time(self.0.saturating_sub(d.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable span; used as an "unbounded" sentinel.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * NS_PER_US)
    }

    /// Creates a span from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * NS_PER_MS)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * NS_PER_S)
    }

    /// The span in nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The span in microseconds, truncated.
    pub const fn as_us(self) -> u64 {
        self.0 / NS_PER_US
    }

    /// The span in microseconds, as a float (for reporting only).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / NS_PER_US as f64
    }

    /// The span in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_S as f64
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, or [`Dur::ZERO`] if `rhs` is larger.
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Dur) -> Option<Dur> {
        self.0.checked_add(rhs.0).map(Dur)
    }

    /// Checked multiplication by an integer factor; `None` on overflow.
    pub fn checked_mul(self, k: u64) -> Option<Dur> {
        self.0.checked_mul(k).map(Dur)
    }

    /// The smaller of two spans.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is larger than `self`.
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Div<Dur> for Dur {
    type Output = u64;
    /// Integer quotient of two spans (how many `rhs` fit in `self`).
    fn div(self, rhs: Dur) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Dur> for Dur {
    type Output = Dur;
    fn rem(self, rhs: Dur) -> Dur {
        Dur(self.0 % rhs.0)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_ns(self.0, f)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_ns(self.0, f)
    }
}

/// Renders a nanosecond count as microseconds with up to three decimals,
/// dropping trailing zeros (`160us`, `0.1us`, `12.345us`).
fn format_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let whole = ns / NS_PER_US;
    let frac = ns % NS_PER_US;
    if frac == 0 {
        write!(f, "{whole}us")
    } else {
        let mut s = format!("{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        write!(f, "{whole}.{s}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_units() {
        assert_eq!(Time::from_us(5).as_ns(), 5_000);
        assert_eq!(Time::from_ms(2).as_us(), 2_000);
        assert_eq!(Dur::from_secs(1).as_ns(), NS_PER_S);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let a = Time::from_us(100);
        let b = Time::from_us(160);
        assert_eq!(b - a, Dur::from_us(60));
        assert_eq!(a + Dur::from_us(60), b);
        assert_eq!(b - Dur::from_us(60), a);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            Time::from_us(5).saturating_since(Time::from_us(9)),
            Dur::ZERO
        );
        assert_eq!(
            Time::from_us(9).saturating_since(Time::from_us(5)),
            Dur::from_us(4)
        );
        assert_eq!(Dur::from_us(3).saturating_sub(Dur::from_us(5)), Dur::ZERO);
        assert_eq!(Time::MAX.saturating_add(Dur::from_us(1)), Time::MAX);
        assert_eq!(Time::from_us(1).saturating_sub(Dur::from_us(5)), Time::ZERO);
    }

    #[test]
    fn div_and_rem_partition_a_span() {
        let d = Dur::from_us(107);
        let p = Dur::from_us(25);
        assert_eq!(d / p, 4);
        assert_eq!(d % p, Dur::from_us(7));
        assert_eq!(p * (d / p) + d % p, d);
    }

    #[test]
    fn display_is_compact_microseconds() {
        assert_eq!(Time::from_us(160).to_string(), "160us");
        assert_eq!(Dur::from_ns(100).to_string(), "0.1us");
        assert_eq!(Dur::from_ns(12_345).to_string(), "12.345us");
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::from_us(1), Dur::from_us(2), Dur::from_us(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Dur::from_us(6));
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert!(Time::MAX.checked_add(Dur::from_ns(1)).is_none());
        assert!(Dur::MAX.checked_add(Dur::from_ns(1)).is_none());
        assert!(Dur::MAX.checked_mul(2).is_none());
        assert_eq!(Dur::from_us(3).checked_mul(4), Some(Dur::from_us(12)));
    }
}
