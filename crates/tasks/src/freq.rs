//! Clock-frequency newtype.
//!
//! Frequencies are held in kilohertz as integers so that the discrete
//! frequency ladder of the paper's processor (8–100 MHz in 1 MHz steps) and
//! all cycle/time conversions stay exact.

use core::fmt;
use core::ops::{Div, Mul};
use serde::{Deserialize, Serialize};

/// A clock frequency in kilohertz.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::freq::Freq;
///
/// let f = Freq::from_mhz(100);
/// assert_eq!(f.as_khz(), 100_000);
/// assert_eq!(f.ratio_to(Freq::from_mhz(100)), 1.0);
/// assert_eq!(Freq::from_mhz(50).ratio_to(f), 0.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Freq(u64);

impl Freq {
    /// Zero frequency (clock stopped); only meaningful as a sentinel.
    pub const ZERO: Freq = Freq(0);

    /// Creates a frequency from kilohertz.
    pub const fn from_khz(khz: u64) -> Self {
        Freq(khz)
    }

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        Freq(mhz * 1_000)
    }

    /// The frequency in kilohertz.
    pub const fn as_khz(self) -> u64 {
        self.0
    }

    /// The frequency in megahertz, truncated.
    pub const fn as_mhz(self) -> u64 {
        self.0 / 1_000
    }

    /// The frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0 * 1_000
    }

    /// The frequency as a float in megahertz (reporting only).
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The ratio `self / full`, as used for the speed ratio `r` of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `full` is zero.
    pub fn ratio_to(self, full: Freq) -> f64 {
        assert!(full.0 > 0, "cannot take a ratio to a zero frequency");
        self.0 as f64 / full.0 as f64
    }

    /// True if the clock is stopped.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two frequencies.
    pub fn min(self, other: Freq) -> Freq {
        Freq(self.0.min(other.0))
    }

    /// The larger of two frequencies.
    pub fn max(self, other: Freq) -> Freq {
        Freq(self.0.max(other.0))
    }
}

impl Mul<u64> for Freq {
    type Output = Freq;
    fn mul(self, rhs: u64) -> Freq {
        Freq(self.0 * rhs)
    }
}

impl Div<u64> for Freq {
    type Output = Freq;
    fn div(self, rhs: u64) -> Freq {
        Freq(self.0 / rhs)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000) {
            write!(f, "{}MHz", self.0 / 1_000)
        } else {
            write!(f, "{}kHz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Freq::from_mhz(8).as_khz(), 8_000);
        assert_eq!(Freq::from_khz(2_500).as_mhz(), 2);
        assert_eq!(Freq::from_mhz(100).as_hz(), 100_000_000);
    }

    #[test]
    fn ratio_matches_definition() {
        let full = Freq::from_mhz(100);
        assert!((Freq::from_mhz(73).ratio_to(full) - 0.73).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn ratio_to_zero_panics() {
        let _ = Freq::from_mhz(1).ratio_to(Freq::ZERO);
    }

    #[test]
    fn display_prefers_mhz() {
        assert_eq!(Freq::from_mhz(100).to_string(), "100MHz");
        assert_eq!(Freq::from_khz(8_500).to_string(), "8500kHz");
    }

    #[test]
    fn ordering_follows_magnitude() {
        assert!(Freq::from_mhz(8) < Freq::from_mhz(100));
        assert_eq!(Freq::from_mhz(3).max(Freq::from_mhz(7)), Freq::from_mhz(7));
        assert_eq!(Freq::from_mhz(3).min(Freq::from_mhz(7)), Freq::from_mhz(3));
    }
}
