// The library boundary is panic-free: untrusted input must surface as a
// typed error (`error::TaskSetError`), never abort the process. Tests and
// binaries may still unwrap freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # lpfps-tasks
//!
//! Periodic task model, fixed-priority assignment, schedulability analysis,
//! and execution-time models for the reproduction of *Power Conscious Fixed
//! Priority Scheduling for Hard Real-Time Systems* (Shin & Choi, DAC 1999).
//!
//! This crate is the foundation of the workspace: everything that can be
//! said about a task set *before* running it lives here.
//!
//! * [`time`], [`freq`], [`cycles`] — exact integer quantities (nanosecond
//!   instants, kilohertz clocks, cycle counts) shared by all crates.
//! * [`task`], [`taskset`], [`priority`] — the periodic task model with
//!   rate-/deadline-monotonic priority assignment.
//! * [`analysis`] — Liu–Layland and hyperbolic utilization bounds, exact
//!   response-time analysis, hyperperiods, breakdown utilization, and
//!   Audsley's optimal priority assignment.
//! * [`exec`] — realized per-job execution-time models, including the
//!   paper's clamped Gaussian (Eqs. 4–5).
//! * [`gen`] — UUniFast synthetic task-set generation for sweeps.
//! * [`rng`] — counter-based deterministic random streams, so every
//!   scheduling policy sees an identical workload realization.
//!
//! # Example
//!
//! Build the paper's Table 1 set and verify it is exactly schedulable:
//!
//! ```
//! use lpfps_tasks::analysis::{response_times, RtaConfig, RtaOutcome};
//! use lpfps_tasks::{task::Task, taskset::TaskSet, time::Dur};
//!
//! let ts = TaskSet::rate_monotonic("table1", vec![
//!     Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
//!     Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
//!     Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
//! ]);
//! let outcomes = response_times(&ts, &RtaConfig::default());
//! assert_eq!(outcomes[2], RtaOutcome::Schedulable(Dur::from_us(80)));
//! ```

pub mod analysis;
pub mod cycles;
pub mod error;
pub mod exec;
pub mod freq;
pub mod gen;
pub mod priority;
pub mod rng;
pub mod task;
pub mod taskset;
pub mod time;

pub use cycles::Cycles;
pub use error::TaskSetError;
pub use freq::Freq;
pub use task::{Priority, Task, TaskId};
pub use taskset::TaskSet;
pub use time::{Dur, Time};
