//! Audsley's Optimal Priority Assignment (OPA).
//!
//! For any schedulability test that depends only on a task's own parameters
//! and the *set* (not order) of higher-priority tasks — response-time
//! analysis qualifies — Audsley's algorithm finds a feasible priority order
//! whenever one exists, in O(n²) test invocations: repeatedly pick any task
//! that is schedulable at the lowest unassigned level.

use crate::analysis::response_time::{response_time, RtaConfig};
use crate::task::{Priority, Task, TaskId};
use crate::taskset::TaskSet;

/// Finds a feasible priority assignment by Audsley's algorithm using exact
/// RTA as the test, or `None` if no fixed-priority order works.
///
/// Returned priorities are indexed like `tasks` (lower value = higher
/// priority).
///
/// # Examples
///
/// ```
/// use lpfps_tasks::{analysis::audsley, task::Task, time::Dur};
///
/// let tasks = vec![
///     Task::new("a", Dur::from_us(50), Dur::from_us(10)),
///     Task::new("b", Dur::from_us(80), Dur::from_us(20)),
///     Task::new("c", Dur::from_us(100), Dur::from_us(40)),
/// ];
/// let prios = audsley(&tasks).expect("table 1 is schedulable");
/// assert_eq!(prios.len(), 3);
/// ```
pub fn audsley(tasks: &[Task]) -> Option<Vec<Priority>> {
    if tasks.is_empty() {
        return Some(Vec::new());
    }
    let n = tasks.len();
    let cfg = RtaConfig::default();
    let mut assigned: Vec<Option<Priority>> = vec![None; n];
    let mut unassigned: Vec<usize> = (0..n).collect();

    // Assign levels from the bottom (n-1, least urgent) upward.
    for level in (0..n as u32).rev() {
        let found = unassigned.iter().position(|&cand| {
            // Build a trial order: `cand` at `level`, all other unassigned
            // tasks above it (their relative order is irrelevant for RTA of
            // `cand`), already-assigned tasks keep their levels below.
            let trial = trial_priorities(tasks, &assigned, &unassigned, cand, level);
            let ts = TaskSet::with_priorities("opa-trial", tasks.to_vec(), trial);
            response_time(&ts, TaskId(cand), &cfg).is_schedulable()
        });
        match found {
            Some(pos) => {
                let idx = unassigned.remove(pos);
                assigned[idx] = Some(Priority::new(level));
            }
            None => return None,
        }
    }
    // Every slot was filled by the loop above (each level assigns exactly
    // one task); `collect::<Option<..>>` propagates instead of panicking.
    assigned.into_iter().collect()
}

/// Builds a total trial order placing `cand` at `level`, the other
/// unassigned tasks at arbitrary distinct levels above, and keeping the
/// already-assigned (lower) levels.
fn trial_priorities(
    tasks: &[Task],
    assigned: &[Option<Priority>],
    unassigned: &[usize],
    cand: usize,
    level: u32,
) -> Vec<Priority> {
    let mut trial = vec![Priority::HIGHEST; tasks.len()];
    let mut next_above = 0u32;
    for i in 0..tasks.len() {
        trial[i] = if i == cand {
            Priority::new(level)
        } else if let Some(p) = assigned[i] {
            p
        } else {
            debug_assert!(unassigned.contains(&i));
            let p = Priority::new(next_above);
            next_above += 1;
            p
        };
    }
    debug_assert!(next_above <= level, "above-levels must stay above `level`");
    trial
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::response_time::rta_schedulable;
    use crate::priority::rate_monotonic;
    use crate::time::Dur;

    fn t(p: u64, c: u64) -> Task {
        Task::new(format!("T{p}"), Dur::from_us(p), Dur::from_us(c))
    }

    #[test]
    fn finds_assignment_for_table1() {
        let tasks = vec![t(50, 10), t(80, 20), t(100, 40)];
        let prios = audsley(&tasks).expect("schedulable");
        let ts = TaskSet::with_priorities("opa", tasks, prios);
        assert!(rta_schedulable(&ts));
    }

    #[test]
    fn agrees_with_dm_optimality() {
        // For constrained deadlines DM is optimal, so OPA succeeds exactly
        // when DM succeeds; check on a deadline-constrained set.
        let tasks = vec![
            t(100, 20).with_deadline(Dur::from_us(30)),
            t(50, 10),
            t(200, 40),
        ];
        let prios = audsley(&tasks).expect("schedulable");
        let ts = TaskSet::with_priorities("opa", tasks, prios);
        assert!(rta_schedulable(&ts));
    }

    #[test]
    fn reports_infeasible_sets() {
        let tasks = vec![t(10, 6), t(20, 12)];
        assert_eq!(audsley(&tasks), None);
    }

    #[test]
    fn succeeds_where_rm_is_already_optimal() {
        let tasks = vec![t(50, 10), t(80, 20), t(100, 40)];
        let opa = audsley(&tasks).expect("schedulable");
        let rm = rate_monotonic(&tasks);
        // Both must be feasible; they need not be identical orders, but for
        // this set RM is the unique feasible order up to the exactness of
        // tau3, so the sets of levels coincide.
        let ts_opa = TaskSet::with_priorities("opa", tasks.clone(), opa);
        let ts_rm = TaskSet::with_priorities("rm", tasks, rm);
        assert!(rta_schedulable(&ts_opa));
        assert!(rta_schedulable(&ts_rm));
    }

    #[test]
    fn empty_input_is_trivially_feasible() {
        assert_eq!(audsley(&[]), Some(vec![]));
    }

    #[test]
    fn single_task_gets_the_only_level() {
        let prios = audsley(&[t(10, 5)]).expect("schedulable");
        assert_eq!(prios, vec![Priority::new(0)]);
    }
}
