//! Breakdown utilization: how far a task set can be scaled before it stops
//! being schedulable.
//!
//! The breakdown utilization of Lehoczky, Sha & Ding scales every WCET by a
//! common factor `alpha` until the set is *just* schedulable; the resulting
//! total utilization measures how tightly constructed a set is. The paper's
//! Table 1 example is "tightly constructed" in exactly this sense, and the
//! LPFPS slack argument is strongest for sets below breakdown.

use crate::analysis::response_time::rta_schedulable;
use crate::task::Task;
use crate::taskset::TaskSet;
use crate::time::Dur;

/// Returns a copy of the set with every WCET (and BCET, proportionally)
/// scaled by `alpha`, saturating WCETs at the period.
///
/// # Panics
///
/// Panics if `alpha` is not positive and finite.
pub fn scale_wcets(ts: &TaskSet, alpha: f64) -> TaskSet {
    assert!(
        alpha.is_finite() && alpha > 0.0,
        "scale factor must be positive"
    );
    let tasks: Vec<Task> = ts
        .iter()
        .map(|(_, t, _)| {
            let wcet_ns =
                ((t.wcet().as_ns() as f64 * alpha).round() as u64).clamp(1, t.period().as_ns());
            let bcet_ns = ((t.bcet().as_ns() as f64 * alpha).round() as u64).clamp(1, wcet_ns);
            let mut s = Task::new(t.name(), t.period(), Dur::from_ns(wcet_ns))
                .with_bcet(Dur::from_ns(bcet_ns))
                .with_phase(t.phase());
            if t.deadline() != t.period() {
                s = s.with_deadline(t.deadline());
            }
            s
        })
        .collect();
    let prios = (0..ts.len())
        .map(|i| ts.priority(crate::task::TaskId(i)))
        .collect();
    TaskSet::with_priorities(ts.name(), tasks, prios)
}

/// The breakdown utilization of the set under its current priority order:
/// the total utilization at the largest WCET scale factor that keeps the
/// set schedulable (binary search to `tol` relative precision on the scale
/// factor).
///
/// Returns `None` if the set is unschedulable even as given.
///
/// # Panics
///
/// Panics if `tol` is not in `(0, 1)`.
pub fn breakdown_utilization(ts: &TaskSet, tol: f64) -> Option<f64> {
    assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
    if !rta_schedulable(ts) {
        return None;
    }
    // Find an upper bracket: scale up until unschedulable (or WCETs saturate
    // at their periods, in which case U = n and the search tops out there).
    let mut lo = 1.0f64;
    let mut hi = 2.0f64;
    let mut guard = 0;
    while rta_schedulable(&scale_wcets(ts, hi)) {
        lo = hi;
        hi *= 2.0;
        guard += 1;
        if guard > 64 {
            // Every WCET saturated at its period and it is still schedulable
            // (only possible for a single task); utilization is maxed out.
            return Some(scale_wcets(ts, hi).utilization());
        }
    }
    while (hi - lo) / lo > tol {
        let mid = 0.5 * (lo + hi);
        if rta_schedulable(&scale_wcets(ts, mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(scale_wcets(ts, lo).utilization())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(params: &[(u64, u64)]) -> TaskSet {
        let tasks = params
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| Task::new(format!("t{i}"), Dur::from_us(t), Dur::from_us(c)))
            .collect();
        TaskSet::rate_monotonic("test", tasks)
    }

    #[test]
    fn scaling_preserves_structure() {
        let ts = set(&[(100, 10), (200, 20)]);
        let scaled = scale_wcets(&ts, 2.0);
        assert_eq!(scaled.task(crate::task::TaskId(0)).wcet(), Dur::from_us(20));
        assert!((scaled.utilization() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn table1_is_near_breakdown() {
        // Table 1 is exactly at its schedulability limit: scaling by any
        // meaningful factor breaks it, so breakdown utilization ~= 0.85.
        let ts = set(&[(50, 10), (80, 20), (100, 40)]);
        let b = breakdown_utilization(&ts, 1e-4).expect("schedulable");
        assert!((b - 0.85).abs() < 0.01, "breakdown {b} should be ~0.85");
    }

    #[test]
    fn slack_set_has_headroom() {
        let ts = set(&[(100, 10), (200, 20)]); // U = 0.2
        let b = breakdown_utilization(&ts, 1e-4).expect("schedulable");
        assert!(b > 0.8, "low-utilization set should scale a lot, got {b}");
    }

    #[test]
    fn unschedulable_set_yields_none() {
        let ts = set(&[(10, 6), (20, 12)]);
        assert_eq!(breakdown_utilization(&ts, 1e-3), None);
    }

    #[test]
    fn harmonic_set_breaks_down_at_one() {
        let ts = set(&[(10, 2), (20, 4), (40, 8)]); // harmonic, U = 0.6
        let b = breakdown_utilization(&ts, 1e-4).expect("schedulable");
        assert!(
            (b - 1.0).abs() < 0.01,
            "harmonic RM breakdown is U=1, got {b}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_scale_rejected() {
        let ts = set(&[(10, 1)]);
        let _ = scale_wcets(&ts, -1.0);
    }
}
