//! Schedulability analysis for fixed-priority preemptive scheduling.
//!
//! The paper relies on its workloads being *just* schedulable under
//! rate-monotonic priorities (its Table 1 example "just meets its
//! schedulability"); these analyses are what establishes that, and the
//! integration tests use them to cross-check the simulator: a task set the
//! analysis declares schedulable must never miss a deadline in simulation
//! at any speed-scaling policy.
//!
//! * [`utilization`] — Liu–Layland bound and the hyperbolic bound
//!   (sufficient tests).
//! * [`response_time`](mod@response_time) — exact response-time analysis
//!   (Joseph & Pandya; Audsley et al.), with optional release jitter,
//!   blocking, and per-preemption overhead terms.
//! * [`hyperperiod`](mod@hyperperiod) — LCM of periods and job counting.
//! * [`breakdown`] — breakdown utilization by binary-search scaling.
//! * [`busy_period`] — exact schedulability by synchronous busy-period
//!   simulation (an oracle independent of the RTA fixed point).
//! * [`sensitivity`] — per-task slack and critical scaling factors.
//! * [`opa`] — Audsley's optimal priority assignment.

pub mod breakdown;
pub mod busy_period;
pub mod hyperperiod;
pub mod opa;
pub mod response_time;
pub mod sensitivity;
pub mod utilization;

pub use breakdown::breakdown_utilization;
pub use busy_period::{busy_period_responses, busy_period_schedulable, BusyPeriodOutcome};
pub use hyperperiod::{hyperperiod, job_count_in};
pub use opa::audsley;
pub use response_time::{response_time, response_times, rta_schedulable, RtaConfig, RtaOutcome};
pub use sensitivity::{critical_scaling_factor, slack};
pub use utilization::{hyperbolic_bound, liu_layland_bound, utilization_schedulable};
