//! Hyperperiod computation and job counting.
//!
//! The hyperperiod (LCM of all periods) is the natural simulation horizon:
//! after one hyperperiod a synchronous periodic schedule repeats exactly.
//! The paper's §2.2 notes that static DVS schedules over the LCM can become
//! impractically long — `hyperperiod` makes that concrete, and the
//! simulation driver caps its horizon accordingly.

use crate::taskset::TaskSet;
use crate::time::Dur;

/// Greatest common divisor (Euclid).
fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The hyperperiod (least common multiple of all task periods), or `None`
/// if it overflows `u64` nanoseconds (mutually-prime periods can explode —
/// the practical problem the paper raises for static schedules).
///
/// # Examples
///
/// ```
/// use lpfps_tasks::{analysis::hyperperiod, task::Task, taskset::TaskSet, time::Dur};
///
/// let ts = TaskSet::rate_monotonic("t", vec![
///     Task::new("a", Dur::from_us(50), Dur::from_us(1)),
///     Task::new("b", Dur::from_us(80), Dur::from_us(1)),
///     Task::new("c", Dur::from_us(100), Dur::from_us(1)),
/// ]);
/// assert_eq!(hyperperiod(&ts), Some(Dur::from_us(400)));
/// ```
pub fn hyperperiod(ts: &TaskSet) -> Option<Dur> {
    let mut lcm: u128 = 1;
    for (_, t, _) in ts.iter() {
        let p = t.period().as_ns() as u128;
        lcm = lcm / gcd(lcm, p) * p;
        if lcm > u64::MAX as u128 {
            return None;
        }
    }
    Some(Dur::from_ns(lcm as u64))
}

/// The number of jobs the whole set releases in `[0, horizon)` for a
/// synchronous (zero-phase) release pattern: `sum(ceil(horizon / T_i))`.
pub fn job_count_in(ts: &TaskSet, horizon: Dur) -> u64 {
    ts.iter()
        .map(|(_, t, _)| horizon.as_ns().div_ceil(t.period().as_ns()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn set(periods_us: &[u64]) -> TaskSet {
        let tasks = periods_us
            .iter()
            .enumerate()
            .map(|(i, &p)| Task::new(format!("t{i}"), Dur::from_us(p), Dur::from_us(1)))
            .collect();
        TaskSet::rate_monotonic("test", tasks)
    }

    #[test]
    fn lcm_of_table1_periods() {
        assert_eq!(hyperperiod(&set(&[50, 80, 100])), Some(Dur::from_us(400)));
    }

    #[test]
    fn harmonic_periods_lcm_is_largest() {
        assert_eq!(hyperperiod(&set(&[10, 20, 40])), Some(Dur::from_us(40)));
    }

    #[test]
    fn mutually_prime_periods_multiply() {
        assert_eq!(hyperperiod(&set(&[7, 11, 13])), Some(Dur::from_us(1001)));
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        // Periods chosen as large mutually-prime microsecond counts whose
        // LCM in nanoseconds exceeds u64.
        let ts = set(&[999_999_937, 999_999_893, 999_999_883]);
        assert_eq!(hyperperiod(&ts), None);
    }

    #[test]
    fn job_count_counts_partial_periods() {
        let ts = set(&[50, 80, 100]);
        // In [0, 400us): 8 + 5 + 4 jobs.
        assert_eq!(job_count_in(&ts, Dur::from_us(400)), 17);
        // In [0, 401us): the 401st microsecond starts nothing new but ceil
        // counts the partially covered periods: 9 + 6 + 5.
        assert_eq!(job_count_in(&ts, Dur::from_us(401)), 20);
    }
}
