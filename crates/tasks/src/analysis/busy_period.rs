//! Exact schedulability by synchronous busy-period simulation.
//!
//! For constrained-deadline (`D <= T`) fixed-priority task sets, the
//! synchronous release at time zero is the critical instant (Liu &
//! Layland), and every task's worst-case response occurs inside the first
//! processor busy period. Simulating that one busy period at WCET is
//! therefore an *exact* schedulability test — an oracle entirely
//! independent of the response-time fixed-point iteration, used to
//! cross-validate it (and, transitively, the event-driven kernel, which
//! is itself cross-checked against RTA).
//!
//! The simulation is a simple priority-driven sweep over release events —
//! no queues, no processor model — and terminates at the first idle
//! instant (the busy period's end, which exists whenever `U <= 1`).

use crate::analysis::hyperperiod::hyperperiod;
use crate::task::TaskId;
use crate::taskset::TaskSet;
use crate::time::{Dur, Time};

/// The outcome of the busy-period simulation for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyPeriodOutcome {
    /// Worst-case response observed in the first busy period.
    Schedulable(Dur),
    /// A job ran past its deadline (response given for diagnosis).
    DeadlineMiss(Dur),
}

impl BusyPeriodOutcome {
    /// True if the task met its deadline.
    pub fn is_schedulable(self) -> bool {
        matches!(self, BusyPeriodOutcome::Schedulable(_))
    }

    /// The observed worst response either way.
    pub fn response(self) -> Dur {
        match self {
            BusyPeriodOutcome::Schedulable(r) | BusyPeriodOutcome::DeadlineMiss(r) => r,
        }
    }
}

/// Simulates the synchronous busy period at WCET and returns each task's
/// worst-case response — exact for `D <= T` sets with `U <= 1`.
///
/// Returns `None` when total utilization exceeds 1 (the busy period never
/// ends; the set is trivially unschedulable).
///
/// # Examples
///
/// ```
/// use lpfps_tasks::analysis::busy_period::busy_period_responses;
/// use lpfps_tasks::{task::Task, taskset::TaskSet, time::Dur};
///
/// let ts = TaskSet::rate_monotonic("table1", vec![
///     Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
///     Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
///     Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
/// ]);
/// let out = busy_period_responses(&ts).expect("U <= 1");
/// assert_eq!(out[2].response(), Dur::from_us(80));
/// ```
pub fn busy_period_responses(ts: &TaskSet) -> Option<Vec<BusyPeriodOutcome>> {
    if ts.utilization() > 1.0 + 1e-12 {
        return None;
    }
    // At exactly U = 1 the synchronous schedule never idles; it repeats
    // after one hyperperiod, so simulating [0, hyperperiod) still observes
    // every distinct response. Cap the sweep there (or at the analytic
    // busy-period bound sum(C)/(1-U) when U < 1, whichever is smaller);
    // if neither bound is representable, give up rather than spin.
    let total_wcet: Dur = ts.iter().map(|(_, t, _)| t.wcet()).sum();
    let u = ts.utilization();
    let analytic_cap = if u < 1.0 - 1e-12 {
        let ns = (total_wcet.as_ns() as f64 / (1.0 - u)).ceil();
        (ns <= u64::MAX as f64).then(|| Dur::from_ns(ns as u64 + 1))
    } else {
        None
    };
    let cap = match (hyperperiod(ts), analytic_cap) {
        (Some(h), Some(a)) => h.min(a),
        (Some(h), None) => h,
        (None, Some(a)) => a,
        (None, None) => return None,
    };
    let cap_end = Time::ZERO + cap;
    let n = ts.len();
    let ids = ts.ids_by_priority();

    // Per-task state, indexed by TaskId.
    let mut next_release: Vec<Time> = vec![Time::ZERO; n];
    let mut remaining: Vec<Dur> = vec![Dur::ZERO; n];
    let mut current_release: Vec<Time> = vec![Time::ZERO; n];
    let mut worst: Vec<Dur> = vec![Dur::ZERO; n];
    let mut live: Vec<bool> = vec![false; n];
    let mut overran: Vec<bool> = vec![false; n];

    let mut now = Time::ZERO;
    loop {
        // Admit all releases due at `now` (phases are ignored: the test is
        // for the synchronous critical instant by definition).
        for i in 0..n {
            if next_release[i] <= now {
                if live[i] {
                    // The previous job overran its whole period (D <= T, so
                    // its deadline is already blown): record the miss, skip
                    // this release, and let the old job run on.
                    overran[i] = true;
                    next_release[i] += ts.task(TaskId(i)).period();
                    continue;
                }
                live[i] = true;
                remaining[i] = ts.task(TaskId(i)).wcet();
                current_release[i] = next_release[i];
                next_release[i] += ts.task(TaskId(i)).period();
            }
        }
        if now >= cap_end {
            // One hyperperiod fully simulated (U = 1): every distinct
            // response has been observed.
            break;
        }
        // Highest-priority live task runs.
        let Some(&run) = ids.iter().find(|id| live[id.0]) else {
            // First idle instant: the busy period is over.
            break;
        };
        let run = run.0;
        // Run until the job completes or the next release, whichever first.
        // A live task exists, so `n >= 1` and the minimum exists; the
        // fallback keeps this path panic-free rather than aborting.
        let Some(next_event) = next_release.iter().copied().min() else {
            break;
        };
        let finish = now + remaining[run];
        if finish <= next_event {
            now = finish;
            live[run] = false;
            remaining[run] = Dur::ZERO;
            let response = now.saturating_since(current_release[run]);
            worst[run] = worst[run].max(response);
        } else {
            remaining[run] -= next_event - now;
            now = next_event;
        }
    }

    Some(
        (0..n)
            .map(|i| {
                if !overran[i] && worst[i] <= ts.task(TaskId(i)).deadline() {
                    BusyPeriodOutcome::Schedulable(worst[i])
                } else {
                    BusyPeriodOutcome::DeadlineMiss(worst[i].max(ts.task(TaskId(i)).deadline()))
                }
            })
            .collect(),
    )
}

/// Exact schedulability via the busy-period oracle.
pub fn busy_period_schedulable(ts: &TaskSet) -> bool {
    busy_period_responses(ts)
        .map(|out| out.iter().all(|o| o.is_schedulable()))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::response_time::{response_times, RtaConfig};
    use crate::task::Task;

    fn set(params: &[(u64, u64)]) -> TaskSet {
        let tasks = params
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| Task::new(format!("t{i}"), Dur::from_us(t), Dur::from_us(c)))
            .collect();
        TaskSet::rate_monotonic("test", tasks)
    }

    #[test]
    fn table1_matches_rta_exactly() {
        let ts = set(&[(50, 10), (80, 20), (100, 40)]);
        let sim = busy_period_responses(&ts).unwrap();
        let rta = response_times(&ts, &RtaConfig::default());
        for (s, r) in sim.iter().zip(rta) {
            assert_eq!(s.response(), r.response().unwrap());
        }
        assert!(busy_period_schedulable(&ts));
    }

    #[test]
    fn miss_detected_with_inflated_tau2() {
        let ts = set(&[(50, 10), (80, 21), (100, 40)]);
        let sim = busy_period_responses(&ts).unwrap();
        assert!(sim[0].is_schedulable());
        assert!(sim[1].is_schedulable());
        assert!(!sim[2].is_schedulable());
        assert!(!busy_period_schedulable(&ts));
    }

    #[test]
    fn overutilized_sets_are_rejected_upfront() {
        let ts = set(&[(10, 6), (20, 12)]);
        assert_eq!(busy_period_responses(&ts), None);
        assert!(!busy_period_schedulable(&ts));
    }

    #[test]
    fn busy_period_can_span_multiple_jobs_of_high_rate_tasks() {
        // U close to 1: the busy period extends past several periods of
        // the fast task; the slow task's worst response reflects all of
        // them.
        let ts = set(&[(10, 5), (40, 19)]);
        let sim = busy_period_responses(&ts).unwrap();
        let rta = response_times(&ts, &RtaConfig::default());
        assert_eq!(sim[1].response(), rta[1].response().unwrap());
    }

    #[test]
    fn exact_full_utilization_terminates() {
        let ts = set(&[(10, 5), (20, 10)]); // U = 1.0, harmonic
        let sim = busy_period_responses(&ts).unwrap();
        assert!(sim.iter().all(|o| o.is_schedulable()));
    }

    #[test]
    fn agrees_with_rta_on_all_published_workloads() {
        // (The heavier randomized agreement check lives in the proptest
        // suite; here the four paper workloads are pinned.)
        for params in [
            vec![(2_500u64, 1_180u64), (40_000, 4_000), (62_500, 4_000)],
            vec![(50, 10), (80, 20), (100, 40)],
        ] {
            let ts = set(&params);
            let sim = busy_period_responses(&ts).unwrap();
            let rta = response_times(&ts, &RtaConfig::default());
            for (i, (s, r)) in sim.iter().zip(&rta).enumerate() {
                assert_eq!(
                    s.is_schedulable(),
                    r.is_schedulable(),
                    "task {i} verdict mismatch"
                );
                if let Some(bound) = r.response() {
                    assert_eq!(s.response(), bound, "task {i} response mismatch");
                }
            }
        }
    }
}
