//! Utilization-based sufficient schedulability tests.

use crate::taskset::TaskSet;

/// The Liu–Layland rate-monotonic bound `n(2^{1/n} - 1)` for `n` tasks.
///
/// A set of `n` implicit-deadline periodic tasks is RM-schedulable if its
/// total utilization does not exceed this bound. The test is sufficient but
/// not necessary; the paper's workloads all *exceed* it and rely on the
/// exact response-time test instead.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::analysis::liu_layland_bound;
///
/// assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
/// assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-4);
/// // The bound decreases towards ln 2 ~ 0.693.
/// assert!(liu_layland_bound(100) > 0.693);
/// ```
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn liu_layland_bound(n: usize) -> f64 {
    assert!(n > 0, "the Liu-Layland bound is defined for n >= 1");
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// The hyperbolic bound of Bini, Buttazzo & Buttazzo: a set of
/// implicit-deadline tasks is RM-schedulable if `prod(U_i + 1) <= 2`.
///
/// Strictly less pessimistic than the Liu–Layland bound.
pub fn hyperbolic_bound(ts: &TaskSet) -> bool {
    let product: f64 = ts.iter().map(|(_, t, _)| t.utilization() + 1.0).product();
    product <= 2.0 + 1e-12
}

/// Sufficient utilization test: true if the total utilization is within the
/// Liu–Layland bound for the set's size.
///
/// Returning `false` does **not** mean the set is unschedulable; use
/// [`rta_schedulable`](crate::analysis::rta_schedulable) for the exact test.
pub fn utilization_schedulable(ts: &TaskSet) -> bool {
    ts.utilization() <= liu_layland_bound(ts.len()) + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use crate::time::Dur;

    fn set(params: &[(u64, u64)]) -> TaskSet {
        let tasks = params
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| Task::new(format!("t{i}"), Dur::from_us(t), Dur::from_us(c)))
            .collect();
        TaskSet::rate_monotonic("test", tasks)
    }

    #[test]
    fn bound_is_monotonically_decreasing() {
        let mut prev = liu_layland_bound(1);
        for n in 2..50 {
            let b = liu_layland_bound(n);
            assert!(b < prev, "bound must decrease with n");
            prev = b;
        }
        assert!(prev > (2f64).ln());
    }

    #[test]
    fn low_utilization_set_passes() {
        let ts = set(&[(100, 10), (200, 20)]); // U = 0.2
        assert!(utilization_schedulable(&ts));
        assert!(hyperbolic_bound(&ts));
    }

    #[test]
    fn table1_fails_sufficient_tests_but_exists() {
        // The paper's Table 1 set has U = 0.85 > LL(3) = 0.7797 and
        // prod(U_i+1) = 1.2*1.25*1.4 = 2.1 > 2, yet it is schedulable by the
        // exact test — these sufficient tests are allowed to say "unknown".
        let ts = set(&[(50, 10), (80, 20), (100, 40)]);
        assert!(!utilization_schedulable(&ts));
        assert!(!hyperbolic_bound(&ts));
    }

    #[test]
    fn hyperbolic_dominates_liu_layland() {
        // A 3-task set with U = 0.78 just above LL(3)=0.7798 can still pass
        // the hyperbolic test when utilizations are uneven.
        let ts = set(&[(100, 60), (1000, 100), (1250, 100)]); // 0.6+0.1+0.08=0.78
        assert!(!utilization_schedulable(&ts));
        assert!(hyperbolic_bound(&ts)); // 1.6*1.1*1.08 = 1.9008 <= 2
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn zero_tasks_rejected() {
        let _ = liu_layland_bound(0);
    }
}
