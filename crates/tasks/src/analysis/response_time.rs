//! Exact response-time analysis (RTA) for fixed-priority preemptive
//! scheduling of constrained-deadline periodic tasks.
//!
//! The worst-case response time of task `i` is the smallest fixed point of
//!
//! ```text
//! R_i = C_i + B_i + sum_{j in hp(i)} ceil((R_i + J_j) / T_j) * C_j
//! ```
//!
//! (Joseph & Pandya 1986; Audsley et al. 1993), where `hp(i)` are the tasks
//! with higher priority, `B_i` is a blocking term, and `J_j` is release
//! jitter. Task `i` is schedulable iff `R_i + J_i <= D_i`. The iteration is
//! exact for `D <= T` task sets, which is the model of the paper (one live
//! job per task).

use crate::task::TaskId;
use crate::taskset::TaskSet;
use crate::time::Dur;
use serde::{Deserialize, Serialize};

/// Optional pessimism terms for the RTA iteration.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::analysis::RtaConfig;
/// use lpfps_tasks::time::Dur;
///
/// let cfg = RtaConfig::default().with_context_switch(Dur::from_us(5));
/// assert_eq!(cfg.context_switch, Dur::from_us(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RtaConfig {
    /// Cost of one context switch; every job is charged two (in and out), the
    /// standard inflation of Katcher et al.'s kernel analysis.
    pub context_switch: Dur,
    /// Uniform blocking term `B` added to every task's demand (e.g. from
    /// non-preemptible kernel sections).
    pub blocking: Dur,
    /// Uniform release jitter `J` applied to every task.
    pub release_jitter: Dur,
}

impl RtaConfig {
    /// Sets the per-context-switch cost.
    pub fn with_context_switch(mut self, cs: Dur) -> Self {
        self.context_switch = cs;
        self
    }

    /// Sets the uniform blocking term.
    pub fn with_blocking(mut self, b: Dur) -> Self {
        self.blocking = b;
        self
    }

    /// Sets the uniform release jitter.
    pub fn with_release_jitter(mut self, j: Dur) -> Self {
        self.release_jitter = j;
        self
    }
}

/// The result of the RTA iteration for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RtaOutcome {
    /// The task meets its deadline; the worst-case response time is given.
    Schedulable(Dur),
    /// The iteration exceeded the deadline; the task can miss it.
    Unschedulable,
}

impl RtaOutcome {
    /// The worst-case response time, if schedulable.
    pub fn response(self) -> Option<Dur> {
        match self {
            RtaOutcome::Schedulable(r) => Some(r),
            RtaOutcome::Unschedulable => None,
        }
    }

    /// True if the task meets its deadline.
    pub fn is_schedulable(self) -> bool {
        matches!(self, RtaOutcome::Schedulable(_))
    }
}

/// Computes the worst-case response time of one task under the given
/// priority order.
///
/// # Panics
///
/// Panics if `id` is out of range for the set.
pub fn response_time(ts: &TaskSet, id: TaskId, cfg: &RtaConfig) -> RtaOutcome {
    let me = ts.task(id);
    let my_prio = ts.priority(id);
    let inflation = cfg.context_switch * 2;
    let my_c = me.wcet() + inflation;
    let deadline_budget = me.deadline().saturating_sub(cfg.release_jitter);

    // Higher-priority interferers: (period, inflated wcet) pairs.
    let hp: Vec<(u128, u128)> = ts
        .iter()
        .filter(|&(other, _, p)| other != id && p.is_higher_than(my_prio))
        .map(|(_, t, _)| {
            (
                t.period().as_ns() as u128,
                (t.wcet() + inflation).as_ns() as u128,
            )
        })
        .collect();

    let base = (my_c + cfg.blocking).as_ns() as u128;
    let jitter = cfg.release_jitter.as_ns() as u128;
    let limit = deadline_budget.as_ns() as u128;

    let mut r = base;
    loop {
        if r > limit {
            return RtaOutcome::Unschedulable;
        }
        let next = base
            + hp.iter()
                .map(|&(t, c)| (r + jitter).div_ceil(t) * c)
                .sum::<u128>();
        if next == r {
            // `r <= limit <= u64::MAX`, so only a pathological jitter can
            // push past u64; saturating keeps the analysis panic-free.
            let resp = u64::try_from(r + jitter).unwrap_or(u64::MAX);
            return RtaOutcome::Schedulable(Dur::from_ns(resp));
        }
        r = next;
    }
}

/// Computes the RTA outcome for every task, in declaration order.
pub fn response_times(ts: &TaskSet, cfg: &RtaConfig) -> Vec<RtaOutcome> {
    (0..ts.len())
        .map(|i| response_time(ts, TaskId(i), cfg))
        .collect()
}

/// True if every task in the set meets its deadline (exact test for
/// constrained-deadline fixed-priority sets, with zero overhead terms).
pub fn rta_schedulable(ts: &TaskSet) -> bool {
    let cfg = RtaConfig::default();
    (0..ts.len()).all(|i| response_time(ts, TaskId(i), &cfg).is_schedulable())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    #[test]
    fn table1_is_exactly_schedulable() {
        // The paper: "this system just meets its schedulability".
        let r = response_times(&table1(), &RtaConfig::default());
        assert_eq!(r[0], RtaOutcome::Schedulable(Dur::from_us(10)));
        assert_eq!(r[1], RtaOutcome::Schedulable(Dur::from_us(30)));
        // tau3 completes at t = 80 in Figure 2(a); its slack is consumed by
        // the second tau2 job the moment tau2 runs any longer (next test).
        assert_eq!(r[2], RtaOutcome::Schedulable(Dur::from_us(80)));
        assert!(rta_schedulable(&table1()));
    }

    #[test]
    fn inflating_tau2_breaks_tau3() {
        // The paper: "if tau2 were to take a little longer to complete, tau3
        // would miss its deadline".
        let ts = TaskSet::rate_monotonic(
            "table1-inflated",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(21)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        );
        let r = response_times(&ts, &RtaConfig::default());
        assert!(r[0].is_schedulable());
        assert!(r[1].is_schedulable());
        assert_eq!(r[2], RtaOutcome::Unschedulable);
    }

    #[test]
    fn single_task_response_is_its_wcet() {
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("only", Dur::from_us(100), Dur::from_us(30))],
        );
        assert_eq!(
            response_time(&ts, TaskId(0), &RtaConfig::default()),
            RtaOutcome::Schedulable(Dur::from_us(30))
        );
    }

    #[test]
    fn context_switch_overhead_inflates_responses() {
        let cfg = RtaConfig::default().with_context_switch(Dur::from_us(1));
        let r = response_times(&table1(), &cfg);
        // tau1: 10 + 2 = 12.
        assert_eq!(r[0], RtaOutcome::Schedulable(Dur::from_us(12)));
        // tau3 was exactly at its deadline, so any overhead breaks it.
        assert_eq!(r[2], RtaOutcome::Unschedulable);
    }

    #[test]
    fn blocking_term_adds_to_every_task() {
        let cfg = RtaConfig::default().with_blocking(Dur::from_us(5));
        let r = response_times(&table1(), &cfg);
        assert_eq!(r[0], RtaOutcome::Schedulable(Dur::from_us(15)));
    }

    #[test]
    fn jitter_reduces_the_deadline_budget() {
        let ts = TaskSet::rate_monotonic(
            "tight",
            vec![Task::new("t", Dur::from_us(10), Dur::from_us(9))],
        );
        assert!(rta_schedulable(&ts));
        let cfg = RtaConfig::default().with_release_jitter(Dur::from_us(2));
        assert_eq!(
            response_time(&ts, TaskId(0), &cfg),
            RtaOutcome::Unschedulable
        );
    }

    #[test]
    fn full_utilization_harmonic_set_is_schedulable() {
        // Harmonic periods schedule up to U = 1 under RM.
        let ts = TaskSet::rate_monotonic(
            "harmonic",
            vec![
                Task::new("a", Dur::from_us(10), Dur::from_us(5)),
                Task::new("b", Dur::from_us(20), Dur::from_us(5)),
                Task::new("c", Dur::from_us(40), Dur::from_us(10)),
            ],
        );
        assert!((ts.utilization() - 1.0).abs() < 1e-12);
        assert!(rta_schedulable(&ts));
    }

    #[test]
    fn over_utilized_set_is_unschedulable() {
        let ts = TaskSet::rate_monotonic(
            "over",
            vec![
                Task::new("a", Dur::from_us(10), Dur::from_us(6)),
                Task::new("b", Dur::from_us(20), Dur::from_us(12)),
            ],
        );
        assert!(!rta_schedulable(&ts));
    }
}
