//! Sensitivity analysis: how close each task sits to the schedulability
//! cliff.
//!
//! Two complementary views:
//!
//! * [`slack`] — the response-time slack `D_i - R_i` per task. The paper's
//!   Table 1 discussion is a slack statement: tau3's slack is consumed the
//!   moment tau2 runs longer.
//! * [`critical_scaling_factor`] — the largest factor by which *one*
//!   task's WCET can grow with the whole set staying schedulable (the
//!   per-task analogue of breakdown utilization). A factor of 1.0 means
//!   the task is exactly critical.

use crate::analysis::response_time::{response_times, rta_schedulable, RtaConfig};
use crate::task::{Task, TaskId};
use crate::taskset::TaskSet;
use crate::time::Dur;

/// Per-task response-time slack `D_i - R_i`, or `None` for unschedulable
/// tasks.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::analysis::sensitivity::slack;
/// use lpfps_tasks::{task::Task, taskset::TaskSet, time::Dur};
///
/// let ts = TaskSet::rate_monotonic("table1", vec![
///     Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
///     Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
///     Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
/// ]);
/// let s = slack(&ts);
/// assert_eq!(s[0], Some(Dur::from_us(40)));  // R = 10, D = 50
/// assert_eq!(s[2], Some(Dur::from_us(20)));  // R = 80, D = 100
/// ```
pub fn slack(ts: &TaskSet) -> Vec<Option<Dur>> {
    response_times(ts, &RtaConfig::default())
        .into_iter()
        .enumerate()
        .map(|(i, outcome)| {
            outcome
                .response()
                .map(|r| ts.task(TaskId(i)).deadline().saturating_sub(r))
        })
        .collect()
}

/// The largest factor by which task `id`'s WCET can be scaled (holding all
/// other tasks fixed) with the whole set remaining schedulable, found by
/// binary search to relative precision `tol`. Returns `None` if the set is
/// unschedulable as given.
///
/// The result is at least `1.0` for a schedulable set. A value barely
/// above 1 identifies the task whose overrun breaks the system first —
/// for the paper's Table 1 that is tau2 ("if tau2 were to take a little
/// longer, tau3 would miss its deadline").
///
/// # Panics
///
/// Panics if `tol` is not in `(0, 1)` or `id` is out of range.
pub fn critical_scaling_factor(ts: &TaskSet, id: TaskId, tol: f64) -> Option<f64> {
    assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
    if !rta_schedulable(ts) {
        return None;
    }
    let feasible = |factor: f64| -> bool {
        with_scaled_task(ts, id, factor)
            .map(|scaled| rta_schedulable(&scaled))
            .unwrap_or(false)
    };
    // Bracket: the WCET can at most fill the whole period.
    let task = ts.task(id);
    let cap = task.period().as_ns() as f64 / task.wcet().as_ns() as f64;
    let mut lo = 1.0;
    let mut hi = cap;
    if feasible(hi) {
        return Some(hi);
    }
    while (hi - lo) / lo > tol {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Clones the set with task `id`'s WCET scaled by `factor` (BCET scaled
/// proportionally); `None` if the scaled WCET would exceed the period or
/// deadline.
fn with_scaled_task(ts: &TaskSet, id: TaskId, factor: f64) -> Option<TaskSet> {
    let tasks: Vec<Task> = ts
        .iter()
        .map(|(tid, t, _)| {
            if tid != id {
                return Some(t.clone());
            }
            let wcet_ns = (t.wcet().as_ns() as f64 * factor).round() as u64;
            if wcet_ns == 0 || wcet_ns > t.period().as_ns() || wcet_ns > t.deadline().as_ns() {
                return None;
            }
            let bcet_ns = ((t.bcet().as_ns() as f64 * factor).round() as u64).clamp(1, wcet_ns);
            let mut s = Task::new(t.name(), t.period(), Dur::from_ns(wcet_ns))
                .with_bcet(Dur::from_ns(bcet_ns))
                .with_phase(t.phase());
            if t.deadline() != t.period() {
                s = s.with_deadline(t.deadline());
            }
            Some(s)
        })
        .collect::<Option<Vec<Task>>>()?;
    let prios = (0..ts.len()).map(|i| ts.priority(TaskId(i))).collect();
    Some(TaskSet::with_priorities(ts.name(), tasks, prios))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    #[test]
    fn slack_matches_rta() {
        let s = slack(&table1());
        assert_eq!(
            s,
            vec![
                Some(Dur::from_us(40)),
                Some(Dur::from_us(50)),
                Some(Dur::from_us(20)),
            ]
        );
    }

    #[test]
    fn every_table1_task_is_exactly_critical() {
        // The paper: "this system just meets its schedulability" and "if
        // tau2 were to take a little longer, tau3 would miss its deadline".
        // The analysis shows it is even tighter than the prose suggests:
        // tau3 completes exactly at tau2's second release (t = 80), so
        // growing *any* WCET pulls a whole extra interfering job into
        // tau3's window and breaks the set — all factors are ~1.0.
        let ts = table1();
        for i in 0..3 {
            let f = critical_scaling_factor(&ts, TaskId(i), 1e-4).unwrap();
            assert!(
                (f - 1.0).abs() < 1e-3,
                "task {i} should be exactly critical, factor {f}"
            );
        }
    }

    #[test]
    fn factors_are_at_least_one_for_schedulable_sets() {
        let ts = table1();
        for i in 0..ts.len() {
            let f = critical_scaling_factor(&ts, TaskId(i), 1e-3).unwrap();
            assert!(f >= 1.0);
        }
    }

    #[test]
    fn light_tasks_have_large_factors() {
        let ts = TaskSet::rate_monotonic(
            "light",
            vec![
                Task::new("a", Dur::from_us(100), Dur::from_us(5)),
                Task::new("b", Dur::from_us(1_000), Dur::from_us(10)),
            ],
        );
        let f = critical_scaling_factor(&ts, TaskId(1), 1e-3).unwrap();
        assert!(f > 50.0, "b can grow enormously, got {f}");
    }

    #[test]
    fn unschedulable_sets_yield_none() {
        let ts = TaskSet::rate_monotonic(
            "over",
            vec![
                Task::new("a", Dur::from_us(10), Dur::from_us(6)),
                Task::new("b", Dur::from_us(20), Dur::from_us(12)),
            ],
        );
        assert_eq!(critical_scaling_factor(&ts, TaskId(0), 1e-3), None);
        assert_eq!(slack(&ts)[1], None);
    }

    #[test]
    fn scaling_verifies_against_rta_at_the_boundary() {
        let ts = table1();
        let f = critical_scaling_factor(&ts, TaskId(1), 1e-5).unwrap();
        // Just below the factor: schedulable; 1% above: not.
        let below = with_scaled_task(&ts, TaskId(1), f * 0.999).unwrap();
        assert!(rta_schedulable(&below));
        let above = with_scaled_task(&ts, TaskId(1), f * 1.01).unwrap();
        assert!(!rta_schedulable(&above));
    }
}
