//! Synthetic task-set generation for parameter sweeps.
//!
//! The paper evaluates four fixed applications; the extension experiments
//! (utilization sweeps in `lpfps-bench`) need unbiased random task sets.
//! UUniFast (Bini & Buttazzo 2005) draws utilization vectors uniformly from
//! the simplex `sum(U_i) = U`; periods are drawn log-uniformly so that task
//! rates span orders of magnitude, as in real systems (and in the paper's
//! INS workload, whose periods span 2.5 ms to seconds).

use crate::rng::SplitMix64;
use crate::task::Task;
use crate::taskset::TaskSet;
use crate::time::Dur;

/// Parameters for random task-set generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of tasks.
    pub n: usize,
    /// Target total utilization, in `(0, 1]`.
    pub total_utilization: f64,
    /// Minimum period.
    pub period_min: Dur,
    /// Maximum period.
    pub period_max: Dur,
    /// BCET as a fraction of WCET, in `(0, 1]`.
    pub bcet_fraction: f64,
}

impl GenConfig {
    /// A reasonable default sweep cell: 8 tasks, U = 0.5, periods 1–100 ms,
    /// BCET = WCET/2.
    pub fn new(n: usize, total_utilization: f64) -> Self {
        GenConfig {
            n,
            total_utilization,
            period_min: Dur::from_ms(1),
            period_max: Dur::from_ms(100),
            bcet_fraction: 0.5,
        }
    }

    /// Sets the period range.
    pub fn with_periods(mut self, min: Dur, max: Dur) -> Self {
        self.period_min = min;
        self.period_max = max;
        self
    }

    /// Sets the BCET fraction.
    pub fn with_bcet_fraction(mut self, f: f64) -> Self {
        self.bcet_fraction = f;
        self
    }
}

/// Draws a utilization vector with `sum = total` uniformly from the simplex
/// (the UUniFast algorithm).
///
/// # Panics
///
/// Panics if `n` is zero or `total` is not in `(0, n]`.
pub fn uunifast(n: usize, total: f64, rng: &mut SplitMix64) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(
        total > 0.0 && total <= n as f64,
        "total utilization must be in (0, n]"
    );
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next = sum * rng.next_f64_open().powf(1.0 / (n - i) as f64);
        utils.push(sum - next);
        sum = next;
    }
    utils.push(sum);
    utils
}

/// Generates a random rate-monotonic task set matching `cfg`.
///
/// Per-task utilizations come from UUniFast; periods are log-uniform in
/// `[period_min, period_max]`, rounded to whole microseconds; WCETs are
/// `U_i * T_i` (at least 1 µs). Tasks whose drawn utilization is so small
/// that the WCET rounds to zero get the 1 µs floor, slightly raising the
/// realized utilization — negligible for sweep purposes.
///
/// # Panics
///
/// Panics if `cfg.period_min` is zero or exceeds `cfg.period_max`, or if
/// the utilization/fraction fields are out of range.
pub fn generate(cfg: &GenConfig, seed: u64) -> TaskSet {
    assert!(!cfg.period_min.is_zero(), "minimum period must be positive");
    assert!(
        cfg.period_min <= cfg.period_max,
        "period range must be ordered"
    );
    let mut rng = SplitMix64::new(seed ^ 0xC0FF_EE00_D15E_A5E5);
    let utils = uunifast(cfg.n, cfg.total_utilization, &mut rng);
    let log_min = (cfg.period_min.as_us() as f64).ln();
    let log_max = (cfg.period_max.as_us() as f64).ln();
    let tasks: Vec<Task> = utils
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let period_us = (log_min + (log_max - log_min) * rng.next_f64())
                .exp()
                .round()
                .max(1.0) as u64;
            let wcet_us = ((u * period_us as f64).round() as u64).clamp(1, period_us);
            Task::new(
                format!("gen{i}"),
                Dur::from_us(period_us),
                Dur::from_us(wcet_us),
            )
            .with_bcet_fraction(cfg.bcet_fraction)
        })
        .collect();
    TaskSet::rate_monotonic(
        format!("uunifast-n{}-u{:.2}", cfg.n, cfg.total_utilization),
        tasks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let u = uunifast(8, 0.7, &mut rng);
            assert_eq!(u.len(), 8);
            let sum: f64 = u.iter().sum();
            assert!((sum - 0.7).abs() < 1e-9);
            assert!(u.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn uunifast_single_task_gets_everything() {
        let mut rng = SplitMix64::new(2);
        assert_eq!(uunifast(1, 0.42, &mut rng), vec![0.42]);
    }

    #[test]
    fn generated_set_is_close_to_target_utilization() {
        let cfg = GenConfig::new(10, 0.6);
        let ts = generate(&cfg, 99);
        assert_eq!(ts.len(), 10);
        // Rounding to whole-us WCETs perturbs utilization slightly.
        assert!(
            (ts.utilization() - 0.6).abs() < 0.05,
            "U = {}",
            ts.utilization()
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::new(6, 0.5);
        assert_eq!(generate(&cfg, 7), generate(&cfg, 7));
        assert_ne!(generate(&cfg, 7), generate(&cfg, 8));
    }

    #[test]
    fn periods_respect_the_configured_range() {
        let cfg = GenConfig::new(20, 0.5).with_periods(Dur::from_us(500), Dur::from_us(5_000));
        let ts = generate(&cfg, 3);
        for (_, t, _) in ts.iter() {
            assert!(t.period() >= Dur::from_us(500) && t.period() <= Dur::from_us(5_000));
        }
    }

    #[test]
    fn bcet_fraction_is_applied() {
        let cfg = GenConfig::new(5, 0.4).with_bcet_fraction(0.25);
        let ts = generate(&cfg, 4);
        for (_, t, _) in ts.iter() {
            let ratio = t.bcet().as_ns() as f64 / t.wcet().as_ns() as f64;
            // 1 us WCET floors can distort tiny tasks; allow slack.
            assert!((0.2..=1.0).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "(0, n]")]
    fn uunifast_rejects_overfull_total() {
        let mut rng = SplitMix64::new(1);
        let _ = uunifast(2, 2.5, &mut rng);
    }
}
