//! Typed validation errors for the task model.
//!
//! Every structural rule that [`Task::new`](crate::task::Task::new) and
//! [`TaskSet::with_priorities`](crate::taskset::TaskSet::with_priorities)
//! enforce with an `assert!` has a corresponding variant here, produced by
//! the *fallible* constructors ([`Task::validated`](crate::task::Task::validated),
//! [`TaskSet::validated`](crate::taskset::TaskSet::validated)). The panicking
//! constructors remain the ergonomic path for literal, known-good task sets
//! (the paper's tables); the validated path is for untrusted input —
//! deserialized task sets, generated sweeps, external configuration.
//!
//! Because [`TaskSet`] implements `Deserialize`,
//! malformed sets can exist *without ever passing through a constructor*.
//! Consumers that must not panic (the simulation kernel) therefore re-check
//! the same rules at their boundary via [`validate_task_set`].

use crate::task::Task;
use crate::taskset::TaskSet;
use crate::time::Dur;
use core::fmt;

/// The largest admissible value (in nanoseconds) for any per-task time
/// parameter (period, deadline, WCET, BCET, phase) and for simulation
/// horizons.
///
/// With every operand bounded by `u64::MAX / 4`, any sum of two in-range
/// quantities — `release + period`, `now + deadline`, `horizon + phase` —
/// stays below `u64::MAX / 2` and provably cannot overflow `u64`
/// nanoseconds. This single bound is what lets the kernel downgrade its
/// internal overflow checks to `debug_assert!`s once inputs are validated.
pub const MAX_TIME_PARAM_NS: u64 = u64::MAX / 4;

/// The largest admissible time parameter, as a [`Dur`].
pub const MAX_TIME_PARAM: Dur = Dur::from_ns(MAX_TIME_PARAM_NS);

/// Why a task or task set failed validation.
///
/// The `Display` form of each variant is stable: error-message snapshot
/// tests pin the exact strings so CLI and JSON diagnostics do not drift
/// across refactors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TaskSetError {
    /// The set contains no tasks.
    Empty,
    /// A task's period is zero.
    ZeroPeriod {
        /// The offending task's name.
        task: String,
    },
    /// A task's WCET is zero.
    ZeroWcet {
        /// The offending task's name.
        task: String,
    },
    /// A task's WCET exceeds its period (`C > T`): the task is
    /// over-utilized on its own and can never be schedulable.
    WcetExceedsPeriod {
        /// The offending task's name.
        task: String,
    },
    /// A task's relative deadline is zero, below its WCET, or beyond its
    /// period (the kernel's at-most-one-live-job model needs `D <= T`).
    BadDeadline {
        /// The offending task's name.
        task: String,
    },
    /// A task's BCET is zero or exceeds its WCET.
    BadBcet {
        /// The offending task's name.
        task: String,
    },
    /// A BCET fraction outside `(0, 1]` (including NaN).
    BadBcetFraction {
        /// The rejected fraction.
        fraction: f64,
    },
    /// A time parameter is so large that release arithmetic could overflow
    /// `u64` nanoseconds (see [`MAX_TIME_PARAM_NS`]).
    TimeParamTooLarge {
        /// The offending task's name.
        task: String,
        /// Which parameter overflowed the bound.
        field: &'static str,
    },
    /// `tasks.len() != priorities.len()`.
    PriorityCountMismatch {
        /// Number of tasks supplied.
        tasks: usize,
        /// Number of priorities supplied.
        priorities: usize,
    },
    /// Two tasks share a priority level; the dispatch order would be
    /// ambiguous.
    DuplicatePriority {
        /// The duplicated level.
        level: u32,
    },
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::Empty => write!(f, "task set is empty"),
            TaskSetError::ZeroPeriod { task } => {
                write!(f, "task `{task}`: period must be positive")
            }
            TaskSetError::ZeroWcet { task } => {
                write!(f, "task `{task}`: WCET must be positive")
            }
            TaskSetError::WcetExceedsPeriod { task } => {
                write!(f, "task `{task}`: WCET exceeds its period")
            }
            TaskSetError::BadDeadline { task } => {
                write!(
                    f,
                    "task `{task}`: deadline must lie between the WCET and the period"
                )
            }
            TaskSetError::BadBcet { task } => {
                write!(
                    f,
                    "task `{task}`: BCET must be positive and at most the WCET"
                )
            }
            TaskSetError::BadBcetFraction { fraction } => {
                write!(f, "BCET fraction must be in (0, 1], got {fraction}")
            }
            TaskSetError::TimeParamTooLarge { task, field } => {
                write!(
                    f,
                    "task `{task}`: {field} exceeds the representable time bound"
                )
            }
            TaskSetError::PriorityCountMismatch { tasks, priorities } => {
                write!(f, "task set has {tasks} tasks but {priorities} priorities")
            }
            TaskSetError::DuplicatePriority { level } => {
                write!(
                    f,
                    "priority level {level} is assigned to more than one task"
                )
            }
        }
    }
}

impl std::error::Error for TaskSetError {}

/// Checks one task against the structural rules, without constructing
/// anything. Used by [`Task::validated`](crate::task::Task::validated) and
/// by boundary re-validation of deserialized tasks.
pub fn validate_task(task: &Task) -> Result<(), TaskSetError> {
    let name = || task.name().to_string();
    if task.period().is_zero() {
        return Err(TaskSetError::ZeroPeriod { task: name() });
    }
    if task.wcet().is_zero() {
        return Err(TaskSetError::ZeroWcet { task: name() });
    }
    if task.wcet() > task.period() {
        return Err(TaskSetError::WcetExceedsPeriod { task: name() });
    }
    if task.deadline().is_zero() || task.deadline() < task.wcet() || task.deadline() > task.period()
    {
        return Err(TaskSetError::BadDeadline { task: name() });
    }
    if task.bcet().is_zero() || task.bcet() > task.wcet() {
        return Err(TaskSetError::BadBcet { task: name() });
    }
    for (field, value) in [
        ("period", task.period()),
        ("deadline", task.deadline()),
        ("phase", task.phase()),
    ] {
        if value > MAX_TIME_PARAM {
            return Err(TaskSetError::TimeParamTooLarge {
                task: name(),
                field,
            });
        }
    }
    Ok(())
}

/// Checks a whole (possibly deserialized) task set: non-empty, every task
/// structurally valid, priorities total and unique.
///
/// This is the boundary check the simulation kernel runs before trusting a
/// set; after it passes, every `assert!` in the constructors is provably
/// unreachable for this value.
pub fn validate_task_set(ts: &TaskSet) -> Result<(), TaskSetError> {
    if ts.is_empty() {
        return Err(TaskSetError::Empty);
    }
    // A deserialized set can carry mismatched vectors; `iter()` zips and
    // would silently truncate, leaving the surplus tasks unvalidated.
    if ts.len() != ts.priority_count() {
        return Err(TaskSetError::PriorityCountMismatch {
            tasks: ts.len(),
            priorities: ts.priority_count(),
        });
    }
    for (_, task, _) in ts.iter() {
        validate_task(task)?;
    }
    let mut levels: Vec<u32> = ts.iter().map(|(_, _, p)| p.level()).collect();
    levels.sort_unstable();
    if let Some(w) = levels.windows(2).find(|w| w[0] == w[1]) {
        return Err(TaskSetError::DuplicatePriority { level: w[0] });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use crate::taskset::TaskSet;

    #[test]
    fn valid_paper_set_passes() {
        let ts = TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
            ],
        );
        assert_eq!(validate_task_set(&ts), Ok(()));
    }

    #[test]
    fn deserialized_malformed_set_is_caught() {
        // Serde bypasses the constructors entirely: a zero-period task can
        // exist in memory. The boundary check must catch it.
        let json = r#"{
            "name": "hostile",
            "tasks": [{
                "name": "z", "period": 0, "deadline": 0,
                "wcet": 0, "bcet": 0, "phase": 0
            }],
            "priorities": [0]
        }"#;
        let ts: TaskSet = serde_json::from_str(json).unwrap();
        assert_eq!(
            validate_task_set(&ts),
            Err(TaskSetError::ZeroPeriod { task: "z".into() })
        );
    }

    #[test]
    fn duplicate_priorities_are_caught_post_hoc() {
        let json = r#"{
            "name": "dup",
            "tasks": [
                {"name": "a", "period": 1000, "deadline": 1000, "wcet": 100, "bcet": 100, "phase": 0},
                {"name": "b", "period": 2000, "deadline": 2000, "wcet": 100, "bcet": 100, "phase": 0}
            ],
            "priorities": [3, 3]
        }"#;
        let ts: TaskSet = serde_json::from_str(json).unwrap();
        assert_eq!(
            validate_task_set(&ts),
            Err(TaskSetError::DuplicatePriority { level: 3 })
        );
    }

    #[test]
    fn oversized_parameters_are_rejected() {
        let json = format!(
            r#"{{
                "name": "huge",
                "tasks": [{{
                    "name": "h", "period": {p}, "deadline": {p},
                    "wcet": 10, "bcet": 10, "phase": 0
                }}],
                "priorities": [0]
            }}"#,
            p = u64::MAX / 2
        );
        let ts: TaskSet = serde_json::from_str(&json).unwrap();
        assert_eq!(
            validate_task_set(&ts),
            Err(TaskSetError::TimeParamTooLarge {
                task: "h".into(),
                field: "period"
            })
        );
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(TaskSetError::Empty.to_string(), "task set is empty");
        assert_eq!(
            TaskSetError::ZeroPeriod { task: "x".into() }.to_string(),
            "task `x`: period must be positive"
        );
        assert_eq!(
            TaskSetError::DuplicatePriority { level: 7 }.to_string(),
            "priority level 7 is assigned to more than one task"
        );
    }
}
