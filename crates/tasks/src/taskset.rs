//! Task sets: a named collection of periodic tasks with a total priority
//! order, the unit of analysis and simulation throughout the workspace.

use crate::error::{validate_task_set, TaskSetError};
use crate::priority;
use crate::task::{Priority, Task, TaskId};
use crate::time::Dur;
use core::fmt;
use serde::{Deserialize, Serialize};

/// A set of periodic tasks with an assigned fixed-priority order.
///
/// Priorities are total: every task has a distinct level, so the scheduler's
/// run queue order is unambiguous (ties in rate-monotonic assignment are
/// broken by declaration order, as is conventional).
///
/// # Examples
///
/// ```
/// use lpfps_tasks::{task::Task, taskset::TaskSet, time::Dur};
///
/// // Table 1 of the paper.
/// let ts = TaskSet::rate_monotonic("table1", vec![
///     Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
///     Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
///     Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
/// ]);
/// assert_eq!(ts.len(), 3);
/// assert!((ts.utilization() - 0.85).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    name: String,
    tasks: Vec<Task>,
    priorities: Vec<Priority>,
}

impl TaskSet {
    /// Creates a task set with explicit priorities (`priorities[i]` belongs
    /// to `tasks[i]`; lower value = higher priority).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty, the lengths differ, or two tasks share a
    /// priority level.
    pub fn with_priorities(
        name: impl Into<String>,
        tasks: Vec<Task>,
        priorities: Vec<Priority>,
    ) -> Self {
        assert!(
            !tasks.is_empty(),
            "a task set must contain at least one task"
        );
        assert_eq!(
            tasks.len(),
            priorities.len(),
            "one priority per task is required"
        );
        let mut seen = priorities.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            priorities.len(),
            "priority levels must be unique within a task set"
        );
        TaskSet {
            name: name.into(),
            tasks,
            priorities,
        }
    }

    /// Fallible counterpart of [`TaskSet::with_priorities`] for untrusted
    /// input: validates every task and the priority order, returning a
    /// typed error instead of panicking.
    ///
    /// After `validated` succeeds, every `assert!` in the panicking
    /// constructors is provably unreachable for this value — the documented
    /// precondition the simulation kernel relies on.
    ///
    /// # Errors
    ///
    /// Returns the first [`TaskSetError`] encountered (tasks are checked in
    /// declaration order, then priorities).
    pub fn validated(
        name: impl Into<String>,
        tasks: Vec<Task>,
        priorities: Vec<Priority>,
    ) -> Result<Self, TaskSetError> {
        if tasks.is_empty() {
            return Err(TaskSetError::Empty);
        }
        if tasks.len() != priorities.len() {
            return Err(TaskSetError::PriorityCountMismatch {
                tasks: tasks.len(),
                priorities: priorities.len(),
            });
        }
        let ts = TaskSet {
            name: name.into(),
            tasks,
            priorities,
        };
        validate_task_set(&ts)?;
        Ok(ts)
    }

    /// Fallible counterpart of [`TaskSet::rate_monotonic`].
    ///
    /// # Errors
    ///
    /// As [`TaskSet::validated`].
    pub fn try_rate_monotonic(
        name: impl Into<String>,
        tasks: Vec<Task>,
    ) -> Result<Self, TaskSetError> {
        let prios = priority::rate_monotonic(&tasks);
        TaskSet::validated(name, tasks, prios)
    }

    /// Fallible counterpart of [`TaskSet::with_bcet_fraction`].
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError::BadBcetFraction`] unless `fraction` is in
    /// `(0, 1]`.
    pub fn try_with_bcet_fraction(&self, fraction: f64) -> Result<TaskSet, TaskSetError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(TaskSetError::BadBcetFraction { fraction });
        }
        Ok(self.with_bcet_fraction(fraction))
    }

    /// Creates a task set with rate-monotonic priorities (shorter period =
    /// higher priority; ties broken by declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn rate_monotonic(name: impl Into<String>, tasks: Vec<Task>) -> Self {
        let prios = priority::rate_monotonic(&tasks);
        TaskSet::with_priorities(name, tasks, prios)
    }

    /// Creates a task set with deadline-monotonic priorities (shorter
    /// relative deadline = higher priority; ties broken by declaration
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn deadline_monotonic(name: impl Into<String>, tasks: Vec<Task>) -> Self {
        let prios = priority::deadline_monotonic(&tasks);
        TaskSet::with_priorities(name, tasks, prios)
    }

    /// The set's name (used in reports and traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the set has no tasks (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The number of priority levels carried by the set. Always equals
    /// [`len`](TaskSet::len) for a constructed set, but a deserialized
    /// value can disagree — boundary validation compares the two, since
    /// [`iter`](TaskSet::iter) silently truncates to the shorter vector.
    pub fn priority_count(&self) -> usize {
        self.priorities.len()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// The priority of the task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn priority(&self, id: TaskId) -> Priority {
        self.priorities[id.0]
    }

    /// Iterates over `(id, task, priority)` triples in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task, Priority)> + '_ {
        self.tasks
            .iter()
            .zip(&self.priorities)
            .enumerate()
            .map(|(i, (t, &p))| (TaskId(i), t, p))
    }

    /// Task ids sorted from highest priority (lowest level) to lowest.
    pub fn ids_by_priority(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.tasks.len()).map(TaskId).collect();
        ids.sort_by_key(|id| self.priorities[id.0]);
        ids
    }

    /// Total worst-case utilization `sum(C_i / T_i)`.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// The smallest and largest WCET in the set (the paper's Table 2
    /// column). Both are [`Dur::ZERO`] for a (deserialized) empty set.
    pub fn wcet_range(&self) -> (Dur, Dur) {
        let min = self.tasks.iter().map(Task::wcet).min().unwrap_or(Dur::ZERO);
        let max = self.tasks.iter().map(Task::wcet).max().unwrap_or(Dur::ZERO);
        (min, max)
    }

    /// Returns a copy with every task's BCET set to `fraction * WCET` —
    /// the x-axis sweep of the paper's Figure 8.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn with_bcet_fraction(&self, fraction: f64) -> TaskSet {
        TaskSet {
            name: self.name.clone(),
            tasks: self
                .tasks
                .iter()
                .map(|t| t.with_bcet_fraction(fraction))
                .collect(),
            priorities: self.priorities.clone(),
        }
    }

    /// All tasks in declaration order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} tasks, U={:.3})",
            self.name,
            self.len(),
            self.utilization()
        )?;
        for (id, t, p) in self.iter() {
            writeln!(f, "  {id} [{p}] {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    #[test]
    fn rate_monotonic_orders_by_period() {
        let ts = table1();
        assert!(ts
            .priority(TaskId(0))
            .is_higher_than(ts.priority(TaskId(1))));
        assert!(ts
            .priority(TaskId(1))
            .is_higher_than(ts.priority(TaskId(2))));
        assert_eq!(ts.ids_by_priority(), vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn utilization_sums_tasks() {
        assert!((table1().utilization() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn wcet_range_matches_extremes() {
        let (lo, hi) = table1().wcet_range();
        assert_eq!(lo, Dur::from_us(10));
        assert_eq!(hi, Dur::from_us(40));
    }

    #[test]
    fn bcet_fraction_rescales_every_task() {
        let half = table1().with_bcet_fraction(0.5);
        for (_, t, _) in half.iter() {
            assert_eq!(t.bcet().as_ns() * 2, t.wcet().as_ns());
        }
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_priorities_rejected() {
        let tasks = vec![
            Task::new("a", Dur::from_us(10), Dur::from_us(1)),
            Task::new("b", Dur::from_us(20), Dur::from_us(1)),
        ];
        let _ = TaskSet::with_priorities("bad", tasks, vec![Priority::new(1), Priority::new(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_set_rejected() {
        let _ = TaskSet::with_priorities("empty", vec![], vec![]);
    }

    #[test]
    fn validated_accepts_good_sets_and_rejects_bad_ones() {
        let ts = TaskSet::try_rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
            ],
        )
        .unwrap();
        assert_eq!(ts.len(), 2);

        assert_eq!(
            TaskSet::validated("empty", vec![], vec![]),
            Err(TaskSetError::Empty)
        );
        let tasks = vec![Task::new("a", Dur::from_us(10), Dur::from_us(1))];
        assert_eq!(
            TaskSet::validated("mismatch", tasks.clone(), vec![]),
            Err(TaskSetError::PriorityCountMismatch {
                tasks: 1,
                priorities: 0
            })
        );
        let two = vec![
            Task::new("a", Dur::from_us(10), Dur::from_us(1)),
            Task::new("b", Dur::from_us(20), Dur::from_us(1)),
        ];
        assert_eq!(
            TaskSet::validated("dup", two, vec![Priority::new(4), Priority::new(4)]),
            Err(TaskSetError::DuplicatePriority { level: 4 })
        );
        assert!(matches!(
            table1().try_with_bcet_fraction(0.0),
            Err(TaskSetError::BadBcetFraction { .. })
        ));
    }

    #[test]
    fn deadline_monotonic_uses_deadlines() {
        let tasks = vec![
            Task::new("long", Dur::from_us(100), Dur::from_us(5)).with_deadline(Dur::from_us(30)),
            Task::new("short", Dur::from_us(50), Dur::from_us(5)),
        ];
        let ts = TaskSet::deadline_monotonic("dm", tasks);
        // "long" has the shorter deadline (30 < 50), so it gets the higher priority.
        assert!(ts
            .priority(TaskId(0))
            .is_higher_than(ts.priority(TaskId(1))));
    }

    #[test]
    fn iter_yields_in_declaration_order() {
        let ts = table1();
        let names: Vec<&str> = ts.iter().map(|(_, t, _)| t.name()).collect();
        assert_eq!(names, vec!["tau1", "tau2", "tau3"]);
    }

    #[test]
    fn display_lists_all_tasks() {
        let text = table1().to_string();
        assert!(text.contains("table1 (3 tasks, U=0.850)"));
        assert!(text.contains("tau3"));
    }
}
