//! Fixed-priority assignment policies.
//!
//! Rate-monotonic assignment (Liu & Layland) is the paper's choice for all
//! its workloads (periods equal deadlines); deadline-monotonic (Audsley,
//! Burns et al.) generalizes to constrained deadlines and is provably
//! optimal among fixed-priority assignments for them. Both are provided
//! here as pure functions from a task slice to a priority vector, plus a
//! generic "order by key" worker they share. Audsley's optimal priority
//! assignment, which needs a schedulability test, lives in
//! [`crate::analysis::opa`].

use crate::task::{Priority, Task};
use crate::time::Dur;

/// Assigns rate-monotonic priorities: shorter period = higher priority.
/// Ties are broken by declaration order (earlier task wins).
///
/// # Examples
///
/// ```
/// use lpfps_tasks::{priority::rate_monotonic, task::Task, time::Dur};
///
/// let tasks = vec![
///     Task::new("slow", Dur::from_us(100), Dur::from_us(1)),
///     Task::new("fast", Dur::from_us(10), Dur::from_us(1)),
/// ];
/// let prios = rate_monotonic(&tasks);
/// assert!(prios[1].is_higher_than(prios[0]));
/// ```
pub fn rate_monotonic(tasks: &[Task]) -> Vec<Priority> {
    by_key(tasks, Task::period)
}

/// Assigns deadline-monotonic priorities: shorter relative deadline =
/// higher priority. Ties are broken by declaration order.
pub fn deadline_monotonic(tasks: &[Task]) -> Vec<Priority> {
    by_key(tasks, Task::deadline)
}

/// Assigns priorities by ascending `key(task)`; ties broken by index.
fn by_key(tasks: &[Task], key: impl Fn(&Task) -> Dur) -> Vec<Priority> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (key(&tasks[i]), i));
    let mut prios = vec![Priority::HIGHEST; tasks.len()];
    for (level, &i) in order.iter().enumerate() {
        prios[i] = Priority::new(level as u32);
    }
    prios
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, period_us: u64, deadline_us: u64) -> Task {
        Task::new(name, Dur::from_us(period_us), Dur::from_us(1))
            .with_deadline(Dur::from_us(deadline_us))
    }

    #[test]
    fn rm_sorts_by_period() {
        let tasks = vec![t("a", 100, 100), t("b", 50, 50), t("c", 80, 80)];
        let p = rate_monotonic(&tasks);
        assert_eq!(
            p,
            vec![Priority::new(2), Priority::new(0), Priority::new(1)]
        );
    }

    #[test]
    fn dm_sorts_by_deadline() {
        let tasks = vec![t("a", 100, 20), t("b", 50, 50), t("c", 80, 30)];
        let p = deadline_monotonic(&tasks);
        assert_eq!(
            p,
            vec![Priority::new(0), Priority::new(2), Priority::new(1)]
        );
    }

    #[test]
    fn ties_break_by_declaration_order() {
        let tasks = vec![t("first", 50, 50), t("second", 50, 50)];
        let p = rate_monotonic(&tasks);
        assert!(p[0].is_higher_than(p[1]));
    }

    #[test]
    fn rm_equals_dm_for_implicit_deadlines() {
        let tasks = vec![t("a", 100, 100), t("b", 50, 50), t("c", 80, 80)];
        assert_eq!(rate_monotonic(&tasks), deadline_monotonic(&tasks));
    }

    #[test]
    fn empty_input_yields_empty_assignment() {
        assert!(rate_monotonic(&[]).is_empty());
    }
}
