//! Counter-based deterministic random streams.
//!
//! Execution times must be **identical across scheduling policies** for the
//! paper's comparison to be fair: Figure 8 compares FPS and LPFPS on the
//! *same* realized workload. A stateful RNG consumed in simulation order
//! would break that (policies visit jobs in different orders when idle
//! periods differ), so each job's draw is derived statelessly from
//! `(seed, task index, job index, draw index)` via SplitMix64. Any job's
//! stream can be regenerated in isolation, in any order.

/// A SplitMix64 pseudo-random stream (Steele, Lea & Flood; the standard
/// seeding generator of the `rand` ecosystem), hand-rolled so draws are
/// reproducible forever, independent of external crate versions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a raw 64-bit state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform double in the open interval `(0, 1)` (safe for `ln`).
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / ((1u64 << 53) as f64 + 2.0))
    }

    /// Two independent standard-normal draws via the Box–Muller transform.
    ///
    /// Hand-rolled because `rand_distr` is outside the approved dependency
    /// set; Box–Muller is exact (no rejection loop), keeping the stream's
    /// draw count fixed per job.
    pub fn next_gaussian_pair(&mut self) -> (f64, f64) {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }

    /// One standard-normal draw: bit-identical to the *first* element of
    /// [`SplitMix64::next_gaussian_pair`] (same two uniforms consumed, same
    /// float ops), without evaluating the discarded `sin` branch — the
    /// per-release fast path for samplers that use one draw per job.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        r * theta.cos()
    }
}

/// Derives the independent stream for one job's draws.
///
/// Mixes the components through SplitMix64 steps so that nearby
/// `(task, job)` pairs land in uncorrelated regions of the state space.
pub fn job_stream(seed: u64, task_index: usize, job_index: u64) -> SplitMix64 {
    let mut s = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F);
    let a = s.next_u64() ^ (task_index as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    let mut s = SplitMix64::new(a);
    let b = s.next_u64() ^ job_index.wrapping_mul(0x8EBC_6AF0_9C88_C6E3);
    SplitMix64::new(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = job_stream(42, 3, 17);
        let mut b = job_stream(42, 3, 17);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_across_jobs_tasks_and_seeds() {
        let base: Vec<u64> = (0..4).map(|_| job_stream(1, 0, 0).next_u64()).collect();
        assert!(base.iter().all(|&x| x == base[0]));
        assert_ne!(
            job_stream(1, 0, 0).next_u64(),
            job_stream(1, 0, 1).next_u64()
        );
        assert_ne!(
            job_stream(1, 0, 0).next_u64(),
            job_stream(1, 1, 0).next_u64()
        );
        assert_ne!(
            job_stream(1, 0, 0).next_u64(),
            job_stream(2, 0, 0).next_u64()
        );
    }

    #[test]
    fn uniform_doubles_live_in_unit_interval() {
        let mut s = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = s.next_f64_open();
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut s = SplitMix64::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| s.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn single_gaussian_matches_first_of_pair() {
        // The fast path must stay bit-identical to the pair's first draw
        // (the golden fingerprints depend on it).
        for seed in 0..100 {
            let a = SplitMix64::new(seed).next_gaussian();
            let (b, _) = SplitMix64::new(seed).next_gaussian_pair();
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at state {seed}");
        }
    }

    #[test]
    fn gaussian_moments_are_standard() {
        let mut s = SplitMix64::new(123);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let (a, b) = s.next_gaussian_pair();
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let count = (2 * n) as f64;
        let mean = sum / count;
        let var = sum_sq / count - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "variance {var} too far from 1");
    }
}
