//! The periodic hard-real-time task model of the paper.
//!
//! A [`Task`] releases an infinite sequence of jobs: job `k` of task `i` is
//! released at `phase_i + k * T_i`, must finish by its release plus the
//! relative deadline `D_i`, and demands at most the worst-case execution
//! time `C_i` (and at least the best-case execution time `BCET_i`) of
//! processor time *at the maximum clock frequency*.
//!
//! Priorities follow the real-time convention the paper adopts: a **lower
//! numeric value means a higher priority**.

use crate::error::TaskSetError;
use crate::time::Dur;
use core::fmt;
use serde::{Deserialize, Serialize};

/// A fixed priority level. Lower numeric values are *more* urgent.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::task::Priority;
///
/// assert!(Priority::new(1).is_higher_than(Priority::new(2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(u32);

impl Priority {
    /// The most urgent priority level.
    pub const HIGHEST: Priority = Priority(0);

    /// Creates a priority level (lower = more urgent).
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// The numeric level.
    pub const fn level(self) -> u32 {
        self.0
    }

    /// True if `self` preempts `other` under fixed-priority scheduling.
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Index of a task within its [`TaskSet`](crate::taskset::TaskSet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A periodic task with implicit or constrained deadline.
///
/// Construct with [`Task::new`] and refine with the `with_*` builders:
///
/// ```
/// use lpfps_tasks::{task::Task, time::Dur};
///
/// let t = Task::new("tau2", Dur::from_us(80), Dur::from_us(20))
///     .with_bcet(Dur::from_us(8));
/// assert_eq!(t.deadline(), Dur::from_us(80)); // implicit deadline D = T
/// assert!((t.utilization() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    name: String,
    period: Dur,
    deadline: Dur,
    wcet: Dur,
    bcet: Dur,
    phase: Dur,
}

impl Task {
    /// Creates a task with period `period`, WCET `wcet`, implicit deadline
    /// (`D = T`), `BCET = WCET`, and zero phase.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, `wcet` is zero, or `wcet > period`.
    pub fn new(name: impl Into<String>, period: Dur, wcet: Dur) -> Self {
        assert!(!period.is_zero(), "task period must be positive");
        assert!(!wcet.is_zero(), "task WCET must be positive");
        assert!(wcet <= period, "task WCET must not exceed its period");
        Task {
            name: name.into(),
            period,
            deadline: period,
            wcet,
            bcet: wcet,
            phase: Dur::ZERO,
        }
    }

    /// Fallible counterpart of [`Task::new`] for untrusted input: returns a
    /// typed error instead of panicking, and additionally bounds the period
    /// against [`MAX_TIME_PARAM`](crate::error::MAX_TIME_PARAM) so release
    /// arithmetic can never overflow.
    ///
    /// # Errors
    ///
    /// Returns the [`TaskSetError`] naming the violated rule.
    pub fn validated(
        name: impl Into<String>,
        period: Dur,
        wcet: Dur,
    ) -> Result<Task, TaskSetError> {
        let name = name.into();
        if period.is_zero() {
            return Err(TaskSetError::ZeroPeriod { task: name });
        }
        if wcet.is_zero() {
            return Err(TaskSetError::ZeroWcet { task: name });
        }
        if wcet > period {
            return Err(TaskSetError::WcetExceedsPeriod { task: name });
        }
        if period > crate::error::MAX_TIME_PARAM {
            return Err(TaskSetError::TimeParamTooLarge {
                task: name,
                field: "period",
            });
        }
        Ok(Task {
            name,
            period,
            deadline: period,
            wcet,
            bcet: wcet,
            phase: Dur::ZERO,
        })
    }

    /// Fallible counterpart of [`Task::with_deadline`].
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError::BadDeadline`] unless
    /// `WCET <= deadline <= period`.
    pub fn try_with_deadline(self, deadline: Dur) -> Result<Task, TaskSetError> {
        if deadline.is_zero() || deadline < self.wcet || deadline > self.period {
            return Err(TaskSetError::BadDeadline { task: self.name });
        }
        let mut t = self;
        t.deadline = deadline;
        Ok(t)
    }

    /// Fallible counterpart of [`Task::with_bcet`].
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError::BadBcet`] unless `0 < bcet <= WCET`.
    pub fn try_with_bcet(self, bcet: Dur) -> Result<Task, TaskSetError> {
        if bcet.is_zero() || bcet > self.wcet {
            return Err(TaskSetError::BadBcet { task: self.name });
        }
        let mut t = self;
        t.bcet = bcet;
        Ok(t)
    }

    /// Fallible counterpart of [`Task::with_bcet_fraction`].
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError::BadBcetFraction`] unless `fraction` is in
    /// `(0, 1]`.
    pub fn try_with_bcet_fraction(&self, fraction: f64) -> Result<Task, TaskSetError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(TaskSetError::BadBcetFraction { fraction });
        }
        Ok(self.with_bcet_fraction(fraction))
    }

    /// Sets a constrained relative deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero, smaller than the WCET, or larger than
    /// the period (the kernel model assumes at most one live job per task).
    pub fn with_deadline(mut self, deadline: Dur) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        assert!(deadline >= self.wcet, "deadline must be at least the WCET");
        assert!(
            deadline <= self.period,
            "deadline must not exceed the period"
        );
        self.deadline = deadline;
        self
    }

    /// Sets the best-case execution time.
    ///
    /// # Panics
    ///
    /// Panics if `bcet` is zero or exceeds the WCET.
    pub fn with_bcet(mut self, bcet: Dur) -> Self {
        assert!(!bcet.is_zero(), "BCET must be positive");
        assert!(bcet <= self.wcet, "BCET must not exceed the WCET");
        self.bcet = bcet;
        self
    }

    /// Sets the release phase (offset of the first job).
    pub fn with_phase(mut self, phase: Dur) -> Self {
        self.phase = phase;
        self
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The period `T`.
    pub fn period(&self) -> Dur {
        self.period
    }

    /// The relative deadline `D`.
    pub fn deadline(&self) -> Dur {
        self.deadline
    }

    /// The worst-case execution time `C` at the maximum clock frequency.
    pub fn wcet(&self) -> Dur {
        self.wcet
    }

    /// The best-case execution time at the maximum clock frequency.
    pub fn bcet(&self) -> Dur {
        self.bcet
    }

    /// The release phase of the first job.
    pub fn phase(&self) -> Dur {
        self.phase
    }

    /// The worst-case utilization `C / T`.
    pub fn utilization(&self) -> f64 {
        self.wcet.as_ns() as f64 / self.period.as_ns() as f64
    }

    /// Returns a copy with the BCET set to `fraction * WCET` (clamped to at
    /// least one nanosecond), the knob swept in the paper's Figure 8.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn with_bcet_fraction(&self, fraction: f64) -> Task {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "BCET fraction must be in (0, 1], got {fraction}"
        );
        let bcet_ns = ((self.wcet.as_ns() as f64 * fraction).round() as u64).max(1);
        let mut t = self.clone();
        t.bcet = Dur::from_ns(bcet_ns.min(self.wcet.as_ns()));
        t
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(T={}, D={}, C={}, B={})",
            self.name, self.period, self.deadline, self.wcet, self.bcet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tau() -> Task {
        Task::new("tau1", Dur::from_us(50), Dur::from_us(10))
    }

    #[test]
    fn implicit_deadline_equals_period() {
        assert_eq!(tau().deadline(), Dur::from_us(50));
        assert_eq!(tau().bcet(), Dur::from_us(10));
        assert_eq!(tau().phase(), Dur::ZERO);
    }

    #[test]
    fn builders_refine_fields() {
        let t = tau()
            .with_deadline(Dur::from_us(40))
            .with_bcet(Dur::from_us(2))
            .with_phase(Dur::from_us(5));
        assert_eq!(t.deadline(), Dur::from_us(40));
        assert_eq!(t.bcet(), Dur::from_us(2));
        assert_eq!(t.phase(), Dur::from_us(5));
    }

    #[test]
    fn utilization_is_c_over_t() {
        assert!((tau().utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bcet_fraction_scales_from_wcet() {
        let t = tau().with_bcet_fraction(0.1);
        assert_eq!(t.bcet(), Dur::from_us(1));
        let t = tau().with_bcet_fraction(1.0);
        assert_eq!(t.bcet(), t.wcet());
    }

    #[test]
    #[should_panic(expected = "BCET fraction")]
    fn bcet_fraction_rejects_zero() {
        let _ = tau().with_bcet_fraction(0.0);
    }

    #[test]
    #[should_panic(expected = "WCET must not exceed")]
    fn wcet_larger_than_period_rejected() {
        let _ = Task::new("bad", Dur::from_us(10), Dur::from_us(20));
    }

    #[test]
    #[should_panic(expected = "deadline must not exceed")]
    fn deadline_beyond_period_rejected() {
        let _ = tau().with_deadline(Dur::from_us(60));
    }

    #[test]
    fn priority_ordering_is_inverted() {
        assert!(Priority::new(0).is_higher_than(Priority::new(5)));
        assert!(!Priority::new(5).is_higher_than(Priority::new(5)));
        assert_eq!(Priority::HIGHEST.level(), 0);
        assert_eq!(Priority::new(3).to_string(), "P3");
    }

    #[test]
    fn validated_mirrors_the_panicking_rules() {
        assert_eq!(
            Task::validated("z", Dur::ZERO, Dur::from_us(1)),
            Err(TaskSetError::ZeroPeriod { task: "z".into() })
        );
        assert_eq!(
            Task::validated("z", Dur::from_us(1), Dur::ZERO),
            Err(TaskSetError::ZeroWcet { task: "z".into() })
        );
        assert_eq!(
            Task::validated("z", Dur::from_us(1), Dur::from_us(2)),
            Err(TaskSetError::WcetExceedsPeriod { task: "z".into() })
        );
        assert_eq!(
            Task::validated("z", Dur::MAX, Dur::from_us(1)),
            Err(TaskSetError::TimeParamTooLarge {
                task: "z".into(),
                field: "period"
            })
        );
        let ok = Task::validated("tau1", Dur::from_us(50), Dur::from_us(10)).unwrap();
        assert_eq!(ok, tau());
    }

    #[test]
    fn try_builders_return_typed_errors() {
        assert!(matches!(
            tau().try_with_deadline(Dur::from_us(60)),
            Err(TaskSetError::BadDeadline { .. })
        ));
        assert!(matches!(
            tau().try_with_bcet(Dur::from_us(11)),
            Err(TaskSetError::BadBcet { .. })
        ));
        assert!(matches!(
            tau().try_with_bcet_fraction(f64::NAN),
            Err(TaskSetError::BadBcetFraction { .. })
        ));
        let t = tau()
            .try_with_deadline(Dur::from_us(40))
            .unwrap()
            .try_with_bcet(Dur::from_us(2))
            .unwrap();
        assert_eq!(t.deadline(), Dur::from_us(40));
        assert_eq!(t.bcet(), Dur::from_us(2));
    }

    #[test]
    fn display_summarizes_parameters() {
        let t = tau().with_bcet(Dur::from_us(3));
        assert_eq!(t.to_string(), "tau1(T=50us, D=50us, C=10us, B=3us)");
    }
}
