//! Processor work measured in clock cycles.
//!
//! The paper specifies task execution demands as times at the maximum clock
//! frequency (e.g. a WCET of 20 µs on the 100 MHz ARM8-class core). The
//! simulator instead stores demand as a cycle count, because a job's
//! *remaining work* is invariant under frequency changes while its remaining
//! *time* is not. Conversions between cycles and time at a given frequency
//! are exact integer arithmetic with `u128` intermediates.

use crate::freq::Freq;
use crate::time::Dur;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An amount of processor work, in clock cycles.
///
/// # Examples
///
/// ```
/// use lpfps_tasks::{cycles::Cycles, freq::Freq, time::Dur};
///
/// let full = Freq::from_mhz(100);
/// // 20 us of work at 100 MHz is 2000 cycles...
/// let work = Cycles::from_time_at(Dur::from_us(20), full);
/// assert_eq!(work.as_u64(), 2_000);
/// // ...which takes 40 us at half speed.
/// assert_eq!(work.time_at(Freq::from_mhz(50)), Dur::from_us(40));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// No work.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count directly.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// The work performed when running for `d` at frequency `f`, rounded
    /// *down* (a partial cycle does not retire). Saturates at `u64::MAX`
    /// cycles: validated inputs (see `lpfps_tasks::error`) never reach the
    /// saturation point, and for hostile inputs a pinned-at-maximum work
    /// amount is detected by the kernel's overflow boundary checks instead
    /// of aborting the process.
    pub fn from_time_at(d: Dur, f: Freq) -> Self {
        // cycles = ns * kHz / 1e6  (1 kHz = 1e3 cycles/s = 1e-6 cycles/ns)
        let c = (d.as_ns() as u128 * f.as_khz() as u128) / 1_000_000;
        Cycles(u64::try_from(c).unwrap_or(u64::MAX))
    }

    /// The raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The wall-clock time to retire this many cycles at frequency `f`,
    /// rounded *up* (the last cycle must fully complete).
    ///
    /// A stopped clock (`f == 0`) or a duration beyond `u64` nanoseconds
    /// both saturate to [`Dur::MAX`] — "this work never finishes" — rather
    /// than aborting. Validated processor specs have a nonzero minimum
    /// frequency, so the saturated path is unreachable on the happy path
    /// (kept as a `debug_assert!` below).
    pub fn time_at(self, f: Freq) -> Dur {
        debug_assert!(!f.is_zero(), "cannot execute work at a stopped clock");
        if f.is_zero() {
            return Dur::MAX;
        }
        // ns = cycles * 1e6 / kHz, ceiling division.
        let num = self.0 as u128 * 1_000_000;
        let den = f.as_khz() as u128;
        let ns = num.div_ceil(den);
        Dur::from_ns(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// True if no work remains.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: remaining work after retiring `done`.
    pub fn saturating_sub(self, done: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(done.0))
    }

    /// The smaller of two work amounts.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` exceeds `self`.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: Freq = Freq::from_mhz(100);

    #[test]
    fn time_cycle_roundtrip_at_full_speed() {
        let d = Dur::from_us(35);
        let c = Cycles::from_time_at(d, FULL);
        assert_eq!(c.as_u64(), 3_500);
        assert_eq!(c.time_at(FULL), d);
    }

    #[test]
    fn slower_clock_stretches_time_proportionally() {
        let c = Cycles::from_time_at(Dur::from_us(20), FULL);
        assert_eq!(c.time_at(Freq::from_mhz(50)), Dur::from_us(40));
        assert_eq!(c.time_at(Freq::from_mhz(25)), Dur::from_us(80));
        assert_eq!(c.time_at(Freq::from_mhz(8)), Dur::from_us(250));
    }

    #[test]
    fn time_at_rounds_up_partial_cycles() {
        // 1000 cycles at 3 MHz = 333.33.. us -> must round up to whole ns.
        let c = Cycles::new(1_000);
        let d = c.time_at(Freq::from_mhz(3));
        assert_eq!(d.as_ns(), 333_334);
        // And converting back down never reports more work than was done.
        assert!(Cycles::from_time_at(d, Freq::from_mhz(3)).as_u64() >= 1_000);
    }

    #[test]
    fn from_time_rounds_down() {
        // 1 ns at 100 MHz is 0.1 cycle -> 0 retired cycles.
        assert_eq!(Cycles::from_time_at(Dur::from_ns(1), FULL), Cycles::ZERO);
        assert_eq!(Cycles::from_time_at(Dur::from_ns(10), FULL), Cycles::new(1));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "stopped clock"))]
    fn time_at_zero_frequency_saturates() {
        // Debug builds trap the programming error; release builds
        // saturate to "this work never finishes".
        assert_eq!(Cycles::new(1).time_at(Freq::ZERO), Dur::MAX);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Cycles::new(30);
        let b = Cycles::new(12);
        assert_eq!(a + b, Cycles::new(42));
        assert_eq!(a - b, Cycles::new(18));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(b * 3, Cycles::new(36));
        let s: Cycles = [a, b].into_iter().sum();
        assert_eq!(s, Cycles::new(42));
    }

    #[test]
    fn ten_cycle_wakeup_at_full_speed_is_100ns() {
        // The paper's power-down wake-up latency: 10 cycles at 100 MHz.
        assert_eq!(Cycles::new(10).time_at(FULL), Dur::from_ns(100));
    }
}
