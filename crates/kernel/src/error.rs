//! The simulation kernel's typed error taxonomy.
//!
//! Everything that can go wrong at the `simulate*` boundary is a variant
//! of [`SimError`]: malformed task sets and processor specs (delegated to
//! the owning crates' validators), impossible configurations, time
//! arithmetic that would leave the representable range, exhausted
//! cooperative resource budgets, policies issuing illegal directives, and
//! — as a last resort — internal invariant breaches that would previously
//! have aborted the process.
//!
//! Inputs that pass validation run exactly as before, byte for byte: the
//! taxonomy only replaces aborts, never behavior. Each variant maps to a
//! stable [`SimError::kind`] slug so sweep runners can aggregate failures
//! per kind without parsing prose.

use core::fmt;
use lpfps_cpu::error::CpuSpecError;
use lpfps_tasks::error::TaskSetError;
use lpfps_tasks::time::Time;

/// Which cooperative resource budget ran out (see
/// [`SimConfig`](crate::engine::SimConfig) `max_events` / `max_segments` /
/// `wall_budget`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Decision-point (event) count.
    Events,
    /// Energy-segment count (non-empty inter-event advances).
    Segments,
    /// Host wall-clock time (limit reported in milliseconds).
    WallClock,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Events => write!(f, "event"),
            BudgetKind::Segments => write!(f, "segment"),
            BudgetKind::WallClock => write!(f, "wall-clock (ms)"),
        }
    }
}

/// How far a budget-limited run got before it was cut off: the partial
/// progress the caller can report instead of a silent hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartialDiagnostic {
    /// Simulated time reached.
    pub sim_time: Time,
    /// Decision points handled.
    pub events: u64,
    /// Energy segments integrated.
    pub segments: u64,
    /// Jobs completed.
    pub completions: u64,
    /// Deadline misses recorded so far.
    pub deadline_misses: usize,
}

impl fmt::Display for PartialDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={}, {} events, {} segments, {} completions, {} misses",
            self.sim_time, self.events, self.segments, self.completions, self.deadline_misses
        )
    }
}

/// Why a simulation could not run (or finish).
///
/// `Display` strings are stable (pinned by error-message snapshot tests);
/// [`SimError::kind`] gives a machine-stable slug per variant.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The task set failed validation (zero period, `C > T`, ...).
    TaskSet(TaskSetError),
    /// The processor spec failed validation (empty ladder, bad ramp, ...).
    CpuSpec(CpuSpecError),
    /// The simulation configuration is impossible (zero horizon, zero
    /// tick, ...).
    InvalidConfig {
        /// What rule the configuration broke.
        reason: String,
    },
    /// A time quantity left the representable range (e.g. a horizon beyond
    /// [`MAX_TIME_PARAM`](lpfps_tasks::error::MAX_TIME_PARAM)).
    TimeOverflow {
        /// Which quantity overflowed.
        what: &'static str,
    },
    /// A cooperative resource budget ran out before the horizon; the run
    /// is cut off with partial progress attached.
    BudgetExhausted {
        /// Which budget ran out.
        budget: BudgetKind,
        /// The configured limit.
        limit: u64,
        /// Progress at the moment the budget tripped.
        diagnostic: PartialDiagnostic,
    },
    /// A power policy issued a directive the kernel must refuse
    /// (power-down with runnable work, an off-ladder frequency, ...).
    InvalidDirective {
        /// What rule the directive broke.
        reason: &'static str,
    },
    /// An engine invariant failed. Reaching this is a kernel bug — the
    /// typed surface exists so embedding processes survive it.
    InternalInvariant {
        /// The invariant that did not hold.
        what: &'static str,
    },
    /// A multiprocessor partitioner could not place every task on a core
    /// (no capacity left, a task heavier than one core, RTA admission
    /// refused everywhere). Carried as rendered prose so the kernel stays
    /// independent of the partitioning layer; the structured original is
    /// `lpfps_multi::PartitionError`.
    Partition {
        /// The rendered partitioning failure.
        reason: String,
    },
}

impl SimError {
    /// A stable machine-readable slug for the variant, used by sweep
    /// runners to aggregate failures per kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::TaskSet(_) => "invalid-task-set",
            SimError::CpuSpec(_) => "invalid-cpu-spec",
            SimError::InvalidConfig { .. } => "invalid-config",
            SimError::TimeOverflow { .. } => "time-overflow",
            SimError::BudgetExhausted { .. } => "budget-exhausted",
            SimError::InvalidDirective { .. } => "invalid-directive",
            SimError::InternalInvariant { .. } => "internal-invariant",
            SimError::Partition { .. } => "invalid-partition",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TaskSet(e) => write!(f, "invalid task set: {e}"),
            SimError::CpuSpec(e) => write!(f, "invalid processor spec: {e}"),
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulation config: {reason}")
            }
            SimError::TimeOverflow { what } => {
                write!(f, "time overflow: {what} exceeds the representable range")
            }
            SimError::BudgetExhausted {
                budget,
                limit,
                diagnostic,
            } => write!(
                f,
                "{budget} budget of {limit} exhausted before the horizon ({diagnostic})"
            ),
            SimError::InvalidDirective { reason } => {
                write!(f, "illegal power directive: {reason}")
            }
            SimError::InternalInvariant { what } => {
                write!(f, "internal invariant violated: {what}")
            }
            SimError::Partition { reason } => {
                write!(f, "partitioning failed: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::TaskSet(e) => Some(e),
            SimError::CpuSpec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TaskSetError> for SimError {
    fn from(e: TaskSetError) -> Self {
        SimError::TaskSet(e)
    }
}

impl From<CpuSpecError> for SimError {
    fn from(e: CpuSpecError) -> Self {
        SimError::CpuSpec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let errs = [
            SimError::TaskSet(TaskSetError::Empty),
            SimError::CpuSpec(CpuSpecError::NoSleepModes),
            SimError::InvalidConfig { reason: "x".into() },
            SimError::TimeOverflow { what: "x" },
            SimError::BudgetExhausted {
                budget: BudgetKind::Events,
                limit: 1,
                diagnostic: PartialDiagnostic::default(),
            },
            SimError::InvalidDirective { reason: "x" },
            SimError::InternalInvariant { what: "x" },
            SimError::Partition { reason: "x".into() },
        ];
        let kinds: Vec<_> = errs.iter().map(SimError::kind).collect();
        assert_eq!(
            kinds,
            [
                "invalid-task-set",
                "invalid-cpu-spec",
                "invalid-config",
                "time-overflow",
                "budget-exhausted",
                "invalid-directive",
                "internal-invariant",
                "invalid-partition",
            ]
        );
    }

    #[test]
    fn display_nests_the_source_error() {
        let e = SimError::TaskSet(TaskSetError::Empty);
        assert_eq!(e.to_string(), "invalid task set: task set is empty");
        let e = SimError::BudgetExhausted {
            budget: BudgetKind::Events,
            limit: 10,
            diagnostic: PartialDiagnostic {
                sim_time: Time::from_us(5),
                events: 11,
                segments: 4,
                completions: 2,
                deadline_misses: 0,
            },
        };
        assert_eq!(
            e.to_string(),
            "event budget of 10 exhausted before the horizon \
             (t=5us, 11 events, 4 segments, 2 completions, 0 misses)"
        );
    }

    #[test]
    fn source_chains_to_the_owning_crate() {
        use std::error::Error;
        let e = SimError::TaskSet(TaskSetError::Empty);
        assert!(e.source().is_some());
        let e = SimError::TimeOverflow { what: "horizon" };
        assert!(e.source().is_none());
    }
}
