//! Steady-state cycle detection: the data structures behind the engine's
//! analytic fast-forward of long horizons.
//!
//! A synchronous periodic task set driven by an index-invariant execution
//! model repeats its entire (dispatch, speed, power-mode) pattern once the
//! *complete* simulator state recurs one hyperperiod apart. The engine
//! snapshots its state at hyperperiod-spaced decision points; when two
//! consecutive snapshots are equal, every remaining whole cycle is a
//! byte-identical repeat, so the engine extrapolates the integer statistics
//! in O(1), replays the recorded energy tape once per skipped cycle (f64
//! addition is not associative, so energy must repeat the *exact* operation
//! sequence of the full run to stay bit-identical), shifts the live state
//! forward, and simulates only the residual tail. See DESIGN.md §12.
//!
//! Everything here is engine-internal except [`FastForwardStats`], the
//! side-channel counters surfaced through
//! [`SimWorkspace`](crate::engine::SimWorkspace) — deliberately *not* part
//! of [`SimReport`](crate::report::SimReport), whose serialized form must
//! stay identical whether or not the detector engaged.

use crate::engine::SimConfig;
use crate::report::Counters;
use crate::report::ResponseStats;
use crate::stats::{IntervalStats, ResponseHistogram};
use lpfps_cpu::ramp::Ramp;
use lpfps_cpu::state::CpuState;
use lpfps_tasks::analysis::hyperperiod;
use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::exec::ExecModel;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::task::TaskId;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};

/// What the steady-state detector did during one run.
///
/// Lives outside the report on purpose: the detector defaults on, and the
/// committed result fingerprints must not move, so these counters travel
/// through the workspace
/// ([`SimWorkspace::fast_forward_stats`](crate::engine::SimWorkspace::fast_forward_stats))
/// instead of the serialized [`SimReport`](crate::report::SimReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastForwardStats {
    /// Whole hyperperiod cycles skipped analytically (0 when the detector
    /// was ineligible or never matched).
    pub cycles_detected: u64,
    /// Decision-point events those skipped cycles would have simulated.
    pub events_skipped: u64,
}

/// One energy segment of the recorded cycle: exactly the arguments the
/// engine's advance passed to
/// [`EnergyMeter::accumulate_with_power`](lpfps_cpu::EnergyMeter::accumulate_with_power),
/// plus the task the segment's energy was attributed to (if any). Replaying
/// the tape repeats the full run's f64 operation sequence verbatim.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TapeSegment {
    pub state: CpuState,
    pub power: f64,
    pub dur: Dur,
    /// `Some` iff the segment executed work with an active task — the
    /// condition under which the engine charges `task_energy`.
    pub task: Option<TaskId>,
}

/// The processor mode with all absolute instants re-based to the snapshot
/// time (signed: a delay-queue release can sit in the past after a late
/// completion, and nothing constrains the sign of a re-based instant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ModeSnapshot {
    Settled(Freq),
    Ramping {
        ramp: Ramp,
        started: i128,
        end: i128,
        target: Freq,
    },
    PowerDown {
        wake_at: i128,
        mode: usize,
    },
    WakingUp {
        until: i128,
    },
}

/// A live job with instants re-based to the snapshot time. The job `index`
/// is deliberately absent: it grows every cycle, and eligibility already
/// guarantees (via [`ExecModel::index_invariant`]) that nothing downstream
/// depends on it except the report fields the fast-forward extrapolates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct JobSnapshot {
    pub release: i128,
    pub deadline: i128,
    pub realized_remaining: Cycles,
    pub wcet_remaining: Cycles,
    pub budget_exceeded: bool,
}

/// Per-task runtime state, re-based. `next_index` is excluded for the same
/// reason as the job index (it is the per-cycle *delta* of `next_index`
/// that matters, and that lives in [`CycleBaseline`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TaskSnapshot {
    pub pending_arrival: i128,
    pub job: Option<JobSnapshot>,
}

/// The complete decision-relevant simulator state at one instant, with
/// every absolute time re-based to that instant. Two equal snapshots one
/// hyperperiod apart prove the simulation is in steady state: all inputs
/// (releases, execution demands, tick boundaries) are hyperperiod-periodic
/// under the eligibility rules, so equal state evolves identically.
///
/// Accumulators (energy meter, counters, response stats, misses,
/// histograms, idle gaps, task energy) are excluded by design — they grow
/// monotonically and are extrapolated instead. Caches (`event_cache`,
/// `power_memo`) are excluded because they are behaviorally transparent.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SteadySnapshot {
    /// Run-queue contents in iteration (most-urgent-first) order. The keys
    /// themselves are derivable from static priorities and the per-job
    /// deadlines captured below, so storing the order fixes the queue.
    pub run_q: Vec<TaskId>,
    /// Delay-queue `(task, re-based release)` pairs in queue order.
    pub delay_q: Vec<(TaskId, i128)>,
    pub tasks: Vec<TaskSnapshot>,
    pub active: Option<TaskId>,
    pub mode: ModeSnapshot,
    pub speedup_at: Option<i128>,
    pub pd_timer: Option<(i128, i128)>,
    pub pending_overhead: Cycles,
    pub last_dispatched: Option<TaskId>,
    pub was_idle: bool,
    pub gap_start: Option<i128>,
    /// The policy's self-reported state digest
    /// ([`PolicyCore::steady_digest`](crate::policy::PolicyCore::steady_digest)).
    pub policy_digest: u64,
}

/// Accumulator values at a checkpoint: the per-cycle deltas (current minus
/// baseline at the *next* checkpoint) are what one steady-state cycle
/// contributes, and every skipped cycle contributes exactly the same.
#[derive(Debug, Clone)]
pub(crate) struct CycleBaseline {
    pub counters: Counters,
    pub responses: Vec<ResponseStats>,
    pub histograms: Vec<ResponseHistogram>,
    pub idle_gaps: IntervalStats,
    pub misses_len: usize,
    /// Per-task `next_index` — the delta is the task's jobs-per-cycle.
    pub next_index: Vec<u64>,
}

/// One stored checkpoint: where it was taken, the state snapshot, and the
/// accumulator baseline for delta extraction.
#[derive(Debug, Clone)]
pub(crate) struct Checkpoint {
    pub at: Time,
    pub snapshot: SteadySnapshot,
    pub baseline: CycleBaseline,
}

/// The engine's steady-state detector: armed only for eligible runs, it
/// checkpoints at hyperperiod-spaced decision points and records the energy
/// tape of the cycle in between.
#[derive(Debug)]
pub(crate) struct SteadyDetector {
    pub hyperperiod: Dur,
    /// The next instant at (or after) which to take a checkpoint.
    pub next_target: Time,
    pub last: Option<Checkpoint>,
    /// Energy segments since the last checkpoint (tiles exactly one
    /// hyperperiod when two checkpoints sit one hyperperiod apart).
    pub tape: Vec<TapeSegment>,
}

impl SteadyDetector {
    /// Arms the detector for a run, or returns `None` when any eligibility
    /// rule fails and the run must simulate in full:
    ///
    /// * `force_full_simulation` — the explicit A/B escape hatch;
    /// * any injected fault stream — fault draws are keyed by job index
    ///   and engine ordinals, which are not hyperperiod-periodic;
    /// * tracing — a trace must contain every event, skipped or not;
    /// * the deliberate stale-cache bug injection;
    /// * `max_events` / `max_segments` budgets — they count *simulated*
    ///   work, and a fast-forwarded run would finish where a full run
    ///   exhausts (the wall-clock budget stays allowed: it never
    ///   influences results, only whether the run may continue);
    /// * an execution model whose draws depend on the job index;
    /// * a hyperperiod that overflows `u64` nanoseconds ([`hyperperiod`]
    ///   returns `None` for co-prime hostile sets) or exceeds the horizon;
    /// * a tick that does not divide the hyperperiod (the release
    ///   quantization pattern would not repeat cycle to cycle).
    pub fn for_run(cfg: &SimConfig, exec: &dyn ExecModel, ts: &TaskSet) -> Option<Self> {
        if cfg.force_full_simulation
            || !cfg.faults.is_none()
            || cfg.trace
            || cfg.inject_stale_dispatch_cache
            || cfg.max_events.is_some()
            || cfg.max_segments.is_some()
            || !exec.index_invariant()
        {
            return None;
        }
        let h = hyperperiod(ts)?;
        if h > cfg.horizon {
            return None;
        }
        if let Some(tick) = cfg.tick {
            if !(h % tick).is_zero() {
                return None;
            }
        }
        Some(SteadyDetector {
            hyperperiod: h,
            next_target: Time::ZERO + h,
            last: None,
            tape: Vec::new(),
        })
    }
}

impl Counters {
    /// Adds `k` copies of the per-cycle delta (`self - baseline`) to every
    /// counter. All counters extrapolate linearly because every event of a
    /// steady-state cycle repeats identically in each subsequent cycle.
    pub(crate) fn extrapolate_from(&mut self, baseline: &Counters, k: u64) {
        self.events += (self.events - baseline.events) * k;
        self.sched_passes += (self.sched_passes - baseline.sched_passes) * k;
        self.releases += (self.releases - baseline.releases) * k;
        self.completions += (self.completions - baseline.completions) * k;
        self.preemptions += (self.preemptions - baseline.preemptions) * k;
        self.dispatches += (self.dispatches - baseline.dispatches) * k;
        self.ramps += (self.ramps - baseline.ramps) * k;
        self.power_downs += (self.power_downs - baseline.power_downs) * k;
        self.overruns += (self.overruns - baseline.overruns) * k;
        self.watchdog_faults += (self.watchdog_faults - baseline.watchdog_faults) * k;
        self.degradations += (self.degradations - baseline.degradations) * k;
    }
}

impl ResponseStats {
    /// Adds `k` copies of the per-cycle delta. `max_response` is already
    /// correct: later cycles repeat the same response values, so the
    /// maximum was absorbed during the recorded cycle.
    pub(crate) fn extrapolate_from(&mut self, baseline: &ResponseStats, k: u64) {
        self.completed += (self.completed - baseline.completed) * k;
        self.total_response += (self.total_response - baseline.total_response) * k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_extrapolate_each_field_linearly() {
        let base = Counters {
            events: 10,
            sched_passes: 5,
            releases: 3,
            completions: 2,
            preemptions: 1,
            dispatches: 4,
            ramps: 2,
            power_downs: 1,
            overruns: 0,
            watchdog_faults: 0,
            degradations: 0,
        };
        let mut cur = Counters {
            events: 30,
            sched_passes: 15,
            releases: 9,
            completions: 8,
            preemptions: 3,
            dispatches: 10,
            ramps: 6,
            power_downs: 3,
            overruns: 0,
            watchdog_faults: 0,
            degradations: 0,
        };
        cur.extrapolate_from(&base, 2);
        assert_eq!(cur.events, 30 + 2 * 20);
        assert_eq!(cur.sched_passes, 15 + 2 * 10);
        assert_eq!(cur.releases, 9 + 2 * 6);
        assert_eq!(cur.completions, 8 + 2 * 6);
        assert_eq!(cur.preemptions, 3 + 2 * 2);
        assert_eq!(cur.dispatches, 10 + 2 * 6);
        assert_eq!(cur.ramps, 6 + 2 * 4);
        assert_eq!(cur.power_downs, 3 + 2 * 2);
    }

    #[test]
    fn response_stats_extrapolate_preserving_max() {
        let mut base = ResponseStats::default();
        base.record(Dur::from_us(40));
        let mut cur = base;
        cur.record(Dur::from_us(10));
        cur.record(Dur::from_us(20));
        cur.extrapolate_from(&base, 3);
        assert_eq!(cur.completed, 1 + 2 + 3 * 2);
        assert_eq!(cur.max_response, Dur::from_us(40));
        assert_eq!(
            cur.total_response,
            Dur::from_us(40 + 30) + Dur::from_us(30) * 3
        );
    }

    #[test]
    fn zero_cycles_is_the_identity() {
        let base = Counters::default();
        let mut cur = Counters {
            events: 7,
            ..Counters::default()
        };
        let before = cur;
        cur.extrapolate_from(&base, 0);
        assert_eq!(cur, before);
    }
}
