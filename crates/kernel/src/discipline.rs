//! The dispatch discipline: which released job runs next.
//!
//! The engine's event machinery (releases, completions, budget policing,
//! ramps, power-down timers, energy integration) is independent of *how*
//! jobs are ordered; only three decisions depend on it:
//!
//! 1. the **ordering key** a job is queued under,
//! 2. the **preemption test** between the queue head and the active job,
//! 3. the **queue comparator** (smaller key = more urgent, so the shared
//!    descending [`RunQueue`] layout serves every discipline).
//!
//! [`Discipline`] captures exactly those three, as a zero-sized type
//! parameter of the engine — dispatch stays monomorphized, no dyn calls on
//! the hot path. [`FixedPriority`] reproduces the paper's scheduler
//! byte-for-byte (its key *is* the task's [`Priority`]); [`Edf`] orders by
//! absolute job deadline with `(priority, task id)` as the deterministic
//! tie-break.
//!
//! # Key ordering contract
//!
//! `Self::Key` must order with **smaller = more urgent** (the fixed-
//! priority convention: lower level = higher priority). The run queue
//! sorts descending with the head at the back, so `pop` is O(1) and ties
//! drain most-recent-insert-first — semantics every discipline inherits
//! unchanged.
//!
//! `preempts(candidate, incumbent)` may be *stricter* than the key order:
//! EDF does not preempt on a deadline tie (a context switch would buy
//! nothing), even though the full key tuple is totally ordered.

use crate::engine::SimWorkspace;
use crate::queues::RunQueue;
use core::fmt::Debug;
use lpfps_tasks::task::{Priority, TaskId};
use lpfps_tasks::time::Time;

/// A dispatch discipline: how released jobs are ordered and when the queue
/// head preempts the active job.
///
/// Implementations are zero-sized marker types; the engine is generic over
/// them, so each discipline gets its own monomorphized dispatch path.
pub trait Discipline: Copy + Default + 'static {
    /// The per-job ordering key. Smaller keys are more urgent (see the
    /// module docs for the full ordering contract).
    type Key: Copy + Ord + Debug;

    /// The stable discipline tag reports carry (`"fp"`, `"edf"`).
    const NAME: &'static str;

    /// The key under which a job of `task` with fixed priority `prio` and
    /// absolute deadline `deadline` is queued.
    fn key(prio: Priority, deadline: Time, task: TaskId) -> Self::Key;

    /// True if a queued job with key `candidate` preempts the active job
    /// with key `incumbent`.
    fn preempts(candidate: Self::Key, incumbent: Self::Key) -> bool;

    /// Detaches this discipline's run-queue buffer from the workspace
    /// (each key type recycles its own allocation).
    #[doc(hidden)]
    fn take_run_queue(ws: &mut SimWorkspace) -> RunQueue<Self::Key>;

    /// Returns the run-queue buffer to the workspace after a simulation.
    #[doc(hidden)]
    fn restore_run_queue(ws: &mut SimWorkspace, q: RunQueue<Self::Key>);
}

/// The paper's fixed-priority discipline: jobs are ordered by their task's
/// static [`Priority`]; the head preempts iff it is strictly
/// higher-priority ([`Priority::is_higher_than`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedPriority;

impl Discipline for FixedPriority {
    type Key = Priority;

    const NAME: &'static str = "fp";

    #[inline]
    fn key(prio: Priority, _deadline: Time, _task: TaskId) -> Priority {
        prio
    }

    #[inline]
    fn preempts(candidate: Priority, incumbent: Priority) -> bool {
        candidate.is_higher_than(incumbent)
    }

    fn take_run_queue(ws: &mut SimWorkspace) -> RunQueue<Priority> {
        std::mem::take(&mut ws.run_q)
    }

    fn restore_run_queue(ws: &mut SimWorkspace, q: RunQueue<Priority>) {
        ws.run_q = q;
    }
}

/// The ordering key of [`Edf`]: absolute deadline first, then the fixed
/// priority and task id as a deterministic tie-break (derived
/// lexicographic `Ord`). Every live job's key is distinct — a periodic
/// task has at most one live job — so EDF traces are fully reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdfKey {
    /// Absolute deadline of the queued job.
    pub deadline: Time,
    /// The task's fixed priority (RM/DM order), breaking deadline ties.
    pub prio: Priority,
    /// The task id, breaking residual ties deterministically.
    pub task: TaskId,
}

/// Earliest-deadline-first dispatch: the live job with the earliest
/// absolute deadline runs. Deadline ties dispatch in fixed-priority order
/// but never preempt — switching between two jobs with the same deadline
/// cannot help, so the incumbent keeps the processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Edf;

impl Discipline for Edf {
    type Key = EdfKey;

    const NAME: &'static str = "edf";

    #[inline]
    fn key(prio: Priority, deadline: Time, task: TaskId) -> EdfKey {
        EdfKey {
            deadline,
            prio,
            task,
        }
    }

    #[inline]
    fn preempts(candidate: EdfKey, incumbent: EdfKey) -> bool {
        // Strictly earlier deadline only: no preemption on ties.
        candidate.deadline < incumbent.deadline
    }

    fn take_run_queue(ws: &mut SimWorkspace) -> RunQueue<EdfKey> {
        std::mem::take(&mut ws.edf_run_q)
    }

    fn restore_run_queue(ws: &mut SimWorkspace, q: RunQueue<EdfKey>) {
        ws.edf_run_q = q;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dl_us: u64, prio: u32, id: usize) -> EdfKey {
        Edf::key(Priority::new(prio), Time::from_us(dl_us), TaskId(id))
    }

    #[test]
    fn fp_key_is_the_priority() {
        let k = FixedPriority::key(Priority::new(3), Time::from_us(100), TaskId(7));
        assert_eq!(k, Priority::new(3));
        assert!(FixedPriority::preempts(Priority::new(1), Priority::new(2)));
        assert!(!FixedPriority::preempts(Priority::new(2), Priority::new(2)));
        assert!(!FixedPriority::preempts(Priority::new(3), Priority::new(2)));
    }

    #[test]
    fn edf_orders_by_deadline_then_priority_then_id() {
        assert!(key(100, 5, 9) < key(200, 0, 0));
        assert!(key(100, 1, 9) < key(100, 2, 0));
        assert!(key(100, 1, 3) < key(100, 1, 4));
    }

    #[test]
    fn edf_preempts_only_on_strictly_earlier_deadlines() {
        assert!(Edf::preempts(key(100, 5, 1), key(200, 0, 0)));
        // Deadline tie: the incumbent keeps the processor even against a
        // higher fixed priority.
        assert!(!Edf::preempts(key(100, 0, 0), key(100, 5, 1)));
        assert!(!Edf::preempts(key(200, 0, 0), key(100, 5, 1)));
    }

    #[test]
    fn edf_key_matches_shared_queue_layout() {
        // Smaller key = more urgent: the shared descending run queue must
        // pop the earliest deadline first.
        let mut q = RunQueue::new();
        q.insert(TaskId(0), key(300, 0, 0));
        q.insert(TaskId(1), key(100, 2, 1));
        q.insert(TaskId(2), key(200, 1, 2));
        assert_eq!(q.head_key(), Some(key(100, 2, 1)));
        assert_eq!(q.pop(), Some(TaskId(1)));
        assert_eq!(q.pop(), Some(TaskId(2)));
        assert_eq!(q.pop(), Some(TaskId(0)));
    }
}
