//! The discrete-event simulation engine.
//!
//! The engine advances from decision point to decision point; between two
//! points the processor state is constant (settled execution, a linear
//! ramp segment, NOP idling, power-down, or wake-up), so energy and
//! retired work integrate exactly. Decision points are:
//!
//! * the next release at the head of the delay queue,
//! * the completion of the active job under the current speed profile,
//! * the end of a voltage/clock ramp,
//! * the power-down wake-up timer and the end of the wake-up latency,
//! * the speed-up timer armed by a `SlowDown` directive (the latest start
//!   of the ramp back to full speed before the next arrival), and
//! * the simulation horizon.
//!
//! Scheduler passes — queue moves, context switches, and the policy's
//! power decision — run only when the processor is settled at full speed,
//! implementing the paper's L1–L4: any scheduler invocation at reduced or
//! changing speed first raises the clock and the supply voltage to the
//! maximum (retargeting an in-flight ramp from its instantaneous ratio)
//! and re-runs once the transition settles.
//!
//! All scheduling state is integer-exact; `f64` appears only inside ramp
//! geometry (conservatively rounded) and energy reporting, so runs are
//! bit-reproducible.

use crate::discipline::{Discipline, EdfKey, FixedPriority};
use crate::error::{BudgetKind, PartialDiagnostic, SimError};
use crate::policy::{ActiveView, FaultEvent, PowerDirective, PowerPolicy, SchedulerContext};
use crate::probe::{NoProbe, Probe};
use crate::queues::{DelayQueue, RunQueue};
use crate::report::{Counters, DeadlineMiss, ResponseStats, SimReport};
use crate::stats::{IntervalStats, ResponseHistogram};
use crate::steady::{
    Checkpoint, CycleBaseline, FastForwardStats, JobSnapshot, ModeSnapshot, SteadyDetector,
    SteadySnapshot, TapeSegment, TaskSnapshot,
};
use crate::trace::{Trace, TraceEvent};
use lpfps_cpu::error::validate_cpu_spec;
use lpfps_cpu::ramp::Ramp;
use lpfps_cpu::spec::CpuSpec;
use lpfps_cpu::state::CpuState;
use lpfps_cpu::EnergyMeter;
use lpfps_faults::FaultConfig;
use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::error::{validate_task_set, MAX_TIME_PARAM};
use lpfps_tasks::exec::ExecModel;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::task::TaskId;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// How long to simulate.
    pub horizon: Dur,
    /// Seed for the per-job execution-time streams.
    pub seed: u64,
    /// Record a full event trace (disable for long sweeps).
    pub trace: bool,
    /// Cost of loading a different task's context, charged as processor
    /// work (at the current speed) before the incoming job progresses.
    /// Zero reproduces the paper's setup.
    pub context_switch: Dur,
    /// Processor time consumed by the scheduler's speed-ratio computation,
    /// charged as work on the active task's dispatch path whenever the
    /// policy issues a `SlowDown` (the paper's §5 trade-off: the optimal
    /// ratio is costlier to compute, and scheduler execution burns both
    /// time and power). Zero reproduces the paper's idealized scheduler.
    pub ratio_overhead: Dur,
    /// Timer-tick granularity of a tick-driven kernel (Katcher et al.):
    /// releases are *noticed* only at the next tick boundary, adding up to
    /// one tick of release jitter (analyzable with
    /// [`RtaConfig::with_release_jitter`](lpfps_tasks::analysis::RtaConfig)).
    /// `None` (the default, and the paper's model) notices releases
    /// immediately (event-driven kernel). Completions remain event-driven
    /// either way.
    pub tick: Option<Dur>,
    /// Deterministic fault-injection model: WCET overruns, release-notice
    /// jitter beyond the tick model, wake-up-latency variance, and ramp
    /// degradation. [`FaultConfig::none`] (the default) reproduces the
    /// paper's idealized fault-free model exactly.
    pub faults: FaultConfig,
    /// Bypass the cached event-horizon candidates: recompute the
    /// completion/budget-exhaust times fresh at every query instead of
    /// serving them from `Engine::event_cache`. Slower, behaviorally
    /// identical by construction — the differential tests flip this to
    /// prove the cache is transparent on arbitrary schedules.
    pub force_event_recompute: bool,
    /// Deliberately *skip* the dispatch-site cache invalidation (and the
    /// debug-mode coherence re-proof that would catch it), leaving a stale
    /// completion candidate armed across a context switch. Exists only so
    /// the oracle's differential harness can demonstrate it detects a real
    /// cache-coherence bug with a first-divergence diagnostic; never set
    /// it outside tests.
    pub inject_stale_dispatch_cache: bool,
    /// Cooperative budget on decision points (events): when the count
    /// exceeds the limit the run stops with
    /// [`SimError::BudgetExhausted`](crate::error::SimError) carrying
    /// partial progress, instead of grinding on. `None` (the default) is
    /// unbounded and reproduces all committed results exactly.
    pub max_events: Option<u64>,
    /// Cooperative budget on energy segments (non-empty advances between
    /// decision points); `None` (the default) is unbounded.
    pub max_segments: Option<u64>,
    /// Cooperative budget on host wall-clock time, sampled every 65 536
    /// events so the `Instant` reads cannot dominate short runs; `None`
    /// (the default) is unbounded. The check never influences scheduling —
    /// it only decides whether the run is allowed to continue — so
    /// reports from runs that finish stay bit-reproducible.
    pub wall_budget: Option<std::time::Duration>,
    /// Disable the steady-state cycle detector and simulate every event of
    /// the horizon, even when the run is eligible for fast-forwarding.
    /// Reports are bit-identical either way (the equivalence gates assert
    /// it); this switch keeps the slow path reachable for A/B comparison
    /// and benchmarking. See DESIGN.md §12.
    pub force_full_simulation: bool,
}

impl SimConfig {
    /// A config with the given horizon, seed 0, tracing off, zero overhead.
    pub fn new(horizon: Dur) -> Self {
        SimConfig {
            horizon,
            seed: 0,
            trace: false,
            context_switch: Dur::ZERO,
            ratio_overhead: Dur::ZERO,
            tick: None,
            faults: FaultConfig::none(),
            force_event_recompute: false,
            inject_stale_dispatch_cache: false,
            max_events: None,
            max_segments: None,
            wall_budget: None,
            force_full_simulation: false,
        }
    }

    /// Validates the configuration, returning it unchanged on success.
    ///
    /// The same checks run at the head of every `simulate*` call;
    /// validating eagerly just surfaces the error where the config is
    /// built.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`](crate::error::SimError) for a zero
    /// horizon or zero tick;
    /// [`SimError::TimeOverflow`](crate::error::SimError) for a horizon
    /// beyond [`MAX_TIME_PARAM`].
    pub fn validated(self) -> Result<Self, SimError> {
        validate_sim_config(&self)?;
        Ok(self)
    }

    /// Sets the execution-time seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Sets the context-switch cost.
    pub fn with_context_switch(mut self, cs: Dur) -> Self {
        self.context_switch = cs;
        self
    }

    /// Sets the per-`SlowDown` scheduler cost (speed-ratio computation).
    pub fn with_ratio_overhead(mut self, cost: Dur) -> Self {
        self.ratio_overhead = cost;
        self
    }

    /// Makes the kernel tick-driven with the given tick period.
    ///
    /// # Panics
    ///
    /// Panics if the tick is zero.
    pub fn with_tick(mut self, tick: Dur) -> Self {
        assert!(
            !tick.is_zero(),
            "a tick-driven kernel needs a positive tick"
        );
        self.tick = Some(tick);
        self
    }

    /// Injects the given fault model into the run.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Disables the event-horizon cache (see
    /// [`SimConfig::force_event_recompute`]).
    pub fn with_force_event_recompute(mut self) -> Self {
        self.force_event_recompute = true;
        self
    }

    /// Arms the deliberate cache-coherence bug (see
    /// [`SimConfig::inject_stale_dispatch_cache`]). Test-only.
    pub fn with_stale_dispatch_cache(mut self) -> Self {
        self.inject_stale_dispatch_cache = true;
        self
    }

    /// Caps the number of decision points (see [`SimConfig::max_events`]).
    pub fn with_max_events(mut self, limit: u64) -> Self {
        self.max_events = Some(limit);
        self
    }

    /// Caps the number of energy segments (see
    /// [`SimConfig::max_segments`]).
    pub fn with_max_segments(mut self, limit: u64) -> Self {
        self.max_segments = Some(limit);
        self
    }

    /// Caps host wall-clock time (see [`SimConfig::wall_budget`]).
    pub fn with_wall_budget(mut self, budget: std::time::Duration) -> Self {
        self.wall_budget = Some(budget);
        self
    }

    /// Disables steady-state fast-forwarding (see
    /// [`SimConfig::force_full_simulation`]).
    pub fn with_force_full_simulation(mut self) -> Self {
        self.force_full_simulation = true;
        self
    }
}

/// The boundary checks shared by [`SimConfig::validated`] and every
/// `simulate*` entry point (public so the reference oracle applies the
/// byte-identical checks, keeping error paths diffable field for field).
pub fn validate_sim_config(cfg: &SimConfig) -> Result<(), SimError> {
    if cfg.horizon.is_zero() {
        return Err(SimError::InvalidConfig {
            reason: "simulation horizon must be positive".to_string(),
        });
    }
    if cfg.horizon > MAX_TIME_PARAM {
        return Err(SimError::TimeOverflow {
            what: "simulation horizon",
        });
    }
    if let Some(tick) = cfg.tick {
        if tick.is_zero() {
            return Err(SimError::InvalidConfig {
                reason: "a tick-driven kernel needs a positive tick".to_string(),
            });
        }
    }
    Ok(())
}

/// One live (released, unfinished) job.
#[derive(Debug, Clone, Copy)]
struct LiveJob {
    index: u64,
    release: Time,
    deadline: Time,
    /// Actual remaining demand (hidden from the policy).
    realized_remaining: Cycles,
    /// WCET-view remaining demand `C_i - E_i` (what the scheduler sees).
    wcet_remaining: Cycles,
    /// The watchdog already reported this job's budget overrun (each job
    /// fires at most one [`FaultEvent::BudgetOverrun`]).
    budget_exceeded: bool,
}

/// Per-task runtime bookkeeping.
#[derive(Debug, Clone, Copy)]
struct TaskRt {
    /// True arrival time of the job currently waiting in the delay queue
    /// (its delay-queue key may be later under a tick-driven kernel).
    pending_arrival: Time,
    next_index: u64,
    job: Option<LiveJob>,
}

/// Processor operating mode between decision points.
#[derive(Debug, Clone, Copy)]
enum ProcMode {
    /// Settled at a frequency (full speed unless a `SlowDown` is in force).
    Settled(Freq),
    /// Mid-transition; the active job (if any) executes along the ramp.
    Ramping {
        ramp: Ramp,
        started: Time,
        end: Time,
        target: Freq,
    },
    /// Power-down (in the given sleep mode) until the wake timer fires.
    PowerDown { wake_at: Time, mode: usize },
    /// Returning to full power (no work retires).
    WakingUp { until: Time },
}

struct Engine<'a, D: Discipline, P: Probe = NoProbe> {
    ts: &'a TaskSet,
    /// The observability sink (see [`crate::probe`]). Monomorphized: for
    /// [`NoProbe`] every tap site is a compile-time dead branch, so the
    /// hot path is byte-for-byte the pre-seam engine.
    probe: &'a mut P,
    cpu: &'a CpuSpec,
    exec: &'a dyn ExecModel,
    cfg: &'a SimConfig,
    now: Time,
    horizon_end: Time,
    run_q: RunQueue<D::Key>,
    delay_q: DelayQueue,
    tasks: Vec<TaskRt>,
    wcet_cycles: Vec<Cycles>,
    active: Option<TaskId>,
    mode: ProcMode,
    speedup_at: Option<Time>,
    /// Pending timeout-shutdown: (enter power-down at, wake at).
    pd_timer: Option<(Time, Time)>,
    pending_overhead: Cycles,
    last_dispatched: Option<TaskId>,
    was_idle: bool,
    meter: EnergyMeter,
    counters: Counters,
    responses: Vec<ResponseStats>,
    misses: Vec<DeadlineMiss>,
    idle_gaps: IntervalStats,
    gap_start: Option<Time>,
    task_energy: Vec<f64>,
    histograms: Vec<ResponseHistogram>,
    trace: Option<Trace>,
    /// Scratch buffer for due releases, reused across scheduler passes
    /// (see [`DelayQueue::pop_due_into`]).
    due_scratch: Vec<(TaskId, Time)>,
    /// Cached `(completion, budget-exhaust)` event-time candidates, the
    /// expensive part of [`Engine::next_event_time`]. `None` means stale.
    ///
    /// The candidates are pure functions of the active job's remaining
    /// work, `pending_overhead`, the processor mode, and `now`-at-fill, so
    /// the cache must be dropped whenever any of those move: on retirement
    /// (any executing advance, even one too short to retire a whole cycle
    /// — a fresh computation at the new `now` re-rounds), on every mode
    /// change, on dispatch/completion (the active task changes), when
    /// overhead is charged, and when a job's budget flag trips. Between
    /// those points — same-instant event cascades and non-executing
    /// advances — the cached times are exact, which
    /// [`Engine::next_event_time`] re-proves under `debug_assertions`.
    event_cache: Option<(Option<Time>, Option<Time>)>,
    /// Memoized `(state, state_power(state))` for the current processor
    /// mode segment. Keyed by the state value itself, so it needs no
    /// invalidation; it exists because `state_power` runs voltage-curve
    /// math (16-panel quadrature for ramps) that is constant across every
    /// advance within one segment, and was previously recomputed twice per
    /// advance (energy metering + per-task attribution).
    power_memo: Option<(CpuState, f64)>,
    /// Energy segments integrated so far. Engine-local on purpose: it
    /// backs the `max_segments` budget and the partial diagnostics, and
    /// must *not* live in [`Counters`] (which is serialized into every
    /// report and would perturb the committed result fingerprints).
    segments_done: u64,
    /// The steady-state cycle detector; `None` when the run is ineligible
    /// (see [`SteadyDetector::for_run`]) or after it fired once.
    steady: Option<SteadyDetector>,
    /// What the detector did — side-channel output through the workspace,
    /// never part of the serialized report.
    ff_stats: FastForwardStats,
}

/// Reusable simulation buffers, for callers that run many simulations in
/// sequence (sweeps): [`simulate_in`] recycles these allocations across
/// runs, so a worker thread allocates queue and bookkeeping storage once
/// instead of once per cell.
///
/// # Lifetime contract
///
/// Only buffers that never escape into the [`SimReport`] live here — the
/// run/delay queues, per-task runtime slots, WCET cycle counts, and the
/// release scratch buffer. Report fields (responses, histograms, energy,
/// misses, traces) are freshly allocated by every run *by design*: sweeps
/// keep all reports alive side by side, so recycling them is impossible.
/// The workspace is inert between runs (cleared on entry, contents
/// unspecified after a run) and carries no result state: reusing one
/// workspace across different cells cannot couple their reports.
///
/// # Examples
///
/// ```
/// use lpfps_kernel::engine::{simulate_in, SimConfig, SimWorkspace};
/// use lpfps_kernel::policy::AlwaysFullSpeed;
/// use lpfps_cpu::spec::CpuSpec;
/// use lpfps_tasks::exec::AlwaysWcet;
/// use lpfps_tasks::task::Task;
/// use lpfps_tasks::taskset::TaskSet;
/// use lpfps_tasks::time::Dur;
///
/// let ts = TaskSet::rate_monotonic(
///     "solo",
///     vec![Task::new("t", Dur::from_us(100), Dur::from_us(25))],
/// );
/// let cpu = CpuSpec::arm8();
/// let cfg = SimConfig::new(Dur::from_us(400));
/// let mut ws = SimWorkspace::new();
/// let a = simulate_in(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg, &mut ws).unwrap();
/// let b = simulate_in(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg, &mut ws).unwrap();
/// assert_eq!(a.counters, b.counters);
/// ```
#[derive(Debug, Default)]
pub struct SimWorkspace {
    // Each discipline recycles its own run-queue allocation (the key types
    // differ); `Discipline::take_run_queue` picks the matching field.
    pub(crate) run_q: RunQueue,
    pub(crate) edf_run_q: RunQueue<EdfKey>,
    delay_q: DelayQueue,
    tasks: Vec<TaskRt>,
    wcet_cycles: Vec<Cycles>,
    due_scratch: Vec<(TaskId, Time)>,
    /// Steady-state detector statistics of the most recent run on this
    /// workspace (success *or* failure; overwritten every run, so stale
    /// values never leak across cells).
    ff_stats: FastForwardStats,
}

impl SimWorkspace {
    /// An empty workspace; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// What the steady-state detector did during the most recent run on
    /// this workspace: zero cycles when the run was ineligible (faults,
    /// tracing, budgets, an index-dependent execution model, ...) or when
    /// no recurrence was observed. Side-channel on purpose — the numbers
    /// must not live in [`SimReport`], whose serialized form is asserted
    /// bit-identical with the detector on and off.
    pub fn fast_forward_stats(&self) -> FastForwardStats {
        self.ff_stats
    }
}

/// Rounds an arrival up to the next tick boundary (identity for
/// event-driven kernels).
fn quantize_to_tick(arrival: Time, tick: Option<Dur>) -> Time {
    match tick {
        None => arrival,
        Some(t) => {
            // Saturates instead of overflowing: a release quantized past
            // `Time::MAX` can only come from an (unbounded) injected
            // jitter, and a saturated instant simply never comes due
            // within any horizon.
            let ticks = arrival.as_ns().div_ceil(t.as_ns());
            Time::from_ns(ticks.saturating_mul(t.as_ns()))
        }
    }
}

/// When the kernel *notices* the release of job `job_index` of `tid`:
/// the true arrival, plus any injected interrupt-delivery jitter, rounded
/// up to the tick boundary. Deadlines and response times always use the
/// true arrival.
fn noticed_release(cfg: &SimConfig, tid: TaskId, job_index: u64, arrival: Time) -> Time {
    let jittered = match &cfg.faults.release_jitter {
        // Saturating: the jitter bound is caller-controlled and unbounded.
        Some(j) => arrival.saturating_add(j.delay(cfg.seed, cfg.faults.seed, tid.0, job_index)),
        None => arrival,
    };
    quantize_to_tick(jittered, cfg.tick)
}

/// Runs one simulation of `ts` on `cpu` under `policy`, with realized
/// execution times drawn from `exec`.
///
/// Deadline misses are **not** errors; they are recorded in the report so
/// experiments can observe unschedulable configurations.
///
/// # Errors
///
/// [`SimError`] if the inputs fail boundary validation (zero horizon,
/// malformed task set or processor spec — both can arrive unvalidated via
/// `Deserialize`), if a configured resource budget runs out, or if the
/// policy issues an illegal directive (power-down with runnable work, a
/// slow-down frequency outside the ladder, ...). On valid inputs with no
/// budgets the run is infallible in practice and byte-identical to the
/// pre-taxonomy engine.
pub fn simulate(
    ts: &TaskSet,
    cpu: &CpuSpec,
    policy: &mut dyn PowerPolicy,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    simulate_in(ts, cpu, policy, exec, cfg, &mut SimWorkspace::new())
}

/// [`simulate`] with caller-provided buffer storage: behaviorally
/// identical (reports are byte-for-byte the same), but queue and
/// bookkeeping allocations are recycled from `ws` and returned to it
/// afterwards — the per-worker fast path of sweep runners.
///
/// # Errors
///
/// As [`simulate`]. The buffers return to `ws` on the error path too, so
/// a failing cell costs a sweep worker nothing on the next cell.
pub fn simulate_in(
    ts: &TaskSet,
    cpu: &CpuSpec,
    policy: &mut dyn PowerPolicy,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
    ws: &mut SimWorkspace,
) -> Result<SimReport, SimError> {
    simulate_in_for::<FixedPriority>(ts, cpu, policy, exec, cfg, ws)
}

/// [`simulate_in`] under an explicit dispatch [`Discipline`] `D`: the same
/// engine, event machinery, fault model, and workspace reuse, with dispatch
/// order and preemption decided by `D`. `simulate`/`simulate_in` are the
/// fixed-priority specialization.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_in_for<D: Discipline>(
    ts: &TaskSet,
    cpu: &CpuSpec,
    policy: &mut dyn PowerPolicy<D>,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
    ws: &mut SimWorkspace,
) -> Result<SimReport, SimError> {
    simulate_in_probed_for::<D, NoProbe>(ts, cpu, policy, exec, cfg, ws, &mut NoProbe)
}

/// [`simulate_in`] with an observability [`Probe`] attached: the probe
/// receives every kernel event (whether or not `cfg.trace` is on) and
/// cannot influence the run — the report is byte-identical to the
/// [`NoProbe`] run by construction (see [`crate::probe`]).
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_in_probed<P: Probe>(
    ts: &TaskSet,
    cpu: &CpuSpec,
    policy: &mut dyn PowerPolicy,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
    ws: &mut SimWorkspace,
    probe: &mut P,
) -> Result<SimReport, SimError> {
    simulate_in_probed_for::<FixedPriority, P>(ts, cpu, policy, exec, cfg, ws, probe)
}

/// [`simulate_in_for`] with an observability [`Probe`] attached — the
/// fully general entry point: explicit discipline, caller-provided
/// workspace, and an event sink. All other `simulate*` functions are
/// specializations of this one.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_in_probed_for<D: Discipline, P: Probe>(
    ts: &TaskSet,
    cpu: &CpuSpec,
    policy: &mut dyn PowerPolicy<D>,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
    ws: &mut SimWorkspace,
    probe: &mut P,
) -> Result<SimReport, SimError> {
    // Boundary validation: `TaskSet` and `CpuSpec` implement
    // `Deserialize`, so malformed values can exist without any
    // constructor assert having fired. After these checks every time
    // parameter is at most `u64::MAX / 4` ns, which makes the engine's
    // remaining raw time arithmetic provably overflow-free (any sum of
    // two in-range quantities fits in `u64::MAX / 2`).
    validate_sim_config(cfg)?;
    validate_task_set(ts)?;
    validate_cpu_spec(cpu)?;
    let mut engine = Engine::<D, P>::new(ts, cpu, exec, cfg, ws, probe);
    match engine.run(policy) {
        Ok(()) => Ok(engine.into_report(policy.name(), ws)),
        Err(e) => {
            engine.restore_workspace(ws);
            Err(e)
        }
    }
}

impl<'a, D: Discipline, P: Probe> Engine<'a, D, P> {
    fn new(
        ts: &'a TaskSet,
        cpu: &'a CpuSpec,
        exec: &'a dyn ExecModel,
        cfg: &'a SimConfig,
        ws: &mut SimWorkspace,
        probe: &'a mut P,
    ) -> Self {
        let reference = cpu.reference_freq();
        // Adopt the workspace buffers (cleared; contents between runs are
        // unspecified). They return to `ws` in `into_report`.
        let mut run_q = D::take_run_queue(ws);
        run_q.clear();
        let mut delay_q = std::mem::take(&mut ws.delay_q);
        delay_q.clear();
        let mut tasks = std::mem::take(&mut ws.tasks);
        tasks.clear();
        let mut wcet_cycles = std::mem::take(&mut ws.wcet_cycles);
        wcet_cycles.clear();
        let mut due_scratch = std::mem::take(&mut ws.due_scratch);
        due_scratch.clear();
        tasks.reserve(ts.len());
        wcet_cycles.reserve(ts.len());
        for (id, task, prio) in ts.iter() {
            let arrival = Time::ZERO + task.phase();
            delay_q.insert(id, prio, noticed_release(cfg, id, 0, arrival));
            tasks.push(TaskRt {
                pending_arrival: arrival,
                next_index: 0,
                job: None,
            });
            wcet_cycles.push(Cycles::from_time_at(task.wcet(), reference).max(Cycles::new(1)));
        }
        Engine {
            ts,
            probe,
            cpu,
            exec,
            cfg,
            now: Time::ZERO,
            horizon_end: Time::ZERO + cfg.horizon,
            run_q,
            delay_q,
            tasks,
            wcet_cycles,
            active: None,
            mode: ProcMode::Settled(cpu.full_freq()),
            speedup_at: None,
            pd_timer: None,
            pending_overhead: Cycles::ZERO,
            last_dispatched: None,
            was_idle: false,
            meter: EnergyMeter::new(),
            counters: Counters::default(),
            responses: vec![ResponseStats::default(); ts.len()],
            misses: Vec::new(),
            idle_gaps: IntervalStats::new(),
            gap_start: Some(Time::ZERO),
            task_energy: vec![0.0; ts.len()],
            histograms: vec![ResponseHistogram::new(); ts.len()],
            trace: if cfg.trace { Some(Trace::new()) } else { None },
            due_scratch,
            event_cache: None,
            power_memo: None,
            segments_done: 0,
            steady: SteadyDetector::for_run(cfg, exec, ts),
            ff_stats: FastForwardStats::default(),
        }
    }

    fn run(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        let wall_start = self.cfg.wall_budget.map(|_| std::time::Instant::now());
        loop {
            let t_next = self.next_event_time().min(self.horizon_end);
            self.advance_to(t_next);
            if self.now >= self.horizon_end {
                break;
            }
            // Checkpoint *before* this decision point's events are counted
            // or handled: a detected recurrence shifts the whole live state
            // forward by `k` hyperperiods, and the iteration then processes
            // the shifted instant's events exactly as a full simulation
            // arriving there would.
            self.steady_checkpoint(policy)?;
            if self.now >= self.horizon_end {
                // Fast-forward landed exactly on the horizon. A full run
                // never handles events *at* the horizon (the break above
                // fires first), so neither may we.
                break;
            }
            self.counters.events += 1;
            self.check_budgets(wall_start)?;
            self.handle_events(policy)?;
        }
        if let Some(start) = self.gap_start.take() {
            self.idle_gaps
                .record(self.horizon_end.saturating_since(start));
        }
        self.record_unfinished_misses();
        debug_assert_eq!(
            self.meter.total_residency(),
            self.cfg.horizon,
            "energy residency must cover the whole horizon"
        );
        Ok(())
    }

    /// Cooperative resource budgets, checked once per decision point: a
    /// pathological (but valid) configuration surfaces as a typed error
    /// with partial progress attached instead of an unbounded loop.
    fn check_budgets(&self, wall_start: Option<std::time::Instant>) -> Result<(), SimError> {
        if let Some(limit) = self.cfg.max_events {
            if self.counters.events > limit {
                return Err(self.budget_exhausted(BudgetKind::Events, limit));
            }
        }
        if let Some(limit) = self.cfg.max_segments {
            if self.segments_done > limit {
                return Err(self.budget_exhausted(BudgetKind::Segments, limit));
            }
        }
        if let (Some(budget), Some(start)) = (self.cfg.wall_budget, wall_start) {
            // Reading an `Instant` per decision point would dominate short
            // runs; sample the clock every 65 536 events.
            if self.counters.events & 0xFFFF == 0 && start.elapsed() > budget {
                return Err(self.budget_exhausted(BudgetKind::WallClock, budget.as_millis() as u64));
            }
        }
        Ok(())
    }

    fn budget_exhausted(&self, budget: BudgetKind, limit: u64) -> SimError {
        SimError::BudgetExhausted {
            budget,
            limit,
            diagnostic: PartialDiagnostic {
                sim_time: self.now,
                events: self.counters.events,
                segments: self.segments_done,
                completions: self.counters.completions,
                deadline_misses: self.misses.len(),
            },
        }
    }

    // ----- event timing ---------------------------------------------------

    /// Marks the completion/budget candidates stale; see
    /// [`Engine::event_cache`] for the exhaustive list of call sites.
    fn invalidate_event_cache(&mut self) {
        self.event_cache = None;
    }

    /// The cached `(completion, budget-exhaust)` candidates, recomputed
    /// only when an invalidation point was crossed since the last query.
    fn cached_event_candidates(&mut self) -> (Option<Time>, Option<Time>) {
        if self.cfg.force_event_recompute {
            return (self.completion_time(), self.budget_exhaust_time());
        }
        match self.event_cache {
            Some(cached) => {
                debug_assert!(
                    self.cfg.inject_stale_dispatch_cache
                        || cached == (self.completion_time(), self.budget_exhaust_time()),
                    "event cache out of sync with a fresh computation at t={}",
                    self.now
                );
                cached
            }
            None => {
                let fresh = (self.completion_time(), self.budget_exhaust_time());
                self.event_cache = Some(fresh);
                fresh
            }
        }
    }

    fn next_event_time(&mut self) -> Time {
        let mut t = Time::MAX;
        if let Some(r) = self.delay_q.head_release() {
            t = t.min(r);
        }
        let (completion, budget) = self.cached_event_candidates();
        if let Some(c) = completion {
            t = t.min(c);
        }
        if let Some(b) = budget {
            t = t.min(b);
        }
        match self.mode {
            ProcMode::Ramping { end, .. } => t = t.min(end),
            ProcMode::PowerDown { wake_at, .. } => t = t.min(wake_at),
            ProcMode::WakingUp { until } => t = t.min(until),
            ProcMode::Settled(_) => {}
        }
        if let Some(s) = self.speedup_at {
            t = t.min(s);
        }
        if let Some((enter, _)) = self.pd_timer {
            t = t.min(enter);
        }
        // An overrunning task re-enters the delay queue with a release
        // already in the past; it is due immediately.
        t.max(self.now)
    }

    /// Total work in front of the processor: dispatch overhead first, then
    /// the active job's realized demand.
    fn frontier_work(&self) -> Option<Cycles> {
        let tid = self.active?;
        let job = self.tasks[tid.0].job.as_ref()?;
        Some(self.pending_overhead + job.realized_remaining)
    }

    fn completion_time(&self) -> Option<Time> {
        self.time_to_retire_total(self.frontier_work()?)
    }

    /// When the active job's WCET budget exhausts with realized work still
    /// outstanding — the watchdog's budget-timer event. Only an injected
    /// overrun can make `realized > wcet`, so this is `None` in fault-free
    /// runs; it also stops firing once the job's overrun was reported.
    fn budget_exhaust_time(&self) -> Option<Time> {
        let tid = self.active?;
        let job = self.tasks[tid.0].job.as_ref()?;
        if job.budget_exceeded || job.wcet_remaining >= job.realized_remaining {
            return None;
        }
        self.time_to_retire_total(self.pending_overhead + job.wcet_remaining)
    }

    /// When the processor will have retired `total` cycles under the
    /// current mode (`None` while asleep or waking, or if the in-flight
    /// ramp segment cannot retire that much — the ramp end is already an
    /// event candidate and the time is recomputed once settled).
    fn time_to_retire_total(&self, total: Cycles) -> Option<Time> {
        if total.is_zero() {
            return Some(self.now);
        }
        let reference = self.cpu.reference_freq();
        // Saturating adds: `time_at`/`time_to_retire` saturate to "never"
        // (`Dur::MAX`) on degenerate inputs, and a candidate clamped at
        // `Time::MAX` is equally "never" once min'd with the horizon.
        match self.mode {
            ProcMode::Settled(f) => Some(self.now.saturating_add(total.time_at(f))),
            ProcMode::Ramping { ramp, started, .. } => {
                let off = self.now.saturating_since(started);
                let done = ramp.work_by(off, reference);
                ramp.time_to_retire(done + total, reference)
                    .map(|t_off| started.saturating_add(t_off))
            }
            ProcMode::PowerDown { .. } | ProcMode::WakingUp { .. } => None,
        }
    }

    // ----- physics --------------------------------------------------------

    fn current_cpu_state(&self) -> CpuState {
        let executing = self
            .active
            .map(|tid| self.tasks[tid.0].job.is_some())
            .unwrap_or(false)
            || !self.pending_overhead.is_zero();
        match self.mode {
            ProcMode::Settled(f) => {
                if executing {
                    CpuState::Busy(f)
                } else {
                    CpuState::IdleNop
                }
            }
            ProcMode::Ramping { ramp, .. } => {
                let from = self.ratio_to_freq(ramp.r_from());
                let to = self.ratio_to_freq(ramp.r_to());
                if executing {
                    CpuState::Ramping { from, to }
                } else {
                    CpuState::RampingIdle { from, to }
                }
            }
            ProcMode::PowerDown { mode, .. } => CpuState::PowerDown {
                power_frac: self.cpu.sleep_modes()[mode].power_frac(),
            },
            ProcMode::WakingUp { .. } => CpuState::WakingUp,
        }
    }

    fn ratio_to_freq(&self, r: f64) -> Freq {
        let khz = (r * self.cpu.reference_freq().as_khz() as f64)
            .round()
            .max(1.0) as u64;
        Freq::from_khz(khz)
    }

    /// `state_power(state)` through the per-segment memo: the quadrature
    /// runs once per distinct state, not once (or twice) per advance.
    fn state_power_memo(&mut self, state: CpuState) -> f64 {
        match self.power_memo {
            Some((cached_state, power)) if cached_state == state => power,
            _ => {
                let power = self.cpu.state_power(state);
                self.power_memo = Some((state, power));
                power
            }
        }
    }

    fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.now);
        let dur = t.saturating_since(self.now);
        if dur.is_zero() {
            self.now = t;
            return;
        }
        let state = self.current_cpu_state();
        let power = self.state_power_memo(state);
        self.segments_done += 1;
        self.meter.accumulate_with_power(state, power, dur);
        if let Some(d) = self.steady.as_mut() {
            // Record the cycle's energy tape (only once a first checkpoint
            // anchors it): replaying these exact `(state, power, dur)`
            // triples repeats the full run's f64 additions verbatim.
            if d.last.is_some() {
                d.tape.push(TapeSegment {
                    state,
                    power,
                    dur,
                    task: if state.executes_work() {
                        self.active
                    } else {
                        None
                    },
                });
            }
        }
        // Stamped at the segment *start* (`self.now` is still the old
        // instant here): consecutive segments tile the horizon exactly,
        // which the oracle's invariant checker relies on.
        self.push_trace(TraceEvent::EnergySegment { state, power, dur });
        if state.executes_work() {
            if let Some(tid) = self.active {
                self.task_energy[tid.0] += power * dur.as_secs_f64();
            }
            let reference = self.cpu.reference_freq();
            let retired = match self.mode {
                ProcMode::Settled(f) => Cycles::from_time_at(dur, f),
                ProcMode::Ramping { ramp, started, .. } => {
                    let a = self.now.saturating_since(started);
                    let b = t.saturating_since(started);
                    ramp.work_by(b, reference) - ramp.work_by(a, reference)
                }
                _ => Cycles::ZERO,
            };
            self.retire(retired);
            // Remaining work moved (and even a sub-cycle advance re-rounds
            // a fresh computation at the new `now`): the candidates are
            // stale.
            self.invalidate_event_cache();
        }
        self.now = t;
    }

    /// Consumes retired cycles: dispatch overhead first, then job demand.
    fn retire(&mut self, mut retired: Cycles) {
        if !self.pending_overhead.is_zero() {
            let eaten = self.pending_overhead.min(retired);
            self.pending_overhead -= eaten;
            retired -= eaten;
        }
        if retired.is_zero() {
            return;
        }
        if let Some(tid) = self.active {
            if let Some(job) = self.tasks[tid.0].job.as_mut() {
                job.realized_remaining = job.realized_remaining.saturating_sub(retired);
                job.wcet_remaining = job.wcet_remaining.saturating_sub(retired);
            }
        }
    }

    // ----- event handling ---------------------------------------------------

    fn handle_events(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        let mut need_sched = false;

        // Ramp settles.
        if let ProcMode::Ramping { end, target, .. } = self.mode {
            if self.now >= end {
                self.mode = ProcMode::Settled(target);
                self.invalidate_event_cache();
                self.push_trace(TraceEvent::RampEnd { freq: target });
                if target == self.cpu.full_freq() {
                    need_sched = true;
                }
            }
        }
        // Wake timer fires / wake-up completes.
        match self.mode {
            ProcMode::PowerDown { wake_at, mode } if self.now >= wake_at => {
                let mut delay =
                    self.cpu.sleep_modes()[mode].wakeup_delay(self.cpu.reference_freq());
                if let Some(j) = &self.cfg.faults.wakeup_jitter {
                    // Keyed by the power-down ordinal: the counter was
                    // incremented when this sleep was entered.
                    delay += j.extra(
                        self.cfg.seed,
                        self.cfg.faults.seed,
                        self.counters.power_downs,
                    );
                }
                self.mode = ProcMode::WakingUp {
                    // Saturating: injected wake-up jitter is unbounded.
                    until: self.now.saturating_add(delay),
                };
                self.invalidate_event_cache();
                self.push_trace(TraceEvent::Wakeup);
            }
            ProcMode::WakingUp { until } if self.now >= until => {
                self.mode = ProcMode::Settled(self.cpu.full_freq());
                self.invalidate_event_cache();
                need_sched = true;
            }
            _ => {}
        }
        // Releases (the scheduler's L5-L7). The head peek skips the drain
        // entirely on the (majority of) decision points with nothing due;
        // the scratch buffer is moved out while job spawns borrow `self`
        // and put back afterwards, so steady-state passes allocate nothing.
        if self.delay_q.head_release().is_some_and(|r| r <= self.now) {
            let mut due = std::mem::take(&mut self.due_scratch);
            self.delay_q.pop_due_into(self.now, &mut due);
            // Watchdog invariant: a release must find the processor settled
            // at full speed, or at worst at an instant where a planned
            // return to full has already come due (instant-ramp and
            // zero-latency-wake processors hit exactly the boundary). The
            // policy's own timers guarantee this fault-free; injected
            // wake-up or ramp faults break it.
            let overslept = match self.mode {
                ProcMode::Settled(f) => {
                    f != self.cpu.full_freq() && self.speedup_at.is_none_or(|s| s > self.now)
                }
                ProcMode::Ramping { .. } => true,
                ProcMode::PowerDown { .. } => true,
                ProcMode::WakingUp { until } => until > self.now,
            };
            if overslept {
                self.counters.watchdog_faults += 1;
                self.push_trace(TraceEvent::TimingViolation);
                if policy.on_fault(&FaultEvent::TimingViolation { now: self.now }) {
                    self.counters.degradations += 1;
                }
            }
            for &(tid, release) in &due {
                self.spawn_job(tid, release);
            }
            need_sched = true;
            self.due_scratch = due;
        }
        // Completion of the active job.
        if let Some(total) = self.frontier_work() {
            if total.is_zero() {
                self.complete_active()?;
                need_sched = true;
            }
        }
        // Budget exhaustion: the active job retired its full WCET budget
        // with work still outstanding (only possible under an injected
        // overrun). Reported once per job, exactly when the budget
        // timer would fire in a real kernel.
        if let Some(tid) = self.active {
            let exhausted = self.tasks[tid.0].job.as_ref().is_some_and(|job| {
                !job.budget_exceeded
                    && job.wcet_remaining.is_zero()
                    && !job.realized_remaining.is_zero()
            });
            if exhausted {
                if let Some(job) = self.tasks[tid.0].job.as_mut() {
                    job.budget_exceeded = true;
                }
                self.invalidate_event_cache();
                self.counters.watchdog_faults += 1;
                self.push_trace(TraceEvent::BudgetOverrun { task: tid });
                if policy.on_fault(&FaultEvent::BudgetOverrun {
                    task: tid,
                    now: self.now,
                }) {
                    self.counters.degradations += 1;
                }
                need_sched = true;
            }
        }
        // Speed-up timer (latest moment to begin ramping back to full).
        if let Some(s) = self.speedup_at {
            if self.now >= s {
                self.speedup_at = None;
                need_sched = true;
            }
        }
        // Timeout-shutdown timer: enter power-down if the kernel is still
        // idle when the timeout elapses.
        if let Some((enter, wake_at)) = self.pd_timer {
            if self.now >= enter {
                self.pd_timer = None;
                let idle = self.active.is_none()
                    && self.run_q.is_empty()
                    && matches!(self.mode, ProcMode::Settled(f) if f == self.cpu.full_freq());
                if idle && wake_at > self.now {
                    self.mode = ProcMode::PowerDown { wake_at, mode: 0 };
                    self.invalidate_event_cache();
                    self.counters.power_downs += 1;
                    self.push_trace(TraceEvent::EnterPowerDown { wake_at });
                }
            }
        }

        if need_sched {
            self.scheduler_step(policy)?;
        }
        self.track_idle_gap();
        Ok(())
    }

    /// Opens/closes the "no task runnable" gap around the current instant.
    fn track_idle_gap(&mut self) {
        let runnable = self.active.is_some() || !self.run_q.is_empty();
        match (runnable, self.gap_start) {
            (true, Some(start)) => {
                self.idle_gaps.record(self.now.saturating_since(start));
                self.gap_start = None;
            }
            (false, None) => self.gap_start = Some(self.now),
            _ => {}
        }
    }

    fn spawn_job(&mut self, tid: TaskId, _noticed: Time) {
        let task = self.ts.task(tid);
        let prio = self.ts.priority(tid);
        let sample = self
            .exec
            .sample(task, tid, self.tasks[tid.0].next_index, self.cfg.seed);
        debug_assert!(
            sample <= task.wcet() && !sample.is_zero(),
            "execution model must return demands in (0, WCET]"
        );
        let realized = Cycles::from_time_at(sample, self.cpu.reference_freq()).max(Cycles::new(1));
        let rt = &mut self.tasks[tid.0];
        debug_assert!(rt.job.is_none(), "a task has at most one live job");
        let index = rt.next_index;
        // Response times and deadlines are measured from the *true*
        // arrival, even when a tick-driven kernel noticed it late.
        let arrival = rt.pending_arrival;
        let wcet = self.wcet_cycles[tid.0];
        // An injected overrun blows through the entire WCET budget and
        // keeps going: realized demand becomes `wcet + extra`. The
        // scheduler still sees only the WCET view.
        let mut demand = realized.min(wcet);
        if let Some(o) = &self.cfg.faults.overrun {
            let extra = o.extra_cycles(self.cfg.seed, self.cfg.faults.seed, tid.0, index, wcet);
            if !extra.is_zero() {
                demand = wcet + extra;
                self.counters.overruns += 1;
            }
        }
        // Overflow-free: the job spawned because its release came due, so
        // `arrival < horizon_end`, and every validated time parameter is
        // at most `u64::MAX / 4` ns.
        let deadline = arrival + task.deadline();
        rt.job = Some(LiveJob {
            index,
            release: arrival,
            deadline,
            realized_remaining: demand,
            wcet_remaining: wcet,
            budget_exceeded: false,
        });
        rt.next_index += 1;
        rt.pending_arrival = arrival + task.period();
        self.counters.releases += 1;
        self.push_trace(TraceEvent::Release {
            task: tid,
            job: index,
        });
        self.run_q.insert(tid, D::key(prio, deadline, tid));
    }

    fn complete_active(&mut self) -> Result<(), SimError> {
        let Some(tid) = self.active.take() else {
            return Err(SimError::InternalInvariant {
                what: "completion without an active task",
            });
        };
        self.invalidate_event_cache();
        let prio = self.ts.priority(tid);
        let rt = &mut self.tasks[tid.0];
        let Some(job) = rt.job.take() else {
            return Err(SimError::InternalInvariant {
                what: "active task must hold a live job",
            });
        };
        let response = self.now.saturating_since(job.release);
        let met = self.now <= job.deadline;
        self.responses[tid.0].record(response);
        self.histograms[tid.0].record(response, self.ts.task(tid).deadline());
        self.counters.completions += 1;
        if !met {
            self.misses.push(DeadlineMiss {
                task: tid,
                job: job.index,
                deadline: job.deadline,
                completed_at: Some(self.now),
            });
        }
        let next_arrival = rt.pending_arrival;
        let next_index = rt.next_index;
        self.push_trace(TraceEvent::Complete {
            task: tid,
            job: job.index,
            response,
            met,
        });
        self.delay_q.insert(
            tid,
            prio,
            noticed_release(self.cfg, tid, next_index, next_arrival),
        );
        Ok(())
    }

    // ----- the scheduler ----------------------------------------------------

    fn scheduler_step(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        let full = self.cpu.full_freq();
        match self.mode {
            ProcMode::Settled(f) if f == full => self.full_pass(policy),
            // L1-L4: any invocation at reduced speed raises the clock and
            // voltage to the maximum first; the pass re-runs when settled.
            ProcMode::Settled(f) => {
                let r = f.ratio_to(self.cpu.reference_freq());
                self.begin_ramp_from_ratio(r, full, policy)
            }
            ProcMode::Ramping {
                ramp,
                started,
                target,
                ..
            } => {
                if target != full {
                    let r_now = ramp.ratio_at(self.now.saturating_since(started));
                    self.begin_ramp_from_ratio(r_now, full, policy)
                } else {
                    // Already heading to full: the pass runs at ramp end.
                    Ok(())
                }
            }
            // The pass runs when the wake-up completes.
            ProcMode::PowerDown { .. } | ProcMode::WakingUp { .. } => Ok(()),
        }
    }

    fn full_pass(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        self.counters.sched_passes += 1;
        // L8-L11: preemption / dispatch, decided by the discipline. Under
        // `FixedPriority` this is exactly the paper's priority test.
        if let Some(head_key) = self.run_q.head_key() {
            let switch = match self.active {
                None => true,
                Some(cur) => D::preempts(head_key, self.key_of(cur)?),
            };
            if switch {
                let Some(next) = self.run_q.pop() else {
                    return Err(SimError::InternalInvariant {
                        what: "run queue emptied between head peek and pop",
                    });
                };
                if let Some(cur) = self.active.take() {
                    self.counters.preemptions += 1;
                    self.push_trace(TraceEvent::Preempt {
                        task: cur,
                        by: next,
                    });
                    let cur_key = self.key_of(cur)?;
                    self.run_q.insert(cur, cur_key);
                }
                let Some(job) = self.tasks[next.0].job.as_ref() else {
                    return Err(SimError::InternalInvariant {
                        what: "queued task holds a live job",
                    });
                };
                let job_index = job.index;
                self.counters.dispatches += 1;
                self.push_trace(TraceEvent::Dispatch {
                    task: next,
                    job: job_index,
                });
                if self.last_dispatched != Some(next) && !self.cfg.context_switch.is_zero() {
                    self.pending_overhead +=
                        Cycles::from_time_at(self.cfg.context_switch, self.cpu.reference_freq());
                }
                self.last_dispatched = Some(next);
                self.active = Some(next);
                if !self.cfg.inject_stale_dispatch_cache {
                    self.invalidate_event_cache();
                }
            }
        }

        // L12-L21: the policy's power decision. Any previously armed
        // timeout-shutdown is superseded by the fresh decision.
        self.pd_timer = None;
        let directive = {
            let ctx = SchedulerContext {
                now: self.now,
                active: self.active_view(),
                run_queue: &self.run_q,
                delay_queue: &self.delay_q,
                cpu: self.cpu,
                taskset: self.ts,
            };
            policy.decide(&ctx)
        };
        self.apply_directive(directive, policy)?;
        self.note_idle_transition();
        Ok(())
    }

    /// The discipline key of a task's live job (dispatchable tasks always
    /// hold one: a preempted task keeps its `LiveJob` in `TaskRt.job`).
    fn key_of(&self, task: TaskId) -> Result<D::Key, SimError> {
        let Some(job) = self.tasks[task.0].job.as_ref() else {
            return Err(SimError::InternalInvariant {
                what: "a runnable task holds a live job",
            });
        };
        Ok(D::key(self.ts.priority(task), job.deadline, task))
    }

    fn active_view(&self) -> Option<ActiveView> {
        let tid = self.active?;
        let job = self.tasks[tid.0].job.as_ref()?;
        Some(ActiveView {
            task: tid,
            wcet_remaining: job.wcet_remaining,
            release: job.release,
            deadline: job.deadline,
        })
    }

    /// Applies the policy's decision, refusing illegal directives with
    /// [`SimError::InvalidDirective`]: policies are pluggable (and may act
    /// on deserialized, hostile-adjacent state), so their directives are
    /// checked like any other untrusted input.
    fn apply_directive(
        &mut self,
        directive: PowerDirective,
        policy: &mut dyn PowerPolicy<D>,
    ) -> Result<(), SimError> {
        match directive {
            PowerDirective::FullSpeed => Ok(()),
            PowerDirective::PowerDown { wake_at, mode } => {
                if self.active.is_some() || !self.run_q.is_empty() {
                    return Err(SimError::InvalidDirective {
                        reason: "power-down requires an idle kernel \
                                 (no active task, empty run queue)",
                    });
                }
                if wake_at < self.now {
                    return Err(SimError::InvalidDirective {
                        reason: "wake-up timer must not be in the past",
                    });
                }
                if mode >= self.cpu.sleep_modes().len() {
                    return Err(SimError::InvalidDirective {
                        reason: "sleep mode index out of range",
                    });
                }
                let Some(head) = self.delay_q.head_release() else {
                    return Err(SimError::InternalInvariant {
                        what: "with all tasks waiting, the delay queue cannot be empty",
                    });
                };
                let delay = self.cpu.sleep_modes()[mode].wakeup_delay(self.cpu.reference_freq());
                // Checked: `wake_at` is policy-supplied and unbounded; an
                // overflowing wake instant certainly misses the release.
                if wake_at.checked_add(delay).is_none_or(|w| w > head) {
                    return Err(SimError::InvalidDirective {
                        reason: "the processor must be awake before the next release",
                    });
                }
                self.mode = ProcMode::PowerDown { wake_at, mode };
                self.invalidate_event_cache();
                self.counters.power_downs += 1;
                self.push_trace(TraceEvent::EnterPowerDown { wake_at });
                Ok(())
            }
            PowerDirective::PowerDownAt { enter_at, wake_at } => {
                if self.active.is_some() || !self.run_q.is_empty() {
                    return Err(SimError::InvalidDirective {
                        reason: "timeout shutdown requires an idle kernel",
                    });
                }
                if enter_at < self.now {
                    return Err(SimError::InvalidDirective {
                        reason: "shutdown timeout must not be in the past",
                    });
                }
                if wake_at <= enter_at {
                    return Err(SimError::InvalidDirective {
                        reason: "wake-up must follow the shutdown instant",
                    });
                }
                let Some(head) = self.delay_q.head_release() else {
                    return Err(SimError::InternalInvariant {
                        what: "with all tasks waiting, the delay queue cannot be empty",
                    });
                };
                if wake_at
                    .checked_add(self.cpu.wakeup_delay())
                    .is_none_or(|w| w > head)
                {
                    return Err(SimError::InvalidDirective {
                        reason: "the processor must be awake before the next release",
                    });
                }
                if enter_at == self.now {
                    self.mode = ProcMode::PowerDown { wake_at, mode: 0 };
                    self.invalidate_event_cache();
                    self.counters.power_downs += 1;
                    self.push_trace(TraceEvent::EnterPowerDown { wake_at });
                } else {
                    self.pd_timer = Some((enter_at, wake_at));
                }
                Ok(())
            }
            PowerDirective::SlowDown { freq, speedup_at } => {
                if self.active.is_none() || !self.run_q.is_empty() {
                    return Err(SimError::InvalidDirective {
                        reason: "slow-down requires exactly the active task to be runnable",
                    });
                }
                if !self.cpu.ladder().contains(freq) {
                    return Err(SimError::InvalidDirective {
                        reason: "slow-down frequency must be a ladder level",
                    });
                }
                if freq >= self.cpu.full_freq() || speedup_at <= self.now {
                    return Ok(()); // nothing to gain; stay at full speed
                }
                // The ratio computation itself costs scheduler cycles,
                // executed before the task's work continues (paper §5).
                if !self.cfg.ratio_overhead.is_zero() {
                    self.pending_overhead +=
                        Cycles::from_time_at(self.cfg.ratio_overhead, self.cpu.reference_freq());
                    self.invalidate_event_cache();
                }
                self.speedup_at = Some(speedup_at);
                self.begin_ramp_from_ratio(1.0, freq, policy)
            }
        }
    }

    fn begin_ramp_from_ratio(
        &mut self,
        r_from: f64,
        target: Freq,
        policy: &mut dyn PowerPolicy<D>,
    ) -> Result<(), SimError> {
        let full = self.cpu.full_freq();
        if target == full {
            self.speedup_at = None;
        }
        let r_to = target.ratio_to(self.cpu.reference_freq());
        let mut rate = self.cpu.ramp_rate_per_us();
        if let Some(d) = &self.cfg.faults.ramp_degradation {
            // A degraded regulator ramps slower than the spec the policy
            // planned with; keyed by the ramp ordinal.
            rate *= d.factor(self.cfg.seed, self.cfg.faults.seed, self.counters.ramps);
        }
        let ramp = Ramp::from_ratios(r_from.clamp(0.0, 1.0), r_to, rate);
        let dur = ramp.duration();
        if dur.is_zero() {
            self.mode = ProcMode::Settled(target);
            self.invalidate_event_cache();
            if target == full {
                self.full_pass(policy)?;
            }
            return Ok(());
        }
        self.push_trace(TraceEvent::RampStart {
            from: self.ratio_to_freq(r_from),
            to: target,
        });
        self.counters.ramps += 1;
        self.mode = ProcMode::Ramping {
            ramp,
            started: self.now,
            // Saturating: a degenerate (but valid) ramp rate can make the
            // duration astronomically long; an end clamped at `Time::MAX`
            // just never settles within the horizon.
            end: self.now.saturating_add(dur),
            target,
        };
        self.invalidate_event_cache();
        Ok(())
    }

    fn note_idle_transition(&mut self) {
        let idle = self.active.is_none()
            && self.run_q.is_empty()
            && matches!(self.mode, ProcMode::Settled(f) if f == self.cpu.full_freq());
        if idle && !self.was_idle {
            self.push_trace(TraceEvent::IdleStart);
        }
        self.was_idle = idle;
    }

    // ----- steady-state cycle detection ---------------------------------------

    /// Takes a state snapshot at the first decision point at (or past) the
    /// detector's target instant. When the snapshot equals the previous one
    /// and the two sit exactly one hyperperiod apart, the simulation is in
    /// steady state and [`Engine::fast_forward`] jumps over every remaining
    /// whole cycle; otherwise the snapshot becomes the new reference (this
    /// also rides out start-of-run transients — offsets and phases only
    /// delay the first match, they never prevent it).
    fn steady_checkpoint(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        let Some(mut d) = self.steady.take() else {
            return Ok(());
        };
        if self.now < d.next_target {
            self.steady = Some(d);
            return Ok(());
        }
        // An opaque policy (digest `None`) disables the detector for the
        // rest of the run: leave `self.steady` empty.
        let Some(digest) = policy.steady_digest(self.now) else {
            return Ok(());
        };
        let snapshot = self.capture_snapshot(digest);
        match d.last.take() {
            Some(cp)
                if self.now.saturating_since(cp.at) == d.hyperperiod && cp.snapshot == snapshot =>
            {
                // Steady state proven. Skip every remaining whole cycle;
                // the detector is spent either way (after the jump the tail
                // is shorter than one hyperperiod).
                let k = self.horizon_end.saturating_since(self.now) / d.hyperperiod;
                if k > 0 {
                    self.fast_forward(k, d.hyperperiod, &cp.baseline, &d.tape)?;
                }
            }
            _ => {
                d.last = Some(Checkpoint {
                    at: self.now,
                    snapshot,
                    baseline: self.capture_baseline(),
                });
                d.tape.clear();
                d.next_target = self.now.saturating_add(d.hyperperiod);
                self.steady = Some(d);
            }
        }
        Ok(())
    }

    /// The complete decision-relevant state at `self.now`, with every
    /// absolute instant re-based to `self.now` (signed: a delay-queue
    /// release sits in the past after a late completion). Excludes
    /// accumulators (extrapolated instead), caches (transparent), and the
    /// per-job indices (strictly growing; eligibility guarantees nothing
    /// decision-relevant reads them).
    fn capture_snapshot(&self, policy_digest: u64) -> SteadySnapshot {
        let now = self.now.as_ns() as i128;
        let rel = |t: Time| t.as_ns() as i128 - now;
        SteadySnapshot {
            run_q: self.run_q.iter().collect(),
            delay_q: self.delay_q.iter().map(|(t, r)| (t, rel(r))).collect(),
            tasks: self
                .tasks
                .iter()
                .map(|rt| TaskSnapshot {
                    pending_arrival: rel(rt.pending_arrival),
                    job: rt.job.as_ref().map(|j| JobSnapshot {
                        release: rel(j.release),
                        deadline: rel(j.deadline),
                        realized_remaining: j.realized_remaining,
                        wcet_remaining: j.wcet_remaining,
                        budget_exceeded: j.budget_exceeded,
                    }),
                })
                .collect(),
            active: self.active,
            mode: match self.mode {
                ProcMode::Settled(f) => ModeSnapshot::Settled(f),
                ProcMode::Ramping {
                    ramp,
                    started,
                    end,
                    target,
                } => ModeSnapshot::Ramping {
                    ramp,
                    started: rel(started),
                    end: rel(end),
                    target,
                },
                ProcMode::PowerDown { wake_at, mode } => ModeSnapshot::PowerDown {
                    wake_at: rel(wake_at),
                    mode,
                },
                ProcMode::WakingUp { until } => ModeSnapshot::WakingUp { until: rel(until) },
            },
            speedup_at: self.speedup_at.map(rel),
            pd_timer: self.pd_timer.map(|(a, b)| (rel(a), rel(b))),
            pending_overhead: self.pending_overhead,
            last_dispatched: self.last_dispatched,
            was_idle: self.was_idle,
            gap_start: self.gap_start.map(rel),
            policy_digest,
        }
    }

    /// Accumulator values at the current checkpoint; the next checkpoint's
    /// values minus these are exactly one steady-state cycle's worth.
    fn capture_baseline(&self) -> CycleBaseline {
        CycleBaseline {
            counters: self.counters,
            responses: self.responses.clone(),
            histograms: self.histograms.clone(),
            idle_gaps: self.idle_gaps,
            misses_len: self.misses.len(),
            next_index: self.tasks.iter().map(|rt| rt.next_index).collect(),
        }
    }

    /// Jumps the simulation forward by `k` whole hyperperiods `h`:
    ///
    /// 1. replays the recorded energy tape `k` times through the public
    ///    meter path, repeating the full run's exact f64 operation
    ///    sequence (energy stays bit-identical — no closed form does);
    /// 2. extrapolates every integer accumulator by `k` copies of its
    ///    per-cycle delta, and appends time/index-shifted copies of the
    ///    cycle's deadline misses in chronological order;
    /// 3. shifts every absolute instant of the live state by `k * h` and
    ///    rebuilds the run queue (EDF keys embed absolute deadlines),
    ///    preserving the equal-key pop order.
    ///
    /// Afterwards the engine state equals — bit for bit — what a full
    /// simulation would hold on arriving at the shifted instant, so the
    /// caller simply continues the event loop through the residual tail.
    fn fast_forward(
        &mut self,
        k: u64,
        h: Dur,
        baseline: &CycleBaseline,
        tape: &[TapeSegment],
    ) -> Result<(), SimError> {
        let shift = h * k;
        // Energy: replay the cycle's segment tape k times.
        for _ in 0..k {
            for seg in tape {
                self.meter
                    .accumulate_with_power(seg.state, seg.power, seg.dur);
                if let Some(tid) = seg.task {
                    self.task_energy[tid.0] += seg.power * seg.dur.as_secs_f64();
                }
            }
        }
        self.segments_done += tape.len() as u64 * k;
        // Integer statistics: add k copies of the per-cycle delta.
        let events_per_cycle = self.counters.events - baseline.counters.events;
        self.counters.extrapolate_from(&baseline.counters, k);
        for (r, b) in self.responses.iter_mut().zip(&baseline.responses) {
            r.extrapolate_from(b, k);
        }
        for (hg, b) in self.histograms.iter_mut().zip(&baseline.histograms) {
            hg.extrapolate_from(b, k);
        }
        self.idle_gaps.extrapolate_from(&baseline.idle_gaps, k);
        // Jobs released per cycle, per task: shifts indices below.
        let jpc: Vec<u64> = self
            .tasks
            .iter()
            .zip(&baseline.next_index)
            .map(|(rt, &b)| rt.next_index - b)
            .collect();
        // Deadline misses: each skipped cycle repeats the recorded cycle's
        // misses with job indices and instants shifted; appending cycle by
        // cycle preserves the report's chronological order.
        let window: Vec<DeadlineMiss> = self.misses[baseline.misses_len..].to_vec();
        for c in 1..=k {
            let off = h * c;
            for m in &window {
                self.misses.push(DeadlineMiss {
                    task: m.task,
                    job: m.job + c * jpc[m.task.0],
                    deadline: m.deadline + off,
                    completed_at: m.completed_at.map(|t| t + off),
                });
            }
        }
        // Live state: shift every absolute instant by k hyperperiods.
        for (rt, &per_cycle) in self.tasks.iter_mut().zip(&jpc) {
            rt.pending_arrival += shift;
            rt.next_index += k * per_cycle;
            if let Some(job) = rt.job.as_mut() {
                job.index += k * per_cycle;
                job.release += shift;
                job.deadline += shift;
            }
        }
        self.delay_q.shift(shift);
        self.mode = match self.mode {
            ProcMode::Settled(f) => ProcMode::Settled(f),
            ProcMode::Ramping {
                ramp,
                started,
                end,
                target,
            } => ProcMode::Ramping {
                ramp,
                started: started + shift,
                end: end + shift,
                target,
            },
            ProcMode::PowerDown { wake_at, mode } => ProcMode::PowerDown {
                wake_at: wake_at + shift,
                mode,
            },
            ProcMode::WakingUp { until } => ProcMode::WakingUp {
                until: until + shift,
            },
        };
        self.speedup_at = self.speedup_at.map(|t| t + shift);
        self.pd_timer = self
            .pd_timer
            .map(|(enter, wake)| (enter + shift, wake + shift));
        self.gap_start = self.gap_start.map(|t| t + shift);
        self.now += shift;
        // Rebuild the run queue through the shifted deadlines (EDF keys
        // embed absolute time). Re-inserting in reverse iteration order —
        // least urgent first — preserves the "most recent insert pops
        // first" tie convention among equal keys.
        let order: Vec<TaskId> = self.run_q.iter().collect();
        self.run_q.clear();
        for &tid in order.iter().rev() {
            let key = self.key_of(tid)?;
            self.run_q.insert(tid, key);
        }
        self.invalidate_event_cache();
        self.ff_stats.cycles_detected = k;
        self.ff_stats.events_skipped = events_per_cycle * k;
        Ok(())
    }

    // ----- finishing ----------------------------------------------------------

    fn record_unfinished_misses(&mut self) {
        let active = self.active;
        let overhead = self.pending_overhead;
        for (i, rt) in self.tasks.iter().enumerate() {
            if let Some(job) = rt.job {
                // A job whose work retired exactly at the horizon boundary
                // has effectively completed there; the loop just exited
                // before its completion event was processed. Judged under
                // the single convention documented on `DeadlineMiss`:
                // completing at the deadline is on time, so a boundary
                // completion misses only a strictly earlier deadline, and
                // an unfinished job misses any deadline at or before the
                // horizon end.
                let done_at_boundary = active == Some(TaskId(i))
                    && job.realized_remaining.is_zero()
                    && overhead.is_zero();
                let completed_at = done_at_boundary.then_some(self.horizon_end);
                let missed = match completed_at {
                    Some(t) => job.deadline < t,
                    None => job.deadline <= self.horizon_end,
                };
                if missed {
                    self.misses.push(DeadlineMiss {
                        task: TaskId(i),
                        job: job.index,
                        deadline: job.deadline,
                        completed_at,
                    });
                }
            }
        }
    }

    fn push_trace(&mut self, event: TraceEvent) {
        // The probe tap: `P::ACTIVE` is an associated constant, so for
        // `NoProbe` this whole branch is compile-time dead and the
        // function reduces to the pre-seam trace push.
        if P::ACTIVE {
            self.probe.on_event(self.now, &event);
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push(self.now, event);
        }
    }

    /// Returns the recycled buffers to the workspace without producing a
    /// report — the error path of [`simulate_in_for`]. A failed cell must
    /// not leak the buffers: the next run on this workspace still pays
    /// zero allocations.
    fn restore_workspace(self, ws: &mut SimWorkspace) {
        D::restore_run_queue(ws, self.run_q);
        ws.delay_q = self.delay_q;
        ws.tasks = self.tasks;
        ws.wcet_cycles = self.wcet_cycles;
        ws.due_scratch = self.due_scratch;
        ws.ff_stats = self.ff_stats;
    }

    fn into_report(self, policy_name: &str, ws: &mut SimWorkspace) -> SimReport {
        // Return the recycled buffers to the workspace for the next run.
        D::restore_run_queue(ws, self.run_q);
        ws.delay_q = self.delay_q;
        ws.tasks = self.tasks;
        ws.wcet_cycles = self.wcet_cycles;
        ws.due_scratch = self.due_scratch;
        ws.ff_stats = self.ff_stats;
        SimReport {
            policy: policy_name.to_string(),
            discipline: D::NAME,
            taskset: self.ts.name().to_string(),
            horizon: self.cfg.horizon,
            energy: self.meter,
            misses: self.misses,
            responses: self.responses,
            counters: self.counters,
            idle_gaps: self.idle_gaps,
            task_energy: self.task_energy,
            histograms: self.histograms,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AlwaysFullSpeed;
    use lpfps_cpu::state::StateKind;
    use lpfps_tasks::exec::AlwaysWcet;
    use lpfps_tasks::task::Task;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    /// Shadows [`super::simulate`] with an unwrapping wrapper: every test
    /// in this module runs valid inputs, where the `Result` surface is
    /// infallible by construction. Error-path tests call
    /// `super::simulate` explicitly.
    fn simulate(
        ts: &TaskSet,
        cpu: &CpuSpec,
        policy: &mut dyn PowerPolicy,
        exec: &dyn ExecModel,
        cfg: &SimConfig,
    ) -> SimReport {
        super::simulate(ts, cpu, policy, exec, cfg).unwrap()
    }

    fn run_fps(ts: &TaskSet, horizon: Dur) -> SimReport {
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(horizon).with_trace();
        simulate(ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg)
    }

    /// The canonical Figure 2(a) check: with every task at its WCET, the
    /// schedule over one hyperperiod (400 us) follows the paper exactly.
    #[test]
    fn figure2a_schedule_under_fps() {
        let report = run_fps(&table1(), Dur::from_us(400));
        assert!(report.all_deadlines_met());
        let trace = report.trace.as_ref().expect("tracing enabled");

        let completions: Vec<(u64, usize, u64)> = trace
            .iter()
            .filter_map(|(t, e)| match e {
                TraceEvent::Complete { task, job, .. } => Some((t.as_us(), task.0, job)),
                _ => None,
            })
            .collect();
        // Figure 2(a): tau1 completes at 10, 60, 110, ...; tau2 at 30, 100,
        // and (third job, released 160, running flat out) 180; tau3 at 80
        // and 150. (The paper's figure shows the 160-release stretching to
        // 200 only under LPFPS at half speed.)
        assert!(completions.contains(&(10, 0, 0)));
        assert!(completions.contains(&(30, 1, 0)));
        assert!(completions.contains(&(80, 2, 0)));
        assert!(completions.contains(&(60, 0, 1)));
        assert!(completions.contains(&(100, 1, 1)));
        assert!(completions.contains(&(150, 2, 1)));
        assert!(completions.contains(&(180, 1, 2)));
    }

    #[test]
    fn figure2a_preemption_at_t50() {
        // At t=50 the second tau1 release preempts tau3 (paper Example 1).
        let report = run_fps(&table1(), Dur::from_us(100));
        let trace = report.trace.as_ref().unwrap();
        let preempt = trace
            .find(|e| {
                matches!(
                    e,
                    TraceEvent::Preempt {
                        task: TaskId(2),
                        by: TaskId(0)
                    }
                )
            })
            .expect("tau3 preempted by tau1");
        assert_eq!(preempt.0, Time::from_us(50));
    }

    #[test]
    fn fps_idles_in_nop_loop() {
        // Table 1 at WCET has 15% idle (U = 0.85): FPS burns it in the NOP
        // loop, so average power = 0.85 * 1.0 + 0.15 * 0.2 = 0.88.
        let report = run_fps(&table1(), Dur::from_us(400));
        let idle_frac = report.residency_fraction(StateKind::IdleNop);
        assert!((idle_frac - 0.15).abs() < 1e-6, "idle fraction {idle_frac}");
        assert!((report.average_power() - 0.88).abs() < 1e-6);
        assert_eq!(report.counters.power_downs, 0);
        assert_eq!(report.counters.ramps, 0);
    }

    #[test]
    fn counters_match_hyperperiod_job_math() {
        // One hyperperiod (400 us): 8 + 5 + 4 = 17 releases; all complete.
        let report = run_fps(&table1(), Dur::from_us(400));
        assert_eq!(report.counters.releases, 17);
        assert_eq!(report.counters.completions, 17);
    }

    #[test]
    fn responses_match_rta_bounds() {
        use lpfps_tasks::analysis::{response_times, RtaConfig};
        let ts = table1();
        let report = run_fps(&ts, Dur::from_ms(4));
        let rta = response_times(&ts, &RtaConfig::default());
        for (i, stats) in report.responses.iter().enumerate() {
            let bound = rta[i].response().expect("schedulable");
            assert!(
                stats.max_response <= bound,
                "task {i}: observed {} > RTA bound {}",
                stats.max_response,
                bound
            );
        }
        // The synchronous release at t=0 is the critical instant, so the
        // worst case is actually attained.
        assert_eq!(report.responses[2].max_response, Dur::from_us(80));
    }

    #[test]
    fn overutilized_set_reports_misses() {
        let ts = TaskSet::rate_monotonic(
            "over",
            vec![
                Task::new("a", Dur::from_us(10), Dur::from_us(6)),
                Task::new("b", Dur::from_us(20), Dur::from_us(12)),
            ],
        );
        let report = run_fps(&ts, Dur::from_us(200));
        assert!(!report.all_deadlines_met());
        assert!(!report.misses.is_empty());
    }

    #[test]
    fn single_task_alternates_run_and_idle() {
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("t", Dur::from_us(100), Dur::from_us(25))],
        );
        let report = run_fps(&ts, Dur::from_ms(1));
        assert!(report.all_deadlines_met());
        assert!((report.residency_fraction(StateKind::Busy) - 0.25).abs() < 1e-6);
        assert!((report.residency_fraction(StateKind::IdleNop) - 0.75).abs() < 1e-6);
        // avg power = 0.25*1 + 0.75*0.2 = 0.4.
        assert!((report.average_power() - 0.4).abs() < 1e-6);
    }

    /// A hand-written test policy that powers down whenever the kernel is
    /// idle — exercising the PowerDown directive path without depending on
    /// the `lpfps` crate (which implements the real policies).
    #[derive(Debug)]
    struct PowerDownWhenIdle;

    impl crate::policy::PolicyCore for PowerDownWhenIdle {
        fn name(&self) -> &'static str {
            "test-pd"
        }
    }

    impl PowerPolicy for PowerDownWhenIdle {
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
            if ctx.active.is_none() && ctx.run_queue.is_empty() {
                if let Some(head) = ctx.next_arrival() {
                    let wake = head.saturating_sub(ctx.cpu.wakeup_delay());
                    if wake > ctx.now {
                        return PowerDirective::PowerDown {
                            wake_at: wake,
                            mode: 0,
                        };
                    }
                }
            }
            PowerDirective::FullSpeed
        }
    }

    #[test]
    fn power_down_policy_sleeps_through_idle() {
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("t", Dur::from_us(100), Dur::from_us(25))],
        );
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(1)).with_trace();
        let report = simulate(&ts, &cpu, &mut PowerDownWhenIdle, &AlwaysWcet, &cfg);
        assert!(report.all_deadlines_met());
        assert_eq!(report.counters.power_downs, 10);
        // Idle burns at 5% instead of 20%: avg ~ 0.25*1 + 0.75*0.05 = 0.2875
        // (plus negligible wake-up energy).
        let p = report.average_power();
        assert!((p - 0.2875).abs() < 0.001, "avg power {p}");
        // And it must still beat plain FPS.
        let fps = run_fps(&ts, Dur::from_ms(1));
        assert!(p < fps.average_power());
    }

    /// A test policy that halves the clock whenever only the active task
    /// remains, exercising the SlowDown directive and the speed-up timer.
    #[derive(Debug)]
    struct HalfSpeedWhenAlone;

    impl crate::policy::PolicyCore for HalfSpeedWhenAlone {
        fn name(&self) -> &'static str {
            "test-slow"
        }
    }

    impl PowerPolicy for HalfSpeedWhenAlone {
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
            let Some(_active) = ctx.active else {
                return PowerDirective::FullSpeed;
            };
            if !ctx.run_queue.is_empty() {
                return PowerDirective::FullSpeed;
            }
            let Some(bound) = ctx.safe_completion_bound() else {
                return PowerDirective::FullSpeed;
            };
            let freq = Freq::from_mhz(50);
            let ramp_back = ctx.cpu.ramp_duration(freq, ctx.cpu.full_freq());
            let speedup_at = bound.saturating_sub(ramp_back);
            PowerDirective::SlowDown { freq, speedup_at }
        }
    }

    #[test]
    fn slow_down_policy_keeps_deadlines_and_saves_energy() {
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("t", Dur::from_us(100), Dur::from_us(25))],
        );
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(1)).with_trace();
        let report = simulate(&ts, &cpu, &mut HalfSpeedWhenAlone, &AlwaysWcet, &cfg);
        assert!(report.all_deadlines_met(), "misses: {:?}", report.misses);
        assert!(report.counters.ramps > 0);
        let fps = run_fps(&ts, Dur::from_ms(1));
        assert!(report.average_power() < fps.average_power());
    }

    #[test]
    fn determinism_same_seed_same_report() {
        use lpfps_tasks::exec::PaperGaussian;
        let ts = table1().with_bcet_fraction(0.3);
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(10)).with_seed(42);
        let a = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &PaperGaussian, &cfg);
        let b = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &PaperGaussian, &cfg);
        assert_eq!(a.energy.total_energy(), b.energy.total_energy());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.responses, b.responses);
    }

    #[test]
    fn different_seeds_differ() {
        use lpfps_tasks::exec::PaperGaussian;
        let ts = table1().with_bcet_fraction(0.3);
        let cpu = CpuSpec::arm8();
        let a = simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &PaperGaussian,
            &SimConfig::new(Dur::from_ms(10)).with_seed(1),
        );
        let b = simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &PaperGaussian,
            &SimConfig::new(Dur::from_ms(10)).with_seed(2),
        );
        assert_ne!(a.energy.total_energy(), b.energy.total_energy());
    }

    #[test]
    fn context_switch_overhead_extends_busy_time() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let plain = simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_us(400)),
        );
        let loaded = simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_us(400)).with_context_switch(Dur::from_us(1)),
        );
        assert!(
            loaded.energy.bucket(StateKind::Busy).residency
                > plain.energy.bucket(StateKind::Busy).residency
        );
        // Still schedulable with 1 us switches? tau3 was tight; overhead can
        // push it over. Either way the run must complete without panicking
        // and account every nanosecond.
        assert_eq!(loaded.energy.total_residency(), Dur::from_us(400));
    }

    #[test]
    fn phase_offsets_shift_first_releases() {
        let ts = TaskSet::rate_monotonic(
            "phased",
            vec![
                Task::new("a", Dur::from_us(100), Dur::from_us(10)).with_phase(Dur::from_us(30)),
                Task::new("b", Dur::from_us(200), Dur::from_us(10)),
            ],
        );
        let report = run_fps(&ts, Dur::from_us(300));
        let trace = report.trace.as_ref().unwrap();
        let first_a = trace
            .find(|e| {
                matches!(
                    e,
                    TraceEvent::Release {
                        task: TaskId(0),
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(first_a.0, Time::from_us(30));
        assert!(report.all_deadlines_met());
    }

    #[test]
    fn idle_gaps_partition_the_schedule() {
        // Table 1 at WCET over one hyperperiod: idle intervals are
        // [80..100)? No - at 80 tau2's second job runs. Figure 2(a) shows
        // idle at [180..200), [260..300), [340..350), [360..400):
        // 20 + 40 + 10 + 40 = 110us... minus what tau2#3 (released 240)
        // and friends consume. Instead of hand-deriving, assert the
        // accounting identity: gap total == horizon - time with runnable
        // work, which for FPS at WCET equals the NOP-idle residency.
        let report = run_fps(&table1(), Dur::from_us(400));
        assert_eq!(
            report.idle_gaps.total(),
            report.energy.bucket(StateKind::IdleNop).residency
        );
        assert!(report.idle_gaps.count() >= 2);
    }

    #[test]
    fn task_energy_attribution_sums_to_busy_energy() {
        let report = run_fps(&table1(), Dur::from_us(400));
        let attributed: f64 = report.task_energy.iter().sum();
        let busy = report.energy.bucket(StateKind::Busy).energy
            + report.energy.bucket(StateKind::Ramping).energy;
        assert!((attributed - busy).abs() < 1e-12, "{attributed} != {busy}");
        // At WCET, task energy is proportional to utilization share.
        let total: f64 = report.task_energy.iter().sum();
        assert!((report.task_energy[2] / total - 0.16 / 0.34).abs() < 0.01);
    }

    #[test]
    fn tick_driven_kernel_delays_release_notice() {
        // Task phased to release at t = 30us with a 100us tick: the kernel
        // notices it at t = 100us, but responses count from t = 30us.
        let ts = TaskSet::rate_monotonic(
            "ticked",
            vec![Task::new("t", Dur::from_us(1_000), Dur::from_us(10)).with_phase(Dur::from_us(30))],
        );
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(1))
            .with_trace()
            .with_tick(Dur::from_us(100));
        let report = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg);
        let trace = report.trace.as_ref().unwrap();
        let (t, _) = trace
            .find(|e| matches!(e, TraceEvent::Release { .. }))
            .unwrap();
        assert_eq!(t, Time::from_us(100), "noticed at the tick boundary");
        // Response = notice delay (70us) + execution (10us) = 80us.
        assert_eq!(report.responses[0].max_response, Dur::from_us(80));
        assert!(report.all_deadlines_met());
    }

    #[test]
    fn tick_jitter_agrees_with_jitter_aware_rta() {
        use lpfps_tasks::analysis::{response_times, RtaConfig, RtaOutcome};
        let cpu = CpuSpec::arm8();
        let tick = Dur::from_us(7); // off-beat vs every period below

        // (a) Table 1 has zero slack: jitter-RTA rejects tau3, and the
        // tick-driven simulation indeed misses exactly that task.
        let tight = table1();
        let rta = response_times(&tight, &RtaConfig::default().with_release_jitter(tick));
        assert_eq!(rta[2], RtaOutcome::Unschedulable);
        let report = simulate(
            &tight,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_ms(8)).with_tick(tick),
        );
        assert!(report.misses.iter().all(|m| m.task == TaskId(2)));
        assert!(!report.misses.is_empty());

        // (b) A set with slack: jitter-RTA admits every task and its bounds
        // dominate the tick-driven simulation.
        let slack = TaskSet::rate_monotonic(
            "slacked",
            vec![
                Task::new("a", Dur::from_us(50), Dur::from_us(8)),
                Task::new("b", Dur::from_us(80), Dur::from_us(16)),
                Task::new("c", Dur::from_us(100), Dur::from_us(30)),
            ],
        );
        let rta = response_times(&slack, &RtaConfig::default().with_release_jitter(tick));
        let report = simulate(
            &slack,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_ms(8)).with_tick(tick),
        );
        assert!(report.all_deadlines_met(), "misses: {:?}", report.misses);
        for (i, stats) in report.responses.iter().enumerate() {
            let bound = rta[i].response().expect("admitted with jitter");
            assert!(
                stats.max_response <= bound,
                "task {i}: {} > jitter-RTA bound {}",
                stats.max_response,
                bound
            );
        }
    }

    #[test]
    fn tick_aligned_releases_match_event_driven_kernel() {
        // When every period is a multiple of the tick, quantization is the
        // identity and the two kernels behave identically.
        let ts = table1(); // periods 50/80/100us, tick 10us divides all
        let cpu = CpuSpec::arm8();
        let event = simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_us(400)),
        );
        let ticked = simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_us(400)).with_tick(Dur::from_us(10)),
        );
        assert_eq!(event.responses, ticked.responses);
        assert_eq!(event.energy.total_energy(), ticked.energy.total_energy());
    }

    // ----- horizon boundary convention (see `DeadlineMiss` docs) ----------

    #[test]
    fn deadline_exactly_at_horizon_met_when_work_retires_at_boundary() {
        // U = 1.0: the job's 100 us of work retires exactly at the 100 us
        // horizon, where its deadline also lies. Completing *at* the
        // deadline is on time, so this must not be recorded as a miss.
        let ts = TaskSet::rate_monotonic(
            "boundary",
            vec![Task::new("t", Dur::from_us(100), Dur::from_us(100))],
        );
        let report = run_fps(&ts, Dur::from_us(100));
        assert!(
            report.all_deadlines_met(),
            "boundary completion misreported: {:?}",
            report.misses
        );
    }

    #[test]
    fn deadline_exactly_at_horizon_missed_when_work_remains() {
        // U = 1.2: task b cannot finish its first job by t = 100 us, where
        // both its deadline and the horizon lie. The deadline has passed
        // without completion, so the miss must be recorded even though the
        // completion event itself lies beyond the simulated window.
        let ts = TaskSet::rate_monotonic(
            "boundary-miss",
            vec![
                Task::new("a", Dur::from_us(50), Dur::from_us(30)),
                Task::new("b", Dur::from_us(100), Dur::from_us(60)),
            ],
        );
        let report = run_fps(&ts, Dur::from_us(100));
        let miss = report
            .misses
            .iter()
            .find(|m| m.task == TaskId(1))
            .expect("task b's first job must miss at the horizon");
        assert_eq!(miss.deadline, Time::from_us(100));
        assert_eq!(miss.completed_at, None);
    }

    // ----- fault injection and the watchdog -------------------------------

    use lpfps_faults::{FaultConfig, OverrunFault, RampDegradation, ReleaseJitter, WakeupJitter};

    #[test]
    fn fault_free_runs_report_no_faults() {
        // Across all three directive paths (full speed, power-down,
        // slow-down) the idealized model never trips the watchdog.
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("t", Dur::from_us(100), Dur::from_us(25))],
        );
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(1));
        let policies: [&mut dyn PowerPolicy; 3] = [
            &mut AlwaysFullSpeed,
            &mut PowerDownWhenIdle,
            &mut HalfSpeedWhenAlone,
        ];
        for policy in policies {
            let report = simulate(&ts, &cpu, policy, &AlwaysWcet, &cfg);
            assert_eq!(report.counters.overruns, 0, "{}", report.policy);
            assert_eq!(report.counters.watchdog_faults, 0, "{}", report.policy);
            assert_eq!(report.counters.degradations, 0, "{}", report.policy);
        }
    }

    #[test]
    fn overrun_faults_inject_and_budget_watchdog_detects() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let faults = FaultConfig::none()
            .with_seed(7)
            .with_overrun(OverrunFault::clamped(0.2, 0.3, 1.3));
        let cfg = SimConfig::new(Dur::from_ms(4))
            .with_seed(3)
            .with_faults(faults);
        let report = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg);
        assert!(report.counters.overruns > 0, "no overruns fired");
        assert!(report.counters.watchdog_faults > 0, "watchdog silent");
        // At full speed the only detectable fault is a budget overrun, and
        // each overrunning job fires at most once.
        assert!(report.counters.watchdog_faults <= report.counters.overruns);
        // The default policy ignores faults.
        assert_eq!(report.counters.degradations, 0);
    }

    #[test]
    fn overrun_injection_is_deterministic() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let faults = FaultConfig::none()
            .with_seed(11)
            .with_overrun(OverrunFault::unbounded(0.3, 0.2));
        let cfg = SimConfig::new(Dur::from_ms(4))
            .with_seed(5)
            .with_faults(faults);
        let a = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg);
        let b = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.energy.total_energy(), b.energy.total_energy());
        assert_eq!(a.misses, b.misses);
    }

    #[test]
    fn wakeup_jitter_trips_the_timing_watchdog() {
        // The policy wakes exactly `wakeup_delay` before the next release;
        // any extra latency means the release catches the processor still
        // waking up — a timing violation, but not (here) a deadline miss.
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("t", Dur::from_us(100), Dur::from_us(25))],
        );
        let cpu = CpuSpec::arm8();
        let faults = FaultConfig::none()
            .with_seed(9)
            .with_wakeup_jitter(WakeupJitter::uniform(Dur::from_us(5)));
        let cfg = SimConfig::new(Dur::from_ms(1)).with_faults(faults);
        let report = simulate(&ts, &cpu, &mut PowerDownWhenIdle, &AlwaysWcet, &cfg);
        assert!(report.counters.power_downs > 0);
        assert!(
            report.counters.watchdog_faults > 0,
            "late wake-ups must be caught"
        );
        // 5 us of start latency against 75 us of slack: still on time.
        assert!(report.all_deadlines_met(), "misses: {:?}", report.misses);
    }

    /// A set where the slowed low-priority task is still running when the
    /// speed-up timer fires, so the up-ramp back to full is on the critical
    /// path to the next release — exactly where ramp degradation bites.
    fn ramp_critical_set() -> TaskSet {
        TaskSet::rate_monotonic(
            "ramp-critical",
            vec![
                Task::new("a", Dur::from_us(100), Dur::from_us(10)),
                Task::new("b", Dur::from_us(400), Dur::from_us(150)),
            ],
        )
    }

    #[test]
    fn ramp_degradation_slows_transitions_and_is_detected() {
        // At half the nominal ramp rate, the up-ramp the policy planned to
        // finish exactly at the next release is still in flight when the
        // release pops.
        let cpu = CpuSpec::arm8();
        let faults = FaultConfig::none().with_ramp_degradation(RampDegradation::constant(0.5));
        let cfg = SimConfig::new(Dur::from_ms(1)).with_faults(faults);
        let report = simulate(
            &ramp_critical_set(),
            &cpu,
            &mut HalfSpeedWhenAlone,
            &AlwaysWcet,
            &cfg,
        );
        assert!(report.counters.ramps > 0);
        assert!(
            report.counters.watchdog_faults > 0,
            "degraded ramps must be caught oversleeping"
        );
    }

    #[test]
    fn release_jitter_delays_notice_but_not_deadlines() {
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("t", Dur::from_us(100), Dur::from_us(25))],
        );
        let cpu = CpuSpec::arm8();
        let clean = simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_ms(1)),
        );
        let faults = FaultConfig::none()
            .with_seed(13)
            .with_release_jitter(ReleaseJitter::uniform(Dur::from_us(10)));
        let jittered = simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_ms(1)).with_faults(faults),
        );
        // Responses are measured from the true arrival, so delayed notice
        // inflates them; 10 us of jitter against 75 us of slack stays safe.
        assert!(jittered.responses[0].max_response > clean.responses[0].max_response);
        assert!(jittered.all_deadlines_met());
    }

    /// A policy that degrades on faults: full speed (no power management)
    /// for a cooldown after every watchdog report — the kernel-level test
    /// double for the real `lpfps-wd` policy in the `lpfps` crate.
    struct DegradeOnFault {
        inner: HalfSpeedWhenAlone,
        degraded_until: Option<Time>,
    }

    impl crate::policy::PolicyCore for DegradeOnFault {
        fn name(&self) -> &'static str {
            "test-degrade"
        }
        fn on_fault(&mut self, event: &FaultEvent) -> bool {
            self.degraded_until = Some(event.time() + Dur::from_us(500));
            true
        }
    }

    impl PowerPolicy for DegradeOnFault {
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
            if self.degraded_until.is_some_and(|t| ctx.now < t) {
                return PowerDirective::FullSpeed;
            }
            self.degraded_until = None;
            self.inner.decide(ctx)
        }
    }

    #[test]
    fn degrading_policy_counts_degradations_and_recovers() {
        let ts = ramp_critical_set();
        let cpu = CpuSpec::arm8();
        let faults = FaultConfig::none().with_ramp_degradation(RampDegradation::constant(0.5));
        let cfg = SimConfig::new(Dur::from_ms(5)).with_faults(faults);
        let mut policy = DegradeOnFault {
            inner: HalfSpeedWhenAlone,
            degraded_until: None,
        };
        let report = simulate(&ts, &cpu, &mut policy, &AlwaysWcet, &cfg);
        assert!(report.counters.degradations > 0);
        assert_eq!(
            report.counters.degradations,
            report.counters.watchdog_faults
        );
        // The cooldown (500 us) is shorter than the horizon (5 ms), so the
        // policy resumes slowing down and gets caught again: more than one
        // degradation episode, yet still more ramps than faults.
        assert!(report.counters.degradations > 1);
        assert!(report.all_deadlines_met(), "misses: {:?}", report.misses);
    }

    #[test]
    fn zero_horizon_rejected() {
        let cpu = CpuSpec::arm8();
        let err = super::simulate(
            &table1(),
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::ZERO),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "invalid-config");
        assert!(
            err.to_string().contains("horizon must be positive"),
            "message was: {err}"
        );
    }

    #[test]
    fn oversized_horizon_is_a_time_overflow() {
        use lpfps_tasks::error::MAX_TIME_PARAM;
        let cpu = CpuSpec::arm8();
        let err = super::simulate(
            &table1(),
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_ns(MAX_TIME_PARAM.as_ns() + 1)),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "time-overflow");
        // And the largest admissible horizon must still run (the engine's
        // internal arithmetic is overflow-free right up to the bound).
        let ts = TaskSet::rate_monotonic(
            "huge",
            vec![Task::new(
                "t",
                Dur::from_ns(MAX_TIME_PARAM.as_ns()),
                Dur::from_us(1),
            )],
        );
        let report = super::simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(MAX_TIME_PARAM),
        )
        .unwrap();
        assert_eq!(report.counters.releases, 1);
    }

    #[test]
    fn deserialized_malformed_task_set_is_rejected_not_aborted() {
        // Serde bypasses the panicking constructors: a zero-period task
        // can exist in memory. The boundary validation must catch it.
        let json = serde_json::to_string(&table1()).unwrap();
        let doctored = json.replace("\"period\":50000", "\"period\":0");
        assert_ne!(json, doctored);
        let ts: TaskSet = serde_json::from_str(&doctored).unwrap();
        let cpu = CpuSpec::arm8();
        let err = super::simulate(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_us(400)),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "invalid-task-set");
        assert!(err.to_string().contains("period must be positive"));
    }

    #[test]
    fn event_budget_cuts_off_with_partial_progress() {
        use crate::error::{BudgetKind, SimError};
        let cfg = SimConfig::new(Dur::from_ms(10)).with_max_events(50);
        let cpu = CpuSpec::arm8();
        let err =
            super::simulate(&table1(), &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg).unwrap_err();
        let SimError::BudgetExhausted {
            budget,
            limit,
            diagnostic,
        } = err
        else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(budget, BudgetKind::Events);
        assert_eq!(limit, 50);
        assert_eq!(diagnostic.events, 51);
        assert!(diagnostic.sim_time > Time::ZERO);
        assert!(diagnostic.completions > 0, "made no progress at all?");
        // A budget at least as large as the run's demand never trips.
        let full = SimConfig::new(Dur::from_ms(10)).with_max_events(1_000_000);
        let report =
            super::simulate(&table1(), &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &full).unwrap();
        assert!(report.all_deadlines_met());
    }

    #[test]
    fn segment_budget_cuts_off_with_partial_progress() {
        use crate::error::{BudgetKind, SimError};
        let cfg = SimConfig::new(Dur::from_ms(10)).with_max_segments(20);
        let cpu = CpuSpec::arm8();
        let err =
            super::simulate(&table1(), &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg).unwrap_err();
        let SimError::BudgetExhausted { budget, .. } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(budget, BudgetKind::Segments);
    }

    #[test]
    fn budgeted_run_that_finishes_is_byte_identical_to_unbudgeted() {
        // Budgets are cooperative cut-offs, not behavior: a run that fits
        // its budget must produce exactly the report of an unbounded run.
        let cpu = CpuSpec::arm8();
        let plain = SimConfig::new(Dur::from_us(400));
        let budgeted = SimConfig::new(Dur::from_us(400))
            .with_max_events(1_000_000)
            .with_max_segments(1_000_000)
            .with_wall_budget(std::time::Duration::from_secs(3600));
        let a = simulate(&table1(), &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &plain);
        let b = simulate(
            &table1(),
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &budgeted,
        );
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.energy.total_energy(), b.energy.total_energy());
    }

    /// A deliberately broken policy: powers down with a wake timer that
    /// lands after the next release (minus its wake-up latency).
    #[derive(Debug)]
    struct OversleepingPolicy;

    impl crate::policy::PolicyCore for OversleepingPolicy {
        fn name(&self) -> &'static str {
            "test-oversleep"
        }
    }

    impl PowerPolicy for OversleepingPolicy {
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
            if ctx.active.is_none() && ctx.run_queue.is_empty() {
                if let Some(head) = ctx.next_arrival() {
                    return PowerDirective::PowerDown {
                        wake_at: head, // too late: wake-up latency overshoots
                        mode: 0,
                    };
                }
            }
            PowerDirective::FullSpeed
        }
    }

    #[test]
    fn illegal_directive_is_a_typed_error_not_a_panic() {
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("t", Dur::from_us(100), Dur::from_us(25))],
        );
        let cpu = CpuSpec::arm8();
        let err = super::simulate(
            &ts,
            &cpu,
            &mut OversleepingPolicy,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_ms(1)),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "invalid-directive");
        assert!(err.to_string().contains("awake before the next release"));
    }

    #[test]
    fn workspace_survives_a_failing_run() {
        // The buffers must come back to the workspace on the error path:
        // a valid run through the same workspace afterwards matches a
        // fresh-workspace run exactly.
        let cpu = CpuSpec::arm8();
        let mut ws = SimWorkspace::new();
        let bad = SimConfig::new(Dur::from_ms(10)).with_max_events(10);
        let err = simulate_in(
            &table1(),
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &bad,
            &mut ws,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "budget-exhausted");
        let good = SimConfig::new(Dur::from_us(400));
        let reused = simulate_in(
            &table1(),
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &good,
            &mut ws,
        )
        .unwrap();
        let fresh = simulate(&table1(), &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &good);
        assert_eq!(reused.counters, fresh.counters);
        assert_eq!(reused.responses, fresh.responses);
        assert_eq!(reused.energy.total_energy(), fresh.energy.total_energy());
    }
}
