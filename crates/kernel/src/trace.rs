//! Simulation traces: a timestamped record of everything the kernel did.
//!
//! Traces reproduce the paper's Figure 2 schedules (and the queue
//! snapshots of Figures 3 and 5) and back the assertions in the
//! integration tests. Tracing is optional — long power sweeps disable it.

use lpfps_cpu::state::CpuState;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::task::TaskId;
use lpfps_tasks::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// One kernel event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Job `job` of `task` was released (moved delay queue -> run queue).
    Release { task: TaskId, job: u64 },
    /// `task` started or resumed executing on the processor.
    Dispatch { task: TaskId, job: u64 },
    /// `task` was preempted by `by` and returned to the run queue.
    Preempt { task: TaskId, by: TaskId },
    /// Job `job` of `task` completed with the given response time; `met`
    /// says whether it beat its deadline.
    Complete {
        task: TaskId,
        job: u64,
        response: Dur,
        met: bool,
    },
    /// A voltage/clock ramp began.
    RampStart { from: Freq, to: Freq },
    /// The ramp settled at `freq`.
    RampEnd { freq: Freq },
    /// The processor entered power-down mode with the timer set to `wake_at`.
    EnterPowerDown { wake_at: Time },
    /// The wake-up timer fired; the processor is returning to full power.
    Wakeup,
    /// The processor began spinning the NOP idle loop.
    IdleStart,
    /// The watchdog caught `task` exhausting its WCET budget with work
    /// still outstanding (an injected overrun; see
    /// [`FaultEvent`](crate::policy::FaultEvent)).
    BudgetOverrun { task: TaskId },
    /// The watchdog caught a release while the processor was not settled
    /// at full speed (a power transition overslept its plan).
    TimingViolation,
    /// One constant-power span between two decision points, stamped at the
    /// span's *start* instant: the processor state it occupied, the power
    /// it drew, and how long it lasted. The engine emits one for every
    /// non-zero advance, so consecutive segments tile the horizon exactly;
    /// the invariant checker (`lpfps-oracle`) replays them through a fresh
    /// [`EnergyMeter`](lpfps_cpu::EnergyMeter) to re-derive the report's
    /// energy integral bit-for-bit and to prove busy-time conservation.
    EnergySegment {
        state: CpuState,
        power: f64,
        dur: Dur,
    },
}

/// A timestamped sequence of kernel events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<(Time, TraceEvent)>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the last recorded event
    /// (traces are time-ordered by construction).
    pub fn push(&mut self, at: Time, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|&(t, _)| t <= at),
            "trace must be appended in time order"
        );
        self.events.push((at, event));
    }

    /// The number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates all `(time, event)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (Time, TraceEvent)> + '_ {
        self.events.iter().copied()
    }

    /// Iterates events in the half-open window `[from, to)`.
    pub fn window(&self, from: Time, to: Time) -> impl Iterator<Item = (Time, TraceEvent)> + '_ {
        self.events
            .iter()
            .copied()
            .filter(move |&(t, _)| t >= from && t < to)
    }

    /// The first event matching `pred`, with its time.
    pub fn find(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> Option<(Time, TraceEvent)> {
        self.events.iter().copied().find(|(_, e)| pred(e))
    }

    /// Counts events matching `pred`.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Renders the trace as one line per event (`time  event`).
    pub fn render(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        for (t, e) in self.iter() {
            let _ = writeln!(out, "{t:>12}  {e}");
        }
        out
    }
}

impl core::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            TraceEvent::Release { task, job } => write!(f, "release {task}#{job}"),
            TraceEvent::Dispatch { task, job } => write!(f, "dispatch {task}#{job}"),
            TraceEvent::Preempt { task, by } => write!(f, "preempt {task} by {by}"),
            TraceEvent::Complete {
                task,
                job,
                response,
                met,
            } => write!(
                f,
                "complete {task}#{job} (response {response}, {})",
                if met { "met" } else { "MISSED" }
            ),
            TraceEvent::RampStart { from, to } => write!(f, "ramp start {from} -> {to}"),
            TraceEvent::RampEnd { freq } => write!(f, "ramp end at {freq}"),
            TraceEvent::EnterPowerDown { wake_at } => {
                write!(f, "power-down (wake at {wake_at})")
            }
            TraceEvent::Wakeup => write!(f, "wake-up"),
            TraceEvent::IdleStart => write!(f, "idle (NOP loop)"),
            TraceEvent::BudgetOverrun { task } => write!(f, "budget overrun by {task}"),
            TraceEvent::TimingViolation => {
                write!(f, "timing violation (release while not at full speed)")
            }
            TraceEvent::EnergySegment { state, power, dur } => {
                write!(f, "energy segment {state:?} for {dur} at {power:.6} W")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query_roundtrip() {
        let mut tr = Trace::new();
        tr.push(
            Time::from_us(0),
            TraceEvent::Release {
                task: TaskId(0),
                job: 0,
            },
        );
        tr.push(
            Time::from_us(0),
            TraceEvent::Dispatch {
                task: TaskId(0),
                job: 0,
            },
        );
        tr.push(
            Time::from_us(10),
            TraceEvent::Complete {
                task: TaskId(0),
                job: 0,
                response: Dur::from_us(10),
                met: true,
            },
        );
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.count(|e| matches!(e, TraceEvent::Dispatch { .. })), 1);
        let (t, _) = tr
            .find(|e| matches!(e, TraceEvent::Complete { .. }))
            .expect("complete recorded");
        assert_eq!(t, Time::from_us(10));
    }

    #[test]
    fn window_is_half_open() {
        let mut tr = Trace::new();
        for us in [0u64, 50, 100] {
            tr.push(Time::from_us(us), TraceEvent::IdleStart);
        }
        assert_eq!(tr.window(Time::from_us(0), Time::from_us(100)).count(), 2);
        assert_eq!(tr.window(Time::from_us(50), Time::from_us(101)).count(), 2);
    }

    #[test]
    fn render_mentions_every_event() {
        let mut tr = Trace::new();
        tr.push(
            Time::from_us(160),
            TraceEvent::RampStart {
                from: Freq::from_mhz(100),
                to: Freq::from_mhz(50),
            },
        );
        tr.push(
            Time::from_us(180),
            TraceEvent::EnterPowerDown {
                wake_at: Time::from_us(200),
            },
        );
        let text = tr.render();
        assert!(text.contains("ramp start 100MHz -> 50MHz"));
        assert!(text.contains("power-down (wake at 200us)"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics_in_debug() {
        let mut tr = Trace::new();
        tr.push(Time::from_us(10), TraceEvent::IdleStart);
        tr.push(Time::from_us(5), TraceEvent::IdleStart);
    }
}
