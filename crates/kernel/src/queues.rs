//! The two kernel queues of the paper's scheduler model (Katcher et al.;
//! Burns, Tindell & Wellings).
//!
//! * The **run queue** holds released, unfinished tasks ordered by the
//!   dispatch discipline's urgency key (fixed priority by default); the
//!   head is the next task to dispatch.
//! * The **delay queue** holds tasks that completed their current job and
//!   wait for their next period, ordered by release time; the head gives
//!   the *exact* next arrival — the knowledge LPFPS exploits for both
//!   power-down timers and speed scaling.
//!
//! Both are tiny ordered vectors: task counts in this domain are tens, not
//! thousands, and a sorted `Vec` beats heap structures at that size while
//! giving deterministic iteration for traces and tests.

use lpfps_tasks::task::{Priority, TaskId};
use lpfps_tasks::time::{Dur, Time};

/// Urgency-ordered queue of released, runnable tasks.
///
/// Generic over the [`Discipline`](crate::discipline::Discipline) ordering
/// key `K`, with **smaller key = more urgent** (the fixed-priority
/// convention). The default `K` is [`Priority`], the paper's fixed-priority
/// queue.
///
/// # Examples
///
/// ```
/// use lpfps_kernel::queues::RunQueue;
/// use lpfps_tasks::task::{Priority, TaskId};
///
/// let mut q = RunQueue::new();
/// q.insert(TaskId(2), Priority::new(2));
/// q.insert(TaskId(0), Priority::new(0));
/// assert_eq!(q.head(), Some(TaskId(0)));
/// assert_eq!(q.pop(), Some(TaskId(0)));
/// assert_eq!(q.pop(), Some(TaskId(2)));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RunQueue<K = Priority> {
    // Sorted *descending* by key, so the head (most urgent = smallest key)
    // sits at the back and `pop` is an O(1) `Vec::pop` instead of a front
    // `remove(0)` memmove. Equal keys keep the front-sorted queue's
    // semantics: the most recent insert pops first.
    entries: Vec<(K, TaskId)>,
}

// Hand-written so the empty queue exists for every key type (a derived
// `Default` would needlessly require `K: Default`).
impl<K> Default for RunQueue<K> {
    fn default() -> Self {
        RunQueue {
            entries: Vec::new(),
        }
    }
}

impl<K: Copy + Ord> RunQueue<K> {
    /// Creates an empty run queue.
    pub fn new() -> Self {
        RunQueue::default()
    }

    /// Inserts a task at its urgency position.
    ///
    /// # Panics
    ///
    /// Panics if the task is already queued (a periodic task has at most
    /// one live job in this kernel model).
    pub fn insert(&mut self, task: TaskId, key: K) {
        assert!(
            !self.contains(task),
            "task {task} is already in the run queue"
        );
        let pos = self.entries.partition_point(|&(k, _)| k >= key);
        self.entries.insert(pos, (key, task));
    }

    /// The most urgent queued task, if any.
    pub fn head(&self) -> Option<TaskId> {
        self.entries.last().map(|&(_, t)| t)
    }

    /// The ordering key of the head, if any.
    pub fn head_key(&self) -> Option<K> {
        self.entries.last().map(|&(k, _)| k)
    }

    /// Removes and returns the most urgent task.
    pub fn pop(&mut self) -> Option<TaskId> {
        self.entries.pop().map(|(_, t)| t)
    }

    /// True if no task is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Empties the queue, keeping its allocation (workspace reuse).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The number of queued tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the task is queued.
    pub fn contains(&self, task: TaskId) -> bool {
        self.entries.iter().any(|&(_, t)| t == task)
    }

    /// Iterates queued tasks from most to least urgent.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.entries.iter().rev().map(|&(_, t)| t)
    }
}

impl RunQueue<Priority> {
    /// The priority of the head, if any (fixed-priority-specific alias of
    /// [`RunQueue::head_key`]).
    pub fn head_priority(&self) -> Option<Priority> {
        self.head_key()
    }
}

/// Release-time-ordered queue of tasks waiting for their next period.
///
/// Ties on release time break by priority, then task id, so simulation
/// traces are fully deterministic.
#[derive(Debug, Clone, Default)]
pub struct DelayQueue {
    // Sorted ascending by (release, priority, id).
    entries: Vec<(Time, Priority, TaskId)>,
}

impl DelayQueue {
    /// Creates an empty delay queue.
    pub fn new() -> Self {
        DelayQueue::default()
    }

    /// Inserts a task with its next release time.
    ///
    /// # Panics
    ///
    /// Panics if the task is already queued.
    pub fn insert(&mut self, task: TaskId, prio: Priority, release: Time) {
        assert!(
            !self.contains(task),
            "task {task} is already in the delay queue"
        );
        let key = (release, prio, task);
        let pos = self.entries.partition_point(|&e| e < key);
        self.entries.insert(pos, key);
    }

    /// The earliest queued release time (the paper's `t_a` source).
    pub fn head_release(&self) -> Option<Time> {
        self.entries.first().map(|&(r, _, _)| r)
    }

    /// The task at the head, if any.
    pub fn head(&self) -> Option<TaskId> {
        self.entries.first().map(|&(_, _, t)| t)
    }

    /// Removes and returns every task whose release time is `<= now`, in
    /// release order (the scheduler's L5–L7 loop).
    ///
    /// Allocates a fresh `Vec` per call; the engine's hot path uses
    /// [`DelayQueue::pop_due_into`] with a reusable scratch buffer
    /// instead.
    pub fn pop_due(&mut self, now: Time) -> Vec<(TaskId, Time)> {
        let mut due = Vec::new();
        self.pop_due_into(now, &mut due);
        due
    }

    /// Removes every task whose release time is `<= now` into `due` (in
    /// release order), clearing it first. The allocation-free form of
    /// [`DelayQueue::pop_due`]: a caller-provided scratch buffer amortizes
    /// to zero allocations across scheduler passes.
    pub fn pop_due_into(&mut self, now: Time, due: &mut Vec<(TaskId, Time)>) {
        due.clear();
        let split = self.entries.partition_point(|&(r, _, _)| r <= now);
        due.extend(self.entries.drain(..split).map(|(r, _, t)| (t, r)));
    }

    /// Shifts every queued release forward by `by` (the steady-state
    /// fast-forward's state jump). A uniform shift preserves the
    /// `(release, priority, id)` ordering, so the sorted invariant holds
    /// without re-sorting.
    pub(crate) fn shift(&mut self, by: Dur) {
        for entry in &mut self.entries {
            entry.0 = entry.0.saturating_add(by);
        }
    }

    /// True if no task is waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Empties the queue, keeping its allocation (workspace reuse).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The number of waiting tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the task is queued.
    pub fn contains(&self, task: TaskId) -> bool {
        self.entries.iter().any(|&(_, _, t)| t == task)
    }

    /// Iterates `(task, release)` pairs in release order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, Time)> + '_ {
        self.entries.iter().map(|&(r, _, t)| (t, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_queue_orders_by_priority() {
        let mut q = RunQueue::new();
        q.insert(TaskId(1), Priority::new(5));
        q.insert(TaskId(2), Priority::new(1));
        q.insert(TaskId(3), Priority::new(3));
        let order: Vec<TaskId> = q.iter().collect();
        assert_eq!(order, vec![TaskId(2), TaskId(3), TaskId(1)]);
        assert_eq!(q.head_priority(), Some(Priority::new(1)));
    }

    #[test]
    fn run_queue_pop_drains_in_priority_order() {
        let mut q = RunQueue::new();
        for (id, p) in [(0usize, 2u32), (1, 0), (2, 1)] {
            q.insert(TaskId(id), Priority::new(p));
        }
        assert_eq!(q.pop(), Some(TaskId(1)));
        assert_eq!(q.pop(), Some(TaskId(2)));
        assert_eq!(q.pop(), Some(TaskId(0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "already in the run queue")]
    fn run_queue_rejects_duplicates() {
        let mut q = RunQueue::new();
        q.insert(TaskId(0), Priority::new(0));
        q.insert(TaskId(0), Priority::new(1));
    }

    #[test]
    fn delay_queue_orders_by_release() {
        let mut q = DelayQueue::new();
        q.insert(TaskId(0), Priority::new(0), Time::from_us(200));
        q.insert(TaskId(1), Priority::new(1), Time::from_us(160));
        q.insert(TaskId(2), Priority::new(2), Time::from_us(200));
        assert_eq!(q.head(), Some(TaskId(1)));
        assert_eq!(q.head_release(), Some(Time::from_us(160)));
        // Equal releases tie-break by priority: TaskId(0) before TaskId(2).
        let order: Vec<TaskId> = q.iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![TaskId(1), TaskId(0), TaskId(2)]);
    }

    #[test]
    fn pop_due_takes_only_elapsed_releases() {
        let mut q = DelayQueue::new();
        q.insert(TaskId(0), Priority::new(0), Time::from_us(100));
        q.insert(TaskId(1), Priority::new(1), Time::from_us(150));
        q.insert(TaskId(2), Priority::new(2), Time::from_us(200));
        let due = q.pop_due(Time::from_us(150));
        assert_eq!(
            due,
            vec![
                (TaskId(0), Time::from_us(100)),
                (TaskId(1), Time::from_us(150))
            ]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.head(), Some(TaskId(2)));
    }

    #[test]
    fn pop_due_on_empty_queue_is_empty() {
        let mut q = DelayQueue::new();
        assert!(q.pop_due(Time::from_us(1_000)).is_empty());
    }

    #[test]
    fn pop_due_into_matches_pop_due_and_reuses_the_buffer() {
        let mut a = DelayQueue::new();
        let mut b = DelayQueue::new();
        for (id, us) in [(0usize, 100u64), (1, 150), (2, 200)] {
            a.insert(TaskId(id), Priority::new(id as u32), Time::from_us(us));
            b.insert(TaskId(id), Priority::new(id as u32), Time::from_us(us));
        }
        let mut scratch = Vec::new();
        a.pop_due_into(Time::from_us(150), &mut scratch);
        assert_eq!(scratch, b.pop_due(Time::from_us(150)));
        let capacity = scratch.capacity();
        // A later pass clears stale contents and reuses the allocation.
        a.pop_due_into(Time::from_us(200), &mut scratch);
        assert_eq!(scratch, vec![(TaskId(2), Time::from_us(200))]);
        assert_eq!(scratch.capacity(), capacity);
    }

    #[test]
    fn run_queue_equal_priorities_pop_most_recently_inserted_first() {
        // The historical front-sorted queue inserted new entries *before*
        // existing equals; the back-popped layout must preserve that.
        let mut q = RunQueue::new();
        q.insert(TaskId(0), Priority::new(1));
        q.insert(TaskId(1), Priority::new(1));
        q.insert(TaskId(2), Priority::new(0));
        assert_eq!(q.pop(), Some(TaskId(2)));
        assert_eq!(q.pop(), Some(TaskId(1)));
        assert_eq!(q.pop(), Some(TaskId(0)));
    }

    #[test]
    #[should_panic(expected = "already in the delay queue")]
    fn delay_queue_rejects_duplicates() {
        let mut q = DelayQueue::new();
        q.insert(TaskId(0), Priority::new(0), Time::from_us(1));
        q.insert(TaskId(0), Priority::new(0), Time::from_us(2));
    }

    #[test]
    fn paper_figure3a_snapshot() {
        // Figure 3(a): at time 0 tau1 is active; tau2, tau3 wait in the run
        // queue in priority order; the delay queue is empty.
        let mut run = RunQueue::new();
        run.insert(TaskId(1), Priority::new(1));
        run.insert(TaskId(2), Priority::new(2));
        let delay = DelayQueue::new();
        assert_eq!(run.head(), Some(TaskId(1)));
        assert!(delay.is_empty());
    }

    #[test]
    fn paper_figure5a_snapshot() {
        // Figure 5(a): at time 160 tau2 just became active, tau1 (release
        // 200) and tau3 (release 200) wait in the delay queue; run queue
        // empty. tau1 outranks tau3 at the same release instant.
        let mut delay = DelayQueue::new();
        delay.insert(TaskId(2), Priority::new(2), Time::from_us(200));
        delay.insert(TaskId(0), Priority::new(0), Time::from_us(200));
        assert_eq!(delay.head(), Some(TaskId(0)));
        assert_eq!(delay.head_release(), Some(Time::from_us(200)));
    }
}
