//! Text Gantt charts reconstructed from simulation traces.
//!
//! Renders per-task execution bars plus a processor-state row, the format
//! used by the `fig2_schedule` experiment binary to reproduce the paper's
//! Figure 2 schedules in a terminal.

use crate::trace::{Trace, TraceEvent};
use lpfps_tasks::task::TaskId;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};

/// A closed-open execution interval of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSegment {
    /// The executing task.
    pub task: TaskId,
    /// Segment start.
    pub from: Time,
    /// Segment end (exclusive).
    pub to: Time,
}

/// Coarse processor condition for the state row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcCondition {
    Run,
    Ramp,
    PowerDown,
    Idle,
}

/// A reconstructed schedule timeline.
#[derive(Debug, Clone)]
pub struct Gantt {
    segments: Vec<ExecSegment>,
    conditions: Vec<(Time, ProcCondition)>,
    end: Time,
}

impl Gantt {
    /// Reconstructs the timeline from a trace, up to `end`.
    pub fn from_trace(trace: &Trace, end: Time) -> Self {
        let mut segments = Vec::new();
        let mut conditions: Vec<(Time, ProcCondition)> = vec![(Time::ZERO, ProcCondition::Idle)];
        let mut running: Option<(TaskId, Time)> = None;

        let close = |running: &mut Option<(TaskId, Time)>, at: Time, out: &mut Vec<ExecSegment>| {
            if let Some((task, from)) = running.take() {
                if at > from {
                    out.push(ExecSegment { task, from, to: at });
                }
            }
        };

        for (t, e) in trace.iter() {
            match e {
                TraceEvent::Dispatch { task, .. } => {
                    close(&mut running, t, &mut segments);
                    running = Some((task, t));
                    conditions.push((t, ProcCondition::Run));
                }
                TraceEvent::Preempt { task, .. } => {
                    if running.map(|(r, _)| r) == Some(task) {
                        close(&mut running, t, &mut segments);
                    }
                }
                TraceEvent::Complete { task, .. } => {
                    if running.map(|(r, _)| r) == Some(task) {
                        close(&mut running, t, &mut segments);
                        conditions.push((t, ProcCondition::Idle));
                    }
                }
                TraceEvent::RampStart { .. } => conditions.push((t, ProcCondition::Ramp)),
                TraceEvent::RampEnd { .. } => conditions.push((
                    t,
                    if running.is_some() {
                        ProcCondition::Run
                    } else {
                        ProcCondition::Idle
                    },
                )),
                TraceEvent::EnterPowerDown { .. } => conditions.push((t, ProcCondition::PowerDown)),
                TraceEvent::Wakeup => conditions.push((t, ProcCondition::Idle)),
                TraceEvent::IdleStart => conditions.push((t, ProcCondition::Idle)),
                TraceEvent::Release { .. } => {}
                // Watchdog annotations and energy bookkeeping carry no
                // processor-condition change.
                TraceEvent::BudgetOverrun { .. }
                | TraceEvent::TimingViolation
                | TraceEvent::EnergySegment { .. } => {}
            }
        }
        close(&mut running, end, &mut segments);
        Gantt {
            segments,
            conditions,
            end,
        }
    }

    /// The reconstructed execution segments, in time order.
    pub fn segments(&self) -> &[ExecSegment] {
        &self.segments
    }

    /// Total execution time attributed to one task.
    pub fn task_busy(&self, task: TaskId) -> Dur {
        self.segments
            .iter()
            .filter(|s| s.task == task)
            .map(|s| s.to.saturating_since(s.from))
            .sum()
    }

    /// Renders an ASCII chart: one row per task (`#` = executing) plus a
    /// processor row (`#` run, `~` ramp, `z` power-down, `.` idle), at
    /// `us_per_col` microseconds per column.
    ///
    /// # Panics
    ///
    /// Panics if `us_per_col` is zero.
    pub fn render(&self, ts: &TaskSet, us_per_col: u64) -> String {
        assert!(us_per_col > 0, "resolution must be positive");
        let cols = (self.end.as_us()).div_ceil(us_per_col) as usize;
        let name_w = ts
            .iter()
            .map(|(_, t, _)| t.name().len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();

        for (id, task, _) in ts.iter() {
            let mut row = vec![' '; cols];
            for seg in self.segments.iter().filter(|s| s.task == id) {
                let a = (seg.from.as_us() / us_per_col) as usize;
                let b = (seg.to.as_us().div_ceil(us_per_col) as usize).min(cols);
                for c in row.iter_mut().take(b).skip(a) {
                    *c = '#';
                }
            }
            out.push_str(&format!("{:>name_w$} |", task.name()));
            out.extend(row);
            out.push_str("|\n");
        }

        // Processor condition row.
        let mut row = vec!['.'; cols];
        for (i, &(from, cond)) in self.conditions.iter().enumerate() {
            let to = self
                .conditions
                .get(i + 1)
                .map(|&(t, _)| t)
                .unwrap_or(self.end);
            let ch = match cond {
                ProcCondition::Run => '#',
                ProcCondition::Ramp => '~',
                ProcCondition::PowerDown => 'z',
                ProcCondition::Idle => '.',
            };
            let a = (from.as_us() / us_per_col) as usize;
            let b = (to.as_us().div_ceil(us_per_col) as usize).min(cols);
            for c in row.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        out.push_str(&format!("{:>name_w$} |", "cpu"));
        out.extend(row);
        out.push_str("|\n");

        // Time axis with a tick every 10 columns.
        out.push_str(&format!("{:>name_w$}  ", ""));
        let mut axis = String::new();
        let mut col = 0usize;
        while col < cols {
            let label = format!("{}", col as u64 * us_per_col);
            axis.push_str(&label);
            let pad = 10usize.saturating_sub(label.len());
            axis.push_str(&" ".repeat(pad));
            col += 10;
        }
        axis.truncate(cols + 10);
        out.push_str(&axis);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::policy::AlwaysFullSpeed;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_tasks::exec::AlwaysWcet;
    use lpfps_tasks::task::Task;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    fn gantt_of(horizon_us: u64) -> (TaskSet, Gantt) {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_us(horizon_us)).with_trace();
        let report = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg).unwrap();
        let gantt = Gantt::from_trace(report.trace.as_ref().unwrap(), Time::from_us(horizon_us));
        (ts, gantt)
    }

    #[test]
    fn segments_partition_busy_time() {
        let (_, g) = gantt_of(400);
        // Over one hyperperiod at WCET: tau1 8*10, tau2 5*20, tau3 4*40.
        assert_eq!(g.task_busy(TaskId(0)), Dur::from_us(80));
        assert_eq!(g.task_busy(TaskId(1)), Dur::from_us(100));
        assert_eq!(g.task_busy(TaskId(2)), Dur::from_us(160));
    }

    #[test]
    fn figure2a_first_segments() {
        let (_, g) = gantt_of(100);
        let segs = g.segments();
        // tau1 [0,10), tau2 [10,30), tau3 [30,50), tau1 [50,60), tau3 [60,80), tau2 [80,100).
        assert_eq!(
            segs[0],
            ExecSegment {
                task: TaskId(0),
                from: Time::ZERO,
                to: Time::from_us(10)
            }
        );
        assert_eq!(
            segs[1],
            ExecSegment {
                task: TaskId(1),
                from: Time::from_us(10),
                to: Time::from_us(30)
            }
        );
        assert_eq!(
            segs[2],
            ExecSegment {
                task: TaskId(2),
                from: Time::from_us(30),
                to: Time::from_us(50)
            }
        );
        assert_eq!(
            segs[3],
            ExecSegment {
                task: TaskId(0),
                from: Time::from_us(50),
                to: Time::from_us(60)
            }
        );
        assert_eq!(
            segs[4],
            ExecSegment {
                task: TaskId(2),
                from: Time::from_us(60),
                to: Time::from_us(80)
            }
        );
        assert_eq!(
            segs[5],
            ExecSegment {
                task: TaskId(1),
                from: Time::from_us(80),
                to: Time::from_us(100)
            }
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let (ts, g) = gantt_of(200);
        let chart = g.render(&ts, 5);
        assert!(chart.contains("tau1 |"));
        assert!(chart.contains("tau2 |"));
        assert!(chart.contains("tau3 |"));
        assert!(chart.contains("cpu |") || chart.contains(" cpu |"));
        assert!(chart.contains('#'));
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_rejected() {
        let (ts, g) = gantt_of(100);
        let _ = g.render(&ts, 0);
    }

    use lpfps_faults::{FaultConfig, OverrunFault};
    use lpfps_tasks::exec::PaperGaussian;

    /// Table 1 at varied seeds and fault streams: plenty of preemptions
    /// and resumptions, every reconstruction a fresh chance to overlap.
    fn varied_gantts() -> Vec<(Trace, Gantt)> {
        let cpu = CpuSpec::arm8();
        let mut out = Vec::new();
        for seed in 0..8u64 {
            for faulted in [false, true] {
                let mut cfg = SimConfig::new(Dur::from_us(800))
                    .with_seed(seed)
                    .with_trace();
                if faulted {
                    cfg = cfg.with_faults(
                        FaultConfig::none()
                            .with_seed(seed)
                            .with_overrun(OverrunFault::clamped(0.3, 0.3, 1.3)),
                    );
                }
                let ts = table1().with_bcet_fraction(0.5);
                let report =
                    simulate(&ts, &cpu, &mut AlwaysFullSpeed, &PaperGaussian, &cfg).unwrap();
                let trace = report.trace.clone().unwrap();
                let gantt = Gantt::from_trace(&trace, Time::from_us(800));
                out.push((trace, gantt));
            }
        }
        out
    }

    #[test]
    fn segments_are_ordered_and_never_overlap() {
        for (_, g) in varied_gantts() {
            for pair in g.segments().windows(2) {
                assert!(pair[0].from < pair[0].to, "empty segment {:?}", pair[0]);
                assert!(
                    pair[0].to <= pair[1].from,
                    "overlapping segments {:?} and {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn segments_tile_traced_busy_intervals_exactly() {
        use lpfps_cpu::state::StateKind;
        // The trace's energy segments are the ground truth for when the
        // processor was busy executing a task (full-speed runs: the Busy
        // state and nothing else). Merged execution segments must
        // reproduce those busy intervals interval-for-interval.
        for (trace, g) in varied_gantts() {
            let mut busy: Vec<(Time, Time)> = Vec::new();
            for (at, e) in trace.iter() {
                if let TraceEvent::EnergySegment { state, dur, .. } = e {
                    if state.kind() == StateKind::Busy {
                        match busy.last_mut() {
                            Some(last) if last.1 == at => last.1 = at + dur,
                            _ => busy.push((at, at + dur)),
                        }
                    }
                }
            }
            let mut merged: Vec<(Time, Time)> = Vec::new();
            for s in g.segments() {
                match merged.last_mut() {
                    Some(last) if last.1 == s.from => last.1 = s.to,
                    _ => merged.push((s.from, s.to)),
                }
            }
            assert_eq!(
                merged, busy,
                "execution segments drifted from the energy stream"
            );
        }
    }

    /// One-shot slow-down (see `tests/trace_events.rs`): used here to park
    /// a ramp *entirely inside an idle window* — the task retires at low
    /// speed, then the kernel ramps back to full with nothing running.
    #[derive(Debug, Default)]
    struct SlowOnce {
        fired: bool,
    }

    impl crate::policy::PolicyCore for SlowOnce {
        fn name(&self) -> &'static str {
            "slow-once"
        }
    }

    impl crate::policy::PowerPolicy for SlowOnce {
        fn decide(
            &mut self,
            ctx: &crate::policy::SchedulerContext<'_>,
        ) -> crate::policy::PowerDirective {
            use lpfps_tasks::freq::Freq;
            if !self.fired && ctx.active.is_some() && ctx.run_queue.is_empty() {
                if let Some(t_a) = ctx.next_arrival() {
                    let freq = Freq::from_mhz(50);
                    self.fired = true;
                    return crate::policy::PowerDirective::SlowDown {
                        freq,
                        speedup_at: t_a - ctx.cpu.ramp_duration(freq, ctx.cpu.full_freq()),
                    };
                }
            }
            crate::policy::PowerDirective::FullSpeed
        }
    }

    /// Regression: a ramp that starts *and* ends inside one idle window
    /// must leave the condition row idle afterwards (`RampEnd` with no
    /// runner used to be easy to misclassify as a return to `Run`), and
    /// must never mint an execution segment.
    #[test]
    fn ramp_inside_an_idle_window_stays_idle() {
        let ts = TaskSet::rate_monotonic(
            "ramp-idle",
            vec![
                Task::new("a", Dur::from_us(100), Dur::from_us(10)),
                Task::new("b", Dur::from_us(400), Dur::from_us(20)),
            ],
        );
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_us(100)).with_trace();
        let report = simulate(&ts, &cpu, &mut SlowOnce::default(), &AlwaysWcet, &cfg).unwrap();
        let trace = report.trace.as_ref().unwrap();
        let g = Gantt::from_trace(trace, Time::from_us(100));

        // b retires slowed, strictly before a's next release...
        let segs = g.segments();
        assert_eq!(segs.len(), 2, "a then b, nothing else: {segs:?}");
        let done = segs[1].to;
        assert!(done > Time::from_us(10) && done < Time::from_us(100));
        // ...and the ramp back to full speed lies wholly in the idle tail.
        let ramp_end = trace
            .iter()
            .filter(|(at, e)| matches!(e, TraceEvent::RampEnd { .. }) && *at > done)
            .map(|(at, _)| at)
            .next()
            .expect("the kernel ramps back to full during the idle window");
        assert!(ramp_end < Time::from_us(100));

        // No execution segment may touch the idle window.
        assert!(segs.iter().all(|s| s.to <= done));
        // After the in-idle ramp, the condition row must read idle ('.')
        // all the way to the next release.
        let chart = g.render(&ts, 1);
        let cpu_row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("cpu |"))
            .expect("cpu row present");
        let cells: Vec<char> = cpu_row
            .split('|')
            .nth(1)
            .expect("row body")
            .chars()
            .collect();
        let first_idle_col = ramp_end.as_ns().div_ceil(1_000) as usize;
        for (col, &cell) in cells.iter().enumerate().take(100).skip(first_idle_col) {
            assert_eq!(
                cell, '.',
                "column {col} (us) after the idle-window ramp must be idle\n{chart}"
            );
        }
    }
}
