// The library boundary is panic-free: untrusted input must surface as a
// typed error (`error::SimError`), never abort the process. Tests and
// binaries may still unwrap freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # lpfps-kernel
//!
//! A deterministic discrete-event simulator of a preemptive real-time
//! kernel, built for the reproduction of *Power Conscious Fixed Priority
//! Scheduling for Hard Real-Time Systems* (Shin & Choi, DAC 1999). The
//! dispatch discipline is pluggable (see [`discipline`]): the default
//! [`FixedPriority`] reproduces the paper's scheduler exactly, and
//! [`Edf`] drives the same engine by earliest absolute deadline for the
//! deadline-driven baselines.
//!
//! The kernel model is the one the paper builds on (Katcher et al.; Burns,
//! Tindell & Wellings): a priority-ordered **run queue** of released tasks
//! and a release-time-ordered **delay queue** of tasks waiting for their
//! next period, with the currently executing **active task** held in
//! neither. Scheduling policies plug in through the
//! [`PowerPolicy`] hook, which receives exactly the
//! information a real scheduler has (queue contents, the active job's
//! WCET-remaining work, the delay-queue head) and answers with a
//! [`PowerDirective`]: stay at full speed, power
//! down with a wake timer, or slow the clock for the lone active task.
//!
//! The engine models the paper's processor physics faithfully: execution
//! continues *during* voltage/clock ramps, power-down wake-ups cost 10
//! cycles, and every scheduler invocation at reduced speed first raises
//! the clock to maximum (pseudo-code L1–L4).
//!
//! # Example
//!
//! ```
//! use lpfps_kernel::{engine::{simulate, SimConfig}, policy::AlwaysFullSpeed};
//! use lpfps_cpu::spec::CpuSpec;
//! use lpfps_tasks::{exec::AlwaysWcet, task::Task, taskset::TaskSet, time::Dur};
//!
//! let ts = TaskSet::rate_monotonic("table1", vec![
//!     Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
//!     Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
//!     Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
//! ]);
//! let cpu = CpuSpec::arm8();
//! let report = simulate(
//!     &ts,
//!     &cpu,
//!     &mut AlwaysFullSpeed,
//!     &AlwaysWcet,
//!     &SimConfig::new(Dur::from_us(400)),
//! ).unwrap();
//! assert!(report.all_deadlines_met());
//! // FPS burns the 15% schedule slack in the NOP loop: 0.85 + 0.15*0.2.
//! assert!((report.average_power() - 0.88).abs() < 1e-6);
//! ```

pub mod discipline;
pub mod engine;
pub mod error;
pub mod gantt;
pub mod policy;
pub mod probe;
pub mod queues;
pub mod report;
pub mod stats;
pub mod steady;
pub mod trace;

pub use discipline::{Discipline, Edf, EdfKey, FixedPriority};
pub use engine::{
    simulate, simulate_in_for, simulate_in_probed, simulate_in_probed_for, SimConfig,
};
pub use error::{BudgetKind, PartialDiagnostic, SimError};
pub use policy::{ActiveView, PolicyCore, PowerDirective, PowerPolicy, SchedulerContext};
pub use probe::{NoProbe, Probe};
pub use report::{Counters, DeadlineMiss, ResponseStats, SimReport};
pub use stats::{IntervalStats, ResponseHistogram};
pub use steady::FastForwardStats;
pub use trace::{Trace, TraceEvent};
