//! Simulation results: energy, timing statistics, and counters.

use crate::stats::{IntervalStats, ResponseHistogram};
use crate::trace::Trace;
use lpfps_cpu::energy::EnergyMeter;
use lpfps_cpu::state::StateKind;
use lpfps_tasks::task::TaskId;
use lpfps_tasks::time::{Dur, Time};
use serde::{value, Deserialize, Error, Map, Serialize, Value};

/// Per-task response-time statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Completed jobs.
    pub completed: u64,
    /// Worst observed response time.
    pub max_response: Dur,
    /// Sum of response times (for the mean).
    pub total_response: Dur,
}

impl ResponseStats {
    /// Records one completion.
    pub fn record(&mut self, response: Dur) {
        self.completed += 1;
        self.max_response = self.max_response.max(response);
        self.total_response += response;
    }

    /// The mean response time, or zero if nothing completed.
    pub fn mean_response(&self) -> Dur {
        if self.completed == 0 {
            Dur::ZERO
        } else {
            self.total_response / self.completed
        }
    }
}

/// A recorded deadline miss.
///
/// # Boundary convention
///
/// A job is on time **iff it completes at or before its deadline**;
/// completing *exactly at* the deadline is on time. The same rule is
/// applied at the simulation horizon: a job whose work retires exactly at
/// the horizon boundary counts as completed there, so it misses only if
/// its deadline lies strictly before the horizon end, while a job with
/// work still remaining at the horizon misses whenever its deadline is at
/// or before the horizon end (`deadline <= horizon_end`) — by then the
/// deadline has passed without completion. Jobs whose deadlines lie
/// beyond the horizon are never judged (the simulation cannot know their
/// fate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlineMiss {
    /// The violating task.
    pub task: TaskId,
    /// The job index within the task.
    pub job: u64,
    /// The absolute deadline that was missed.
    pub deadline: Time,
    /// When the job actually completed (`None` if still unfinished at the
    /// simulation horizon).
    pub completed_at: Option<Time>,
}

/// Activity counters over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Decision points processed by the engine's event loop (release,
    /// completion, ramp end, wake-up, timer). Deterministic for a given
    /// configuration, and the denominator-free measure of simulation work
    /// behind the sweep engine's events/sec throughput metric.
    pub events: u64,
    /// Scheduler passes executed at full speed (the paper's L8-L21 path).
    pub sched_passes: u64,
    /// Jobs released.
    pub releases: u64,
    /// Jobs completed.
    pub completions: u64,
    /// Preemptions (a running job displaced by a higher-priority release).
    pub preemptions: u64,
    /// Dispatches (context loads), including first starts and resumptions.
    pub dispatches: u64,
    /// Voltage/clock ramps initiated.
    pub ramps: u64,
    /// Power-down entries.
    pub power_downs: u64,
    /// Jobs released with an injected WCET overrun (realized demand above
    /// the budget). Zero without a fault model.
    pub overruns: u64,
    /// Watchdog detections: budget exhaustions plus timing violations
    /// (releases caught while the processor was not settled at full
    /// speed). Zero under the idealized model.
    pub watchdog_faults: u64,
    /// Faults after which the policy reported engaging a degraded mode
    /// (see [`PowerPolicy::on_fault`](crate::policy::PowerPolicy)).
    pub degradations: u64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Policy name ("fps", "lpfps", ...).
    pub policy: String,
    /// The dispatch discipline the run was scheduled under
    /// ([`Discipline::NAME`](crate::discipline::Discipline::NAME): "fp",
    /// "edf"). Serialized only when it differs from `"fp"`, so every
    /// fixed-priority report keeps its pre-discipline byte layout; absent
    /// tags deserialize as `"fp"`.
    pub discipline: &'static str,
    /// Task-set name.
    pub taskset: String,
    /// Simulated horizon.
    pub horizon: Dur,
    /// Energy and state-residency accounting.
    pub energy: EnergyMeter,
    /// Deadline misses (empty on a correct run of a schedulable set).
    pub misses: Vec<DeadlineMiss>,
    /// Per-task response statistics, indexed by task id.
    pub responses: Vec<ResponseStats>,
    /// Activity counters.
    pub counters: Counters,
    /// Distribution of intervals during which no task was runnable.
    pub idle_gaps: IntervalStats,
    /// Normalized energy attributed to each task's execution (busy and
    /// busy-ramp time while that task held the processor), indexed by
    /// task id. Idle/power-down/wake-up energy is unattributed.
    pub task_energy: Vec<f64>,
    /// Per-task response-time histograms (deadline-relative buckets),
    /// indexed by task id.
    pub histograms: Vec<ResponseHistogram>,
    /// The event trace, if tracing was enabled.
    pub trace: Option<Trace>,
}

// Hand-written (not derived) for exactly one reason: the `discipline` tag
// is emitted only when it differs from "fp", keeping every fixed-priority
// report — including the committed results and the golden fingerprint
// matrix — byte-identical to the pre-discipline serialization. All other
// fields follow the derive's declaration-order layout.
impl Serialize for SimReport {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert(String::from("policy"), self.policy.to_value());
        if self.discipline != "fp" {
            map.insert(String::from("discipline"), self.discipline.to_value());
        }
        map.insert(String::from("taskset"), self.taskset.to_value());
        map.insert(String::from("horizon"), self.horizon.to_value());
        map.insert(String::from("energy"), self.energy.to_value());
        map.insert(String::from("misses"), self.misses.to_value());
        map.insert(String::from("responses"), self.responses.to_value());
        map.insert(String::from("counters"), self.counters.to_value());
        map.insert(String::from("idle_gaps"), self.idle_gaps.to_value());
        map.insert(String::from("task_energy"), self.task_energy.to_value());
        map.insert(String::from("histograms"), self.histograms.to_value());
        map.insert(String::from("trace"), self.trace.to_value());
        Value::Object(map)
    }
}

impl Deserialize for SimReport {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_object()
            .ok_or_else(|| Error::custom("expected an object for SimReport"))?;
        let field = |name: &str| value::expect_field(map, "SimReport", name);
        Ok(SimReport {
            policy: String::from_value(field("policy")?)?,
            discipline: match map.get("discipline") {
                Some(tag) => <&'static str>::from_value(tag)?,
                None => "fp",
            },
            taskset: String::from_value(field("taskset")?)?,
            horizon: Dur::from_value(field("horizon")?)?,
            energy: EnergyMeter::from_value(field("energy")?)?,
            misses: Vec::from_value(field("misses")?)?,
            responses: Vec::from_value(field("responses")?)?,
            counters: Counters::from_value(field("counters")?)?,
            idle_gaps: IntervalStats::from_value(field("idle_gaps")?)?,
            task_energy: Vec::from_value(field("task_energy")?)?,
            histograms: Vec::from_value(field("histograms")?)?,
            trace: Option::from_value(map.get("trace").unwrap_or(&Value::Null))?,
        })
    }
}

impl SimReport {
    /// Average normalized power over the run — the paper's Figure 8 metric
    /// (1.0 = a processor busy at full speed for the whole horizon).
    pub fn average_power(&self) -> f64 {
        self.energy.average_power(self.horizon)
    }

    /// True if every job met its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.misses.is_empty()
    }

    /// Fraction of the horizon spent in each state kind.
    pub fn residency_fraction(&self, kind: StateKind) -> f64 {
        self.energy.bucket(kind).residency.as_ns() as f64 / self.horizon.as_ns() as f64
    }

    /// A multi-line human-readable report: average power, per-state energy
    /// split, per-task responses and energy, and idle-gap statistics.
    pub fn render_detailed(&self, ts: &lpfps_tasks::taskset::TaskSet) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {}: avg power {:.4} over {}",
            self.policy,
            self.taskset,
            self.average_power(),
            self.horizon
        );
        let _ = writeln!(out, "  states:");
        for (kind, bucket) in self.energy.buckets() {
            let _ = writeln!(
                out,
                "    {:<11} residency {:>6.2}% energy {:.6}",
                kind.label(),
                100.0 * bucket.residency.as_ns() as f64 / self.horizon.as_ns() as f64,
                bucket.energy
            );
        }
        let _ = writeln!(out, "  tasks:");
        for (id, task, _) in ts.iter() {
            let stats = &self.responses[id.0];
            let _ = writeln!(
                out,
                "    {:<22} jobs={:<5} maxR={:<12} energy {:.6} [{}]",
                task.name(),
                stats.completed,
                stats.max_response.to_string(),
                self.task_energy.get(id.0).copied().unwrap_or(0.0),
                self.histograms
                    .get(id.0)
                    .map(|h| h.render())
                    .unwrap_or_default()
            );
        }
        let _ = writeln!(out, "  idle gaps: {}", self.idle_gaps);
        let _ = writeln!(
            out,
            "  counters: {} events, {} releases, {} completions, {} preemptions, {} ramps, {} power-downs",
            self.counters.events,
            self.counters.releases,
            self.counters.completions,
            self.counters.preemptions,
            self.counters.ramps,
            self.counters.power_downs
        );
        if self.counters.overruns + self.counters.watchdog_faults + self.counters.degradations > 0 {
            let _ = writeln!(
                out,
                "  faults: {} overruns injected, {} watchdog detections, {} degradations engaged",
                self.counters.overruns, self.counters.watchdog_faults, self.counters.degradations
            );
        }
        out
    }

    /// A compact single-line summary for experiment harness output.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<10} {:<14} avg_power={:.4} misses={} jobs={} ramps={} pdowns={}",
            self.policy,
            self.taskset,
            self.average_power(),
            self.misses.len(),
            self.counters.completions,
            self.counters.ramps,
            self.counters.power_downs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_stats_track_extremes_and_mean() {
        let mut s = ResponseStats::default();
        s.record(Dur::from_us(10));
        s.record(Dur::from_us(30));
        s.record(Dur::from_us(20));
        assert_eq!(s.completed, 3);
        assert_eq!(s.max_response, Dur::from_us(30));
        assert_eq!(s.mean_response(), Dur::from_us(20));
    }

    #[test]
    fn empty_stats_have_zero_mean() {
        assert_eq!(ResponseStats::default().mean_response(), Dur::ZERO);
    }

    #[test]
    fn report_summary_mentions_policy_and_power() {
        let report = SimReport {
            policy: "fps".into(),
            discipline: "fp",
            taskset: "table1".into(),
            horizon: Dur::from_ms(1),
            energy: EnergyMeter::new(),
            misses: vec![],
            responses: vec![],
            counters: Counters::default(),
            idle_gaps: IntervalStats::new(),
            task_energy: vec![],
            histograms: vec![],
            trace: None,
        };
        let line = report.summary_line();
        assert!(line.contains("fps"));
        assert!(line.contains("avg_power=0.0000"));
        assert!(report.all_deadlines_met());
    }

    #[test]
    fn discipline_tag_serializes_only_for_non_fp_runs() {
        let mut report = SimReport {
            policy: "fps".into(),
            discipline: "fp",
            taskset: "table1".into(),
            horizon: Dur::from_ms(1),
            energy: EnergyMeter::new(),
            misses: vec![],
            responses: vec![],
            counters: Counters::default(),
            idle_gaps: IntervalStats::new(),
            task_energy: vec![],
            histograms: vec![],
            trace: None,
        };
        // FP reports keep the pre-discipline byte layout: no tag at all.
        let fp = report.to_value();
        assert!(fp.get("discipline").is_none());
        let back = SimReport::from_value(&fp).expect("fp round-trip");
        assert_eq!(back.discipline, "fp");

        report.discipline = "edf";
        let edf = report.to_value();
        assert_eq!(edf["discipline"], "edf");
        let back = SimReport::from_value(&edf).expect("edf round-trip");
        assert_eq!(back.discipline, "edf");
    }
}
