//! The observability probe seam: a zero-cost sink for kernel events.
//!
//! A [`Probe`] receives every [`TraceEvent`] the engine *would* record —
//! including the per-segment energy events — at the instant it happens,
//! regardless of whether [`SimConfig::trace`](crate::engine::SimConfig)
//! is on. Probes never influence scheduling: they observe the event
//! stream and nothing else, so a simulation run with any probe attached
//! produces a byte-identical [`SimReport`](crate::report::SimReport) to
//! the same run with [`NoProbe`] (the obs-free property suite and the
//! probes-on golden fingerprint gate assert exactly this).
//!
//! # Zero-cost contract
//!
//! The engine is monomorphized over the probe type, and every tap site is
//! guarded by the associated constant [`Probe::ACTIVE`]. For [`NoProbe`]
//! (`ACTIVE = false`) the guard is a compile-time `false`, so the probe
//! branch — including the construction of any event the trace would also
//! drop — folds away entirely and the hot path compiles to the same code
//! it had before the seam existed. "Observability is free" is enforced,
//! not hoped for: the golden fingerprint matrix and the oracle
//! differential matrix both re-run with a recording probe attached.
//!
//! # What a probe sees
//!
//! The full decision-point event stream of the run *as simulated*. Two
//! consequences worth knowing:
//!
//! * Events are delivered even when `cfg.trace` is off — probes are how
//!   long sweeps observe runs too big to trace.
//! * The steady-state fast-forward (DESIGN.md §12) skips simulated
//!   events; a probe attached to an eligible run observes only the events
//!   that were actually simulated. Fast-forward eligibility never depends
//!   on the probe (the report stays bit-identical either way); callers
//!   that need *every* event — per-job histograms, exports — set
//!   [`SimConfig::force_full_simulation`](crate::engine::SimConfig), as
//!   the sweep runner's histogram mode does.

use crate::trace::TraceEvent;
use lpfps_tasks::time::Time;

/// A sink for the kernel's event stream. See the module docs for the
/// zero-cost contract and delivery semantics.
pub trait Probe {
    /// Whether this probe observes anything. Tap sites are guarded by
    /// `if P::ACTIVE { ... }`, so a `false` here removes the probe from
    /// the compiled engine entirely. Defaults to `true`; only no-op
    /// probes ([`NoProbe`]) should override it.
    const ACTIVE: bool = true;

    /// Called once per kernel event, at simulation instant `at`, in
    /// non-decreasing time order — the same stream a
    /// [`Trace`](crate::trace::Trace)
    /// (`crate::trace::Trace`) would record.
    fn on_event(&mut self, at: Time, event: &TraceEvent);
}

/// The default probe: observes nothing, costs nothing. `ACTIVE = false`
/// compiles every tap site out of the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _at: Time, _event: &TraceEvent) {}
}

/// Any `FnMut(Time, &TraceEvent)` closure is a probe — the ergonomic path
/// for ad-hoc event counting in tests and tools.
impl<F: FnMut(Time, &TraceEvent)> Probe for F {
    fn on_event(&mut self, at: Time, event: &TraceEvent) {
        self(at, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_of<P: Probe>(_p: &P) -> bool {
        P::ACTIVE
    }

    #[test]
    fn no_probe_is_inactive() {
        assert!(!active_of(&NoProbe));
        // Calling it anyway is harmless.
        NoProbe.on_event(Time::ZERO, &TraceEvent::IdleStart);
    }

    #[test]
    fn closures_are_active_probes() {
        let mut count = 0usize;
        {
            let mut probe = |_at: Time, _e: &TraceEvent| count += 1;
            assert!(active_of(&probe));
            probe.on_event(Time::ZERO, &TraceEvent::IdleStart);
            probe.on_event(Time::from_us(1), &TraceEvent::TimingViolation);
        }
        assert_eq!(count, 2);
    }
}
