//! The power-policy hook: how a scheduling policy plugs into the kernel.
//!
//! The kernel implements everything every fixed-priority scheduler shares —
//! queues, preemption, dispatching, the physics of execution, ramps and
//! power modes — and delegates exactly one decision to the policy: *what to
//! do with the processor after a scheduler pass*. A conventional FPS kernel
//! always answers "stay at full speed" (idling in a NOP loop); LPFPS
//! answers with power-down timers and speed ratios per Figure 4 of the
//! paper; the baseline and ablation policies in the `lpfps` crate answer
//! in their own ways.
//!
//! The [`SchedulerContext`] deliberately exposes only what a real kernel
//! would know at schedule time: queue occupancy, the active job's
//! *WCET-remaining* work (never its realized demand — the scheduler cannot
//! see the future), the delay-queue head, and the processor spec.

use crate::discipline::{Discipline, FixedPriority};
use crate::queues::{DelayQueue, RunQueue};
use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::task::TaskId;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Time;

/// What the policy tells the kernel to do with the processor until the next
/// scheduler pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerDirective {
    /// Stay at full clock and voltage: execute the active task, or spin on
    /// the NOP idle loop if there is none.
    FullSpeed,
    /// Enter sleep mode `mode` (an index into
    /// [`CpuSpec::sleep_modes`](lpfps_cpu::spec::CpuSpec::sleep_modes))
    /// with the wake-up timer set to `wake_at` (the kernel is handed the
    /// already-compensated instant; Fig. 4 L14 subtracts the wake-up delay
    /// from the head release time). The paper's processor has a single
    /// mode, index 0.
    ///
    /// Only legal when there is no active task and the run queue is empty.
    PowerDown { wake_at: Time, mode: usize },
    /// Spin the NOP idle loop until `enter_at`, then enter power-down with
    /// the wake timer set to `wake_at` — the classic timeout-based shutdown
    /// of conventional portable systems (paper §2.1), which wastes idle
    /// energy for the length of its timeout. Modeled so the baseline can
    /// be compared against LPFPS's exact-knowledge power-down.
    ///
    /// Only legal when there is no active task and the run queue is empty.
    PowerDownAt { enter_at: Time, wake_at: Time },
    /// Ramp down to `freq` and execute the active task there; the kernel
    /// arms a speed-up timer at `speedup_at`, the latest instant at which a
    /// ramp back to full speed must begin so the processor is at maximum
    /// when the next task arrives.
    ///
    /// Only legal when there is an active task and the run queue is empty.
    SlowDown { freq: Freq, speedup_at: Time },
}

/// A read-only view of the active job, as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveView {
    /// The active task.
    pub task: TaskId,
    /// Remaining work assuming the job runs to its WCET: `C_i - E_i` in
    /// cycles at full speed (the paper's L17 operand). The realized demand
    /// is unknowable at schedule time.
    pub wcet_remaining: Cycles,
    /// The job's release time.
    pub release: Time,
    /// The job's absolute deadline.
    pub deadline: Time,
}

/// Everything a policy may consult when deciding.
///
/// Generic over the dispatch [`Discipline`] `D` (default: the paper's
/// [`FixedPriority`]); the run queue is keyed by `D::Key`, so a policy can
/// inspect queue occupancy under any discipline.
#[derive(Debug)]
pub struct SchedulerContext<'a, D: Discipline = FixedPriority> {
    /// Current simulation time (`t_c`).
    pub now: Time,
    /// The active job, if one is dispatched.
    pub active: Option<ActiveView>,
    /// The run queue (released, waiting tasks).
    pub run_queue: &'a RunQueue<D::Key>,
    /// The delay queue (completed tasks awaiting their next period); its
    /// head release is the paper's `t_a`.
    pub delay_queue: &'a DelayQueue,
    /// The processor specification.
    pub cpu: &'a CpuSpec,
    /// The task set under simulation.
    pub taskset: &'a TaskSet,
}

impl<D: Discipline> SchedulerContext<'_, D> {
    /// The paper's `t_a`: the next arrival time at the head of the delay
    /// queue, if any task is waiting there.
    pub fn next_arrival(&self) -> Option<Time> {
        self.delay_queue.head_release()
    }

    /// The latest completion target that is safe for the active task: the
    /// earlier of the next delay-queue arrival and the active job's own
    /// absolute deadline.
    ///
    /// The paper's L17 uses the delay-queue head alone; when the head lies
    /// beyond the active job's deadline (possible when every other task has
    /// a much longer period), stretching to the head would break the active
    /// task itself. Clamping to the job's deadline preserves Fig. 4's
    /// behaviour in every situation the paper illustrates and keeps the
    /// guarantee unconditional (see DESIGN.md §6).
    pub fn safe_completion_bound(&self) -> Option<Time> {
        let active = self.active?;
        Some(match self.next_arrival() {
            Some(t_a) => t_a.min(active.deadline),
            None => active.deadline,
        })
    }
}

/// A runtime safety violation detected by the kernel's watchdog checks.
///
/// Under the paper's idealized model neither event can occur: jobs never
/// exceed their WCET, and every power transition completes before the next
/// release (the policy's timers guarantee it). Under an injected
/// [`FaultConfig`](lpfps_faults::FaultConfig) — or on real hardware — both
/// happen, and the kernel reports them to the policy the instant they are
/// detected so it can degrade gracefully (e.g. revert to full speed and
/// suppress further power management for a cooldown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The active job retired its entire WCET budget and still has work
    /// left — detected exactly when the budget exhausts, like a kernel
    /// execution-budget timer.
    BudgetOverrun {
        /// The overrunning task.
        task: TaskId,
        /// Detection instant.
        now: Time,
    },
    /// A release occurred while the processor was not settled at full
    /// speed (asleep, waking up, or mid-ramp): a power transition the
    /// policy planned to finish in time did not.
    TimingViolation {
        /// Detection instant.
        now: Time,
    },
}

impl FaultEvent {
    /// The detection instant.
    pub fn time(&self) -> Time {
        match self {
            FaultEvent::BudgetOverrun { now, .. } | FaultEvent::TimingViolation { now } => *now,
        }
    }
}

/// The discipline-independent core of a policy: identity and fault
/// handling. Split from [`PowerPolicy`] so these methods stay unambiguous
/// on policies that implement [`PowerPolicy`] for several disciplines
/// (nothing in their signatures could pin the discipline down).
pub trait PolicyCore {
    /// A short stable name for reports ("fps", "lpfps", ...).
    fn name(&self) -> &'static str;

    /// Notifies the policy of a detected safety violation. Returns `true`
    /// if the policy *engaged a degraded mode* in response (counted as a
    /// `degradation` in [`Counters`](crate::report::Counters)); the
    /// default implementation ignores faults and returns `false`.
    ///
    /// The kernel follows every notification with a scheduler pass, so a
    /// policy that starts answering [`PowerDirective::FullSpeed`] here is
    /// immediately re-consulted — the L1–L4 rule then raises the clock and
    /// voltage to maximum before anything else runs.
    fn on_fault(&mut self, _event: &FaultEvent) -> bool {
        false
    }

    /// A canonical digest of the policy's internal state at `now`, for the
    /// engine's steady-state cycle detector: two instants with equal
    /// digests (and equal kernel state) must make this policy behave
    /// identically from then on.
    ///
    /// The digest must be *canonical* — any absolute times folded in must
    /// be re-based to `now`, and state that no longer influences decisions
    /// (an expired cooldown, a consumed one-shot flag) must not perturb it,
    /// or the detector will never observe a recurrence.
    ///
    /// Returning `None` (the default) declares the policy opaque and
    /// disables fast-forwarding for the run — the safe answer for stateful
    /// policies that log, randomize, or otherwise depend on history.
    /// Stateless policies should return `Some(0)`.
    fn steady_digest(&self, _now: Time) -> Option<u64> {
        None
    }
}

/// A scheduling policy's power decision hook under discipline `D`
/// (default: the paper's [`FixedPriority`]).
pub trait PowerPolicy<D: Discipline = FixedPriority>: PolicyCore {
    /// Decides the processor directive after a scheduler pass. Called only
    /// when the processor is settled at full speed (the kernel's L1–L4
    /// handling guarantees this).
    fn decide(&mut self, ctx: &SchedulerContext<'_, D>) -> PowerDirective;
}

/// The trivial policy: always full speed. This *is* the conventional FPS
/// scheduler of the paper's comparison (idle time burns the NOP loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysFullSpeed;

impl PolicyCore for AlwaysFullSpeed {
    fn name(&self) -> &'static str {
        "fps"
    }

    fn steady_digest(&self, _now: Time) -> Option<u64> {
        Some(0)
    }
}

impl<D: Discipline> PowerPolicy<D> for AlwaysFullSpeed {
    fn decide(&mut self, _ctx: &SchedulerContext<'_, D>) -> PowerDirective {
        PowerDirective::FullSpeed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::task::{Priority, Task};
    use lpfps_tasks::time::Dur;

    fn fixture() -> (TaskSet, CpuSpec) {
        let ts = TaskSet::rate_monotonic(
            "t",
            vec![Task::new("a", Dur::from_us(100), Dur::from_us(10))],
        );
        (ts, CpuSpec::arm8())
    }

    #[test]
    fn always_full_speed_never_deviates() {
        let (ts, cpu) = fixture();
        let run = RunQueue::new();
        let delay = DelayQueue::new();
        let ctx: SchedulerContext = SchedulerContext {
            now: Time::ZERO,
            active: None,
            run_queue: &run,
            delay_queue: &delay,
            cpu: &cpu,
            taskset: &ts,
        };
        assert_eq!(AlwaysFullSpeed.decide(&ctx), PowerDirective::FullSpeed);
        assert_eq!(AlwaysFullSpeed.name(), "fps");
    }

    #[test]
    fn safe_completion_bound_clamps_to_deadline() {
        let (ts, cpu) = fixture();
        let run = RunQueue::new();
        let mut delay = DelayQueue::new();
        delay.insert(TaskId(0), Priority::new(0), Time::from_us(10_000));
        let active = ActiveView {
            task: TaskId(0),
            wcet_remaining: Cycles::new(500),
            release: Time::from_us(100),
            deadline: Time::from_us(200),
        };
        let ctx: SchedulerContext = SchedulerContext {
            now: Time::from_us(120),
            active: Some(active),
            run_queue: &run,
            delay_queue: &delay,
            cpu: &cpu,
            taskset: &ts,
        };
        // Delay head (10 ms) is far beyond the job's own deadline (200 us).
        assert_eq!(ctx.safe_completion_bound(), Some(Time::from_us(200)));
        assert_eq!(ctx.next_arrival(), Some(Time::from_us(10_000)));
    }

    #[test]
    fn safe_completion_bound_uses_arrival_when_earlier() {
        let (ts, cpu) = fixture();
        let run = RunQueue::new();
        let mut delay = DelayQueue::new();
        delay.insert(TaskId(0), Priority::new(0), Time::from_us(150));
        let active = ActiveView {
            task: TaskId(0),
            wcet_remaining: Cycles::new(500),
            release: Time::from_us(100),
            deadline: Time::from_us(200),
        };
        let ctx: SchedulerContext = SchedulerContext {
            now: Time::from_us(120),
            active: Some(active),
            run_queue: &run,
            delay_queue: &delay,
            cpu: &cpu,
            taskset: &ts,
        };
        assert_eq!(ctx.safe_completion_bound(), Some(Time::from_us(150)));
    }

    #[test]
    fn no_active_task_means_no_bound() {
        let (ts, cpu) = fixture();
        let run = RunQueue::new();
        let delay = DelayQueue::new();
        let ctx: SchedulerContext = SchedulerContext {
            now: Time::ZERO,
            active: None,
            run_queue: &run,
            delay_queue: &delay,
            cpu: &cpu,
            taskset: &ts,
        };
        assert_eq!(ctx.safe_completion_bound(), None);
        assert_eq!(ctx.next_arrival(), None);
    }
}
