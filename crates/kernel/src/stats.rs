//! Interval statistics: distribution summaries of idle gaps.
//!
//! The economics of power-down depend on the *length distribution* of idle
//! intervals, not just their sum — the paper's §2.1 argument against
//! timeout shutdown is exactly that short, intermittent gaps defeat it.
//! The kernel records every interval during which no task was runnable.

use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};

/// Summary statistics over a stream of time intervals.
///
/// # Examples
///
/// ```
/// use lpfps_kernel::stats::IntervalStats;
/// use lpfps_tasks::time::Dur;
///
/// let mut s = IntervalStats::new();
/// s.record(Dur::from_us(10));
/// s.record(Dur::from_us(30));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.mean(), Dur::from_us(20));
/// assert_eq!(s.max(), Dur::from_us(30));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalStats {
    count: u64,
    total: Dur,
    min: Dur,
    max: Dur,
}

impl IntervalStats {
    /// Creates an empty summary.
    pub fn new() -> Self {
        IntervalStats::default()
    }

    /// Records one interval (zero-length intervals are ignored).
    pub fn record(&mut self, d: Dur) {
        if d.is_zero() {
            return;
        }
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.total += d;
    }

    /// Number of recorded intervals.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all intervals.
    pub fn total(&self) -> Dur {
        self.total
    }

    /// Shortest recorded interval (zero if none).
    pub fn min(&self) -> Dur {
        self.min
    }

    /// Longest recorded interval (zero if none).
    pub fn max(&self) -> Dur {
        self.max
    }

    /// Mean interval length (zero if none).
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Adds `k` copies of the per-cycle delta (`self - baseline`) — the
    /// steady-state fast-forward's extrapolation step. `min`/`max` are
    /// already correct: later cycles repeat the same interval lengths, so
    /// the extremes were absorbed during the recorded cycle.
    pub(crate) fn extrapolate_from(&mut self, baseline: &IntervalStats, k: u64) {
        self.count += (self.count - baseline.count) * k;
        self.total += (self.total - baseline.total) * k;
    }
}

impl core::fmt::Display for IntervalStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.count == 0 {
            write!(f, "none")
        } else {
            write!(
                f,
                "n={} total={} mean={} min={} max={}",
                self.count,
                self.total,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

/// A fixed-bucket histogram of response times measured as a fraction of
/// the deadline: bucket `k` of `BUCKETS` covers
/// `[k/BUCKETS, (k+1)/BUCKETS)` of the deadline, with one overflow bucket
/// for misses (`>= 1.0`). Profiles *how much* margin jobs finish with —
/// the distributional view behind LPFPS's slack-reclaiming argument.
/// Number of in-deadline buckets in a [`ResponseHistogram`].
const RESPONSE_BUCKETS: usize = 20;

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseHistogram {
    buckets: [u64; RESPONSE_BUCKETS],
    misses: u64,
}

impl ResponseHistogram {
    /// Number of in-deadline buckets.
    pub const BUCKETS: usize = RESPONSE_BUCKETS;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        ResponseHistogram {
            buckets: [0; RESPONSE_BUCKETS],
            misses: 0,
        }
    }

    /// Records one completion with the given response and deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn record(&mut self, response: Dur, deadline: Dur) {
        assert!(!deadline.is_zero(), "deadlines are positive");
        if response >= deadline {
            self.misses += 1;
            return;
        }
        let idx =
            (response.as_ns() as u128 * Self::BUCKETS as u128 / deadline.as_ns() as u128) as usize;
        self.buckets[idx.min(Self::BUCKETS - 1)] += 1;
    }

    /// Jobs recorded in bucket `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= BUCKETS`.
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k]
    }

    /// Jobs that completed at or past their deadline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total recorded jobs.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.misses
    }

    /// The smallest response-to-deadline fraction `p` such that at least
    /// `quantile` (0..=1) of jobs finished within `p` of their deadline —
    /// an upper bound at bucket granularity; `None` if empty or if misses
    /// prevent reaching the quantile.
    pub fn quantile_fraction(&self, quantile: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let needed = (quantile * total as f64).ceil() as u64;
        let mut acc = 0;
        for (k, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= needed {
                return Some((k + 1) as f64 / Self::BUCKETS as f64);
            }
        }
        None
    }

    /// Adds `k` copies of the per-cycle delta (`self - baseline`) to every
    /// bucket and the miss count — the steady-state fast-forward's
    /// extrapolation step (each skipped cycle records exactly the same
    /// response-to-deadline fractions as the observed one).
    pub(crate) fn extrapolate_from(&mut self, baseline: &ResponseHistogram, k: u64) {
        for (b, base) in self.buckets.iter_mut().zip(&baseline.buckets) {
            *b += (*b - base) * k;
        }
        self.misses += (self.misses - baseline.misses) * k;
    }

    /// A compact sparkline-style rendering (`#` columns scaled to the
    /// largest bucket; `!` marks misses).
    pub fn render(&self) -> String {
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for &b in &self.buckets {
            let h = (b * 8).div_ceil(peak).min(8);
            out.push(match h {
                0 => '.',
                1 => ':',
                2..=3 => '+',
                4..=6 => '#',
                _ => '@',
            });
        }
        if self.misses > 0 {
            out.push('!');
        }
        out
    }
}

impl Default for ResponseHistogram {
    fn default() -> Self {
        ResponseHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_read_zero() {
        let s = IntervalStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Dur::ZERO);
        assert_eq!(s.to_string(), "none");
    }

    #[test]
    fn zero_intervals_are_ignored() {
        let mut s = IntervalStats::new();
        s.record(Dur::ZERO);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn extremes_and_mean_track_inputs() {
        let mut s = IntervalStats::new();
        for us in [5u64, 100, 20] {
            s.record(Dur::from_us(us));
        }
        assert_eq!(s.min(), Dur::from_us(5));
        assert_eq!(s.max(), Dur::from_us(100));
        assert_eq!(s.total(), Dur::from_us(125));
        assert_eq!(s.mean(), Dur::from_ns(41_666));
    }

    #[test]
    fn display_summarizes() {
        let mut s = IntervalStats::new();
        s.record(Dur::from_us(10));
        assert_eq!(s.to_string(), "n=1 total=10us mean=10us min=10us max=10us");
    }

    #[test]
    fn histogram_buckets_by_deadline_fraction() {
        let mut h = ResponseHistogram::new();
        let d = Dur::from_us(100);
        h.record(Dur::from_us(1), d); // bucket 0
        h.record(Dur::from_us(52), d); // bucket 10
        h.record(Dur::from_us(99), d); // bucket 19
        h.record(Dur::from_us(100), d); // miss (>= deadline)
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(10), 1);
        assert_eq!(h.bucket(19), 1);
        assert_eq!(h.misses(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_quantiles_are_conservative() {
        let mut h = ResponseHistogram::new();
        let d = Dur::from_us(100);
        for _ in 0..90 {
            h.record(Dur::from_us(10), d); // bucket 2
        }
        for _ in 0..10 {
            h.record(Dur::from_us(90), d); // bucket 18
        }
        // 90% of jobs finish within 15% of the deadline (bucket 2 -> 3/20).
        assert_eq!(h.quantile_fraction(0.9), Some(0.15));
        assert_eq!(h.quantile_fraction(1.0), Some(0.95));
        assert_eq!(ResponseHistogram::new().quantile_fraction(0.5), None);
    }

    #[test]
    fn histogram_renders_marks() {
        let mut h = ResponseHistogram::new();
        let d = Dur::from_us(100);
        h.record(Dur::from_us(1), d); // bucket 0 (1/100 of the deadline)
        h.record(Dur::from_us(100), d);
        let r = h.render();
        assert!(r.starts_with('@'), "render was {r}");
        assert!(r.ends_with('!'));
        assert_eq!(r.len(), ResponseHistogram::BUCKETS + 1);
    }
}
