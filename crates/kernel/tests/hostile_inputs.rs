//! Adversarial inputs against the panic-free boundary.
//!
//! `TaskSet`, `CpuSpec`, and `SimConfig` all implement `Deserialize`, so
//! values that no validating constructor would ever produce can still
//! reach `simulate` — a malformed JSON sweep spec, a hand-edited results
//! file, a fuzzer. The contract under test: **every** such input yields
//! either a valid report or a typed [`SimError`]; the library never
//! panics. Each property runs the engine under `catch_unwind` so a panic
//! anywhere inside the boundary fails the case by name instead of
//! aborting the harness.
//!
//! Four property blocks (120 + 80 + 80 + 120 = 400 cases per run):
//!
//! 1. task sets smuggled past validation field by field,
//! 2. processor specs with mutated numeric leaves,
//! 3. extreme simulation configs (horizon/tick/budget corners),
//! 4. hostile parameters fed straight to the validating constructors.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::error::SimError;
use lpfps_kernel::policy::AlwaysFullSpeed;
use lpfps_tasks::error::MAX_TIME_PARAM_NS;
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::task::{Priority, Task};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use proptest::prelude::*;
use serde::{Deserialize, Map, Number, Serialize, Value};

/// Maps a raw draw onto the adversarial corners of the `u64` range: zero,
/// one, ordinary magnitudes, and the neighborhoods of [`MAX_TIME_PARAM_NS`]
/// and `u64::MAX` where unchecked time arithmetic would wrap.
fn warp(raw: u64, sel: u8) -> u64 {
    match sel % 8 {
        0 => 0,
        1 => 1,
        2 => raw % 1_000_000,
        3 => MAX_TIME_PARAM_NS - (raw % 1_000),
        4 => MAX_TIME_PARAM_NS.saturating_add(1 + raw % 1_000),
        5 => u64::MAX - (raw % 1_000),
        6 => u64::MAX,
        _ => raw,
    }
}

/// Builds a [`Task`] through the `Deserialize` back door, bypassing every
/// constructor check: the field map mirrors the struct's serialized shape,
/// so any nanosecond values — zero periods, `C > T`, near-`u64::MAX`
/// phases — come out the other side as a live `Task`.
fn smuggle_task(name: &str, period: u64, deadline: u64, wcet: u64, bcet: u64, phase: u64) -> Task {
    let mut m = Map::new();
    m.insert("name".to_string(), Value::String(name.to_string()));
    for (key, ns) in [
        ("period", period),
        ("deadline", deadline),
        ("wcet", wcet),
        ("bcet", bcet),
        ("phase", phase),
    ] {
        m.insert(key.to_string(), Dur::from_ns(ns).to_value());
    }
    Task::from_value(&Value::Object(m)).expect("the field map matches `Task`'s shape")
}

/// Same back door for a whole [`TaskSet`], including mismatched or
/// duplicated priority vectors.
fn smuggle_task_set(tasks: &[Task], priorities: &[u32]) -> TaskSet {
    let mut m = Map::new();
    m.insert("name".to_string(), Value::String("hostile".to_string()));
    m.insert("tasks".to_string(), tasks.to_vec().to_value());
    let prios: Vec<Priority> = priorities.iter().map(|p| Priority::new(*p)).collect();
    m.insert("priorities".to_string(), prios.to_value());
    TaskSet::from_value(&Value::Object(m)).expect("the field map matches `TaskSet`'s shape")
}

/// A small task set built through the validating constructors, for
/// properties that attack a *different* input dimension.
fn valid_probe_set() -> TaskSet {
    let tasks = vec![
        Task::validated("a", Dur::from_us(50), Dur::from_us(10)).expect("valid"),
        Task::validated("b", Dur::from_us(80), Dur::from_us(20)).expect("valid"),
    ];
    TaskSet::try_rate_monotonic("probe", tasks).expect("valid")
}

/// Runs the engine under `catch_unwind`; `Err` means the library panicked,
/// which is exactly what the taxonomy promises never happens.
fn run_guarded(
    ts: &TaskSet,
    cpu: &CpuSpec,
    cfg: &SimConfig,
) -> Result<Result<lpfps_kernel::report::SimReport, SimError>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        simulate(ts, cpu, &mut AlwaysFullSpeed, &AlwaysWcet, cfg)
    }))
    .map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// Counts the numeric leaves of a serialized value, so a mutation index
/// can be drawn uniformly over them.
fn count_numbers(v: &Value) -> usize {
    match v {
        Value::Number(_) => 1,
        Value::Array(items) => items.iter().map(count_numbers).sum(),
        Value::Object(m) => m.iter().map(|(_, v)| count_numbers(v)).sum(),
        _ => 0,
    }
}

/// Replaces the `target`-th numeric leaf (pre-order) with `replacement`.
fn replace_number(v: &mut Value, target: &mut usize, replacement: &Number) -> bool {
    match v {
        Value::Number(n) => {
            if *target == 0 {
                *n = *replacement;
                return true;
            }
            *target -= 1;
            false
        }
        Value::Array(items) => items
            .iter_mut()
            .any(|item| replace_number(item, target, replacement)),
        Value::Object(m) => m
            .iter_mut()
            .any(|(_, item)| replace_number(item, target, replacement)),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Malformed task sets — zero periods, `C > T`, inverted BCETs,
    /// over-large phases, duplicated or miscounted priorities — reach the
    /// boundary unvalidated and must come back as typed errors, never
    /// panics. Structurally *valid* draws must instead complete (budget
    /// exhaustion included: the event cap below also bounds the runtime
    /// of accidental 1 ns-period sets).
    #[test]
    fn smuggled_task_sets_yield_typed_errors_not_panics(
        raw_tasks in proptest::collection::vec(
            ((0u64..=u64::MAX, 0u8..8), (0u64..=u64::MAX, 0u8..8), (0u64..=u64::MAX, 0u8..8), (0u64..=u64::MAX, 0u8..8)),
            1..5,
        ),
        priorities in proptest::collection::vec(0u32..4, 0..6),
        horizon_sel in 0u8..8,
        horizon_raw in 0u64..=u64::MAX,
    ) {
        let tasks: Vec<Task> = raw_tasks
            .iter()
            .enumerate()
            .map(|(i, ((p_raw, p_sel), (d_raw, d_sel), (c_raw, c_sel), (b_raw, b_sel)))| {
                smuggle_task(
                    &format!("t{i}"),
                    warp(*p_raw, *p_sel),
                    warp(*d_raw, *d_sel),
                    warp(*c_raw, *c_sel),
                    warp(*b_raw, *b_sel),
                    // Keep phases small so valid draws stay representative;
                    // the config block attacks the phase/horizon axis.
                    c_raw % 1_000,
                )
            })
            .collect();
        let ts = smuggle_task_set(&tasks, &priorities);
        let horizon = warp(horizon_raw, horizon_sel);
        let cfg = SimConfig::new(Dur::from_ns(horizon)).with_max_events(100_000);

        let outcome = run_guarded(&ts, &CpuSpec::arm8(), &cfg);
        prop_assert!(outcome.is_ok(), "engine panicked: {}", outcome.unwrap_err());
        let result = outcome.unwrap();

        // Clearly-invalid structure must be *rejected*, not merely
        // survived. The config is validated first, so the task-set kind is
        // only guaranteed when the horizon itself is admissible.
        let config_valid = horizon > 0 && horizon <= MAX_TIME_PARAM_NS;
        let structurally_broken = priorities.len() != tasks.len()
            || tasks.iter().any(|t| t.period().is_zero());
        if config_valid && structurally_broken {
            prop_assert!(
                matches!(result, Err(SimError::TaskSet(_))),
                "malformed task set slipped through: {result:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Degenerate processor specs: serialize the four-mode ARM8 spec,
    /// overwrite one numeric leaf (a ladder bound, a voltage, a power
    /// fraction, a ramp rate, a wake-up latency ...) with an adversarial
    /// number, and push the result through `Deserialize` into `simulate`.
    /// Outcome must be a report or a typed error — in particular
    /// `SimError::CpuSpec` for broken ladders and sleep modes.
    #[test]
    fn mutated_cpu_specs_yield_typed_errors_not_panics(
        leaf_raw in 0usize..1_000,
        int_raw in 0u64..=u64::MAX,
        sel in 0u8..16,
    ) {
        let mut tree = CpuSpec::arm8_multimode().to_value();
        let leaves = count_numbers(&tree);
        prop_assert!(leaves > 0, "spec serialized without numeric leaves");
        let replacement = match sel {
            0..=7 => Number::PosInt(warp(int_raw, sel)),
            8 => Number::Float(f64::NAN),
            9 => Number::Float(f64::INFINITY),
            10 => Number::Float(f64::NEG_INFINITY),
            11 => Number::Float(-1.0),
            12 => Number::Float(0.0),
            13 => Number::Float(1e308),
            14 => Number::NegInt(-1),
            _ => Number::Float(1e-300),
        };
        let mut target = leaf_raw % leaves;
        prop_assert!(replace_number(&mut tree, &mut target, &replacement));

        // A type-level mismatch (float where a u64 field lives) is a typed
        // serde error — fine; the property only cares about values that
        // make it through deserialization.
        let Ok(cpu) = CpuSpec::from_value(&tree) else { return Ok(()); };
        let cfg = SimConfig::new(Dur::from_ms(1)).with_max_events(100_000);
        let outcome = run_guarded(&valid_probe_set(), &cpu, &cfg);
        prop_assert!(outcome.is_ok(), "engine panicked: {}", outcome.unwrap_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Extreme configurations on valid workloads: horizons at zero /
    /// `MAX_TIME_PARAM` / `u64::MAX`, zero and enormous ticks (written
    /// directly to the public field, bypassing the builder's assert the
    /// way a deserialized config would), and budget caps from 0 upward.
    /// Horizon-scale extremes are the sweep-layer face of the same axis.
    #[test]
    fn extreme_configs_yield_typed_errors_not_panics(
        horizon_raw in 0u64..=u64::MAX,
        horizon_sel in 0u8..8,
        tick_raw in 0u64..=u64::MAX,
        tick_sel in 0u8..9,
        (events_cap, segments_cap, use_segment_cap)
            in (0u64..200_000, 0u64..200_000, proptest::bool::ANY),
    ) {
        let horizon = warp(horizon_raw, horizon_sel);
        let mut cfg = SimConfig::new(Dur::from_ns(horizon)).with_max_events(events_cap);
        if use_segment_cap {
            cfg = cfg.with_max_segments(segments_cap);
        }
        if tick_sel < 8 {
            cfg.tick = Some(Dur::from_ns(warp(tick_raw, tick_sel)));
        }

        let outcome = run_guarded(&valid_probe_set(), &CpuSpec::arm8(), &cfg);
        prop_assert!(outcome.is_ok(), "engine panicked: {}", outcome.unwrap_err());
        let result = outcome.unwrap();

        if horizon == 0 {
            prop_assert!(
                matches!(result, Err(SimError::InvalidConfig { .. })),
                "zero horizon slipped through: {result:?}"
            );
        } else if horizon > MAX_TIME_PARAM_NS {
            prop_assert!(
                matches!(result, Err(SimError::TimeOverflow { .. })),
                "over-large horizon slipped through: {result:?}"
            );
        } else if matches!(cfg.tick, Some(t) if t.is_zero()) {
            prop_assert!(
                matches!(result, Err(SimError::InvalidConfig { .. })),
                "zero tick slipped through: {result:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// The validating constructors themselves, fed hostile parameters:
    /// they are the documented *fallible* front door, so they must return
    /// `Err` — never panic — for every rejected input, and every value
    /// they accept must then simulate without tripping a boundary check.
    #[test]
    fn validating_constructors_reject_without_panicking(
        period_raw in 0u64..=u64::MAX, period_sel in 0u8..8,
        wcet_raw in 0u64..=u64::MAX, wcet_sel in 0u8..8,
        fraction_millis in -2_000i64..2_001,
        ramp_scale in 0u8..6,
    ) {
        let fraction = fraction_millis as f64 / 1_000.0;
        let period = warp(period_raw, period_sel);
        let wcet = warp(wcet_raw, wcet_sel);
        let outcome = catch_unwind(|| {
            Task::validated("tau", Dur::from_ns(period), Dur::from_ns(wcet))
                .and_then(|t| {
                    let t2 = Task::validated(
                        "tau2",
                        Dur::from_ns(period.saturating_mul(2)),
                        Dur::from_ns(wcet),
                    )?;
                    TaskSet::try_rate_monotonic("ctor", vec![t, t2])
                })
                .and_then(|ts| ts.try_with_bcet_fraction(fraction))
        });
        prop_assert!(outcome.is_ok(), "constructor panicked");
        if let Ok(Ok(ref ts)) = outcome {
            let cfg = SimConfig::new(Dur::from_us(500)).with_max_events(100_000);
            let guarded = run_guarded(ts, &CpuSpec::arm8(), &cfg);
            prop_assert!(guarded.is_ok(), "engine panicked on a validated set");
            let result = guarded.unwrap();
            prop_assert!(
                !matches!(
                    result,
                    Err(SimError::TaskSet(_)) | Err(SimError::CpuSpec(_))
                ),
                "boundary re-rejected a constructor-validated input: {result:?}"
            );
        }
        if period == 0 || wcet == 0 || wcet > period {
            prop_assert!(
                matches!(outcome, Ok(Err(_))),
                "hostile task parameters were accepted"
            );
        }

        let ramp = match ramp_scale {
            0 => 0.0,
            1 => -1.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => 1e-12,
            _ => 0.07,
        };
        let spec = catch_unwind(|| {
            CpuSpec::validated(
                lpfps_cpu::ladder::FrequencyLadder::default(),
                lpfps_cpu::power::PowerModel::default(),
                ramp,
                10,
            )
        });
        prop_assert!(spec.is_ok(), "CpuSpec::validated panicked");
        if !(ramp.is_finite() && ramp > 0.0) {
            prop_assert!(matches!(spec, Ok(Err(_))), "bad ramp rate accepted");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hyperperiod overflow must *degrade*, never derail: near-co-prime
    /// giant periods push `lcm` past the representable range, so
    /// `hyperperiod()` returns `None`, the steady-state detector never
    /// arms, and the run completes as a plain full simulation —
    /// byte-identical to one with the detector explicitly forced off.
    #[test]
    fn hyperperiod_overflow_degrades_to_full_simulation(
        offsets in proptest::collection::vec(0u64..1_000, 3..4),
        seed in 0u64..=1_000,
    ) {
        // Large primes minus small offsets: pairwise lcm around 1e18 µs,
        // far beyond Dur's range once multiplied out.
        let primes = [999_999_937u64, 999_999_893, 999_999_883];
        let tasks: Vec<Task> = primes
            .iter()
            .zip(&offsets)
            .enumerate()
            .map(|(i, (&p, &off))| {
                Task::new(
                    format!("t{i}"),
                    Dur::from_us(p - off),
                    Dur::from_us(1_000),
                )
            })
            .collect();
        let ts = TaskSet::rate_monotonic("coprime", tasks);
        prop_assert!(
            lpfps_tasks::analysis::hyperperiod(&ts).is_none(),
            "these periods must overflow the hyperperiod"
        );
        let cfg = SimConfig::new(Dur::from_ms(5_000)).with_seed(seed);
        let outcome = catch_unwind(|| {
            let fast = simulate(&ts, &CpuSpec::arm8(), &mut AlwaysFullSpeed, &AlwaysWcet, &cfg)?;
            let full = simulate(
                &ts,
                &CpuSpec::arm8(),
                &mut AlwaysFullSpeed,
                &AlwaysWcet,
                &cfg.clone().with_force_full_simulation(),
            )?;
            Ok::<_, SimError>((fast, full))
        });
        prop_assert!(outcome.is_ok(), "engine panicked on overflow-scale periods");
        let (fast, full) = outcome.unwrap().expect("hostile-but-valid set simulates");
        prop_assert_eq!(fast.counters, full.counters);
        prop_assert_eq!(
            fast.energy.total_energy().to_bits(),
            full.energy.total_energy().to_bits()
        );
    }
}

/// Sleep-mode degeneracy is only reachable through the fallible builder
/// (or serde); both must reject the empty family with the same typed
/// error.
#[test]
fn empty_sleep_mode_family_is_rejected() {
    let err = CpuSpec::arm8()
        .try_with_sleep_modes(vec![])
        .expect_err("an empty sleep-mode family must be rejected");
    assert_eq!(err.to_string(), "a processor needs at least one sleep mode");
}
