//! Property-based tests for the kernel: queue laws and whole-simulation
//! invariants on randomly generated schedulable task sets.

use lpfps_cpu::spec::CpuSpec;
use lpfps_cpu::state::StateKind;
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::policy::AlwaysFullSpeed;
use lpfps_kernel::queues::{DelayQueue, RunQueue};
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::task::{Priority, Task, TaskId};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};
use proptest::prelude::*;

proptest! {
    // ---- queue laws ---------------------------------------------------------

    #[test]
    fn run_queue_pops_in_strict_priority_order(levels in proptest::collection::vec(0u32..64, 1..20)) {
        // Deduplicate levels (the kernel guarantees unique priorities).
        let mut uniq = levels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let mut q = RunQueue::new();
        for (i, &lvl) in uniq.iter().enumerate() {
            q.insert(TaskId(i), Priority::new(lvl));
        }
        let mut last: Option<Priority> = None;
        prop_assert_eq!(q.len(), uniq.len());
        while let Some(head) = q.head_priority() {
            if let Some(prev) = last {
                prop_assert!(prev.is_higher_than(head) || prev == head);
            }
            q.pop();
            last = Some(head);
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn delay_queue_pop_due_splits_exactly(
        releases in proptest::collection::vec(0u64..10_000, 1..20),
        cut in 0u64..10_000,
    ) {
        let mut q = DelayQueue::new();
        for (i, &r) in releases.iter().enumerate() {
            q.insert(TaskId(i), Priority::new(i as u32), Time::from_us(r));
        }
        let total = q.len();
        let due = q.pop_due(Time::from_us(cut));
        // Everything popped was due; everything left is not.
        prop_assert!(due.iter().all(|&(_, r)| r <= Time::from_us(cut)));
        prop_assert!(q.iter().all(|(_, r)| r > Time::from_us(cut)));
        prop_assert_eq!(due.len() + q.len(), total);
        // Popped in release order.
        prop_assert!(due.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    // ---- whole-simulation invariants -----------------------------------------

    #[test]
    fn harmonic_sets_simulate_exactly(
        base_period in 50u64..200,
        util_pcts in proptest::collection::vec(1u64..30, 1..5),
        seed in 0u64..50,
    ) {
        // Harmonic periods (P, 2P, 4P, ...) are RM-schedulable up to U = 1;
        // cap the per-task utilizations so the sum stays below ~0.9.
        let mut tasks = Vec::new();
        let mut total_util = 0.0;
        for (i, &u) in util_pcts.iter().enumerate() {
            let period = base_period << i; // harmonic chain
            let wcet = (period * u / 100).max(1);
            total_util += wcet as f64 / period as f64;
            tasks.push(Task::new(
                format!("t{i}"),
                Dur::from_us(period),
                Dur::from_us(wcet),
            ));
        }
        prop_assume!(total_util < 0.9);
        let ts = TaskSet::rate_monotonic("harmonic", tasks);
        let hyper = lpfps_tasks::analysis::hyperperiod(&ts).expect("small LCM");
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(hyper * 2).with_seed(seed);
        let report = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg).unwrap();

        // 1. A schedulable harmonic set never misses.
        prop_assert!(report.all_deadlines_met());

        // 2. Over whole hyperperiods at WCET, busy time is exactly the sum
        //    of released work.
        let expected_busy: Dur = ts
            .iter()
            .map(|(_, t, _)| t.wcet() * ((hyper * 2) / t.period()))
            .sum();
        prop_assert_eq!(report.energy.bucket(StateKind::Busy).residency, expected_busy);

        // 3. Residency covers the whole horizon.
        prop_assert_eq!(report.energy.total_residency(), hyper * 2);

        // 4. Releases and completions match the job count.
        let jobs: u64 = ts.iter().map(|(_, t, _)| (hyper * 2) / t.period()).sum();
        prop_assert_eq!(report.counters.releases, jobs);
        prop_assert_eq!(report.counters.completions, jobs);
    }

    #[test]
    fn fps_average_power_formula_holds(
        base_period in 100u64..500,
        util_pct in 5u64..85,
    ) {
        // Single task: avg power = U * 1.0 + (1 - U) * 0.2 exactly, over
        // whole periods at WCET.
        let wcet = (base_period * util_pct / 100).max(1);
        let ts = TaskSet::rate_monotonic(
            "solo",
            vec![Task::new("t", Dur::from_us(base_period), Dur::from_us(wcet))],
        );
        let cpu = CpuSpec::arm8();
        let horizon = Dur::from_us(base_period * 10);
        let report = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &SimConfig::new(horizon)).unwrap();
        let u = wcet as f64 / base_period as f64;
        let expected = u + (1.0 - u) * 0.2;
        prop_assert!((report.average_power() - expected).abs() < 1e-9,
            "U={u}: got {} expected {expected}", report.average_power());
    }

    #[test]
    fn tracing_does_not_change_physics(
        periods in proptest::collection::vec(64u64..512, 1..4),
        seed in 0u64..20,
    ) {
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::new(format!("t{i}"), Dur::from_us(p), Dur::from_us((p / 8).max(1)))
                    .with_bcet_fraction(0.5)
            })
            .collect();
        let ts = TaskSet::rate_monotonic("traced", tasks);
        let cpu = CpuSpec::arm8();
        let horizon = Dur::from_ms(5);
        let plain = simulate(
            &ts, &cpu, &mut AlwaysFullSpeed, &lpfps_tasks::exec::PaperGaussian,
            &SimConfig::new(horizon).with_seed(seed),
        ).unwrap();
        let traced = simulate(
            &ts, &cpu, &mut AlwaysFullSpeed, &lpfps_tasks::exec::PaperGaussian,
            &SimConfig::new(horizon).with_seed(seed).with_trace(),
        ).unwrap();
        prop_assert_eq!(plain.energy.total_energy(), traced.energy.total_energy());
        prop_assert_eq!(plain.counters, traced.counters);
        prop_assert!(traced.trace.is_some() && plain.trace.is_none());
    }
}
