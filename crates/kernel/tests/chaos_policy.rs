//! Adversarial robustness: a chaos policy issues *legal but arbitrary*
//! directives and the engine must keep its invariants — no panics, full
//! energy-residency accounting, conserved job counts — on random
//! schedulable task sets. Deadlines may be missed (the chaos policy is
//! deliberately reckless about slack); correctness of the *accounting*
//! must survive anyway. This drives the engine through state transitions
//! the disciplined policies rarely produce: mid-ramp retargeting,
//! back-to-back slow-downs, sleep entries with tiny windows.

use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::policy::{PolicyCore, PowerDirective, PowerPolicy, SchedulerContext};
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::rng::SplitMix64;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use proptest::prelude::*;

/// Issues a random legal directive on every pass.
#[derive(Debug)]
struct ChaosPolicy {
    rng: SplitMix64,
}

impl PolicyCore for ChaosPolicy {
    fn name(&self) -> &'static str {
        "chaos"
    }
}

impl PowerPolicy for ChaosPolicy {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
        let roll = self.rng.next_u64() % 4;
        match (ctx.active, roll) {
            // Idle kernel: maybe sleep (always legally: wake before the
            // head release, any mode).
            (None, 0 | 1) if ctx.run_queue.is_empty() => {
                let Some(head) = ctx.next_arrival() else {
                    return PowerDirective::FullSpeed;
                };
                let modes = ctx.cpu.sleep_modes();
                let mode = (self.rng.next_u64() as usize) % modes.len();
                let wake_at =
                    head.saturating_sub(modes[mode].wakeup_delay(ctx.cpu.reference_freq()));
                if wake_at <= ctx.now {
                    return PowerDirective::FullSpeed;
                }
                // Randomly wake even earlier (legal, wasteful).
                let early = Dur::from_ns(self.rng.next_u64() % 50_000);
                let wake_at = wake_at.saturating_sub(early).max(ctx.now);
                if wake_at <= ctx.now {
                    return PowerDirective::FullSpeed;
                }
                PowerDirective::PowerDown { wake_at, mode }
            }
            // Lone active task: slow to a random ladder frequency with a
            // random (possibly too-late!) speed-up point — legal per the
            // kernel's contract, unsafe for deadlines on purpose.
            (Some(_), 0..=2) if ctx.run_queue.is_empty() => {
                let ladder = ctx.cpu.ladder();
                let steps = ladder.level_count() as u64;
                let khz =
                    ladder.min().as_khz() + (self.rng.next_u64() % steps) * ladder.step().as_khz();
                let freq = Freq::from_khz(khz);
                let Some(bound) = ctx.safe_completion_bound() else {
                    return PowerDirective::FullSpeed;
                };
                let slack = bound.saturating_since(ctx.now);
                if slack.is_zero() {
                    return PowerDirective::FullSpeed;
                }
                let offset = Dur::from_ns(self.rng.next_u64() % slack.as_ns().max(1));
                let speedup_at = ctx.now + offset;
                if speedup_at <= ctx.now {
                    return PowerDirective::FullSpeed;
                }
                PowerDirective::SlowDown { freq, speedup_at }
            }
            _ => PowerDirective::FullSpeed,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_invariants_survive_chaos(
        periods in proptest::collection::vec(100u64..2_000, 1..5),
        seed in 0u64..10_000,
        multimode in proptest::bool::ANY,
    ) {
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::new(format!("t{i}"), Dur::from_us(p), Dur::from_us((p / 10).max(1)))
                    .with_bcet_fraction(0.3)
            })
            .collect();
        let ts = TaskSet::rate_monotonic("chaos", tasks);
        let cpu = if multimode {
            CpuSpec::arm8_multimode()
        } else {
            CpuSpec::arm8()
        };
        let horizon = Dur::from_ms(20);
        let cfg = SimConfig::new(horizon).with_seed(seed);
        let mut policy = ChaosPolicy { rng: SplitMix64::new(seed) };
        let report = simulate(&ts, &cpu, &mut policy, &PaperGaussian, &cfg).unwrap();

        // Accounting invariants hold regardless of the policy's quality.
        prop_assert_eq!(report.energy.total_residency(), horizon);
        prop_assert!(report.counters.completions <= report.counters.releases);
        prop_assert!(
            report.counters.releases
                <= ts.iter().map(|(_, t, _)| horizon.as_ns().div_ceil(t.period().as_ns())).sum::<u64>()
        );
        let attributed: f64 = report.task_energy.iter().sum();
        prop_assert!(attributed <= report.energy.total_energy() + 1e-9);
        prop_assert!(report.average_power() <= 1.0 + 1e-9);
    }

    /// Chaos on top of tick-driven kernels and context-switch costs.
    #[test]
    fn engine_invariants_survive_chaos_with_overheads(
        seed in 0u64..5_000,
        tick_us in 1u64..500,
        cs_us in 0u64..20,
    ) {
        let ts = TaskSet::rate_monotonic(
            "chaos-ovh",
            vec![
                Task::new("a", Dur::from_ms(2), Dur::from_us(200)).with_bcet_fraction(0.4),
                Task::new("b", Dur::from_ms(5), Dur::from_us(700)).with_bcet_fraction(0.4),
                Task::new("c", Dur::from_ms(13), Dur::from_us(900)).with_bcet_fraction(0.4),
            ],
        );
        let cpu = CpuSpec::arm8();
        let horizon = Dur::from_ms(60);
        let cfg = SimConfig::new(horizon)
            .with_seed(seed)
            .with_tick(Dur::from_us(tick_us))
            .with_context_switch(Dur::from_us(cs_us))
            .with_ratio_overhead(Dur::from_us(1));
        let mut policy = ChaosPolicy { rng: SplitMix64::new(seed ^ 0xDEAD) };
        let report = simulate(&ts, &cpu, &mut policy, &PaperGaussian, &cfg).unwrap();
        prop_assert_eq!(report.energy.total_residency(), horizon);
        prop_assert!(report.average_power() <= 1.0 + 1e-9);
    }
}
