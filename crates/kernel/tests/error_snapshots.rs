//! Golden snapshots of the boundary error messages.
//!
//! The `Display` strings of [`SimError`] (and the domain errors it wraps)
//! are part of the tool's surface: sweep progress lines, `CellError`
//! payloads in results JSON, and CLI diagnostics all print them verbatim.
//! These tests pin the exact text of the five most common validation
//! failures — plus the budget-exhaustion diagnostic shape — so a refactor
//! that drifts a message fails here by name instead of silently changing
//! every downstream artifact.
//!
//! Malformed inputs are built through the `Deserialize` back door (the
//! validating constructors refuse to build them), exactly as a hostile
//! JSON spec would arrive.

use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::error::SimError;
use lpfps_kernel::policy::AlwaysFullSpeed;
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::task::{Priority, Task};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Map, Serialize, Value};

/// Builds a `Task` value tree with the given nanosecond fields and
/// deserializes it unvalidated.
fn smuggle_task(name: &str, period: u64, deadline: u64, wcet: u64, bcet: u64) -> Task {
    let mut m = Map::new();
    m.insert("name".to_string(), Value::String(name.to_string()));
    for (key, ns) in [
        ("period", period),
        ("deadline", deadline),
        ("wcet", wcet),
        ("bcet", bcet),
        ("phase", 0),
    ] {
        m.insert(key.to_string(), Dur::from_ns(ns).to_value());
    }
    Task::from_value(&Value::Object(m)).expect("the field map matches `Task`'s shape")
}

/// Same back door for a whole `TaskSet`.
fn smuggle_task_set(tasks: &[Task]) -> TaskSet {
    let mut m = Map::new();
    m.insert("name".to_string(), Value::String("snapshot".to_string()));
    m.insert("tasks".to_string(), tasks.to_vec().to_value());
    let prios: Vec<Priority> = (0..tasks.len() as u32).map(Priority::new).collect();
    m.insert("priorities".to_string(), prios.to_value());
    TaskSet::from_value(&Value::Object(m)).expect("the field map matches `TaskSet`'s shape")
}

/// Runs the smuggled inputs through the boundary and returns the error.
fn boundary_error(ts: &TaskSet, cpu: &CpuSpec, cfg: &SimConfig) -> SimError {
    simulate(ts, cpu, &mut AlwaysFullSpeed, &AlwaysWcet, cfg)
        .expect_err("snapshot inputs are all invalid")
}

#[test]
fn empty_task_set_message() {
    let ts = smuggle_task_set(&[]);
    let err = boundary_error(&ts, &CpuSpec::arm8(), &SimConfig::new(Dur::from_ms(1)));
    assert_eq!(err.to_string(), "invalid task set: task set is empty");
    assert_eq!(err.kind(), "invalid-task-set");
}

#[test]
fn zero_period_message() {
    let ts = smuggle_task_set(&[smuggle_task("tau1", 0, 50_000, 10_000, 10_000)]);
    let err = boundary_error(&ts, &CpuSpec::arm8(), &SimConfig::new(Dur::from_ms(1)));
    assert_eq!(
        err.to_string(),
        "invalid task set: task `tau1`: period must be positive"
    );
    assert_eq!(err.kind(), "invalid-task-set");
}

#[test]
fn wcet_exceeds_period_message() {
    let ts = smuggle_task_set(&[smuggle_task("tau1", 50_000, 50_000, 60_000, 10_000)]);
    let err = boundary_error(&ts, &CpuSpec::arm8(), &SimConfig::new(Dur::from_ms(1)));
    assert_eq!(
        err.to_string(),
        "invalid task set: task `tau1`: WCET exceeds its period"
    );
    assert_eq!(err.kind(), "invalid-task-set");
}

#[test]
fn zero_horizon_message() {
    let ts = smuggle_task_set(&[smuggle_task("tau1", 50_000, 50_000, 10_000, 10_000)]);
    let err = boundary_error(&ts, &CpuSpec::arm8(), &SimConfig::new(Dur::ZERO));
    assert_eq!(
        err.to_string(),
        "invalid simulation config: simulation horizon must be positive"
    );
    assert_eq!(err.kind(), "invalid-config");
}

#[test]
fn missing_sleep_modes_message() {
    // Empty the sleep-mode family through the value tree; the builders
    // refuse to construct this.
    let mut tree = CpuSpec::arm8().to_value();
    match &mut tree {
        Value::Object(m) => m.insert("sleep_modes".to_string(), Value::Array(vec![])),
        _ => unreachable!("CpuSpec serializes as an object"),
    }
    let cpu = CpuSpec::from_value(&tree).expect("the mutated tree still matches the shape");
    let ts = smuggle_task_set(&[smuggle_task("tau1", 50_000, 50_000, 10_000, 10_000)]);
    let err = boundary_error(&ts, &cpu, &SimConfig::new(Dur::from_ms(1)));
    assert_eq!(
        err.to_string(),
        "invalid processor spec: a processor needs at least one sleep mode"
    );
    assert_eq!(err.kind(), "invalid-cpu-spec");
}

#[test]
fn budget_exhausted_message_carries_the_partial_diagnostic() {
    let ts = smuggle_task_set(&[smuggle_task("tau1", 50_000, 50_000, 10_000, 10_000)]);
    let cfg = SimConfig::new(Dur::from_ms(10)).with_max_events(3);
    let err = boundary_error(&ts, &CpuSpec::arm8(), &cfg);
    assert_eq!(err.kind(), "budget-exhausted");
    let msg = err.to_string();
    assert!(
        msg.starts_with("event budget of 3 exhausted before the horizon (t="),
        "diagnostic shape drifted: {msg}"
    );
    assert!(
        msg.contains("events") && msg.contains("segments") && msg.contains("completions"),
        "partial diagnostic lost a field: {msg}"
    );
}

#[test]
fn partition_message_wraps_the_allocator_reason() {
    // The multicore layer folds `PartitionError` into `SimError` as a
    // pre-rendered reason string; pin the wrapper format here so sweep
    // logs and `kind()` dispatch stay stable.
    let err = SimError::Partition {
        reason: String::from("no core of 2 has capacity left for task `tau1`"),
    };
    assert_eq!(
        err.to_string(),
        "partitioning failed: no core of 2 has capacity left for task `tau1`"
    );
    assert_eq!(err.kind(), "invalid-partition");
}
