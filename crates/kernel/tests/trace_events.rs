//! One test per [`TraceEvent`] variant, each pinning the *instant* the
//! kernel stamps it — the documented contract the observability layer
//! (probes, the Gantt builder, the Perfetto exporter) builds on.
//!
//! | variant           | documented instant                                  |
//! |-------------------|-----------------------------------------------------|
//! | `Release`         | each period boundary (delay queue -> run queue)     |
//! | `Dispatch`        | execution starts or resumes                         |
//! | `Preempt`         | the preemptor's release instant                     |
//! | `Complete`        | the job retires its last cycle                      |
//! | `RampStart`       | the decision point that commanded the ramp          |
//! | `RampEnd`         | ramp start + the spec's ramp duration               |
//! | `EnterPowerDown`  | the decision point, carrying the armed `wake_at`    |
//! | `Wakeup`          | exactly the armed `wake_at`                         |
//! | `IdleStart`       | the instant the processor goes idle (NOP loop)      |
//! | `BudgetOverrun`   | exactly when the WCET budget exhausts               |
//! | `TimingViolation` | the release that caught the processor unsettled     |
//! | `EnergySegment`   | each span's *start*; consecutive spans tile exactly |

use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault, WakeupJitter};
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::policy::{
    AlwaysFullSpeed, PolicyCore, PowerDirective, PowerPolicy, SchedulerContext,
};
use lpfps_kernel::report::SimReport;
use lpfps_kernel::trace::{Trace, TraceEvent};
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::task::{Task, TaskId};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};

fn one_task(period_us: u64, wcet_us: u64) -> TaskSet {
    TaskSet::rate_monotonic(
        "one",
        vec![Task::new(
            "t0",
            Dur::from_us(period_us),
            Dur::from_us(wcet_us),
        )],
    )
}

fn two_tasks() -> TaskSet {
    // hi preempts lo at hi's second release (t = 100 us): lo still holds
    // 60 us of its 150 us demand at that point.
    TaskSet::rate_monotonic(
        "two",
        vec![
            Task::new("hi", Dur::from_us(100), Dur::from_us(10)),
            Task::new("lo", Dur::from_us(300), Dur::from_us(150)),
        ],
    )
}

fn traced(ts: &TaskSet, policy: &mut dyn PowerPolicy, horizon_us: u64) -> SimReport {
    let cfg = SimConfig::new(Dur::from_us(horizon_us)).with_trace();
    simulate(ts, &CpuSpec::arm8(), policy, &AlwaysWcet, &cfg).expect("valid simulation")
}

fn events<'a>(
    trace: &'a Trace,
    pred: impl Fn(&TraceEvent) -> bool + 'a,
) -> impl Iterator<Item = (Time, TraceEvent)> + 'a {
    trace.iter().filter(move |(_, e)| pred(e))
}

#[test]
fn release_is_stamped_at_every_period_boundary() {
    let report = traced(&one_task(100, 10), &mut AlwaysFullSpeed, 250);
    let trace = report.trace.as_ref().unwrap();
    let releases: Vec<_> = events(trace, |e| matches!(e, TraceEvent::Release { .. })).collect();
    assert_eq!(
        releases.len(),
        3,
        "250 us hold exactly three 100 us periods"
    );
    for (job, (at, e)) in releases.into_iter().enumerate() {
        assert_eq!(at, Time::from_us(100 * job as u64));
        assert_eq!(
            e,
            TraceEvent::Release {
                task: TaskId(0),
                job: job as u64
            }
        );
    }
}

#[test]
fn dispatch_is_stamped_when_execution_starts_or_resumes() {
    let report = traced(&two_tasks(), &mut AlwaysFullSpeed, 300);
    let trace = report.trace.as_ref().unwrap();
    let dispatches: Vec<_> = events(trace, |e| matches!(e, TraceEvent::Dispatch { .. })).collect();
    // hi job 0 starts at its release; lo starts when hi completes; lo
    // *resumes* (a fresh Dispatch) once hi job 1 retires at t = 110.
    assert_eq!(
        &dispatches[..3],
        &[
            (
                Time::from_us(0),
                TraceEvent::Dispatch {
                    task: TaskId(0),
                    job: 0
                }
            ),
            (
                Time::from_us(10),
                TraceEvent::Dispatch {
                    task: TaskId(1),
                    job: 0
                }
            ),
            (
                Time::from_us(100),
                TraceEvent::Dispatch {
                    task: TaskId(0),
                    job: 1
                }
            ),
        ]
    );
    assert_eq!(
        dispatches[3],
        (
            Time::from_us(110),
            TraceEvent::Dispatch {
                task: TaskId(1),
                job: 0
            }
        ),
        "the preempted job resumes the instant the preemptor completes"
    );
}

#[test]
fn preempt_is_stamped_at_the_preemptor_release() {
    let report = traced(&two_tasks(), &mut AlwaysFullSpeed, 300);
    let trace = report.trace.as_ref().unwrap();
    let preempts: Vec<_> = events(trace, |e| matches!(e, TraceEvent::Preempt { .. })).collect();
    assert_eq!(
        preempts.first(),
        Some(&(
            Time::from_us(100),
            TraceEvent::Preempt {
                task: TaskId(1),
                by: TaskId(0)
            }
        )),
        "lo is preempted exactly when hi's second job releases"
    );
}

#[test]
fn complete_records_response_and_deadline_verdict_at_retirement() {
    let report = traced(&one_task(100, 10), &mut AlwaysFullSpeed, 100);
    let trace = report.trace.as_ref().unwrap();
    let completes: Vec<_> = events(trace, |e| matches!(e, TraceEvent::Complete { .. })).collect();
    assert_eq!(
        completes,
        vec![(
            Time::from_us(10),
            TraceEvent::Complete {
                task: TaskId(0),
                job: 0,
                response: Dur::from_us(10),
                met: true
            }
        )],
        "at full speed an AlwaysWcet job retires exactly WCET after release"
    );

    // An unschedulable pair: lo (150 us demand, 300 us deadline) loses
    // 10 us to each of hi's three releases it spans, retiring at 180 us —
    // still met; shrink lo's period to 170 us and the verdict flips.
    let late = TaskSet::rate_monotonic(
        "late",
        vec![
            Task::new("hi", Dur::from_us(100), Dur::from_us(50)),
            Task::new("lo", Dur::from_us(150), Dur::from_us(74)),
        ],
    );
    let report = traced(&late, &mut AlwaysFullSpeed, 300);
    let trace = report.trace.as_ref().unwrap();
    let (at, e) = events(
        trace,
        |e| matches!(e, TraceEvent::Complete { task, .. } if *task == TaskId(1)),
    )
    .next()
    .expect("lo completes inside the horizon");
    // lo runs 50..100, is preempted through 150, resumes and retires at
    // 174 us — 24 us past its 150 us deadline.
    assert_eq!(at, Time::from_us(174));
    assert_eq!(
        e,
        TraceEvent::Complete {
            task: TaskId(1),
            job: 0,
            response: Dur::from_us(174),
            met: false
        }
    );
}

#[test]
fn idle_start_is_stamped_the_instant_the_processor_goes_idle() {
    let report = traced(&one_task(100, 10), &mut AlwaysFullSpeed, 250);
    let trace = report.trace.as_ref().unwrap();
    let idles: Vec<Time> = events(trace, |e| matches!(e, TraceEvent::IdleStart))
        .map(|(at, _)| at)
        .collect();
    // Under the full-speed policy the NOP loop starts the instant each
    // job retires (10 us into every 100 us period).
    assert_eq!(
        idles,
        vec![Time::from_us(10), Time::from_us(110), Time::from_us(210)]
    );
}

#[test]
fn energy_segments_are_stamped_at_span_starts_and_tile_the_horizon() {
    let mut full = AlwaysFullSpeed;
    let mut slow = SlowOnce::default();
    let policies: [&mut dyn PowerPolicy; 2] = [&mut full, &mut slow];
    for policy in policies {
        let report = traced(&one_task(100, 10), policy, 250);
        let trace = report.trace.as_ref().unwrap();
        let mut cursor = Time::ZERO;
        let segments = events(trace, |e| matches!(e, TraceEvent::EnergySegment { .. }));
        for (n, (at, e)) in segments.into_iter().enumerate() {
            let TraceEvent::EnergySegment { dur, .. } = e else {
                unreachable!()
            };
            assert_eq!(
                at, cursor,
                "segment {n} must start where its predecessor ended"
            );
            assert!(dur > Dur::ZERO, "zero-width spans are never emitted");
            cursor = at + dur;
        }
        assert_eq!(
            cursor,
            Time::from_us(250),
            "consecutive segments tile [0, horizon] exactly"
        );
    }
}

/// One-shot slow-down: the first time a lone task is active with a known
/// next arrival, ramp to 50 MHz and arm the speed-up timer so the
/// processor is back at full speed for that arrival.
#[derive(Debug, Default)]
struct SlowOnce {
    fired: bool,
}

impl PolicyCore for SlowOnce {
    fn name(&self) -> &'static str {
        "slow-once"
    }
}

impl PowerPolicy for SlowOnce {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
        if !self.fired && ctx.active.is_some() && ctx.run_queue.is_empty() {
            if let Some(t_a) = ctx.next_arrival() {
                let freq = Freq::from_mhz(50);
                self.fired = true;
                return PowerDirective::SlowDown {
                    freq,
                    speedup_at: t_a - ctx.cpu.ramp_duration(freq, ctx.cpu.full_freq()),
                };
            }
        }
        PowerDirective::FullSpeed
    }
}

#[test]
fn ramp_start_and_end_bracket_the_commanded_transition() {
    let ts = two_tasks();
    let cpu = CpuSpec::arm8();
    // hi retires at t = 10 us, leaving lo alone with hi's next arrival at
    // 100 us known: SlowOnce commands the ramp at that decision point.
    let report = traced(&ts, &mut SlowOnce::default(), 300);
    let trace = report.trace.as_ref().unwrap();
    let ramps: Vec<_> = events(trace, |e| {
        matches!(e, TraceEvent::RampStart { .. } | TraceEvent::RampEnd { .. })
    })
    .collect();
    let down = cpu.ramp_duration(Freq::from_mhz(100), Freq::from_mhz(50));
    assert_eq!(
        &ramps[..2],
        &[
            (
                Time::from_us(10),
                TraceEvent::RampStart {
                    from: Freq::from_mhz(100),
                    to: Freq::from_mhz(50)
                }
            ),
            (
                Time::from_us(10) + down,
                TraceEvent::RampEnd {
                    freq: Freq::from_mhz(50)
                }
            ),
        ],
        "RampStart at the decision instant; RampEnd exactly ramp_duration later"
    );
    // The ramp back up (whenever the kernel starts it) obeys the same
    // start + duration contract.
    let up = cpu.ramp_duration(Freq::from_mhz(50), Freq::from_mhz(100));
    let (up_start, e) = ramps[2];
    assert_eq!(
        e,
        TraceEvent::RampStart {
            from: Freq::from_mhz(50),
            to: Freq::from_mhz(100)
        }
    );
    assert_eq!(
        ramps[3],
        (
            up_start + up,
            TraceEvent::RampEnd {
                freq: Freq::from_mhz(100)
            }
        )
    );
}

/// One-shot power-down with the Fig. 4 L14 compensation: the wake timer
/// is armed `wakeup_delay` early so the processor is settled at full
/// speed by the next release. (An uncompensated `wake_at` would be
/// rejected up front — the engine validates directives — so the *late*
/// wake-up of the TimingViolation test is injected as a wake-up-jitter
/// fault instead.)
#[derive(Debug, Default)]
struct SleepOnce {
    fired: bool,
}

impl PolicyCore for SleepOnce {
    fn name(&self) -> &'static str {
        "sleep-once"
    }
}

impl PowerPolicy for SleepOnce {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
        if !self.fired && ctx.active.is_none() && ctx.run_queue.is_empty() {
            if let Some(t_a) = ctx.next_arrival() {
                self.fired = true;
                return PowerDirective::PowerDown {
                    wake_at: t_a - ctx.cpu.wakeup_delay(),
                    mode: 0,
                };
            }
        }
        PowerDirective::FullSpeed
    }
}

#[test]
fn enter_power_down_carries_the_armed_instant_and_wakeup_fires_at_it() {
    let cpu = CpuSpec::arm8();
    let mut policy = SleepOnce::default();
    let report = traced(&one_task(100, 20), &mut policy, 200);
    let trace = report.trace.as_ref().unwrap();
    let wake_at = Time::from_us(100) - cpu.wakeup_delay();
    assert_eq!(
        events(trace, |e| matches!(e, TraceEvent::EnterPowerDown { .. }))
            .next()
            .unwrap(),
        (Time::from_us(20), TraceEvent::EnterPowerDown { wake_at }),
        "power-down is stamped at the decision point, carrying wake_at"
    );
    assert_eq!(
        events(trace, |e| matches!(e, TraceEvent::Wakeup))
            .next()
            .map(|(at, _)| at),
        Some(wake_at),
        "the wake-up timer fires exactly when armed"
    );
    // The compensation worked: the t = 100 us release found the processor
    // settled, so no violation was recorded.
    assert_eq!(
        events(trace, |e| matches!(e, TraceEvent::TimingViolation)).count(),
        0
    );
}

#[test]
fn timing_violation_is_stamped_at_the_release_that_caught_the_processor_down() {
    // The policy wakes exactly `wakeup_delay` before the t = 100 us
    // release; injected wake-up jitter adds latency on top, so the
    // release catches the processor still waking up.
    let faults = FaultConfig::none()
        .with_seed(9)
        .with_wakeup_jitter(WakeupJitter::uniform(Dur::from_us(5)));
    let cfg = SimConfig::new(Dur::from_us(200))
        .with_trace()
        .with_faults(faults);
    let report = simulate(
        &one_task(100, 20),
        &CpuSpec::arm8(),
        &mut SleepOnce::default(),
        &AlwaysWcet,
        &cfg,
    )
    .expect("valid simulation");
    let trace = report.trace.as_ref().unwrap();
    assert_eq!(
        events(trace, |e| matches!(e, TraceEvent::TimingViolation))
            .next()
            .map(|(at, _)| at),
        Some(Time::from_us(100)),
        "the violation is stamped at the detecting release"
    );
    assert!(report.counters.watchdog_faults > 0);
}

#[test]
fn budget_overrun_is_stamped_exactly_when_the_budget_exhausts() {
    let ts = one_task(100, 20);
    let faults = FaultConfig::none()
        .with_seed(1)
        .with_overrun(OverrunFault::clamped(1.0, 0.5, 1.5));
    let cfg = SimConfig::new(Dur::from_us(100))
        .with_trace()
        .with_faults(faults);
    let report = simulate(
        &ts,
        &CpuSpec::arm8(),
        &mut AlwaysFullSpeed,
        &AlwaysWcet,
        &cfg,
    )
    .expect("valid simulation");
    let trace = report.trace.as_ref().unwrap();
    // p = 1 guarantees the overrun fires and injects at least one cycle
    // beyond the budget; at full speed the 20 us budget of the job
    // dispatched at t = 0 exhausts at exactly t = 20 us.
    assert_eq!(
        events(trace, |e| matches!(e, TraceEvent::BudgetOverrun { .. }))
            .next()
            .unwrap(),
        (
            Time::from_us(20),
            TraceEvent::BudgetOverrun { task: TaskId(0) }
        ),
        "detection happens when the budget exhausts, not at completion"
    );
    assert!(report.counters.overruns > 0);
}
