//! Cache-replay property: the event-horizon cache must be a pure
//! memoization. For any task set, fault schedule, and directive stream,
//! running the engine with the cache enabled (default) and with
//! [`SimConfig::with_force_event_recompute`] (every `next_event_time`
//! query recomputed from scratch) must produce byte-identical serialized
//! reports — trace included, so the comparison covers every event stamp
//! and every energy segment, not just the end-of-run aggregates.
//!
//! The directive stream is driven by a chaos policy (random legal
//! slow-downs and sleeps) so the cache is exercised across the
//! transitions the disciplined policies rarely produce: mid-ramp
//! retargets, sleeps with tiny windows, speed-up timers landing between
//! releases.

use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault, RampDegradation, ReleaseJitter, WakeupJitter};
use lpfps_kernel::engine::{simulate, SimConfig};
use lpfps_kernel::policy::{
    AlwaysFullSpeed, PolicyCore, PowerDirective, PowerPolicy, SchedulerContext,
};
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::rng::SplitMix64;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use proptest::prelude::*;

/// Random legal directives, as in `chaos_policy.rs`: sleeps that wake
/// before the head release, slow-downs to random ladder rungs with
/// random speed-up points.
#[derive(Debug)]
struct ChaosPolicy {
    rng: SplitMix64,
}

impl PolicyCore for ChaosPolicy {
    fn name(&self) -> &'static str {
        "chaos"
    }
}

impl PowerPolicy for ChaosPolicy {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
        let roll = self.rng.next_u64() % 4;
        match (ctx.active, roll) {
            (None, 0 | 1) if ctx.run_queue.is_empty() => {
                let Some(head) = ctx.next_arrival() else {
                    return PowerDirective::FullSpeed;
                };
                let modes = ctx.cpu.sleep_modes();
                let mode = (self.rng.next_u64() as usize) % modes.len();
                let wake_at =
                    head.saturating_sub(modes[mode].wakeup_delay(ctx.cpu.reference_freq()));
                if wake_at <= ctx.now {
                    return PowerDirective::FullSpeed;
                }
                PowerDirective::PowerDown { wake_at, mode }
            }
            (Some(_), 0..=2) if ctx.run_queue.is_empty() => {
                let ladder = ctx.cpu.ladder();
                let steps = ladder.level_count() as u64;
                let khz =
                    ladder.min().as_khz() + (self.rng.next_u64() % steps) * ladder.step().as_khz();
                let freq = Freq::from_khz(khz);
                let Some(bound) = ctx.safe_completion_bound() else {
                    return PowerDirective::FullSpeed;
                };
                let slack = bound.saturating_since(ctx.now);
                if slack.is_zero() {
                    return PowerDirective::FullSpeed;
                }
                let offset = Dur::from_ns(self.rng.next_u64() % slack.as_ns().max(1));
                let speedup_at = ctx.now + offset;
                if speedup_at <= ctx.now {
                    return PowerDirective::FullSpeed;
                }
                PowerDirective::SlowDown { freq, speedup_at }
            }
            _ => PowerDirective::FullSpeed,
        }
    }
}

fn random_taskset(periods: &[u64]) -> TaskSet {
    let tasks: Vec<Task> = periods
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            Task::new(
                format!("t{i}"),
                Dur::from_us(p),
                Dur::from_us((p / 10).max(1)),
            )
            .with_bcet_fraction(0.4)
        })
        .collect();
    TaskSet::rate_monotonic("cache-replay", tasks)
}

/// Serializes a report with its trace; byte equality of this string is
/// the property under test.
fn replay_pair(
    ts: &TaskSet,
    cpu: &CpuSpec,
    cfg: &SimConfig,
    seed: u64,
    chaos: bool,
) -> (String, String) {
    let run = |cfg: &SimConfig| {
        if chaos {
            let mut policy = ChaosPolicy {
                rng: SplitMix64::new(seed),
            };
            simulate(ts, cpu, &mut policy, &PaperGaussian, cfg).unwrap()
        } else {
            simulate(ts, cpu, &mut AlwaysFullSpeed, &PaperGaussian, cfg).unwrap()
        }
    };
    let cached = run(cfg);
    let recomputed = run(&cfg.clone().with_force_event_recompute());
    (
        serde_json::to_string(&cached).expect("reports serialize"),
        serde_json::to_string(&recomputed).expect("reports serialize"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random chaos-directive schedules under a fault-free stream: the
    /// cached and force-recompute runs must serialize identically.
    #[test]
    fn chaos_replay_is_cache_invariant(
        periods in proptest::collection::vec(100u64..2_000, 1..5),
        seed in 0u64..10_000,
        multimode in proptest::bool::ANY,
    ) {
        let ts = random_taskset(&periods);
        let cpu = if multimode {
            CpuSpec::arm8_multimode()
        } else {
            CpuSpec::arm8()
        };
        let cfg = SimConfig::new(Dur::from_ms(20)).with_seed(seed).with_trace();
        let (cached, recomputed) = replay_pair(&ts, &cpu, &cfg, seed, true);
        prop_assert_eq!(cached, recomputed);
    }

    /// Random fault schedules (overrun + release jitter + wakeup jitter +
    /// ramp degradation, random seeds and magnitudes) on top of random
    /// directives: the cache must stay invisible even when fault hooks
    /// perturb every event class it indexes.
    #[test]
    fn faulted_replay_is_cache_invariant(
        seed in 0u64..10_000,
        fault_seed in 0u64..1_000,
        overrun_pct in 0u32..40,
        jitter_us in 0u64..200,
        wake_us in 0u64..100,
        chaos in proptest::bool::ANY,
    ) {
        let ts = random_taskset(&[700, 1_300, 2_900]);
        let cpu = CpuSpec::arm8();
        let faults = FaultConfig::none()
            .with_seed(fault_seed)
            .with_overrun(OverrunFault::clamped(f64::from(overrun_pct) / 100.0, 0.3, 1.3))
            .with_release_jitter(ReleaseJitter::uniform(Dur::from_us(jitter_us)))
            .with_wakeup_jitter(WakeupJitter::uniform(Dur::from_us(wake_us)))
            .with_ramp_degradation(RampDegradation::uniform(0.5, 1.0));
        let cfg = SimConfig::new(Dur::from_ms(25))
            .with_seed(seed)
            .with_faults(faults)
            .with_trace();
        let (cached, recomputed) = replay_pair(&ts, &cpu, &cfg, seed, chaos);
        prop_assert_eq!(cached, recomputed);
    }

    /// Tick-driven kernels and context-switch / ratio overheads insert
    /// synthetic events between task events — exactly where a stale
    /// horizon would first surface.
    #[test]
    fn overhead_replay_is_cache_invariant(
        seed in 0u64..5_000,
        tick_us in 1u64..500,
        cs_us in 0u64..20,
    ) {
        let ts = random_taskset(&[500, 1_100, 2_300]);
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(15))
            .with_seed(seed)
            .with_tick(Dur::from_us(tick_us))
            .with_context_switch(Dur::from_us(cs_us))
            .with_ratio_overhead(Dur::from_us(1))
            .with_trace();
        let (cached, recomputed) = replay_pair(&ts, &cpu, &cfg, seed, true);
        prop_assert_eq!(cached, recomputed);
    }
}

/// Deterministic companion: the intentional stale-cache injection hook
/// must *break* replay equality on a cell where the differential suite
/// relies on it being caught — guarding the property tests themselves
/// against a hook that silently became a no-op.
#[test]
fn stale_cache_injection_breaks_replay_equality() {
    let ts = random_taskset(&[700, 1_300, 2_900]);
    let cpu = CpuSpec::arm8();
    let cfg = SimConfig::new(Dur::from_ms(25)).with_seed(11).with_trace();
    let clean = simulate(
        &ts,
        &cpu,
        &mut ChaosPolicy {
            rng: SplitMix64::new(11),
        },
        &PaperGaussian,
        &cfg,
    )
    .unwrap();
    let stale = simulate(
        &ts,
        &cpu,
        &mut ChaosPolicy {
            rng: SplitMix64::new(11),
        },
        &PaperGaussian,
        &cfg.clone().with_stale_dispatch_cache(),
    )
    .unwrap();
    assert_ne!(
        serde_json::to_string(&clean).unwrap(),
        serde_json::to_string(&stale).unwrap(),
        "the stale-dispatch-cache injection hook no longer changes behavior; \
         the sabotage tests in crates/oracle are vacuous"
    );
}
