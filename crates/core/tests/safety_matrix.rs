//! The headline safety property of the paper: **LPFPS never violates a
//! deadline that FPS would have met.** This matrix runs every policy on
//! every published workload across the Figure-8 BCET sweep and multiple
//! seeds, asserting zero deadline misses everywhere.

use lpfps::driver::{run, PolicyKind};
use lpfps::SimConfig;
use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::exec::{AlwaysWcet, Bimodal, Cyclic, PaperGaussian, UniformBetween};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use lpfps_workloads::{applications, table1};

/// A horizon long enough to exercise many jobs of every task without
/// making the debug-build matrix slow.
fn test_horizon(ts: &TaskSet) -> Dur {
    let max_period = ts.iter().map(|(_, t, _)| t.period()).max().unwrap();
    (max_period * 3).min(Dur::from_secs(6)).max(Dur::from_ms(1))
}

fn check_all(ts: &TaskSet) {
    let cpu = CpuSpec::arm8();
    let horizon = test_horizon(ts);
    for policy in PolicyKind::ALL {
        for frac in [0.1, 0.5, 1.0] {
            for seed in [0u64, 1] {
                let scaled = ts.with_bcet_fraction(frac);
                let cfg = SimConfig::new(horizon).with_seed(seed);
                let report = run(&scaled, &cpu, policy, &PaperGaussian, &cfg).unwrap();
                assert!(
                    report.all_deadlines_met(),
                    "{} / {policy} / frac {frac} / seed {seed}: {:?}",
                    ts.name(),
                    report.misses
                );
            }
        }
    }
}

#[test]
fn avionics_never_misses() {
    check_all(&applications()[0]);
}

#[test]
fn ins_never_misses() {
    check_all(&applications()[1]);
}

#[test]
fn flight_control_never_misses() {
    check_all(&applications()[2]);
}

#[test]
fn cnc_never_misses() {
    check_all(&applications()[3]);
}

#[test]
fn table1_never_misses() {
    check_all(&table1());
}

#[test]
fn alternative_execution_models_are_safe_too() {
    // LPFPS's guarantee is distribution-independent: it budgets for the
    // WCET-remaining work, so heavy-tailed and adversarial distributions
    // must be just as safe.
    let cpu = CpuSpec::arm8();
    for ts in applications() {
        let ts = ts.with_bcet_fraction(0.2);
        let horizon = test_horizon(&ts);
        let cfg = SimConfig::new(horizon).with_seed(9);
        for policy in [PolicyKind::Lpfps, PolicyKind::LpfpsOptimal] {
            let uni = run(&ts, &cpu, policy, &UniformBetween, &cfg).unwrap();
            assert!(
                uni.all_deadlines_met(),
                "{} uniform: {:?}",
                ts.name(),
                uni.misses
            );
            let bi = run(&ts, &cpu, policy, &Bimodal::new(0.1), &cfg).unwrap();
            assert!(
                bi.all_deadlines_met(),
                "{} bimodal: {:?}",
                ts.name(),
                bi.misses
            );
            let wcet = run(&ts, &cpu, policy, &AlwaysWcet, &cfg).unwrap();
            assert!(
                wcet.all_deadlines_met(),
                "{} wcet: {:?}",
                ts.name(),
                wcet.misses
            );
            let cyc = run(&ts, &cpu, policy, &Cyclic::new(12, 0.3), &cfg).unwrap();
            assert!(
                cyc.all_deadlines_met(),
                "{} cyclic: {:?}",
                ts.name(),
                cyc.misses
            );
        }
    }
}

#[test]
fn phase_shifted_releases_are_safe() {
    // Breaking the synchronous release pattern must not break the policy:
    // shift every task by a distinct phase.
    use lpfps_tasks::task::Task;
    let cpu = CpuSpec::arm8();
    let base = table1();
    let tasks: Vec<Task> = base
        .iter()
        .map(|(id, t, _)| {
            Task::new(t.name(), t.period(), t.wcet())
                .with_bcet(t.bcet())
                .with_phase(Dur::from_us(7 * (id.0 as u64 + 1)))
        })
        .collect();
    let ts = TaskSet::rate_monotonic("table1-phased", tasks).with_bcet_fraction(0.3);
    let cfg = SimConfig::new(Dur::from_ms(4)).with_seed(3);
    for policy in PolicyKind::ALL {
        let report = run(&ts, &cpu, policy, &PaperGaussian, &cfg).unwrap();
        assert!(
            report.all_deadlines_met(),
            "{policy} with phases: {:?}",
            report.misses
        );
    }
}
