//! Cross-validation of the two independent oracles in this workspace:
//! analytical response-time analysis versus the event-driven simulator.
//! Any divergence indicates a bug in one of them.

use lpfps::driver::{run, PolicyKind};
use lpfps::SimConfig;
use lpfps_cpu::spec::CpuSpec;
use lpfps_cpu::state::StateKind;
use lpfps_tasks::analysis::{response_times, RtaConfig};
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use lpfps_workloads::{applications, table1};

fn horizon_for(ts: &TaskSet) -> Dur {
    let max_period = ts.iter().map(|(_, t, _)| t.period()).max().unwrap();
    (max_period * 3).min(Dur::from_secs(6))
}

#[test]
fn simulated_responses_never_exceed_rta_bounds() {
    let cpu = CpuSpec::arm8();
    for ts in applications().into_iter().chain([table1()]) {
        let cfg = SimConfig::new(horizon_for(&ts));
        // At WCET, under every policy (LPFPS must not stretch past bounds).
        for policy in [PolicyKind::Fps, PolicyKind::Lpfps, PolicyKind::LpfpsOptimal] {
            let report = run(&ts, &cpu, policy, &AlwaysWcet, &cfg).unwrap();
            let rta = response_times(&ts, &RtaConfig::default());
            for (i, stats) in report.responses.iter().enumerate() {
                if stats.completed == 0 {
                    continue;
                }
                // LPFPS may legally finish a lone task right at the safe
                // completion bound, which RTA does not model; but it must
                // never exceed the *deadline*.
                let task = ts.task(lpfps_tasks::task::TaskId(i));
                assert!(
                    stats.max_response <= task.deadline(),
                    "{}/{policy}: task {i} response {} > deadline {}",
                    ts.name(),
                    stats.max_response,
                    task.deadline()
                );
                if policy == PolicyKind::Fps {
                    let bound = rta[i].response().expect("workloads are schedulable");
                    assert!(
                        stats.max_response <= bound,
                        "{}: task {i} simulated {} > RTA {}",
                        ts.name(),
                        stats.max_response,
                        bound
                    );
                }
            }
        }
    }
}

#[test]
fn critical_instant_attains_the_rta_bound() {
    // With synchronous release and WCET execution, the first busy period
    // realizes the worst case exactly, so FPS simulation must *attain* the
    // RTA response for every task.
    let cpu = CpuSpec::arm8();
    for ts in applications().into_iter().chain([table1()]) {
        let cfg = SimConfig::new(horizon_for(&ts));
        let report = run(&ts, &cpu, PolicyKind::Fps, &AlwaysWcet, &cfg).unwrap();
        let rta = response_times(&ts, &RtaConfig::default());
        for (i, stats) in report.responses.iter().enumerate() {
            let bound = rta[i].response().expect("schedulable");
            assert_eq!(
                stats.max_response,
                bound,
                "{}: task {i} should attain its RTA bound at the critical instant",
                ts.name()
            );
        }
    }
}

#[test]
fn fps_busy_time_matches_utilization_at_wcet() {
    // Over whole hyperperiods, the busy residency of FPS at WCET equals
    // the released work exactly (the "FPS power ~ utilization" claim).
    let cpu = CpuSpec::arm8();
    let ts = table1();
    let hyper = lpfps_tasks::analysis::hyperperiod(&ts).unwrap();
    let cfg = SimConfig::new(hyper * 5);
    let report = run(&ts, &cpu, PolicyKind::Fps, &AlwaysWcet, &cfg).unwrap();
    let expected: Dur = ts
        .iter()
        .map(|(_, t, _)| t.wcet() * ((hyper * 5) / t.period()))
        .sum();
    assert_eq!(report.energy.bucket(StateKind::Busy).residency, expected);
    let u = ts.utilization();
    let predicted_power = u + (1.0 - u) * 0.2;
    assert!((report.average_power() - predicted_power).abs() < 1e-9);
}

#[test]
fn static_slowdown_frequency_agrees_with_breakdown_utilization() {
    // The static slowdown point and breakdown utilization answer the same
    // question from two directions: U_breakdown ~= U / (f_static / f_ref).
    use lpfps::baselines::static_slowdown_freq;
    use lpfps_tasks::analysis::breakdown_utilization;
    let cpu = CpuSpec::arm8();
    for ts in applications() {
        let f = static_slowdown_freq(&ts, &cpu).expect("schedulable");
        let stretched_u =
            ts.utilization() * cpu.reference_freq().as_khz() as f64 / f.as_khz() as f64;
        let breakdown = breakdown_utilization(&ts, 1e-4).expect("schedulable");
        // Both estimate "how much denser can this set get": they must agree
        // to within the ladder's 1 MHz quantization plus search tolerance.
        assert!(
            (stretched_u - breakdown).abs() < 0.03,
            "{}: static-slowdown implies U {stretched_u}, breakdown says {breakdown}",
            ts.name()
        );
    }
}

#[test]
fn lpfps_never_lowers_throughput() {
    // Same released and completed job counts under FPS and LPFPS over the
    // same horizon: power management must not change *what* runs, only
    // *how fast* it runs.
    let cpu = CpuSpec::arm8();
    for ts in applications() {
        let ts = ts.with_bcet_fraction(0.4);
        let cfg = SimConfig::new(horizon_for(&ts)).with_seed(5);
        let fps = run(
            &ts,
            &cpu,
            PolicyKind::Fps,
            &lpfps_tasks::exec::PaperGaussian,
            &cfg,
        )
        .unwrap();
        let lp = run(
            &ts,
            &cpu,
            PolicyKind::Lpfps,
            &lpfps_tasks::exec::PaperGaussian,
            &cfg,
        )
        .unwrap();
        assert_eq!(fps.counters.releases, lp.counters.releases, "{}", ts.name());
        // Completions can differ by the handful of jobs in flight at the
        // horizon (LPFPS stretches them), never by more than the task count.
        let diff = fps.counters.completions.abs_diff(lp.counters.completions);
        assert!(
            diff <= ts.len() as u64,
            "{}: completion counts diverged by {diff}",
            ts.name()
        );
    }
}
