//! Energy-ordering and reproducibility properties of the policy family,
//! on the published workloads and on random schedulable sets.

use lpfps::driver::{power_reduction, run, PolicyKind};
use lpfps::SimConfig;
use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::analysis::rta_schedulable;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::gen::{generate, GenConfig};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use lpfps_workloads::applications;
use proptest::prelude::*;

fn horizon_for(ts: &TaskSet) -> Dur {
    let max_period = ts.iter().map(|(_, t, _)| t.period()).max().unwrap();
    (max_period * 3).min(Dur::from_secs(6))
}

#[test]
fn policy_family_is_energy_ordered_on_all_workloads() {
    let cpu = CpuSpec::arm8();
    for ts in applications() {
        let ts = ts.with_bcet_fraction(0.5);
        let cfg = SimConfig::new(horizon_for(&ts)).with_seed(2);
        let p = |k: PolicyKind| {
            run(&ts, &cpu, k, &PaperGaussian, &cfg)
                .unwrap()
                .average_power()
        };
        let fps = p(PolicyKind::Fps);
        let pd = p(PolicyKind::FpsPd);
        let dvs = p(PolicyKind::LpfpsDvsOnly);
        let full = p(PolicyKind::Lpfps);
        let opt = p(PolicyKind::LpfpsOptimal);
        assert!(pd < fps, "{}: fps-pd {pd} !< fps {fps}", ts.name());
        assert!(dvs < fps, "{}: dvs {dvs} !< fps {fps}", ts.name());
        assert!(full < pd, "{}: lpfps {full} !< fps-pd {pd}", ts.name());
        assert!(
            full < dvs + 1e-9,
            "{}: lpfps {full} !< dvs {dvs}",
            ts.name()
        );
        // The optimal ratio can only help (it runs at most as fast).
        assert!(opt <= full + 1e-6, "{}: opt {opt} > heu {full}", ts.name());
    }
}

#[test]
fn reduction_grows_monotonically_as_bcet_shrinks() {
    let cpu = CpuSpec::arm8();
    for ts in applications() {
        let horizon = horizon_for(&ts);
        let mut last = f64::MAX;
        for frac in [0.2, 0.5, 0.8] {
            let scaled = ts.with_bcet_fraction(frac);
            let cfg = SimConfig::new(horizon).with_seed(4);
            let fps = run(&scaled, &cpu, PolicyKind::Fps, &PaperGaussian, &cfg).unwrap();
            let lp = run(&scaled, &cpu, PolicyKind::Lpfps, &PaperGaussian, &cfg).unwrap();
            let red = power_reduction(&fps, &lp);
            assert!(
                red < last + 0.02,
                "{}: reduction should shrink as BCET grows (frac {frac}: {red} vs {last})",
                ts.name()
            );
            last = red;
        }
    }
}

#[test]
fn reports_are_bitwise_reproducible() {
    let cpu = CpuSpec::arm8();
    for ts in applications() {
        let ts = ts.with_bcet_fraction(0.3);
        let cfg = SimConfig::new(horizon_for(&ts)).with_seed(17);
        let a = run(&ts, &cpu, PolicyKind::Lpfps, &PaperGaussian, &cfg).unwrap();
        let b = run(&ts, &cpu, PolicyKind::Lpfps, &PaperGaussian, &cfg).unwrap();
        assert_eq!(
            a.energy.total_energy().to_bits(),
            b.energy.total_energy().to_bits()
        );
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.responses, b.responses);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random RM-schedulable sets, LPFPS keeps deadlines and does not
    /// burn more than FPS (tiny tolerance for degenerate sub-microsecond
    /// idle gaps where a power-down's wake-up costs more than it saves).
    #[test]
    fn lpfps_wins_on_random_schedulable_sets(
        n in 2usize..10,
        u_pct in 10u64..80,
        seed in 0u64..1_000,
    ) {
        let cfg_gen = GenConfig::new(n, u_pct as f64 / 100.0)
            .with_periods(Dur::from_ms(1), Dur::from_ms(50))
            .with_bcet_fraction(0.4);
        let ts = generate(&cfg_gen, seed);
        prop_assume!(rta_schedulable(&ts));
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(150)).with_seed(seed);
        let fps = run(&ts, &cpu, PolicyKind::Fps, &PaperGaussian, &cfg).unwrap();
        let lp = run(&ts, &cpu, PolicyKind::Lpfps, &PaperGaussian, &cfg).unwrap();
        prop_assert!(lp.all_deadlines_met(), "misses: {:?}", lp.misses);
        prop_assert!(
            lp.average_power() <= fps.average_power() * 1.001,
            "LPFPS {} > FPS {}",
            lp.average_power(),
            fps.average_power()
        );
    }
}
