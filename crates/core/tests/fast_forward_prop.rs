//! Property-based equivalence of the steady-state fast-forward.
//!
//! For random schedulable task sets with representable hyperperiods,
//! every policy the driver dispatches must produce a **bit-identical
//! serialized report** whether the kernel's cycle detector is allowed to
//! skip whole hyperperiods or the run is forced through the full
//! event-by-event simulation — at several horizon scales, including ones
//! where dozens of cycles are extrapolated. A second property pins the
//! eligibility rule: a faulted run never fast-forwards, because fault
//! draws are a function of the absolute job index and would not repeat
//! cycle for cycle.

use lpfps::driver::{run_in, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_kernel::engine::{SimConfig, SimWorkspace};
use lpfps_tasks::analysis::{hyperperiod, rta_schedulable};
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use proptest::prelude::*;
use serde::Serialize;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Fps,
    PolicyKind::Lpfps,
    PolicyKind::LpfpsWatchdog,
    PolicyKind::Edf,
    PolicyKind::CcEdf,
];

/// Periods drawn from a divisor-friendly pool so hyperperiods stay small
/// enough for several whole cycles to fit in a test-sized horizon. (Fully
/// random periods give astronomically large hyperperiods, which only
/// exercises the detector's *ineligible* path — covered separately by the
/// hostile-input tests.)
const PERIOD_POOL_US: [u64; 6] = [100, 200, 400, 500, 800, 1000];

/// A small task set with pool periods and utilization low enough that
/// every policy schedules it.
fn pool_set(n: usize, picks: &[usize], wcet_pcts: &[u64]) -> TaskSet {
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            let period = Dur::from_us(PERIOD_POOL_US[picks[i] % PERIOD_POOL_US.len()]);
            // 2%..=12% of the period each, so n <= 6 stays well under the
            // RM bound and LPFPS has genuine slack to stretch into.
            let wcet_ns = period.as_ns() * (2 + wcet_pcts[i] % 11) / 100;
            Task::new(format!("t{i}"), period, Dur::from_ns(wcet_ns.max(1)))
        })
        .collect();
    TaskSet::rate_monotonic("prop", tasks)
}

fn report_json<T: Serialize>(report: &T) -> String {
    serde_json::to_string(report).expect("report serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Detector-on vs forced-full: bit-identical serialized reports for
    /// every policy at horizon scales 1 (no cycle ever completes twice),
    /// 3 (one skip), and 17 (a dozen-plus extrapolated cycles).
    #[test]
    fn fast_forward_is_bit_identical_to_full_simulation(
        n in 2usize..=5,
        picks in proptest::collection::vec(0usize..6, 5..6),
        wcet_pcts in proptest::collection::vec(0u64..100, 5..6),
        seed in 0u64..=1_000,
    ) {
        let ts = pool_set(n, &picks, &wcet_pcts);
        prop_assume!(rta_schedulable(&ts));
        let h = hyperperiod(&ts).expect("pool hyperperiods are tiny");
        let cpu = CpuSpec::arm8();
        for scale in [1u64, 3, 17] {
            let cfg = SimConfig::new(h * scale).with_seed(seed);
            let full_cfg = SimConfig::new(h * scale)
                .with_seed(seed)
                .with_force_full_simulation();
            for kind in POLICIES {
                let mut ws = SimWorkspace::new();
                let fast = run_in(&ts, &cpu, kind, &AlwaysWcet, &cfg, &mut ws).unwrap();
                let ff = ws.fast_forward_stats();
                let full = run_in(&ts, &cpu, kind, &AlwaysWcet, &full_cfg, &mut ws).unwrap();
                prop_assert_eq!(ws.fast_forward_stats().cycles_detected, 0,
                    "force_full_simulation must disable the detector");
                prop_assert_eq!(
                    report_json(&fast), report_json(&full),
                    "{}/scale {} diverged (cycles_detected={}, events_skipped={})",
                    kind.name(), scale, ff.cycles_detected, ff.events_skipped
                );
                if scale == 1 {
                    // One hyperperiod can never contain two matching
                    // release boundaries a whole hyperperiod apart.
                    prop_assert_eq!(ff.cycles_detected, 0);
                }
            }
        }
    }

    /// Fault streams index jobs absolutely, so no two cycles are alike:
    /// a faulted run must never fast-forward, and (trivially, both sides
    /// simulating fully) stays bit-identical under the flag.
    #[test]
    fn faulted_runs_never_fast_forward(
        n in 2usize..=5,
        picks in proptest::collection::vec(0usize..6, 5..6),
        wcet_pcts in proptest::collection::vec(0u64..100, 5..6),
        seed in 0u64..=1_000,
        fault_seed in 0u64..=1_000,
    ) {
        let ts = pool_set(n, &picks, &wcet_pcts);
        prop_assume!(rta_schedulable(&ts));
        let h = hyperperiod(&ts).expect("pool hyperperiods are tiny");
        let faults = FaultConfig::none()
            .with_seed(fault_seed)
            .with_overrun(OverrunFault::clamped(0.2, 0.3, 1.3));
        let cfg = SimConfig::new(h * 9).with_seed(seed).with_faults(faults);
        let cpu = CpuSpec::arm8();
        for kind in POLICIES {
            let mut ws = SimWorkspace::new();
            let faulted = run_in(&ts, &cpu, kind, &AlwaysWcet, &cfg, &mut ws).unwrap();
            let ff = ws.fast_forward_stats();
            prop_assert_eq!(ff.cycles_detected, 0, "{}: faulted run fast-forwarded", kind.name());
            prop_assert_eq!(ff.events_skipped, 0);
            let full = run_in(
                &ts, &cpu, kind, &AlwaysWcet,
                &cfg.clone().with_force_full_simulation(), &mut ws,
            ).unwrap();
            prop_assert_eq!(report_json(&faulted), report_json(&full));
        }
    }
}

/// Deterministic smoke outside proptest: the motivating example engages
/// the detector and extrapolates most of a long run.
#[test]
fn table1_long_run_actually_skips_cycles() {
    let ts = TaskSet::rate_monotonic(
        "table1",
        vec![
            Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
            Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
            Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
        ],
    );
    let h = hyperperiod(&ts).unwrap();
    assert_eq!(h, Dur::from_us(400));
    let cfg = SimConfig::new(h * 40);
    let mut ws = SimWorkspace::new();
    let fast = run_in(
        &ts,
        &CpuSpec::arm8(),
        PolicyKind::Lpfps,
        &AlwaysWcet,
        &cfg,
        &mut ws,
    )
    .unwrap();
    let ff = ws.fast_forward_stats();
    assert!(ff.cycles_detected >= 30, "got {}", ff.cycles_detected);
    assert!(ff.events_skipped > 0);
    let full = run_in(
        &ts,
        &CpuSpec::arm8(),
        PolicyKind::Lpfps,
        &AlwaysWcet,
        &cfg.with_force_full_simulation(),
        &mut ws,
    )
    .unwrap();
    assert_eq!(report_json(&fast), report_json(&full));
    assert!(fast.all_deadlines_met());
}
