//! Property-based verification of the paper's Theorem 1 and of the
//! safety of every speed-ratio variant under the simulator's physical
//! (trapezoid-ramp) capacity model.

use lpfps::speed::{profile_capacity, r_heu, r_opt, r_opt_trapezoid};
use lpfps_tasks::time::Dur;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// Theorem 1: `r_heu >= r_opt` whenever `t_a > t_c` and `t_I > R`.
    #[test]
    fn theorem1_r_heu_dominates_r_opt(
        window_ns in 1_000u64..100_000_000,
        rem_ppm in 1u64..1_000_000,
        rho_milli in 1u64..10_000, // 0.001 .. 10 per us
    ) {
        let window = Dur::from_ns(window_ns);
        let remaining = Dur::from_ns(((window_ns as u128 * rem_ppm as u128) / 1_000_000) as u64);
        prop_assume!(!remaining.is_zero() && remaining < window);
        let rho = rho_milli as f64 / 1_000.0;
        let heu = r_heu(remaining, window);
        let opt = r_opt(remaining, window, rho);
        prop_assert!(heu >= opt - 1e-9, "heu={heu} opt={opt} window={window} rem={remaining} rho={rho}");
    }

    /// The heuristic and the trapezoid-optimal both provide at least the
    /// required capacity under the physical ramp model, for any rate.
    #[test]
    fn safe_ratios_always_cover_the_demand(
        window_us in 2u64..1_000_000,
        rem_pct in 1u64..100,
        rho_milli in 1u64..1_000,
    ) {
        let window = Dur::from_us(window_us);
        let remaining = Dur::from_us((window_us * rem_pct / 100).max(1));
        prop_assume!(remaining < window);
        let rho = rho_milli as f64 / 1_000.0;
        let required = remaining.as_us_f64();
        for (label, r) in [
            ("heu", r_heu(remaining, window)),
            ("trap", r_opt_trapezoid(remaining, window, rho)),
        ] {
            let cap = profile_capacity(r, window, rho);
            prop_assert!(
                cap + 1e-6 >= required,
                "{label} r={r}: capacity {cap} < required {required} (rho={rho})"
            );
        }
    }

    /// The three ratios are totally ordered: Eq. 2 <= trapezoid <= heuristic
    /// (Eq. 2 credits the ramp with twice the physical work).
    #[test]
    fn ratio_family_is_ordered(
        window_us in 2u64..100_000,
        rem_pct in 1u64..100,
        rho_milli in 1u64..1_000,
    ) {
        let window = Dur::from_us(window_us);
        let remaining = Dur::from_us((window_us * rem_pct / 100).max(1));
        prop_assume!(remaining < window);
        let rho = rho_milli as f64 / 1_000.0;
        let opt = r_opt(remaining, window, rho);
        let trap = r_opt_trapezoid(remaining, window, rho);
        let heu = r_heu(remaining, window);
        prop_assert!(opt <= trap + 1e-9, "opt {opt} > trap {trap}");
        prop_assert!(trap <= heu + 1e-9, "trap {trap} > heu {heu}");
    }

    /// All ratios are monotone in the remaining work: more work demands at
    /// least as much speed.
    #[test]
    fn ratios_are_monotone_in_demand(
        window_us in 10u64..100_000,
        rem_pct in 1u64..98,
    ) {
        let window = Dur::from_us(window_us);
        let r1 = Dur::from_us((window_us * rem_pct / 100).max(1));
        let r2 = Dur::from_us((window_us * (rem_pct + 1) / 100).max(2));
        prop_assume!(r1 < r2 && r2 < window);
        prop_assert!(r_heu(r1, window) <= r_heu(r2, window) + 1e-12);
        prop_assert!(r_opt(r1, window, 0.07) <= r_opt(r2, window, 0.07) + 1e-9);
        prop_assert!(
            r_opt_trapezoid(r1, window, 0.07) <= r_opt_trapezoid(r2, window, 0.07) + 1e-9
        );
    }
}
