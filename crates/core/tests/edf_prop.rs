//! Property-based checks for the EDF side of the unified kernel.
//!
//! EDF is optimal on a uniprocessor: any implicit-deadline periodic set
//! with total utilization at most 1 is schedulable, so the shared engine
//! running under the `Edf` discipline at full speed must never miss a
//! deadline on such a set — even when rate-monotonic priorities would
//! (the drawn sets need not pass RTA). The fixed-priority side needs no
//! property here: the 24-cell golden fingerprint matrix in
//! `lpfps-bench` witnesses bit-identity with the pre-refactor engine.

use lpfps::driver::{run, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_tasks::exec::{AlwaysWcet, PaperGaussian};
use lpfps_tasks::gen::{generate, GenConfig};
use lpfps_tasks::time::Dur;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// EDF at full speed meets every deadline whenever utilization <= 1,
    /// under worst-case execution — the Liu & Layland bound that makes
    /// EDF the reference discipline.
    #[test]
    fn edf_full_speed_never_misses_when_utilization_at_most_one(
        set_seed in 0u64..=10_000,
        n in 3usize..=8,
        util_pct in 20u64..=95,
    ) {
        let cfg = GenConfig::new(n, util_pct as f64 / 100.0)
            .with_periods(Dur::from_us(200), Dur::from_ms(20));
        let ts = generate(&cfg, set_seed);
        prop_assume!(ts.utilization() <= 1.0);

        let sim = SimConfig::new(Dur::from_ms(100));
        let report = run(&ts, &CpuSpec::arm8(), PolicyKind::Edf, &AlwaysWcet, &sim).unwrap();
        prop_assert_eq!(report.discipline, "edf");
        prop_assert!(
            report.all_deadlines_met(),
            "EDF missed {:?} on {ts} at U={:.3}",
            report.misses,
            ts.utilization()
        );
    }

    /// Full-speed EDF and full-speed FPS are both work-conserving
    /// schedules of the same job stream on the same clock: only the
    /// dispatch *order* differs, so the busy intervals — and hence the
    /// average power — coincide exactly.
    #[test]
    fn full_speed_power_is_dispatch_order_invariant(
        set_seed in 0u64..=10_000,
        sim_seed in 0u64..=1_000,
        n in 3usize..=6,
        util_pct in 20u64..=80,
    ) {
        let cfg = GenConfig::new(n, util_pct as f64 / 100.0)
            .with_periods(Dur::from_us(200), Dur::from_ms(10))
            .with_bcet_fraction(0.5);
        let ts = generate(&cfg, set_seed);
        let sim = SimConfig::new(Dur::from_ms(50)).with_seed(sim_seed);
        let cpu = CpuSpec::arm8();

        let fps = run(&ts, &cpu, PolicyKind::Fps, &PaperGaussian, &sim).unwrap();
        let edf = run(&ts, &cpu, PolicyKind::Edf, &PaperGaussian, &sim).unwrap();
        prop_assert!(
            (fps.average_power() - edf.average_power()).abs() < 1e-9,
            "fps={} edf={}",
            fps.average_power(),
            edf.average_power()
        );
        prop_assert_eq!(fps.counters.completions, edf.counters.completions);
    }
}
