//! Property-based verification of the safety watchdog: for random
//! slack-rich task sets whose *overrun-inflated* demand is still
//! RM-schedulable at full speed, LPFPS with the watchdog and a matched
//! defensive slow-down margin meets every deadline under injected WCET
//! overruns — the graceful-degradation analogue of Theorem 1, whose own
//! premise (jobs never exceed their WCET) these runs deliberately
//! violate.
//!
//! The margin is load-bearing: the purely reactive watchdog detects an
//! overrun only when the WCET budget retires, by which point a slowed
//! job may have spent the very slack the excess needs (a sub-microsecond
//! miss is possible). Planning the stretch against `clamp * C_i - E_i`
//! closes that window, and the watchdog still cleans up timing faults
//! the margin cannot see (oversleeping, degraded ramps).

use lpfps::driver::{run, PolicyKind};
use lpfps::LpfpsPolicy;
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{core_seed, FaultConfig, OverrunFault};
use lpfps_kernel::engine::simulate;
use lpfps_kernel::engine::SimConfig;
use lpfps_tasks::analysis::rta_schedulable;
use lpfps_tasks::exec::AlwaysWcet;
use lpfps_tasks::gen::{generate, GenConfig};
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use proptest::prelude::*;

/// Total demand cap of every injected overrun, as a multiple of WCET.
const CLAMP: f64 = 1.5;

/// The drawn set with every WCET inflated to the overrun clamp — the
/// worst case an offline analysis would have to admit.
fn inflated(ts: &TaskSet) -> TaskSet {
    let tasks = ts
        .tasks()
        .iter()
        .map(|t| {
            let wcet_ns = (t.wcet().as_ns() as f64 * CLAMP).ceil() as u64;
            Task::new(
                t.name(),
                t.period(),
                Dur::from_ns(wcet_ns.min(t.period().as_ns())),
            )
        })
        .collect();
    TaskSet::rate_monotonic("inflated", tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Overruns break Theorem 1's premise, so vanilla LPFPS may miss —
    /// but whenever the clamp-inflated set is schedulable at full speed,
    /// the watchdog variant must not.
    #[test]
    fn watchdog_meets_all_deadlines_when_inflated_set_is_schedulable(
        set_seed in 0u64..=10_000,
        sim_seed in 0u64..=1_000,
        fault_seed in 0u64..=1_000,
        n in 3usize..=6,
        util_pct in 20u64..=45,
        prob_pct in 5u64..=40,
    ) {
        let cfg = GenConfig::new(n, util_pct as f64 / 100.0)
            .with_periods(Dur::from_us(200), Dur::from_ms(20));
        let ts = generate(&cfg, set_seed);
        prop_assume!(rta_schedulable(&inflated(&ts)));

        let faults = FaultConfig::none()
            .with_seed(fault_seed)
            .with_overrun(OverrunFault::clamped(prob_pct as f64 / 100.0, 0.5, CLAMP));
        let sim = SimConfig::new(Dur::from_ms(100))
            .with_seed(sim_seed)
            .with_faults(faults);

        let mut policy = LpfpsPolicy::with_watchdog(PolicyKind::DEFAULT_WATCHDOG_COOLDOWN)
            .with_overrun_margin(CLAMP);
        let wd = simulate(&ts, &CpuSpec::arm8(), &mut policy, &AlwaysWcet, &sim).unwrap();
        prop_assert!(
            wd.all_deadlines_met(),
            "watchdog missed {:?} on {ts} (overruns={}, degradations={})",
            wd.misses,
            wd.counters.overruns,
            wd.counters.degradations
        );
        // The premise violation is real: faults actually injected.
        if wd.counters.overruns > 0 {
            prop_assert!(wd.counters.degradations > 0, "watchdog slept through overruns");
        }
    }

    /// Fault draws are a pure function of (seeds, task, job) — never of
    /// scheduling order — so identical configs replay identical fault
    /// streams even across different policies.
    #[test]
    fn fault_streams_replay_identically_across_policies(
        set_seed in 0u64..=10_000,
        fault_seed in 0u64..=1_000,
        prob_pct in 5u64..=60,
    ) {
        let cfg = GenConfig::new(4, 0.4)
            .with_periods(Dur::from_us(200), Dur::from_ms(10));
        let ts = generate(&cfg, set_seed);
        let faults = FaultConfig::none()
            .with_seed(fault_seed)
            .with_overrun(OverrunFault::clamped(prob_pct as f64 / 100.0, 0.5, CLAMP));
        let sim = SimConfig::new(Dur::from_ms(50)).with_faults(faults);
        let cpu = CpuSpec::arm8();
        let fps = run(&ts, &cpu, PolicyKind::Fps, &AlwaysWcet, &sim).unwrap();
        let wd = run(&ts, &cpu, PolicyKind::LpfpsWatchdog, &AlwaysWcet, &sim).unwrap();
        // Same releases, same jobs, same coin flips — the overrun count
        // cannot depend on how the policy scheduled them.
        prop_assert_eq!(fps.counters.overruns, wd.counters.overruns);
    }

    /// The multicore engine re-keys each core's fault stream with
    /// [`core_seed`]: core 0 is the identity (the uniprocessor stream,
    /// bit for bit) and higher cores draw from independent domains. The
    /// streams are pure functions of the re-keyed seed, so replaying the
    /// cores in any order — or standalone, outside the engine — cannot
    /// change a single draw.
    #[test]
    fn fault_streams_replay_identically_across_cores(
        set_seed in 0u64..=10_000,
        fault_seed in 0u64..=1_000,
        prob_pct in 5u64..=60,
        cores in 2usize..=4,
    ) {
        let cfg = GenConfig::new(4, 0.4)
            .with_periods(Dur::from_us(200), Dur::from_ms(10));
        let ts = generate(&cfg, set_seed);
        let cpu = CpuSpec::arm8();
        let overruns_with = |seed: u64| {
            let faults = FaultConfig::none()
                .with_seed(seed)
                .with_overrun(OverrunFault::clamped(prob_pct as f64 / 100.0, 0.5, CLAMP));
            let sim = SimConfig::new(Dur::from_ms(50)).with_faults(faults);
            run(&ts, &cpu, PolicyKind::Fps, &AlwaysWcet, &sim)
                .unwrap()
                .counters
                .overruns
        };
        let forward: Vec<u64> =
            (0..cores).map(|k| overruns_with(core_seed(fault_seed, k))).collect();
        let mut backward: Vec<u64> = (0..cores)
            .rev()
            .map(|k| overruns_with(core_seed(fault_seed, k)))
            .collect();
        backward.reverse();
        prop_assert_eq!(&forward, &backward, "core replay must be order-independent");
        // Core 0 is the uniprocessor stream unchanged — the anchor of the
        // `--cores 1` golden-matrix reproduction gate.
        prop_assert_eq!(forward[0], overruns_with(fault_seed));
    }
}
