// The library boundary is panic-free: untrusted input must surface as a
// typed error (`lpfps_kernel::SimError`), never abort the process. Tests
// and binaries may still unwrap freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # lpfps
//!
//! A faithful, tested reproduction of **Low Power Fixed Priority
//! Scheduling** from Shin & Choi, *Power Conscious Fixed Priority
//! Scheduling for Hard Real-Time Systems*, DAC 1999.
//!
//! LPFPS is a run-time modification of a conventional fixed-priority
//! preemptive scheduler that reclaims slack — both the slack inherent in
//! the schedule and the slack created when jobs finish before their WCET —
//! for power savings on a DVS-capable processor:
//!
//! * when **nothing is runnable**, the delay queue's head gives the exact
//!   next busy instant, so the processor power-downs behind a wake timer;
//! * when **only the active task is runnable**, the processor is dedicated
//!   to it until the next arrival, so the clock and supply voltage drop to
//!   the lowest frequency that still completes the task's worst-case
//!   remaining work in time.
//!
//! This crate provides:
//!
//! * [`speed`] — the speed-ratio computations (heuristic Eq. 3, optimal
//!   Eq. 2, and a trapezoid-consistent optimal; Theorem-1 safety tests);
//! * [`LpfpsPolicy`] — the Figure-4 policy with ablation switches
//!   (power-down only, DVS only, optimal ratio);
//! * [`baselines`] — the FPS comparison point and the offline
//!   static-slowdown baseline;
//! * [`driver`] — one-call experiment cells ([`driver::run`]) and horizon
//!   selection, used by every figure/table reproduction in `lpfps-bench`.
//!
//! # Quickstart
//!
//! Reproduce the paper's motivating example (Table 1) and compare FPS with
//! LPFPS at WCET:
//!
//! ```
//! use lpfps::driver::{default_horizon, power_reduction, run, PolicyKind};
//! use lpfps_cpu::spec::CpuSpec;
//! use lpfps_kernel::engine::SimConfig;
//! use lpfps_tasks::{exec::AlwaysWcet, task::Task, taskset::TaskSet, time::Dur};
//!
//! let ts = TaskSet::rate_monotonic("table1", vec![
//!     Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
//!     Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
//!     Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
//! ]);
//! let cpu = CpuSpec::arm8();
//! let cfg = SimConfig::new(default_horizon(&ts));
//! let fps = run(&ts, &cpu, PolicyKind::Fps, &AlwaysWcet, &cfg).unwrap();
//! let lpfps = run(&ts, &cpu, PolicyKind::Lpfps, &AlwaysWcet, &cfg).unwrap();
//! assert!(lpfps.all_deadlines_met());
//! assert!(power_reduction(&fps, &lpfps) > 0.0);
//! ```

pub mod baselines;
pub mod driver;
pub mod lpfps_policy;
pub mod ratio_log;
pub mod speed;

pub use baselines::{Fps, TimeoutShutdown};
pub use driver::{default_horizon, power_reduction, run, PolicyKind};
pub use lpfps_policy::{LpfpsPolicy, RatioMethod};
pub use ratio_log::{RatioLogger, RatioSample};

// Convenience re-exports so downstream users need only this crate for the
// common simulation workflow.
pub use lpfps_kernel::engine::{simulate, SimConfig};
pub use lpfps_kernel::report::SimReport;
