//! The experiment driver: run a (policy, workload, execution model) cell
//! and report its average power — the machinery behind every figure and
//! table reproduction in `lpfps-bench`.

use crate::baselines::{static_slowdown_spec, EdfFps, Fps};
use crate::lpfps_policy::LpfpsPolicy;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::discipline::Edf as EdfDispatch;
use lpfps_kernel::engine::{
    simulate_in, simulate_in_for, simulate_in_probed, simulate_in_probed_for, SimConfig,
    SimWorkspace,
};
use lpfps_kernel::error::SimError;
use lpfps_kernel::probe::Probe;
use lpfps_kernel::report::SimReport;
use lpfps_tasks::analysis::hyperperiod::hyperperiod;
use lpfps_tasks::exec::ExecModel;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};

/// The scheduling policies available to experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Conventional fixed-priority scheduling; idle burns the NOP loop.
    Fps,
    /// FPS plus the power-down half of LPFPS (no DVS).
    FpsPd,
    /// The DVS half of LPFPS only (no power-down).
    LpfpsDvsOnly,
    /// Full LPFPS with the heuristic ratio (Eq. 3) — the paper's system.
    Lpfps,
    /// Full LPFPS with the optimal ratio (trapezoid-consistent Eq. 2).
    LpfpsOptimal,
    /// Offline static slowdown: the whole schedule runs at the lowest
    /// single frequency that keeps the set RTA-schedulable.
    StaticSlowdown,
    /// Full LPFPS with the graceful-degradation watchdog (see
    /// [`LpfpsPolicy::with_watchdog`]): identical to `Lpfps` on fault-free
    /// runs, but reverts to full speed for a cooldown after every kernel
    /// fault report. Not part of [`PolicyKind::ALL`] — it only differs
    /// from `Lpfps` under an injected fault model, so the paper-figure
    /// sweeps skip it.
    LpfpsWatchdog,
    /// Plain earliest-deadline-first at full speed (NOP idle loop): the
    /// deadline-driven counterpart of [`PolicyKind::Fps`], dispatched by
    /// the kernel's [`Edf`](lpfps_kernel::Edf) discipline. Not part of
    /// [`PolicyKind::ALL`] — the paper's figures are fixed-priority only;
    /// the EDF columns live in the `fp_vs_edf` experiment.
    Edf,
    /// Cycle-conserving EDF (Pillai & Shin, SOSP 2001, in spirit): the
    /// LPFPS power manager — exact power-down from the delay queue plus
    /// lone-task DVS — running under EDF dispatch instead of fixed
    /// priorities. Not part of [`PolicyKind::ALL`] for the same reason as
    /// [`PolicyKind::Edf`].
    CcEdf,
}

impl PolicyKind {
    /// All fault-free policies, in report order (`LpfpsWatchdog` is
    /// excluded: it coincides with `Lpfps` except under injected faults).
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Fps,
        PolicyKind::FpsPd,
        PolicyKind::StaticSlowdown,
        PolicyKind::LpfpsDvsOnly,
        PolicyKind::Lpfps,
        PolicyKind::LpfpsOptimal,
    ];

    /// The default watchdog cooldown used by [`PolicyKind::LpfpsWatchdog`]:
    /// long enough to drain a burst of overruns at full speed on the
    /// paper-scale task sets (periods of tens to hundreds of µs), short
    /// enough that power management resumes within a few hyperperiods.
    pub const DEFAULT_WATCHDOG_COOLDOWN: Dur = Dur::from_ms(1);

    /// The stable report name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fps => "fps",
            PolicyKind::FpsPd => "fps-pd",
            PolicyKind::LpfpsDvsOnly => "lpfps-dvs",
            PolicyKind::Lpfps => "lpfps",
            PolicyKind::LpfpsOptimal => "lpfps-opt",
            PolicyKind::StaticSlowdown => "static",
            PolicyKind::LpfpsWatchdog => "lpfps-wd",
            PolicyKind::Edf => "edf",
            PolicyKind::CcEdf => "cc-edf",
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs one simulation cell.
///
/// `StaticSlowdown` derates the processor to its offline operating point
/// first (falling back to the full-speed processor if the set has no
/// feasible slowdown) and then runs the plain FPS policy on it.
///
/// # Errors
///
/// As [`lpfps_kernel::engine::simulate`]: malformed inputs (which can
/// arrive unvalidated via `Deserialize`) and exhausted resource budgets
/// surface as a typed [`SimError`] instead of a panic.
pub fn run(
    ts: &TaskSet,
    cpu: &CpuSpec,
    kind: PolicyKind,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    run_in(ts, cpu, kind, exec, cfg, &mut SimWorkspace::new())
}

/// [`run`] with a caller-provided [`SimWorkspace`], so batch drivers (the
/// sweep runner's worker threads) recycle the kernel's queue and task
/// buffers across cells instead of reallocating them per simulation.
///
/// # Errors
///
/// As [`run`].
pub fn run_in(
    ts: &TaskSet,
    cpu: &CpuSpec,
    kind: PolicyKind,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
    ws: &mut SimWorkspace,
) -> Result<SimReport, SimError> {
    match kind {
        PolicyKind::Fps => simulate_in(ts, cpu, &mut Fps, exec, cfg, ws),
        PolicyKind::FpsPd => {
            simulate_in(ts, cpu, &mut LpfpsPolicy::power_down_only(), exec, cfg, ws)
        }
        PolicyKind::LpfpsDvsOnly => {
            simulate_in(ts, cpu, &mut LpfpsPolicy::dvs_only(), exec, cfg, ws)
        }
        PolicyKind::Lpfps => simulate_in(ts, cpu, &mut LpfpsPolicy::new(), exec, cfg, ws),
        PolicyKind::LpfpsOptimal => simulate_in(
            ts,
            cpu,
            &mut LpfpsPolicy::with_optimal_ratio(),
            exec,
            cfg,
            ws,
        ),
        PolicyKind::LpfpsWatchdog => simulate_in(
            ts,
            cpu,
            &mut LpfpsPolicy::with_watchdog(PolicyKind::DEFAULT_WATCHDOG_COOLDOWN),
            exec,
            cfg,
            ws,
        ),
        PolicyKind::StaticSlowdown => {
            let derated = static_slowdown_spec(ts, cpu).unwrap_or_else(|| cpu.clone());
            let mut report = simulate_in(ts, &derated, &mut Fps, exec, cfg, ws)?;
            report.policy = PolicyKind::StaticSlowdown.name().to_string();
            Ok(report)
        }
        PolicyKind::Edf => simulate_in_for::<EdfDispatch>(ts, cpu, &mut EdfFps, exec, cfg, ws),
        PolicyKind::CcEdf => {
            simulate_in_for::<EdfDispatch>(ts, cpu, &mut LpfpsPolicy::cc_edf(), exec, cfg, ws)
        }
    }
}

/// [`run_in`] with an observability [`Probe`] attached: every dispatch arm
/// routes through the kernel's probed entry points, so the probe sees the
/// full event stream of whichever policy/discipline the cell selects. The
/// report is byte-identical to the probe-less run by the kernel's
/// zero-influence contract ([`lpfps_kernel::probe`]).
///
/// # Errors
///
/// As [`run`].
pub fn run_probed_in<P: Probe>(
    ts: &TaskSet,
    cpu: &CpuSpec,
    kind: PolicyKind,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
    ws: &mut SimWorkspace,
    probe: &mut P,
) -> Result<SimReport, SimError> {
    match kind {
        PolicyKind::Fps => simulate_in_probed(ts, cpu, &mut Fps, exec, cfg, ws, probe),
        PolicyKind::FpsPd => simulate_in_probed(
            ts,
            cpu,
            &mut LpfpsPolicy::power_down_only(),
            exec,
            cfg,
            ws,
            probe,
        ),
        PolicyKind::LpfpsDvsOnly => {
            simulate_in_probed(ts, cpu, &mut LpfpsPolicy::dvs_only(), exec, cfg, ws, probe)
        }
        PolicyKind::Lpfps => {
            simulate_in_probed(ts, cpu, &mut LpfpsPolicy::new(), exec, cfg, ws, probe)
        }
        PolicyKind::LpfpsOptimal => simulate_in_probed(
            ts,
            cpu,
            &mut LpfpsPolicy::with_optimal_ratio(),
            exec,
            cfg,
            ws,
            probe,
        ),
        PolicyKind::LpfpsWatchdog => simulate_in_probed(
            ts,
            cpu,
            &mut LpfpsPolicy::with_watchdog(PolicyKind::DEFAULT_WATCHDOG_COOLDOWN),
            exec,
            cfg,
            ws,
            probe,
        ),
        PolicyKind::StaticSlowdown => {
            let derated = static_slowdown_spec(ts, cpu).unwrap_or_else(|| cpu.clone());
            let mut report = simulate_in_probed(ts, &derated, &mut Fps, exec, cfg, ws, probe)?;
            report.policy = PolicyKind::StaticSlowdown.name().to_string();
            Ok(report)
        }
        PolicyKind::Edf => {
            simulate_in_probed_for::<EdfDispatch, P>(ts, cpu, &mut EdfFps, exec, cfg, ws, probe)
        }
        PolicyKind::CcEdf => simulate_in_probed_for::<EdfDispatch, P>(
            ts,
            cpu,
            &mut LpfpsPolicy::cc_edf(),
            exec,
            cfg,
            ws,
            probe,
        ),
    }
}

/// A sensible simulation horizon for a task set: around five of the
/// longest periods, rounded up to whole hyperperiods when the hyperperiod
/// is in reach (so synchronous schedules are sampled over full cycles).
///
/// An empty set (possible only via `Deserialize`) yields a zero horizon,
/// which the kernel then rejects with a typed error; extreme periods
/// saturate rather than wrap, and the oversized horizon is likewise
/// rejected downstream.
pub fn default_horizon(ts: &TaskSet) -> Dur {
    let max_period = ts
        .iter()
        .map(|(_, t, _)| t.period())
        .max()
        .unwrap_or(Dur::ZERO);
    let target = max_period.checked_mul(5).unwrap_or(Dur::MAX);
    match hyperperiod(ts) {
        Some(h) if !h.is_zero() && h <= target => {
            let k = target.as_ns().div_ceil(h.as_ns());
            h.checked_mul(k).unwrap_or(Dur::MAX)
        }
        Some(h) if h <= target.checked_mul(2).unwrap_or(Dur::MAX) => h,
        _ => target,
    }
}

/// The paper's headline metric: the power reduction of `candidate`
/// relative to `baseline`, as a fraction (`0.62` = "62 % power reduction").
pub fn power_reduction(baseline: &SimReport, candidate: &SimReport) -> f64 {
    1.0 - candidate.average_power() / baseline.average_power()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::exec::AlwaysWcet;
    use lpfps_tasks::task::Task;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    /// Shadows `super::run` for the (valid-input) tests below, which all
    /// expect a report, not a `Result`.
    fn run(
        ts: &TaskSet,
        cpu: &CpuSpec,
        kind: PolicyKind,
        exec: &dyn ExecModel,
        cfg: &SimConfig,
    ) -> SimReport {
        super::run(ts, cpu, kind, exec, cfg).unwrap()
    }

    #[test]
    fn default_horizon_covers_whole_hyperperiods() {
        // Table 1: max period 100 us -> target 500 us -> 2 hyperperiods.
        assert_eq!(default_horizon(&table1()), Dur::from_us(800));
    }

    #[test]
    fn every_policy_meets_deadlines_on_table1_at_wcet() {
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(default_horizon(&table1()));
        for kind in PolicyKind::ALL {
            let report = run(&table1(), &cpu, kind, &AlwaysWcet, &cfg);
            assert!(
                report.all_deadlines_met(),
                "{kind} missed deadlines: {:?}",
                report.misses
            );
            assert_eq!(report.policy, kind.name());
        }
    }

    #[test]
    fn lpfps_beats_fps_even_at_wcet() {
        // The right edge of Figure 8: with zero execution-time variation
        // LPFPS still wins on inherent schedule slack.
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(default_horizon(&table1()));
        let fps = run(&table1(), &cpu, PolicyKind::Fps, &AlwaysWcet, &cfg);
        let lpfps = run(&table1(), &cpu, PolicyKind::Lpfps, &AlwaysWcet, &cfg);
        assert!(
            lpfps.average_power() < fps.average_power(),
            "lpfps {} !< fps {}",
            lpfps.average_power(),
            fps.average_power()
        );
        assert!(power_reduction(&fps, &lpfps) > 0.0);
    }

    #[test]
    fn ablation_ordering_holds_on_table1() {
        // Each half of LPFPS helps; the whole beats either half.
        let cpu = CpuSpec::arm8();
        let ts = table1().with_bcet_fraction(0.5);
        let cfg = SimConfig::new(default_horizon(&ts)).with_seed(7);
        let exec = lpfps_tasks::exec::PaperGaussian;
        let fps = run(&ts, &cpu, PolicyKind::Fps, &exec, &cfg).average_power();
        let pd = run(&ts, &cpu, PolicyKind::FpsPd, &exec, &cfg).average_power();
        let full = run(&ts, &cpu, PolicyKind::Lpfps, &exec, &cfg).average_power();
        assert!(pd < fps, "power-down alone must beat FPS: {pd} !< {fps}");
        assert!(
            full < pd,
            "full LPFPS must beat power-down alone: {full} !< {pd}"
        );
    }

    #[test]
    fn static_slowdown_beats_fps_on_slack_sets() {
        let ts = TaskSet::rate_monotonic(
            "light",
            vec![
                Task::new("a", Dur::from_us(100), Dur::from_us(20)),
                Task::new("b", Dur::from_us(400), Dur::from_us(80)),
            ],
        );
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(default_horizon(&ts));
        let fps = run(&ts, &cpu, PolicyKind::Fps, &AlwaysWcet, &cfg);
        let stat = run(&ts, &cpu, PolicyKind::StaticSlowdown, &AlwaysWcet, &cfg);
        assert!(stat.all_deadlines_met(), "misses: {:?}", stat.misses);
        assert!(stat.average_power() < fps.average_power());
    }

    #[test]
    fn policy_names_are_unique() {
        let mut names: Vec<_> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        names.push(PolicyKind::LpfpsWatchdog.name());
        names.push(PolicyKind::Edf.name());
        names.push(PolicyKind::CcEdf.name());
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PolicyKind::ALL.len() + 3);
    }

    #[test]
    fn edf_kinds_run_through_the_shared_kernel() {
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(default_horizon(&table1()));
        let edf = run(&table1(), &cpu, PolicyKind::Edf, &AlwaysWcet, &cfg);
        assert_eq!(edf.policy, "edf");
        assert_eq!(edf.discipline, "edf");
        assert!(edf.all_deadlines_met(), "misses: {:?}", edf.misses);
        let cc = run(&table1(), &cpu, PolicyKind::CcEdf, &AlwaysWcet, &cfg);
        assert_eq!(cc.policy, "cc-edf");
        assert_eq!(cc.discipline, "edf");
        assert!(cc.all_deadlines_met(), "misses: {:?}", cc.misses);
        // The power manager only helps: cc-edf never burns more than
        // full-speed EDF on the same schedule.
        assert!(cc.average_power() < edf.average_power());
        // FP runs stay tagged with the default discipline.
        let fps = run(&table1(), &cpu, PolicyKind::Fps, &AlwaysWcet, &cfg);
        assert_eq!(fps.discipline, "fp");
    }

    #[test]
    fn watchdog_matches_vanilla_lpfps_on_fault_free_runs() {
        let cpu = CpuSpec::arm8();
        let ts = table1().with_bcet_fraction(0.5);
        let cfg = SimConfig::new(default_horizon(&ts)).with_seed(7);
        let exec = lpfps_tasks::exec::PaperGaussian;
        let vanilla = run(&ts, &cpu, PolicyKind::Lpfps, &exec, &cfg);
        let wd = run(&ts, &cpu, PolicyKind::LpfpsWatchdog, &exec, &cfg);
        assert_eq!(wd.policy, "lpfps-wd");
        assert_eq!(vanilla.energy.total_energy(), wd.energy.total_energy());
        assert_eq!(vanilla.responses, wd.responses);
        assert_eq!(wd.counters.degradations, 0);
    }

    #[test]
    fn watchdog_recovers_overruns_that_break_vanilla_lpfps() {
        use lpfps_faults::{FaultConfig, OverrunFault};
        // A slack-rich set: schedulable at full speed even with every job
        // inflated 1.5x, so FPS never misses — but vanilla LPFPS stretches
        // jobs against WCET-based slack that overruns then consume.
        let ts = TaskSet::rate_monotonic(
            "slack",
            vec![
                Task::new("a", Dur::from_us(100), Dur::from_us(15)),
                Task::new("b", Dur::from_us(200), Dur::from_us(30)),
                Task::new("c", Dur::from_us(400), Dur::from_us(60)),
            ],
        );
        let cpu = CpuSpec::arm8();
        let faults = FaultConfig::none()
            .with_seed(21)
            .with_overrun(OverrunFault::clamped(0.3, 0.5, 1.5));
        let cfg = SimConfig::new(Dur::from_ms(20))
            .with_seed(9)
            .with_faults(faults);
        let exec = AlwaysWcet;
        let vanilla = run(&ts, &cpu, PolicyKind::Lpfps, &exec, &cfg);
        let wd = run(&ts, &cpu, PolicyKind::LpfpsWatchdog, &exec, &cfg);
        assert!(vanilla.counters.overruns > 0);
        assert!(wd.counters.degradations > 0, "watchdog never engaged");
        assert!(
            wd.misses.len() <= vanilla.misses.len(),
            "watchdog ({}) must not miss more than vanilla ({})",
            wd.misses.len(),
            vanilla.misses.len()
        );
        assert!(
            wd.all_deadlines_met(),
            "watchdog LPFPS missed: {:?}",
            wd.misses
        );
    }
}
