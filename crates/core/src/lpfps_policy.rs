//! The LPFPS scheduler policy — the paper's Figure 4, lines L12–L21.
//!
//! The conventional part of the scheduler (queue moves, preemption, and
//! the L1–L4 rule that any invocation at reduced speed first raises the
//! clock to maximum) lives in `lpfps-kernel`; this policy supplies the two
//! power decisions LPFPS adds when the run queue is empty:
//!
//! * **no active task** (L13–L15) — every task sits in the delay queue, so
//!   the head's release time is the exact next busy instant: set the wake
//!   timer to `release - wakeup_delay` and enter power-down mode;
//! * **only the active task** (L16–L19) — the processor belongs to it until
//!   the next arrival `t_a`: compute the speed ratio from its WCET-remaining
//!   work, pick the lowest ladder frequency at or above it, and slow down.
//!
//! Knobs (each an ablation in the benchmark suite): the ratio method
//! (heuristic Eq. 3 vs optimal), and independently disabling the
//! power-down or DVS halves of the policy.

use crate::speed::{r_heu, r_opt_trapezoid};
use lpfps_kernel::discipline::Discipline;
use lpfps_kernel::policy::{
    ActiveView, FaultEvent, PolicyCore, PowerDirective, PowerPolicy, SchedulerContext,
};
use lpfps_tasks::freq::Freq;
use lpfps_tasks::time::{Dur, Time};

/// How the speed ratio is computed (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RatioMethod {
    /// Eq. 3: `r = (C_i - E_i) / (t_a - t_c)` — the paper's recommended
    /// run-time choice (safe by Theorem 1, trivially cheap to compute).
    #[default]
    Heuristic,
    /// The optimal ratio, solved against the simulator's linear-ramp
    /// capacity model (see [`crate::speed`] for why this differs from
    /// Eq. 2 by a factor of two in the ramp credit).
    Optimal,
}

/// The LPFPS policy of Shin & Choi with ablation switches.
///
/// # Examples
///
/// ```
/// use lpfps::LpfpsPolicy;
/// use lpfps_kernel::policy::PolicyCore;
///
/// assert_eq!(LpfpsPolicy::new().name(), "lpfps");
/// assert_eq!(LpfpsPolicy::power_down_only().name(), "fps-pd");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LpfpsPolicy {
    method: RatioMethod,
    enable_powerdown: bool,
    enable_dvs: bool,
    name: &'static str,
    /// Graceful-degradation cooldown: after a kernel watchdog report the
    /// policy answers `FullSpeed` (no DVS, no power-down) for this long.
    /// `None` is the paper's vanilla policy, which ignores faults.
    watchdog_cooldown: Option<Dur>,
    /// End of the current degraded window, if one is in force.
    degraded_until: Option<Time>,
    /// WCET inflation margin for the slow-down budget, `>= 1.0`. Vanilla
    /// LPFPS plans the stretch against `C_i - E_i`; with a margin `m` it
    /// plans against `m*C_i - E_i`, reserving headroom for overruns of up
    /// to `m` times the WCET — Theorem 1's argument then holds with the
    /// inflated budget, so clamped overruns within `m` cannot push a
    /// slowed job past the window even before the watchdog reacts.
    overrun_margin: f64,
}

impl LpfpsPolicy {
    /// Full LPFPS with the heuristic ratio (the paper's evaluated
    /// configuration).
    pub fn new() -> Self {
        LpfpsPolicy {
            method: RatioMethod::Heuristic,
            enable_powerdown: true,
            enable_dvs: true,
            name: "lpfps",
            watchdog_cooldown: None,
            degraded_until: None,
            overrun_margin: 1.0,
        }
    }

    /// Full LPFPS with the optimal ratio (the paper's future-work variant).
    pub fn with_optimal_ratio() -> Self {
        LpfpsPolicy {
            name: "lpfps-opt",
            method: RatioMethod::Optimal,
            ..LpfpsPolicy::new()
        }
    }

    /// Power-down only, no DVS: the "FPS + power-down" baseline — what a
    /// conventional kernel gains from the delay-queue timer trick alone.
    pub fn power_down_only() -> Self {
        LpfpsPolicy {
            name: "fps-pd",
            enable_dvs: false,
            ..LpfpsPolicy::new()
        }
    }

    /// DVS only, no power-down: idle intervals burn the NOP loop, but the
    /// lone active task still runs slowed.
    pub fn dvs_only() -> Self {
        LpfpsPolicy {
            name: "lpfps-dvs",
            enable_powerdown: false,
            ..LpfpsPolicy::new()
        }
    }

    /// Full LPFPS with the graceful-degradation watchdog: after any kernel
    /// fault report ([`FaultEvent`]) the policy reverts to full speed and
    /// suppresses both DVS and power-down until `cooldown` has elapsed,
    /// then resumes normal operation. Theorem 1's guarantee assumes jobs
    /// stay within their WCET; when that assumption breaks at run time,
    /// this is the recovery: stop stretching work and burn through the
    /// backlog at maximum speed.
    ///
    /// # Panics
    ///
    /// Panics if the cooldown is zero (a zero-length degraded window would
    /// make the watchdog a no-op and silently mimic vanilla LPFPS).
    pub fn with_watchdog(cooldown: Dur) -> Self {
        assert!(!cooldown.is_zero(), "watchdog cooldown must be positive");
        LpfpsPolicy {
            name: "lpfps-wd",
            watchdog_cooldown: Some(cooldown),
            ..LpfpsPolicy::new()
        }
    }

    /// The cycle-conserving EDF configuration: the same exact-knowledge
    /// power-down and lone-task slow-down decisions, intended to run under
    /// the kernel's [`Edf`](lpfps_kernel::discipline::Edf) discipline
    /// (see [`PolicyKind::CcEdf`](crate::driver::PolicyKind)). The decision
    /// logic is discipline-independent — it consumes only queue occupancy,
    /// the delay-queue head, and the active job's WCET-remaining work — so
    /// this is the deadline-driven counterpart of LPFPS in the spirit of
    /// Pillai & Shin's cycle-conserving EDF: unused cycles (early
    /// completions shrink `C_i - E_i`) immediately lower the speed the
    /// lone-task stretch plans with.
    pub fn cc_edf() -> Self {
        LpfpsPolicy {
            name: "cc-edf",
            ..LpfpsPolicy::new()
        }
    }

    /// Adds a defensive slow-down margin: the stretch budget becomes
    /// `margin * C_i - E_i` instead of `C_i - E_i`, trading DVS savings
    /// for tolerance of WCET overruns up to `margin` times the budget.
    /// Composes with [`LpfpsPolicy::with_watchdog`]: the margin prevents
    /// the miss a clamped overrun could cause *before* detection, the
    /// watchdog cleans up everything past the margin.
    ///
    /// # Panics
    ///
    /// Panics if the margin is not finite or below 1.0.
    pub fn with_overrun_margin(mut self, margin: f64) -> Self {
        assert!(
            margin.is_finite() && margin >= 1.0,
            "overrun margin must be >= 1"
        );
        self.overrun_margin = margin;
        self
    }

    /// The configured ratio method.
    pub fn method(&self) -> RatioMethod {
        self.method
    }

    /// True while a watchdog degraded window is in force at `now`.
    pub fn is_degraded(&self, now: Time) -> bool {
        self.degraded_until.is_some_and(|until| now < until)
    }

    /// The slow-down stretch budget at this decision point: the active
    /// job's WCET-view remaining work (inflated by the overrun margin) and
    /// the window to the safe completion bound, or `None` when there is no
    /// exploitable slack (no bound, or `remaining >= window`).
    ///
    /// Pure with respect to the policy state, and the *single* place this
    /// arithmetic lives: [`PowerPolicy::decide`] consumes it to pick the
    /// ladder frequency, and [`RatioLogger`](crate::ratio_log::RatioLogger)
    /// consumes it to record the `(r_heu, r_opt)` pair per decision, so
    /// the instrumented view cannot drift from what the policy actually
    /// computed.
    pub fn slowdown_budget<D: Discipline>(
        &self,
        ctx: &SchedulerContext<'_, D>,
        active: &ActiveView,
    ) -> Option<(Dur, Dur)> {
        let bound = ctx.safe_completion_bound()?;
        if bound <= ctx.now {
            return None;
        }
        let window = bound.saturating_since(ctx.now);
        let reference = ctx.cpu.reference_freq();
        let mut remaining = active.wcet_remaining.time_at(reference);
        if self.overrun_margin > 1.0 {
            let wcet = ctx.taskset.tasks()[active.task.0].wcet();
            let headroom = ((self.overrun_margin - 1.0) * wcet.as_ns() as f64).ceil() as u64;
            remaining += Dur::from_ns(headroom);
        }
        (remaining < window).then_some((remaining, window))
    }
}

impl Default for LpfpsPolicy {
    fn default() -> Self {
        LpfpsPolicy::new()
    }
}

impl PolicyCore for LpfpsPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_fault(&mut self, event: &FaultEvent) -> bool {
        let Some(cooldown) = self.watchdog_cooldown else {
            return false; // vanilla LPFPS: Theorem 1 is trusted blindly
        };
        // Repeated faults extend the window from the latest report.
        self.degraded_until = Some(event.time() + cooldown);
        true
    }

    fn steady_digest(&self, now: Time) -> Option<u64> {
        // The only run-time state is the watchdog cooldown. Canonical form:
        // an expired window digests exactly like no window at all, because
        // `decide` lazily clears it and behaves identically either way; a
        // live window digests its *remaining* span (re-based to `now`).
        match self.degraded_until {
            Some(until) if until > now => {
                Some(until.saturating_since(now).as_ns().saturating_add(1))
            }
            _ => Some(0),
        }
    }
}

// Generic over the discipline: the L12–L21 decisions read only queue
// occupancy and the delay-queue head, which exist under any discipline.
// Under `FixedPriority` this is the paper's LPFPS; under `Edf` it is the
// cycle-conserving EDF configuration (see [`LpfpsPolicy::cc_edf`]).
impl<D: Discipline> PowerPolicy<D> for LpfpsPolicy {
    fn decide(&mut self, ctx: &SchedulerContext<'_, D>) -> PowerDirective {
        // Watchdog degraded mode: after a fault report, no power
        // management at all until the cooldown elapses — the kernel's
        // L1–L4 rule then keeps the processor at maximum throughput.
        if let Some(until) = self.degraded_until {
            if ctx.now < until {
                return PowerDirective::FullSpeed;
            }
            self.degraded_until = None;
        }
        // L12: LPFPS acts only when the run queue is empty.
        if !ctx.run_queue.is_empty() {
            return PowerDirective::FullSpeed;
        }
        match ctx.active {
            // L13–L15: nothing to run until the head of the delay queue.
            None => {
                if !self.enable_powerdown {
                    return PowerDirective::FullSpeed;
                }
                let Some(head) = ctx.next_arrival() else {
                    return PowerDirective::FullSpeed;
                };
                let window = head.saturating_since(ctx.now);
                if window.is_zero() {
                    return PowerDirective::FullSpeed;
                }
                let reference = ctx.cpu.reference_freq();
                // Pick the sleep mode minimizing the window's energy (the
                // paper's processor has exactly one; Fig. 4's L14 is the
                // single-mode special case of this selection).
                let modes = ctx.cpu.sleep_modes();
                let Some(mode) = lpfps_cpu::modes::best_mode_for(modes, window, reference) else {
                    // The next arrival is within every wake-up latency:
                    // sleeping would oversleep it.
                    return PowerDirective::FullSpeed;
                };
                // Sleeping must actually beat spinning the NOP loop.
                // `best_mode_for` only returns modes that fit the window,
                // so `window_energy` is `Some` here; staying awake is the
                // safe answer if that ever stops holding.
                let Some(sleep_energy) = modes[mode].window_energy(window, reference) else {
                    return PowerDirective::FullSpeed;
                };
                if sleep_energy >= ctx.cpu.power().idle_nop() * window.as_secs_f64() {
                    return PowerDirective::FullSpeed;
                }
                let wake_at = head.saturating_sub(modes[mode].wakeup_delay(reference));
                if wake_at <= ctx.now {
                    return PowerDirective::FullSpeed;
                }
                PowerDirective::PowerDown { wake_at, mode }
            }
            // L16–L19: the processor is dedicated to the active task.
            Some(active) => {
                if !self.enable_dvs {
                    return PowerDirective::FullSpeed;
                }
                let Some((remaining, window)) = self.slowdown_budget(ctx, &active) else {
                    return PowerDirective::FullSpeed;
                };
                let reference = ctx.cpu.reference_freq();
                let ratio = match self.method {
                    RatioMethod::Heuristic => r_heu(remaining, window),
                    RatioMethod::Optimal => {
                        r_opt_trapezoid(remaining, window, ctx.cpu.ramp_rate_per_us())
                    }
                };
                // L18: the minimum allowable ladder frequency at or above
                // ratio * reference.
                let target_khz = (ratio * reference.as_khz() as f64).ceil() as u64;
                let freq = ctx
                    .cpu
                    .ladder()
                    .quantize_up(Freq::from_khz(target_khz.max(1)));
                if freq >= ctx.cpu.full_freq() {
                    return PowerDirective::FullSpeed;
                }
                // Latest instant to begin ramping back so the processor is
                // at full speed when the next task arrives (§3.2: "the
                // active task should complete ahead by this delay").
                let ramp_back = ctx.cpu.ramp_duration(freq, ctx.cpu.full_freq());
                let speedup_at = (ctx.now + window).saturating_sub(ramp_back);
                if speedup_at <= ctx.now {
                    return PowerDirective::FullSpeed;
                }
                PowerDirective::SlowDown { freq, speedup_at }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_kernel::policy::ActiveView;
    use lpfps_kernel::queues::{DelayQueue, RunQueue};
    use lpfps_tasks::cycles::Cycles;
    use lpfps_tasks::task::{Priority, Task, TaskId};
    use lpfps_tasks::taskset::TaskSet;
    use lpfps_tasks::time::{Dur, Time};

    struct Fixture {
        ts: TaskSet,
        cpu: CpuSpec,
        run: RunQueue,
        delay: DelayQueue,
    }

    fn fixture() -> Fixture {
        Fixture {
            ts: TaskSet::rate_monotonic(
                "t",
                vec![
                    Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                    Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                ],
            ),
            cpu: CpuSpec::arm8(),
            run: RunQueue::new(),
            delay: DelayQueue::new(),
        }
    }

    fn ctx<'a>(f: &'a Fixture, now: Time, active: Option<ActiveView>) -> SchedulerContext<'a> {
        SchedulerContext {
            now,
            active,
            run_queue: &f.run,
            delay_queue: &f.delay,
            cpu: &f.cpu,
            taskset: &f.ts,
        }
    }

    #[test]
    fn busy_run_queue_means_full_speed() {
        let mut f = fixture();
        f.run.insert(TaskId(0), Priority::new(0));
        let c = ctx(&f, Time::ZERO, None);
        assert_eq!(LpfpsPolicy::new().decide(&c), PowerDirective::FullSpeed);
    }

    #[test]
    fn idle_kernel_powers_down_to_head_release() {
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(200));
        f.delay
            .insert(TaskId(1), Priority::new(1), Time::from_us(240));
        let c = ctx(&f, Time::from_us(180), None);
        // Paper L14: timer = head release - wakeup delay = 200us - 100ns.
        assert_eq!(
            LpfpsPolicy::new().decide(&c),
            PowerDirective::PowerDown {
                wake_at: Time::from_ns(200_000 - 100),
                mode: 0
            }
        );
    }

    #[test]
    fn imminent_arrival_blocks_power_down() {
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_ns(180_050));
        let c = ctx(&f, Time::from_us(180), None);
        // 50 ns away < 100 ns wake-up latency: must stay awake.
        assert_eq!(LpfpsPolicy::new().decide(&c), PowerDirective::FullSpeed);
    }

    #[test]
    fn paper_example2_slows_to_half_speed() {
        // t = 160: tau2 active with full 20 us WCET remaining; tau1 (and
        // tau3 in the paper) arrive at 200 -> ratio 0.5 -> 50 MHz.
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(200));
        let active = ActiveView {
            task: TaskId(1),
            wcet_remaining: Cycles::new(2_000), // 20 us at 100 MHz
            release: Time::from_us(160),
            deadline: Time::from_us(240),
        };
        let c = ctx(&f, Time::from_us(160), Some(active));
        match LpfpsPolicy::new().decide(&c) {
            PowerDirective::SlowDown { freq, speedup_at } => {
                assert_eq!(freq, Freq::from_mhz(50));
                // Ramp 50->100 MHz at 0.07/us takes ceil(0.5/0.07) us.
                let ramp = f.cpu.ramp_duration(Freq::from_mhz(50), Freq::from_mhz(100));
                assert_eq!(speedup_at, Time::from_us(200).saturating_sub(ramp));
                assert!(speedup_at > c.now);
            }
            other => panic!("expected SlowDown, got {other:?}"),
        }
    }

    #[test]
    fn ratio_quantizes_upward_to_ladder() {
        // 13 us of work in a 40 us window -> 0.325 -> 33 MHz (not 32).
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(200));
        let active = ActiveView {
            task: TaskId(1),
            wcet_remaining: Cycles::new(1_300),
            release: Time::from_us(160),
            deadline: Time::from_us(240),
        };
        let c = ctx(&f, Time::from_us(160), Some(active));
        match LpfpsPolicy::new().decide(&c) {
            PowerDirective::SlowDown { freq, .. } => assert_eq!(freq, Freq::from_mhz(33)),
            other => panic!("expected SlowDown, got {other:?}"),
        }
    }

    #[test]
    fn no_slack_stays_at_full_speed() {
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(180));
        let active = ActiveView {
            task: TaskId(1),
            wcet_remaining: Cycles::new(2_000), // 20 us in a 20 us window
            release: Time::from_us(160),
            deadline: Time::from_us(240),
        };
        let c = ctx(&f, Time::from_us(160), Some(active));
        assert_eq!(LpfpsPolicy::new().decide(&c), PowerDirective::FullSpeed);
    }

    #[test]
    fn own_deadline_clamps_the_window() {
        // Delay head at 10 ms, but the active job's deadline is 240 us:
        // the ratio must use the deadline, not the distant arrival.
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_ms(10));
        let active = ActiveView {
            task: TaskId(1),
            wcet_remaining: Cycles::new(2_000),
            release: Time::from_us(160),
            deadline: Time::from_us(240),
        };
        let c = ctx(&f, Time::from_us(160), Some(active));
        match LpfpsPolicy::new().decide(&c) {
            PowerDirective::SlowDown { freq, .. } => {
                // 20 us work / 80 us window = 0.25 -> 25 MHz.
                assert_eq!(freq, Freq::from_mhz(25));
            }
            other => panic!("expected SlowDown, got {other:?}"),
        }
    }

    #[test]
    fn dvs_only_never_powers_down() {
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(500));
        let c = ctx(&f, Time::ZERO, None);
        assert_eq!(
            LpfpsPolicy::dvs_only().decide(&c),
            PowerDirective::FullSpeed
        );
    }

    #[test]
    fn power_down_only_never_slows() {
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(500));
        let active = ActiveView {
            task: TaskId(1),
            wcet_remaining: Cycles::new(2_000),
            release: Time::ZERO,
            deadline: Time::from_us(80),
        };
        let c = ctx(&f, Time::ZERO, Some(active));
        assert_eq!(
            LpfpsPolicy::power_down_only().decide(&c),
            PowerDirective::FullSpeed
        );
    }

    #[test]
    fn multimode_picks_deep_sleep_for_long_windows() {
        let mut f = fixture();
        f.cpu = CpuSpec::arm8_multimode();
        // 10 ms of guaranteed idle: deep sleep (index 3) wins.
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_ms(10));
        let c = ctx(&f, Time::ZERO, None);
        match LpfpsPolicy::new().decide(&c) {
            PowerDirective::PowerDown { wake_at, mode } => {
                assert_eq!(mode, 3, "expected deep sleep");
                // Wake timer compensates deep sleep's 100us relock.
                assert_eq!(wake_at, Time::from_us(10_000 - 100));
            }
            other => panic!("expected PowerDown, got {other:?}"),
        }
    }

    #[test]
    fn multimode_falls_back_to_light_sleep_for_short_windows() {
        let mut f = fixture();
        f.cpu = CpuSpec::arm8_multimode();
        // 200 us window: deep sleep cannot amortize its wake-up.
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(200));
        let c = ctx(&f, Time::ZERO, None);
        match LpfpsPolicy::new().decide(&c) {
            PowerDirective::PowerDown { mode, .. } => {
                assert_eq!(mode, 2, "expected the paper's 5% sleep mode");
            }
            other => panic!("expected PowerDown, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_degrades_after_fault_and_recovers() {
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(200));
        let active = ActiveView {
            task: TaskId(1),
            wcet_remaining: Cycles::new(2_000),
            release: Time::from_us(160),
            deadline: Time::from_us(240),
        };
        let mut wd = LpfpsPolicy::with_watchdog(Dur::from_us(30));
        assert_eq!(wd.name(), "lpfps-wd");

        // Before any fault it behaves exactly like vanilla LPFPS.
        let c = ctx(&f, Time::from_us(160), Some(active));
        assert!(matches!(wd.decide(&c), PowerDirective::SlowDown { .. }));

        // A fault at t = 165 degrades until 195: full speed only.
        let engaged = wd.on_fault(&FaultEvent::BudgetOverrun {
            task: TaskId(1),
            now: Time::from_us(165),
        });
        assert!(engaged);
        assert!(wd.is_degraded(Time::from_us(170)));
        let c = ctx(&f, Time::from_us(170), Some(active));
        assert_eq!(wd.decide(&c), PowerDirective::FullSpeed);

        // Power-down is suppressed too.
        let c = ctx(&f, Time::from_us(170), None);
        assert_eq!(wd.decide(&c), PowerDirective::FullSpeed);

        // After the cooldown the policy resumes power management (with a
        // window that still has slack to exploit).
        assert!(!wd.is_degraded(Time::from_us(195)));
        let mut late = fixture();
        late.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(300));
        let c = ctx(&late, Time::from_us(196), Some(active));
        assert!(matches!(wd.decide(&c), PowerDirective::SlowDown { .. }));
    }

    #[test]
    fn repeated_faults_extend_the_degraded_window() {
        let mut wd = LpfpsPolicy::with_watchdog(Dur::from_us(30));
        wd.on_fault(&FaultEvent::TimingViolation {
            now: Time::from_us(100),
        });
        wd.on_fault(&FaultEvent::TimingViolation {
            now: Time::from_us(120),
        });
        assert!(wd.is_degraded(Time::from_us(140)));
        assert!(!wd.is_degraded(Time::from_us(150)));
    }

    #[test]
    fn vanilla_lpfps_ignores_faults() {
        let mut vanilla = LpfpsPolicy::new();
        let engaged = vanilla.on_fault(&FaultEvent::TimingViolation {
            now: Time::from_us(100),
        });
        assert!(!engaged);
        assert!(!vanilla.is_degraded(Time::from_us(100)));
    }

    #[test]
    #[should_panic(expected = "cooldown must be positive")]
    fn zero_watchdog_cooldown_rejected() {
        let _ = LpfpsPolicy::with_watchdog(Dur::ZERO);
    }

    #[test]
    fn overrun_margin_reserves_headroom_in_the_ratio() {
        // Paper Example 2 fixture: 20 us of WCET in a 40 us window gives
        // vanilla LPFPS ratio 0.5. A 1.5x margin plans for 20 + 10 = 30 us
        // of possible demand -> ratio 0.75.
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(200));
        let active = ActiveView {
            task: TaskId(1),
            wcet_remaining: Cycles::new(2_000),
            release: Time::from_us(160),
            deadline: Time::from_us(240),
        };
        let c = ctx(&f, Time::from_us(160), Some(active));
        let vanilla = match LpfpsPolicy::new().decide(&c) {
            PowerDirective::SlowDown { freq, .. } => freq,
            other => panic!("{other:?}"),
        };
        let margined = match LpfpsPolicy::new().with_overrun_margin(1.5).decide(&c) {
            PowerDirective::SlowDown { freq, .. } => freq,
            other => panic!("{other:?}"),
        };
        assert_eq!(vanilla, Freq::from_mhz(50));
        assert_eq!(margined, Freq::from_mhz(75));
    }

    #[test]
    #[should_panic(expected = "margin must be >= 1")]
    fn sub_unit_overrun_margin_rejected() {
        let _ = LpfpsPolicy::new().with_overrun_margin(0.9);
    }

    #[test]
    fn optimal_ratio_is_at_most_the_heuristic() {
        let mut f = fixture();
        f.delay
            .insert(TaskId(0), Priority::new(0), Time::from_us(200));
        let active = ActiveView {
            task: TaskId(1),
            wcet_remaining: Cycles::new(2_000),
            release: Time::from_us(160),
            deadline: Time::from_us(240),
        };
        let c = ctx(&f, Time::from_us(160), Some(active));
        let heu = match LpfpsPolicy::new().decide(&c) {
            PowerDirective::SlowDown { freq, .. } => freq,
            other => panic!("{other:?}"),
        };
        let opt = match LpfpsPolicy::with_optimal_ratio().decide(&c) {
            PowerDirective::SlowDown { freq, .. } => freq,
            other => panic!("{other:?}"),
        };
        assert!(
            opt <= heu,
            "optimal {opt} should not exceed heuristic {heu}"
        );
    }
}
