//! Computation of the processor speed ratio (paper §3.3, Figure 6).
//!
//! When the active task is alone (run queue empty), LPFPS lowers the clock
//! so the task's remaining worst-case work `R = C_i - E_i` just fits the
//! window `t_I = t_a - t_c` before the next arrival. The paper gives two
//! solutions:
//!
//! * **Heuristic** (Eq. 3) — ignore the transition: `r_heu = R / t_I`.
//! * **Optimal** (Eq. 2) — credit the final ramp back to full speed (rate
//!   `rho` per microsecond), during which the processor keeps executing:
//!
//!   ```text
//!   t_I * r + (1 - r)^2 / rho = R
//!   r_opt = ( 2 - rho*t_I + sqrt(rho^2 t_I^2 - 4 rho (t_I - R)) ) / 2
//!   ```
//!
//! **Theorem 1** (paper appendix): `r_heu >= r_opt` whenever `t_a > t_c`
//! and `t_I > R`, so the cheap heuristic is always *safe* — never slower
//! than required, merely suboptimal.
//!
//! ## A subtlety the reproduction must face
//!
//! Eq. 2's capacity model credits the ramp with `(1-r)^2 / rho` of
//! full-speed-equivalent work. Under a *linear* ramp executing at the
//! instantaneous speed — the physical model of Pering/Burd that this
//! workspace simulates — the ramp's trapezoid area is only
//! `(1-r)^2 / (2 rho)`: half of Eq. 2's credit (Eq. 2 is what one gets by
//! assuming the processor already runs at the post-transition speed for
//! the whole transition). Consequently Eq. 2's ratio can *under-provide*
//! by a hair under trapezoid physics. This module therefore exposes both:
//!
//! * [`r_opt`] — Eq. 2 verbatim, used to regenerate Figure 7;
//! * [`r_opt_trapezoid`] — the same optimization solved against the
//!   trapezoid capacity `t_I*r + (1-r)^2/(2 rho)`, used by the
//!   `LPFPS-optimal` policy so the simulated schedule keeps its guarantee.
//!
//! `r_heu` is safe under **both** models: its capacity is at least
//! `t_I * r_heu = R` before any ramp credit.

use lpfps_tasks::time::Dur;

/// The heuristic speed ratio `r_heu = (C_i - E_i) / (t_a - t_c)` (Eq. 3),
/// clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use lpfps::speed::r_heu;
/// use lpfps_tasks::time::Dur;
///
/// // Example 2 of the paper: 20 us of work in a 40 us window -> 0.5.
/// assert_eq!(r_heu(Dur::from_us(20), Dur::from_us(40)), 0.5);
/// ```
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn r_heu(remaining: Dur, window: Dur) -> f64 {
    assert!(!window.is_zero(), "speed ratio needs a positive window");
    let r = remaining.as_ns() as f64 / window.as_ns() as f64;
    r.min(1.0)
}

/// The paper's optimal speed ratio (Eq. 2), clamped to `[0, 1]`.
///
/// `rho_per_us` is the speed-ratio change rate of the voltage/clock
/// transition (the paper uses `0.07/us`). Used verbatim to regenerate
/// Figure 7; the simulation policy uses [`r_opt_trapezoid`] instead (see
/// the module docs).
///
/// Regimes beyond the closed form are handled explicitly:
///
/// * `remaining >= window` — no slack; returns `1.0`;
/// * negative discriminant — even the capacity-minimizing profile
///   over-provides; the minimizing vertex is returned (still safe).
///
/// # Panics
///
/// Panics if `window` is zero or `rho_per_us` is not positive and finite.
pub fn r_opt(remaining: Dur, window: Dur, rho_per_us: f64) -> f64 {
    validate(window, rho_per_us);
    let t_i = window.as_us_f64();
    let r_rem = remaining.as_us_f64();
    if r_rem >= t_i {
        return 1.0;
    }
    // Roots of r^2 + b r + c = 0 with b = rho*t_I - 2, c = 1 - rho*R;
    // the upper root is the paper's closed form. Computed via the
    // numerically stable formulation (avoid subtracting near-equal
    // magnitudes when rho*t_I >> 1).
    let b = rho_per_us * t_i - 2.0;
    let c = 1.0 - rho_per_us * r_rem;
    let disc = b * b - 4.0 * c;
    let heu = (r_rem / t_i).min(1.0);
    if disc < 0.0 {
        // Eq. 2 has no real root: even the least-capacity profile
        // over-provides. Outside the formula's domain we complete it with
        // the feasibility-minimal ratio (the slowest start from which the
        // ramp still reaches full speed by t_a), capped at the always-safe
        // heuristic — the same completion r_opt_trapezoid uses, keeping
        // the family ordered.
        return (1.0 - rho_per_us * t_i).clamp(0.0, 1.0).min(heu);
    }
    // Theorem 1 guarantees the root is at most r_heu; the numerical
    // safety nudge in stable_upper_root must not breach that ceiling.
    stable_upper_root(b, c, disc).clamp(0.0, 1.0).min(heu)
}

/// The optimal speed ratio under the trapezoid (linear-ramp) capacity
/// `t_I * r + (1-r)^2 / (2 rho) = R`, clamped to `[0, 1]`:
///
/// ```text
/// r = (1 - rho*t_I) + sqrt(rho^2 t_I^2 - 2 rho (t_I - R))
/// ```
///
/// This is the tightest ratio that is *provably safe* in this workspace's
/// simulator; it lies between Eq. 2's `r_opt` and `r_heu`.
///
/// # Panics
///
/// Panics if `window` is zero or `rho_per_us` is not positive and finite.
pub fn r_opt_trapezoid(remaining: Dur, window: Dur, rho_per_us: f64) -> f64 {
    validate(window, rho_per_us);
    let t_i = window.as_us_f64();
    let r_rem = remaining.as_us_f64();
    if r_rem >= t_i {
        return 1.0;
    }
    // Roots of r^2 + b r + c = 0 with b = 2(rho*t_I - 1), c = 1 - 2*rho*R.
    let b = 2.0 * (rho_per_us * t_i - 1.0);
    let c = 1.0 - 2.0 * rho_per_us * r_rem;
    let disc = b * b - 4.0 * c;
    let heu = (r_rem / t_i).min(1.0);
    if disc < 0.0 {
        // Vertex of the trapezoid capacity parabola: r = 1 - rho*t_I.
        // With a very slow rate the vertex approaches 1; the heuristic is
        // safe and cheaper, so cap there.
        return (1.0 - rho_per_us * t_i).clamp(0.0, 1.0).min(heu);
    }
    stable_upper_root(b, c, disc).clamp(0.0, 1.0).min(heu)
}

/// The upper root of `r^2 + b r + c = 0` given `disc = b^2 - 4c >= 0`,
/// computed without catastrophic cancellation, then nudged up by one part
/// in 10^9 so residual floating-point error can never make the returned
/// ratio under-provide (the ladder's upward quantization dwarfs the nudge).
fn stable_upper_root(b: f64, c: f64, disc: f64) -> f64 {
    let s = disc.sqrt();
    let r = if b > 0.0 {
        // -b - s is large in magnitude: divide instead of subtracting.
        let q = -0.5 * (b + s);
        c / q
    } else {
        0.5 * (-b + s)
    };
    r * (1.0 + 1e-9) + 1e-12
}

/// The trapezoid-model capacity (in full-speed work time, microseconds) of
/// the profile "run at ratio `r`, then ramp linearly to 1 at rate `rho`,
/// reaching full speed exactly at the window end" — what the simulated
/// processor physically delivers. Tests use it to prove safety.
pub fn profile_capacity(r: f64, window: Dur, rho_per_us: f64) -> f64 {
    let t_i = window.as_us_f64();
    let ramp = (1.0 - r) / rho_per_us;
    if ramp >= t_i {
        // The whole window is one ramp ending at ratio 1.
        let r_start = 1.0 - rho_per_us * t_i;
        return t_i * (r_start + 1.0) / 2.0;
    }
    (t_i - ramp) * r + ramp * (r + 1.0) / 2.0
}

fn validate(window: Dur, rho_per_us: f64) {
    assert!(!window.is_zero(), "speed ratio needs a positive window");
    assert!(
        rho_per_us.is_finite() && rho_per_us > 0.0,
        "transition rate must be positive"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const RHO: f64 = 0.07;

    fn us(x: u64) -> Dur {
        Dur::from_us(x)
    }

    #[test]
    fn paper_example2_halves_the_speed() {
        // t=160: C-E = 20 us, window 40 us -> 0.5 exactly.
        assert_eq!(r_heu(us(20), us(40)), 0.5);
    }

    #[test]
    fn r_opt_matches_eq2_anchor_points() {
        // t_I = 50, R = 25 (r_heu = 0.5): disc = 12.25 - 7 = 5.25,
        // r_opt = (2 - 3.5 + sqrt(5.25))/2 = 0.39567...
        let r = r_opt(us(25), us(50), RHO);
        assert!((r - 0.395_67).abs() < 1e-4, "got {r}");
        // Long windows converge to the heuristic: t_I = 3000, R = 1500.
        let r = r_opt(us(1500), us(3000), RHO);
        assert!((r - 0.5).abs() < 0.002, "got {r}");
    }

    #[test]
    fn theorem1_heuristic_dominates_eq2_optimal() {
        for window_us in [50u64, 100, 200, 500, 1000, 3000, 10_000] {
            for pct in 1..100 {
                let rem = us((window_us * pct / 100).max(1));
                if rem >= us(window_us) {
                    continue;
                }
                let heu = r_heu(rem, us(window_us));
                let opt = r_opt(rem, us(window_us), RHO);
                assert!(
                    heu >= opt - 1e-12,
                    "Theorem 1 violated at window={window_us}us rem={rem}: heu={heu} opt={opt}"
                );
            }
        }
    }

    #[test]
    fn ratio_ordering_eq2_below_trapezoid_below_heuristic() {
        // Eq. 2 credits the ramp twice as much work as physics delivers, so
        // r_opt <= r_opt_trapezoid <= r_heu (in the formula regime).
        for (w, n) in [(100u64, 40u64), (500, 200), (2000, 1500), (80, 70)] {
            let opt = r_opt(us(n), us(w), RHO);
            let trap = r_opt_trapezoid(us(n), us(w), RHO);
            let heu = r_heu(us(n), us(w));
            assert!(opt <= trap + 1e-12, "w={w} n={n}: {opt} > {trap}");
            assert!(trap <= heu + 1e-12, "w={w} n={n}: {trap} > {heu}");
        }
    }

    #[test]
    fn heuristic_and_trapezoid_optimal_are_physically_safe() {
        for window_us in [30u64, 60, 150, 400, 2000] {
            for frac in 1..10 {
                let rem_us = window_us * frac / 10;
                if rem_us == 0 {
                    continue;
                }
                let win = us(window_us);
                let rem = us(rem_us);
                for (label, r) in [
                    ("heu", r_heu(rem, win)),
                    ("trap", r_opt_trapezoid(rem, win, RHO)),
                ] {
                    let cap = profile_capacity(r, win, RHO);
                    assert!(
                        cap + 1e-9 >= rem_us as f64,
                        "{label}: capacity {cap} < required {rem_us} (window {window_us}, r={r})"
                    );
                }
            }
        }
    }

    #[test]
    fn eq2_optimal_under_provides_under_trapezoid_physics() {
        // The documented discrepancy: at t_I=500, R=200, Eq. 2 gives a
        // ratio whose trapezoid capacity falls ~1% short — which is why
        // the simulation policy uses r_opt_trapezoid.
        let r = r_opt(us(200), us(500), RHO);
        let cap = profile_capacity(r, us(500), RHO);
        assert!(cap < 200.0, "expected under-provision, got capacity {cap}");
        assert!(cap > 195.0, "shortfall should be small, got {cap}");
    }

    #[test]
    fn trapezoid_optimal_is_exact_in_the_formula_regime() {
        let win = us(500);
        let rem = us(200);
        let r = r_opt_trapezoid(rem, win, RHO);
        let cap = profile_capacity(r, win, RHO);
        assert!((cap - 200.0).abs() < 1e-6, "capacity {cap} != 200");
    }

    #[test]
    fn no_slack_means_full_speed() {
        assert_eq!(r_heu(us(50), us(50)), 1.0);
        assert_eq!(r_opt(us(50), us(50), RHO), 1.0);
        assert_eq!(r_opt_trapezoid(us(50), us(50), RHO), 1.0);
        assert_eq!(r_opt(us(80), us(50), RHO), 1.0);
    }

    #[test]
    fn negative_discriminant_falls_back_to_vertex() {
        // t_I = 50, R = 5: Eq. 2 disc = 0.0049*2500 - 4*0.07*45 = -0.35.
        let r = r_opt(us(5), us(50), RHO);
        let vertex = (1.0 - RHO * 50.0).max(0.0); // feasibility-minimal start
        assert_eq!(r, vertex);
        // Trapezoid vertex: 1 - rho*t_I = 1 - 3.5 -> clamped to 0; its
        // profile is the pure final ramp, which still over-provides.
        let rt = r_opt_trapezoid(us(5), us(50), RHO);
        let cap = profile_capacity(rt, us(50), RHO);
        assert!(cap >= 5.0, "vertex profile capacity {cap}");
    }

    #[test]
    fn optimal_gain_shrinks_with_window_length() {
        // Figure 7's message: the gap (r_heu - r_opt) decays as t_I grows.
        let gap = |w: u64| r_heu(us(w / 2), us(w)) - r_opt(us(w / 2), us(w), RHO);
        assert!(gap(100) > gap(500));
        assert!(gap(500) > gap(3000));
        assert!(gap(3000) < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive window")]
    fn zero_window_rejected() {
        let _ = r_heu(us(1), Dur::ZERO);
    }
}
