//! Baseline schedulers LPFPS is compared against.
//!
//! * **FPS** — the paper's comparison point: a conventional fixed-priority
//!   scheduler that burns idle time in a NOP busy-wait loop at full clock
//!   and voltage. Exported here as [`Fps`] (the kernel's trivial policy).
//! * **FPS+PD / DVS-only** — ablation halves of LPFPS, built by
//!   [`LpfpsPolicy::power_down_only`](crate::LpfpsPolicy::power_down_only)
//!   and [`LpfpsPolicy::dvs_only`](crate::LpfpsPolicy::dvs_only).
//! * **Static slowdown** — the classical static alternative (§2.2 of the
//!   paper discusses static voltage scheduling): pick, *offline*, the
//!   lowest single frequency at which the task set remains schedulable by
//!   exact response-time analysis, and run the whole schedule there. This
//!   module computes that frequency; the driver simulates it by derating
//!   the processor.

use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::discipline::Discipline;
use lpfps_kernel::policy::{PolicyCore, PowerDirective, PowerPolicy, SchedulerContext};
use lpfps_tasks::analysis::response_time::rta_schedulable;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;

/// The conventional fixed-priority scheduler (NOP busy-wait when idle).
pub use lpfps_kernel::policy::AlwaysFullSpeed as Fps;

/// The classic timeout-based shutdown of conventional portable systems
/// (paper §2.1): the processor spins its idle loop for a fixed timeout
/// and only then enters power-down.
///
/// Contrast with LPFPS's power-down, which enters *immediately* because
/// the delay-queue head gives the exact idle length: the timeout policy
/// wastes `min(timeout, idle length)` of NOP energy on every idle
/// interval, and gains nothing at all from intervals shorter than the
/// timeout — precisely the failure mode the paper describes.
#[derive(Debug, Clone, Copy)]
pub struct TimeoutShutdown {
    timeout: Dur,
}

impl TimeoutShutdown {
    /// Creates the policy with the given idle timeout.
    ///
    /// # Panics
    ///
    /// Panics if the timeout is zero (use LPFPS's immediate power-down
    /// for that).
    pub fn new(timeout: Dur) -> Self {
        assert!(!timeout.is_zero(), "a zero timeout is immediate power-down");
        TimeoutShutdown { timeout }
    }

    /// The configured idle timeout.
    pub fn timeout(&self) -> Dur {
        self.timeout
    }
}

impl PolicyCore for TimeoutShutdown {
    fn name(&self) -> &'static str {
        "timeout-pd"
    }

    fn steady_digest(&self, _now: lpfps_tasks::time::Time) -> Option<u64> {
        // Run-time stateless: the timeout is configuration, not history.
        Some(0)
    }
}

impl PowerPolicy for TimeoutShutdown {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
        if ctx.active.is_some() || !ctx.run_queue.is_empty() {
            return PowerDirective::FullSpeed;
        }
        let Some(head) = ctx.next_arrival() else {
            return PowerDirective::FullSpeed;
        };
        let enter_at = ctx.now + self.timeout;
        let wake_at = head.saturating_sub(ctx.cpu.wakeup_delay());
        if wake_at <= enter_at {
            // The idle interval is shorter than the timeout: power-down
            // never engages, exactly the short-idle failure mode.
            return PowerDirective::FullSpeed;
        }
        PowerDirective::PowerDownAt { enter_at, wake_at }
    }
}

/// The plain earliest-deadline-first baseline: full speed, NOP busy-wait
/// when idle, dispatched by the kernel's [`Edf`](lpfps_kernel::Edf)
/// discipline instead of fixed priorities.
///
/// Behaviorally this is [`Fps`] with a different run-queue order — the
/// point of keeping it as a distinct policy is the report label: runs
/// tagged `"edf"` are the deadline-driven comparison column in the
/// FP-vs-EDF experiments, not a variant of the paper's scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfFps;

impl PolicyCore for EdfFps {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn steady_digest(&self, _now: lpfps_tasks::time::Time) -> Option<u64> {
        Some(0)
    }
}

impl<D: Discipline> PowerPolicy<D> for EdfFps {
    fn decide(&mut self, _ctx: &SchedulerContext<'_, D>) -> PowerDirective {
        PowerDirective::FullSpeed
    }
}

/// The lowest ladder frequency at which `ts` stays schedulable when every
/// WCET stretches by `reference / f`, or `None` if the set is
/// unschedulable even at full speed.
///
/// This is the static-slowdown operating point: running the entire
/// schedule at this frequency preserves all deadlines (exact RTA), with no
/// run-time adaptation. Deadlines do not scale — only execution times do.
///
/// # Examples
///
/// ```
/// use lpfps::baselines::static_slowdown_freq;
/// use lpfps_cpu::spec::CpuSpec;
/// use lpfps_tasks::{task::Task, taskset::TaskSet, time::Dur};
///
/// // A lightly loaded set can run far below full speed.
/// let ts = TaskSet::rate_monotonic("light", vec![
///     Task::new("t", Dur::from_us(1000), Dur::from_us(100)),
/// ]);
/// let f = static_slowdown_freq(&ts, &CpuSpec::arm8()).unwrap();
/// assert!(f < lpfps_tasks::freq::Freq::from_mhz(20));
/// ```
pub fn static_slowdown_freq(ts: &TaskSet, cpu: &CpuSpec) -> Option<Freq> {
    if !rta_schedulable(ts) {
        return None;
    }
    let reference = cpu.reference_freq();
    let feasible = |f: Freq| -> bool {
        let alpha = reference.as_khz() as f64 / f.as_khz() as f64;
        scaled_set_with_margin(ts, alpha).is_some_and(|s| rta_schedulable(&s))
    };
    // Binary search the ladder for the lowest feasible level (feasibility
    // is monotone in frequency).
    let ladder = cpu.ladder();
    let levels: Vec<Freq> = ladder.iter().collect();
    let mut lo = 0usize;
    let mut hi = levels.len() - 1;
    if !feasible(levels[hi]) {
        // Exactly-schedulable sets (like the paper's Table 1) can sit on a
        // knife edge that the rounding margin rejects at every derated
        // level. Running at the reference frequency itself involves no
        // stretching and no rounding, so plain RTA (already checked above)
        // suffices there.
        return (levels[hi] == reference).then_some(reference);
    }
    if feasible(levels[lo]) {
        return Some(levels[lo]);
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if feasible(levels[mid]) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(levels[hi])
}

/// A derated processor locked to the static-slowdown frequency of `ts`,
/// or `None` if the set is unschedulable at any ladder level.
pub fn static_slowdown_spec(ts: &TaskSet, cpu: &CpuSpec) -> Option<CpuSpec> {
    static_slowdown_freq(ts, cpu).map(|f| cpu.derated_to(f))
}

/// Safety margin added to every stretched WCET in the static-slowdown
/// feasibility test.
///
/// Real-arithmetic RTA is exact, but the simulator (like real hardware)
/// rounds each execution segment up to whole clock granules; when a
/// stretched response lands *exactly* on a release instant, that epsilon
/// tips the job into another full round of preemption — a discontinuous
/// jump RTA would miss by a nanosecond. One microsecond of per-job
/// inflation dominates any realistic accumulation of segment roundings
/// and costs at most one ladder step of extra frequency.
const STATIC_SLOWDOWN_MARGIN: Dur = Dur::from_us(1);

/// Stretches every WCET by `alpha` (rounded up) plus the safety margin;
/// `None` if any stretched WCET no longer fits its period (trivially
/// infeasible).
fn scaled_set_with_margin(ts: &TaskSet, alpha: f64) -> Option<TaskSet> {
    use lpfps_tasks::task::Task;
    let mut tasks = Vec::with_capacity(ts.len());
    for (_, t, _) in ts.iter() {
        let stretched =
            (t.wcet().as_ns() as f64 * alpha).ceil() as u64 + STATIC_SLOWDOWN_MARGIN.as_ns();
        if stretched > t.period().as_ns() || stretched > t.deadline().as_ns() {
            return None;
        }
        let mut s = Task::new(t.name(), t.period(), Dur::from_ns(stretched)).with_phase(t.phase());
        if t.deadline() != t.period() {
            s = s.with_deadline(t.deadline());
        }
        tasks.push(s);
    }
    let prios = (0..ts.len())
        .map(|i| ts.priority(lpfps_tasks::task::TaskId(i)))
        .collect();
    Some(TaskSet::with_priorities(ts.name(), tasks, prios))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::analysis::breakdown::scale_wcets;
    use lpfps_tasks::task::Task;
    use lpfps_tasks::time::Dur;

    fn set(params: &[(u64, u64)]) -> TaskSet {
        let tasks = params
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| Task::new(format!("t{i}"), Dur::from_us(t), Dur::from_us(c)))
            .collect();
        TaskSet::rate_monotonic("test", tasks)
    }

    #[test]
    fn harmonic_half_load_runs_near_half_speed() {
        // U = 0.5 harmonic: RM schedulable up to U = 1. Exactly 50 MHz sits
        // on the knife edge (R = D), so the rounding margin settles one
        // ladder step above it.
        let ts = set(&[(100, 25), (200, 50)]);
        let f = static_slowdown_freq(&ts, &CpuSpec::arm8()).unwrap();
        assert_eq!(f, Freq::from_mhz(51));
    }

    #[test]
    fn exactly_schedulable_set_falls_back_to_reference() {
        // Table 1 is *exactly* schedulable (tau3 completes on a release
        // boundary): no derated level survives the rounding margin, so the
        // static operating point is the reference frequency itself.
        let ts = set(&[(50, 10), (80, 20), (100, 40)]);
        let f = static_slowdown_freq(&ts, &CpuSpec::arm8()).unwrap();
        assert_eq!(f, Freq::from_mhz(100));
    }

    #[test]
    fn unschedulable_set_has_no_operating_point() {
        let ts = set(&[(10, 6), (20, 12)]);
        assert_eq!(static_slowdown_freq(&ts, &CpuSpec::arm8()), None);
    }

    #[test]
    fn result_is_actually_feasible_and_near_tight() {
        let ts = set(&[(100, 20), (300, 60), (900, 120)]);
        let cpu = CpuSpec::arm8();
        let f = static_slowdown_freq(&ts, &cpu).unwrap();
        let alpha = |freq: Freq| cpu.reference_freq().as_khz() as f64 / freq.as_khz() as f64;
        // Feasible by plain (margin-free) RTA at the chosen frequency...
        assert!(rta_schedulable(&scale_wcets(&ts, alpha(f))));
        // ...and within a couple of steps of the margin-free optimum (the
        // 1 us inflation may cost at most a step or two on tiny WCETs).
        let two_lower = Freq::from_khz(f.as_khz() - 2 * cpu.ladder().step().as_khz());
        if cpu.ladder().contains(two_lower) {
            assert!(
                !rta_schedulable(&scale_wcets(&ts, alpha(two_lower))),
                "chosen {f} is more than 2 steps above the margin-free optimum"
            );
        }
    }

    #[test]
    fn timeout_shutdown_wastes_idle_energy_vs_lpfps() {
        use crate::LpfpsPolicy;
        use lpfps_kernel::engine::{simulate, SimConfig};
        use lpfps_tasks::exec::AlwaysWcet;

        // One task, 25% utilization: 75 us idle per 100 us period.
        let ts = set(&[(100, 25)]);
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(1));
        let lpfps_pd = simulate(
            &ts,
            &cpu,
            &mut LpfpsPolicy::power_down_only(),
            &AlwaysWcet,
            &cfg,
        )
        .unwrap();
        let mut timeout = TimeoutShutdown::new(Dur::from_us(50));
        let with_timeout = simulate(&ts, &cpu, &mut timeout, &AlwaysWcet, &cfg).unwrap();
        let mut fps = Fps;
        let plain = simulate(&ts, &cpu, &mut fps, &AlwaysWcet, &cfg).unwrap();

        assert!(with_timeout.all_deadlines_met());
        // The timeout policy sits strictly between FPS and exact power-down.
        assert!(with_timeout.average_power() < plain.average_power());
        assert!(lpfps_pd.average_power() < with_timeout.average_power());
        // And with a timeout longer than every idle interval it degenerates
        // to plain FPS.
        let mut long = TimeoutShutdown::new(Dur::from_us(80));
        let degenerate = simulate(&ts, &cpu, &mut long, &AlwaysWcet, &cfg).unwrap();
        assert!((degenerate.average_power() - plain.average_power()).abs() < 1e-9);
        assert_eq!(degenerate.counters.power_downs, 0);
    }

    #[test]
    fn timeout_shutdown_respects_wakeup_margin() {
        use lpfps_kernel::engine::{simulate, SimConfig};
        use lpfps_tasks::exec::AlwaysWcet;
        // Idle interval 75us, timeout 74.95us: enter+wake margin collapses.
        let ts = set(&[(100, 25)]);
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(1));
        let mut tight = TimeoutShutdown::new(Dur::from_ns(74_950));
        let report = simulate(&ts, &cpu, &mut tight, &AlwaysWcet, &cfg).unwrap();
        assert!(report.all_deadlines_met());
    }

    #[test]
    #[should_panic(expected = "zero timeout")]
    fn zero_timeout_rejected() {
        let _ = TimeoutShutdown::new(Dur::ZERO);
    }

    #[test]
    fn derated_spec_matches_frequency() {
        let ts = set(&[(100, 25), (200, 50)]);
        let cpu = CpuSpec::arm8();
        let spec = static_slowdown_spec(&ts, &cpu).unwrap();
        assert_eq!(spec.full_freq(), Freq::from_mhz(51));
        assert_eq!(spec.reference_freq(), Freq::from_mhz(100));
    }
}
