//! Per-decision speed-ratio instrumentation.
//!
//! Theorem 1 of the paper proves the heuristic ratio of Eq. 3 is always
//! safe: `r_heu >= r_opt`, so stretching the active task by `1/r_heu`
//! never over-commits the window to the next arrival. The simulator's
//! policy computes only the ratio it acts on; this wrapper records the
//! *pair* at every slow-down decision so the invariant checker
//! (`lpfps-oracle`) can machine-check Theorem 1 on real schedules instead
//! of trusting the unit tests of [`crate::speed`] alone.

use crate::lpfps_policy::LpfpsPolicy;
use crate::speed::{r_heu, r_opt_trapezoid};
use lpfps_kernel::policy::{FaultEvent, PolicyCore, PowerDirective, PowerPolicy, SchedulerContext};
use lpfps_tasks::freq::Freq;
use lpfps_tasks::time::{Dur, Time};

/// One recorded slow-down decision: the budget the policy planned with
/// and both speed ratios evaluated on it.
#[derive(Debug, Clone, Copy)]
pub struct RatioSample {
    /// Scheduler invocation instant (`t_c` in the paper).
    pub now: Time,
    /// WCET-view remaining work `C_i - E_i` (margin-inflated if the
    /// policy carries an overrun margin), as time at the reference clock.
    pub remaining: Dur,
    /// Window to the safe completion bound (`t_a - t_c`).
    pub window: Dur,
    /// Eq. 3's heuristic ratio — what LPFPS acts on.
    pub r_heu: f64,
    /// The trapezoid-consistent optimal ratio for the same budget.
    pub r_opt: f64,
    /// The ladder frequency the policy actually chose.
    pub freq: Freq,
}

/// A [`PowerPolicy`] wrapper around [`LpfpsPolicy`] that records a
/// [`RatioSample`] for every `SlowDown` the inner policy issues, without
/// changing a single directive.
///
/// The budget in each sample comes from the same
/// [`LpfpsPolicy::slowdown_budget`] call the policy itself decides on, so
/// the log is an exact transcript of the decisions, not a re-derivation
/// that could drift.
#[derive(Debug)]
pub struct RatioLogger {
    inner: LpfpsPolicy,
    samples: Vec<RatioSample>,
}

impl RatioLogger {
    /// Wraps a policy; directives pass through unchanged.
    pub fn new(inner: LpfpsPolicy) -> Self {
        RatioLogger {
            inner,
            samples: Vec::new(),
        }
    }

    /// All recorded slow-down decisions, in time order.
    pub fn samples(&self) -> &[RatioSample] {
        &self.samples
    }

    /// Samples violating Theorem 1 (`r_heu < r_opt`). Must be empty on
    /// every schedule; the oracle test suite asserts exactly that.
    pub fn theorem1_violations(&self) -> Vec<RatioSample> {
        self.samples
            .iter()
            .copied()
            .filter(|s| s.r_heu < s.r_opt)
            .collect()
    }
}

impl PolicyCore for RatioLogger {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_fault(&mut self, event: &FaultEvent) -> bool {
        self.inner.on_fault(event)
    }
}

impl PowerPolicy for RatioLogger {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
        let directive = self.inner.decide(ctx);
        if let PowerDirective::SlowDown { freq, .. } = directive {
            // A slow-down implies an active task with exploitable slack;
            // if either ever fails to hold, drop the sample rather than
            // abort the simulation — the log is diagnostic, not load-
            // bearing.
            if let Some(active) = ctx.active {
                if let Some((remaining, window)) = self.inner.slowdown_budget(ctx, &active) {
                    self.samples.push(RatioSample {
                        now: ctx.now,
                        remaining,
                        window,
                        r_heu: r_heu(remaining, window),
                        r_opt: r_opt_trapezoid(remaining, window, ctx.cpu.ramp_rate_per_us()),
                        freq,
                    });
                }
            }
        }
        directive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_kernel::engine::{simulate, SimConfig};
    use lpfps_tasks::exec::AlwaysWcet;
    use lpfps_tasks::task::Task;
    use lpfps_tasks::taskset::TaskSet;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    #[test]
    fn logger_is_transparent_and_records_every_slowdown() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_ms(2));
        let plain = simulate(&ts, &cpu, &mut LpfpsPolicy::new(), &AlwaysWcet, &cfg).unwrap();
        let mut logger = RatioLogger::new(LpfpsPolicy::new());
        let logged = simulate(&ts, &cpu, &mut logger, &AlwaysWcet, &cfg).unwrap();
        assert_eq!(plain.counters, logged.counters);
        assert_eq!(plain.energy.total_energy(), logged.energy.total_energy());
        assert!(!logger.samples().is_empty(), "table1 must exercise DVS");
        // Every slow-down starts a downward ramp (and later one back up).
        assert!(logger.samples().len() as u64 <= logged.counters.ramps);
    }

    #[test]
    fn theorem1_holds_on_the_motivating_example() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let mut logger = RatioLogger::new(LpfpsPolicy::new());
        simulate(
            &ts,
            &cpu,
            &mut logger,
            &AlwaysWcet,
            &SimConfig::new(Dur::from_ms(2)),
        )
        .unwrap();
        for s in logger.samples() {
            assert!(s.r_heu > 0.0 && s.r_heu <= 1.0, "ratio in (0, 1]: {s:?}");
        }
        assert!(logger.theorem1_violations().is_empty());
    }
}
