//! An EDF simulator for piecewise-constant speed profiles — the execution
//! substrate for the AVR heuristic and the full-speed EDF baseline.
//!
//! **Oracle-only.** This is *not* the project's EDF scheduler: run-time
//! EDF goes through the shared kernel's `lpfps_kernel::discipline::Edf`
//! discipline (see `PolicyKind::Edf` / `PolicyKind::CcEdf` in the
//! driver), where it gets the full processor physics, the differential
//! oracle, and the invariant checker. This module survives only as the
//! idealized-model cross-check the YDS/AVR *offline* analyses are scored
//! against: Yao's model (continuous speeds, instantaneous transitions,
//! free idle) cannot be expressed through the kernel's `SlowDown`
//! contract, which permits reduced speed only when the active task is the
//! lone runnable job. Keep it tiny; do not grow scheduling features here.
//!
//! The model is the idealized one of Yao et al.: continuous speeds,
//! instantaneous changes, zero idle power. Internally the simulator works
//! in `f64` nanoseconds (speeds are fractional, so completions fall off
//! the integer grid); determinism is preserved because the computation is
//! a fixed sequence of IEEE-754 operations. Crossing from this model to
//! the kernel's integer grids goes through [`crate::convert`] only.

use crate::model::JobSet;
use crate::profile::SpeedProfile;
use lpfps_cpu::power::PowerModel;
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};

/// Result of one EDF run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdfReport {
    /// Normalized energy (power x seconds).
    pub energy: f64,
    /// Busy time, in seconds.
    pub busy_secs: f64,
    /// Jobs that completed after their deadline.
    pub misses: usize,
    /// Jobs completed.
    pub completed: usize,
    /// The schedule span, seconds (first release to last deadline).
    pub span_secs: f64,
}

impl EdfReport {
    /// Average normalized power over the span.
    pub fn average_power(&self) -> f64 {
        if self.span_secs == 0.0 {
            0.0
        } else {
            self.energy / self.span_secs
        }
    }
}

/// Simulates EDF over `jobs` with speeds given by `profile`, charging
/// energy with `power`. Jobs are executed earliest-absolute-deadline
/// first, preemptively; completion within 1 micro-cycle (1e-3 ns of work)
/// counts as done.
pub fn simulate_edf(jobs: &JobSet, profile: &SpeedProfile, power: &PowerModel) -> EdfReport {
    const WORK_EPS: f64 = 1e-3; // ns of unit-speed work

    let n = jobs.len();
    let mut remaining: Vec<f64> = jobs.jobs().iter().map(|j| j.work.as_ns() as f64).collect();
    let releases: Vec<f64> = jobs
        .jobs()
        .iter()
        .map(|j| j.release.as_ns() as f64)
        .collect();
    let deadlines: Vec<f64> = jobs
        .jobs()
        .iter()
        .map(|j| j.deadline.as_ns() as f64)
        .collect();
    let end = jobs.span_end().map(|e| e.as_ns() as f64).unwrap_or(0.0);

    let mut released = 0usize; // jobs() is sorted by release
    let mut ready: Vec<usize> = Vec::new();
    let mut t = 0.0f64;
    let mut energy = 0.0f64;
    let mut busy = 0.0f64;
    let mut misses = 0usize;
    let mut completed = 0usize;

    while t < end - 1e-9 {
        // Admit releases due by t.
        while released < n && releases[released] <= t + 1e-9 {
            ready.push(released);
            released += 1;
        }
        let next_release = if released < n {
            releases[released]
        } else {
            f64::INFINITY
        };

        if ready.is_empty() {
            t = next_release.min(end);
            continue;
        }
        // Earliest deadline first.
        let &job = ready
            .iter()
            .min_by(|&&a, &&b| deadlines[a].total_cmp(&deadlines[b]))
            .expect("ready nonempty");

        let s = profile.speed_at(t);
        assert!(
            s > 0.0,
            "profile must be positive while work is pending (t={t})"
        );
        let boundary = profile.next_change_after(t);
        let completion = t + remaining[job] / s;
        let t_next = completion.min(next_release).min(boundary).min(end);
        let delta = t_next - t;
        remaining[job] -= delta * s;
        energy += power.busy_ratio(s) * delta * 1e-9;
        busy += delta * 1e-9;
        t = t_next;

        if remaining[job] <= WORK_EPS {
            ready.retain(|&j| j != job);
            completed += 1;
            if t > deadlines[job] + 1.0 {
                misses += 1;
            }
        }
    }
    // Unfinished jobs at the end of the span are misses (their deadlines
    // are all <= end by construction).
    misses += ready.len();

    EdfReport {
        energy,
        busy_secs: busy,
        misses,
        completed,
        span_secs: end * 1e-9,
    }
}

/// Convenience: EDF at constant full speed (the paper's FPS-analogue in
/// the idealized model; idle time is free here, so this is the "race to
/// idle" baseline).
pub fn simulate_edf_full_speed(jobs: &JobSet, power: &PowerModel) -> EdfReport {
    let span = jobs
        .span_end()
        .map(|e| e.saturating_since(lpfps_tasks::time::Time::ZERO))
        .unwrap_or(Dur::ZERO);
    simulate_edf(jobs, &SpeedProfile::constant(1.0, span), power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Job;
    use lpfps_tasks::time::Time;

    fn t(us: u64) -> Time {
        Time::from_us(us)
    }

    fn job(r: u64, d: u64, w: u64) -> Job {
        Job::new(t(r), t(d), Dur::from_us(w))
    }

    #[test]
    fn full_speed_busy_time_is_total_work() {
        let js = JobSet::new(vec![job(0, 100, 20), job(40, 60, 15)]);
        let report = simulate_edf_full_speed(&js, &PowerModel::default());
        assert_eq!(report.misses, 0);
        assert_eq!(report.completed, 2);
        assert!((report.busy_secs - 35e-6).abs() < 1e-12);
        assert!((report.energy - 35e-6).abs() < 1e-12);
    }

    #[test]
    fn half_speed_doubles_busy_time_but_saves_energy() {
        let js = JobSet::new(vec![job(0, 100, 20)]);
        let pm = PowerModel::default();
        let half = simulate_edf(&js, &SpeedProfile::constant(0.5, Dur::from_us(100)), &pm);
        assert_eq!(half.misses, 0);
        assert!((half.busy_secs - 40e-6).abs() < 1e-12);
        assert!(half.energy < 0.7 * 20e-6, "quadratic voltage win expected");
    }

    #[test]
    fn too_slow_a_profile_misses() {
        let js = JobSet::new(vec![job(0, 100, 80)]);
        let pm = PowerModel::default();
        let slow = simulate_edf(&js, &SpeedProfile::constant(0.5, Dur::from_us(200)), &pm);
        assert_eq!(slow.misses, 1);
    }

    #[test]
    fn edf_order_preempts_for_urgent_jobs() {
        // Long lax job first, short urgent job arrives mid-flight: EDF
        // must finish the urgent one on time.
        let js = JobSet::new(vec![job(0, 200, 100), job(50, 70, 10)]);
        let report = simulate_edf_full_speed(&js, &PowerModel::default());
        assert_eq!(report.misses, 0);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn empty_set_reports_zero() {
        let report = simulate_edf_full_speed(&JobSet::default(), &PowerModel::default());
        assert_eq!(report.energy, 0.0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.average_power(), 0.0);
    }
}
