//! The one documented seam between this crate's idealized real-valued
//! time model and the kernel's integer grids.
//!
//! The YDS/AVR analyses work in Yao's model: speeds are fractions of the
//! reference clock in `f64`, work is `f64` nanoseconds of unit-speed
//! execution. The kernel (`lpfps_kernel`) is integer-exact: durations
//! are whole nanoseconds ([`Dur`]), clock frequencies are whole kilohertz
//! quantized up to the processor's ladder ([`Freq`]). Any experiment that
//! feeds an offline speed schedule from this crate into the shared kernel
//! must cross that boundary **here and only here**, so the rounding
//! direction is fixed in one place:
//!
//! * **speeds round up** — a real-valued speed maps to the smallest
//!   ladder frequency that is at least as fast ([`speed_to_freq`]).
//!   Rounding down could turn a feasible schedule infeasible; rounding up
//!   only wastes energy.
//! * **work rounds up** — fractional nanoseconds of demanded work map to
//!   the next whole-nanosecond [`Dur`] ([`work_to_dur`]). Under-counting
//!   demand could fabricate slack that does not exist.
//!
//! Both choices are conservative in the schedulability direction: the
//! integer realization never promises more than the real-valued analysis
//! proved.

use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::time::Dur;

/// Maps a fractional speed (`1.0` = the reference clock) onto the
/// processor's frequency ladder, rounding **up** to the next ladder level
/// so the realized clock is never slower than the analysis assumed.
///
/// Speeds at or below zero clamp to the ladder floor; speeds above `1.0`
/// clamp to the reference frequency (the analyses never exceed it, but a
/// caller-side epsilon may).
///
/// # Examples
///
/// ```
/// use lpfps_cpu::spec::CpuSpec;
/// use lpfps_edf::convert::speed_to_freq;
/// use lpfps_tasks::freq::Freq;
///
/// let cpu = CpuSpec::arm8(); // 100 MHz reference, 1 MHz ladder steps
/// assert_eq!(speed_to_freq(0.5, &cpu), Freq::from_mhz(50));
/// // Just over a level rounds up, never down.
/// assert_eq!(speed_to_freq(0.5001, &cpu), Freq::from_mhz(51));
/// ```
pub fn speed_to_freq(speed: f64, cpu: &CpuSpec) -> Freq {
    let reference = cpu.reference_freq();
    if speed >= 1.0 {
        return reference;
    }
    // Ceil to whole kHz first (the Freq grid), then up to the ladder.
    let khz = (speed.max(0.0) * reference.as_khz() as f64).ceil() as u64;
    cpu.ladder().quantize_up(Freq::from_khz(khz.max(1)))
}

/// Maps fractional nanoseconds of unit-speed work onto the kernel's
/// integer duration grid, rounding **up** so demand is never
/// under-counted.
///
/// Negative inputs (a numerically-noisy "nothing left") map to
/// [`Dur::ZERO`].
///
/// # Examples
///
/// ```
/// use lpfps_edf::convert::work_to_dur;
/// use lpfps_tasks::time::Dur;
///
/// assert_eq!(work_to_dur(999.25), Dur::from_ns(1000));
/// assert_eq!(work_to_dur(1000.0), Dur::from_us(1));
/// ```
pub fn work_to_dur(ns: f64) -> Dur {
    if ns <= 0.0 {
        return Dur::ZERO;
    }
    Dur::from_ns(ns.ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_boundaries_round_up_onto_the_ladder() {
        let cpu = CpuSpec::arm8();
        let step_khz = cpu.ladder().step().as_khz();
        // Exactly on a level: identity.
        assert_eq!(speed_to_freq(0.5, &cpu), Freq::from_mhz(50));
        // An epsilon above a level costs one full step, never zero.
        let eps = 1.0 / cpu.reference_freq().as_khz() as f64; // one kHz
        let up = speed_to_freq(0.5 + eps, &cpu);
        assert_eq!(up.as_khz(), Freq::from_mhz(50).as_khz() + step_khz);
        // An epsilon below a level stays on that level (ceil, not round).
        assert_eq!(speed_to_freq(0.5 - eps / 2.0, &cpu), Freq::from_mhz(50));
    }

    #[test]
    fn speed_extremes_clamp_to_the_ladder_range() {
        let cpu = CpuSpec::arm8();
        assert_eq!(speed_to_freq(0.0, &cpu), cpu.ladder().min());
        assert_eq!(speed_to_freq(-1.0, &cpu), cpu.ladder().min());
        assert_eq!(speed_to_freq(1.0, &cpu), cpu.reference_freq());
        assert_eq!(speed_to_freq(1.5, &cpu), cpu.reference_freq());
    }

    #[test]
    fn realized_freq_is_never_slower_than_the_speed() {
        let cpu = CpuSpec::arm8();
        let reference = cpu.reference_freq().as_khz() as f64;
        for i in 0..=1000 {
            let speed = f64::from(i) / 1000.0;
            let f = speed_to_freq(speed, &cpu);
            assert!(
                f.as_khz() as f64 >= speed * reference,
                "speed {speed} realized as {f}, slower than demanded"
            );
        }
    }

    #[test]
    fn work_boundaries_round_up_onto_the_nanosecond_grid() {
        assert_eq!(work_to_dur(0.0), Dur::ZERO);
        assert_eq!(work_to_dur(-0.5), Dur::ZERO);
        assert_eq!(work_to_dur(0.25), Dur::from_ns(1));
        assert_eq!(work_to_dur(1.0), Dur::from_ns(1));
        assert_eq!(work_to_dur(1.0 + f64::EPSILON * 2.0), Dur::from_ns(2));
        assert_eq!(work_to_dur(12_345.0), Dur::from_ns(12_345));
    }
}
