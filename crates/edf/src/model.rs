//! The job model of Yao, Demers & Shenker's scheduling problem.
//!
//! A [`JobSet`] is a finite set of independent jobs, each with a release
//! time, an absolute deadline, and a work requirement (execution time at
//! full processor speed). The processor's speed may vary continuously in
//! `(0, 1]` (normalized to the full clock) with zero transition cost —
//! the *idealized* model of the paper's §2.2 related work, deliberately
//! more generous than the LPFPS processor model (discrete ladder, ramps,
//! fixed priorities).

use lpfps_tasks::exec::ExecModel;
use lpfps_tasks::task::TaskId;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// One job: available at `release`, must finish `work` (at unit speed) by
/// `deadline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Release (arrival) time.
    pub release: Time,
    /// Absolute deadline.
    pub deadline: Time,
    /// Required execution time at full speed.
    pub work: Dur,
    /// The generating task (for reporting), if any.
    pub task: Option<TaskId>,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if the deadline does not lie strictly after the release, or
    /// the work is zero or exceeds the window.
    pub fn new(release: Time, deadline: Time, work: Dur) -> Self {
        assert!(deadline > release, "a job needs a positive window");
        assert!(!work.is_zero(), "a job needs positive work");
        assert!(
            work <= deadline.saturating_since(release),
            "work must fit the window at full speed"
        );
        Job {
            release,
            deadline,
            work,
            task: None,
        }
    }

    /// Tags the job with its generating task.
    pub fn with_task(mut self, task: TaskId) -> Self {
        self.task = Some(task);
        self
    }

    /// The job's *density* (Yao's average-rate requirement):
    /// `work / (deadline - release)`.
    pub fn density(&self) -> f64 {
        self.work.as_ns() as f64 / self.deadline.saturating_since(self.release).as_ns() as f64
    }
}

/// A finite set of jobs, kept sorted by release time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobSet {
    jobs: Vec<Job>,
}

impl JobSet {
    /// Creates a job set (jobs are sorted by release, then deadline).
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| (j.release, j.deadline));
        JobSet { jobs }
    }

    /// Unrolls a periodic task set over `[0, horizon)`, drawing each job's
    /// work from `exec` (use [`AlwaysWcet`](lpfps_tasks::exec::AlwaysWcet)
    /// for the worst-case job set). Jobs whose deadline falls beyond the
    /// horizon are excluded so the set is self-contained.
    pub fn from_taskset(ts: &TaskSet, horizon: Dur, exec: &dyn ExecModel, seed: u64) -> Self {
        let end = Time::ZERO + horizon;
        let mut jobs = Vec::new();
        for (id, task, _) in ts.iter() {
            let mut release = Time::ZERO + task.phase();
            let mut index = 0u64;
            while release < end {
                let deadline = release + task.deadline();
                if deadline > end {
                    break;
                }
                let work = exec.sample(task, id, index, seed);
                jobs.push(Job::new(release, deadline, work).with_task(id));
                release += task.period();
                index += 1;
            }
        }
        JobSet::new(jobs)
    }

    /// The jobs, sorted by release.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if there are no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total work across all jobs.
    pub fn total_work(&self) -> Dur {
        self.jobs.iter().map(|j| j.work).sum()
    }

    /// The latest deadline (the natural schedule end), or `None` if empty.
    pub fn span_end(&self) -> Option<Time> {
        self.jobs.iter().map(|j| j.deadline).max()
    }

    /// The maximum *intensity* over all intervals `[z, z']` bounded by a
    /// release and a deadline: `max sum(work of jobs inside) / (z' - z)`.
    /// A job set is EDF-feasible at unit speed iff this is at most 1.
    pub fn max_intensity(&self) -> f64 {
        let mut best: f64 = 0.0;
        for &Job { release: z, .. } in &self.jobs {
            for &Job { deadline: zp, .. } in &self.jobs {
                if zp <= z {
                    continue;
                }
                let inside: u128 = self
                    .jobs
                    .iter()
                    .filter(|j| j.release >= z && j.deadline <= zp)
                    .map(|j| j.work.as_ns() as u128)
                    .sum();
                let len = zp.saturating_since(z).as_ns() as u128;
                if len > 0 {
                    best = best.max(inside as f64 / len as f64);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::exec::AlwaysWcet;
    use lpfps_tasks::task::Task;

    fn t(us: u64) -> Time {
        Time::from_us(us)
    }

    #[test]
    fn density_is_work_over_window() {
        let j = Job::new(t(0), t(100), Dur::from_us(25));
        assert!((j.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unrolling_counts_whole_windows_only() {
        let ts = TaskSet::rate_monotonic(
            "u",
            vec![Task::new("a", Dur::from_us(100), Dur::from_us(10))],
        );
        // Horizon 250us: releases at 0, 100 fit (deadlines 100, 200);
        // the release at 200 has deadline 300 > 250 and is excluded.
        let js = JobSet::from_taskset(&ts, Dur::from_us(250), &AlwaysWcet, 0);
        assert_eq!(js.len(), 2);
        assert_eq!(js.total_work(), Dur::from_us(20));
        assert_eq!(js.span_end(), Some(t(200)));
    }

    #[test]
    fn max_intensity_of_table1_matches_feasibility() {
        let js = JobSet::from_taskset(
            &lpfps_workloads::table1(),
            Dur::from_us(400),
            &AlwaysWcet,
            0,
        );
        let g = js.max_intensity();
        // Table 1 is schedulable at unit speed, so intensity <= 1; it is
        // tight, so intensity is high.
        assert!(g <= 1.0 + 1e-12, "intensity {g}");
        assert!(g > 0.8, "intensity {g}");
    }

    #[test]
    fn jobs_are_sorted_by_release() {
        let js = JobSet::new(vec![
            Job::new(t(50), t(100), Dur::from_us(10)),
            Job::new(t(0), t(40), Dur::from_us(10)),
        ]);
        assert_eq!(js.jobs()[0].release, t(0));
    }

    #[test]
    #[should_panic(expected = "positive window")]
    fn inverted_window_rejected() {
        let _ = Job::new(t(10), t(10), Dur::from_us(1));
    }

    #[test]
    #[should_panic(expected = "fit the window")]
    fn overfull_job_rejected() {
        let _ = Job::new(t(0), t(10), Dur::from_us(20));
    }
}
