//! The YDS optimal offline speed schedule (Yao, Demers & Shenker, FOCS
//! 1995) — reference \[14\] of the paper.
//!
//! Given a finite job set and a convex power function, the minimum-energy
//! feasible speed schedule repeatedly finds the *critical interval*
//! `[z, z']` maximizing the intensity `g = (sum of work of jobs whose
//! window lies inside) / (z' - z)`, runs exactly those jobs at speed `g`
//! under EDF inside it, removes them, compresses the timeline, and
//! recurses. Speeds are non-increasing across rounds and the first
//! round's speed is at most 1 iff the set is feasible on a unit-speed
//! processor.
//!
//! We report the schedule as `(length, speed)` segments (original-time
//! layout is irrelevant for energy) and integrate energy with the shared
//! CMOS power model.

use crate::model::{Job, JobSet};
use lpfps_cpu::power::PowerModel;
use lpfps_tasks::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// One busy segment of the optimal schedule: `length` of wall-clock time
/// at `speed` (fraction of full clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedSegment {
    /// Wall-clock extent of the segment.
    pub length: Dur,
    /// Execution speed as a fraction of the full clock.
    pub speed: f64,
}

/// The YDS schedule: busy segments in the order the algorithm found them
/// (non-increasing speed), plus the total span they were carved from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YdsSchedule {
    segments: Vec<SpeedSegment>,
    span: Dur,
}

impl YdsSchedule {
    /// Computes the optimal schedule for `jobs`.
    ///
    /// # Panics
    ///
    /// Panics if any round's critical intensity exceeds 1 + 1e-9 (the set
    /// is infeasible on this processor) — feed only feasible sets.
    pub fn compute(jobs: &JobSet) -> Self {
        let span = jobs
            .span_end()
            .map(|e| e.saturating_since(Time::ZERO))
            .unwrap_or(Dur::ZERO);
        let mut remaining: Vec<Job> = jobs.jobs().to_vec();
        let mut segments = Vec::new();
        let mut last_speed = f64::INFINITY;
        while !remaining.is_empty() {
            let (z, zp, g) = critical_interval(&remaining);
            assert!(
                g <= 1.0 + 1e-9,
                "critical intensity {g} exceeds the unit-speed capacity"
            );
            debug_assert!(
                g <= last_speed + 1e-9,
                "YDS speeds must be non-increasing ({g} after {last_speed})"
            );
            last_speed = g;
            segments.push(SpeedSegment {
                length: zp.saturating_since(z),
                speed: g,
            });
            let gap = zp.saturating_since(z);
            remaining.retain(|j| !(j.release >= z && j.deadline <= zp));
            for j in &mut remaining {
                j.release = compress(j.release, z, zp, gap);
                j.deadline = compress(j.deadline, z, zp, gap);
                debug_assert!(j.deadline > j.release, "compression emptied a window");
            }
        }
        YdsSchedule { segments, span }
    }

    /// The busy segments, in discovery order (non-increasing speed).
    pub fn segments(&self) -> &[SpeedSegment] {
        &self.segments
    }

    /// The peak (first-round) speed; zero for an empty schedule.
    pub fn peak_speed(&self) -> f64 {
        self.segments.first().map(|s| s.speed).unwrap_or(0.0)
    }

    /// Total busy time across segments.
    pub fn busy_time(&self) -> Dur {
        self.segments.iter().map(|s| s.length).sum()
    }

    /// The schedule span (release of the first job to the last deadline,
    /// measured from time zero).
    pub fn span(&self) -> Dur {
        self.span
    }

    /// Total normalized energy of the schedule under `power` (idle time
    /// is free in the idealized model — see the crate docs).
    pub fn energy(&self, power: &PowerModel) -> f64 {
        self.segments
            .iter()
            .map(|s| power.busy_ratio(s.speed) * s.length.as_secs_f64())
            .sum()
    }

    /// Average normalized power over the span.
    pub fn average_power(&self, power: &PowerModel) -> f64 {
        if self.span.is_zero() {
            0.0
        } else {
            self.energy(power) / self.span.as_secs_f64()
        }
    }
}

/// Removes the interval `(z, zp]`-ish from the timeline: times beyond
/// `zp` shift left by `gap`; times inside clamp to `z`.
fn compress(t: Time, z: Time, zp: Time, gap: Dur) -> Time {
    if t >= zp {
        t - gap
    } else if t > z {
        z
    } else {
        t
    }
}

/// Finds the interval `[z, z']` (z a release, z' a deadline) of maximum
/// intensity in O(n^2) via a deadline-sorted sweep per release.
fn critical_interval(jobs: &[Job]) -> (Time, Time, f64) {
    let mut releases: Vec<Time> = jobs.iter().map(|j| j.release).collect();
    releases.sort_unstable();
    releases.dedup();
    let mut by_deadline: Vec<&Job> = jobs.iter().collect();
    by_deadline.sort_by_key(|j| j.deadline);

    let mut best = (Time::ZERO, Time::from_ns(1), f64::MIN);
    for &z in &releases {
        let mut acc: u128 = 0;
        let mut i = 0;
        while i < by_deadline.len() {
            let d = by_deadline[i].deadline;
            // Fold in every job sharing this deadline before evaluating.
            while i < by_deadline.len() && by_deadline[i].deadline == d {
                if by_deadline[i].release >= z {
                    acc += by_deadline[i].work.as_ns() as u128;
                }
                i += 1;
            }
            if d <= z || acc == 0 {
                continue;
            }
            let g = acc as f64 / d.saturating_since(z).as_ns() as f64;
            if g > best.2 {
                best = (z, d, g);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::time::Dur;

    fn t(us: u64) -> Time {
        Time::from_us(us)
    }

    fn job(r: u64, d: u64, w: u64) -> Job {
        Job::new(t(r), t(d), Dur::from_us(w))
    }

    #[test]
    fn single_job_runs_at_its_density() {
        let js = JobSet::new(vec![job(0, 100, 25)]);
        let sched = YdsSchedule::compute(&js);
        assert_eq!(sched.segments().len(), 1);
        assert!((sched.peak_speed() - 0.25).abs() < 1e-12);
        assert_eq!(sched.segments()[0].length, Dur::from_us(100));
    }

    #[test]
    fn textbook_two_job_example() {
        // Job A: [0, 100], 20; Job B: [40, 60], 15. The critical interval
        // is [40, 60] at speed 0.75; A then spreads over the remaining 80
        // at 0.25.
        let js = JobSet::new(vec![job(0, 100, 20), job(40, 60, 15)]);
        let sched = YdsSchedule::compute(&js);
        assert_eq!(sched.segments().len(), 2);
        assert!((sched.segments()[0].speed - 0.75).abs() < 1e-12);
        assert_eq!(sched.segments()[0].length, Dur::from_us(20));
        assert!((sched.segments()[1].speed - 0.25).abs() < 1e-12);
        assert_eq!(sched.segments()[1].length, Dur::from_us(80));
    }

    #[test]
    fn speeds_are_non_increasing_and_work_is_conserved() {
        use lpfps_tasks::exec::AlwaysWcet;
        let js = JobSet::from_taskset(&lpfps_workloads::cnc(), Dur::from_us(9_600), &AlwaysWcet, 0);
        let sched = YdsSchedule::compute(&js);
        let mut prev = f64::INFINITY;
        let mut processed = 0.0;
        for s in sched.segments() {
            assert!(s.speed <= prev + 1e-9);
            prev = s.speed;
            processed += s.speed * s.length.as_ns() as f64;
        }
        // Work processed equals total work demanded (in ns at unit speed).
        let demanded = js.total_work().as_ns() as f64;
        assert!(
            (processed - demanded).abs() / demanded < 1e-9,
            "{processed} != {demanded}"
        );
    }

    #[test]
    fn feasible_sets_stay_at_or_below_unit_speed() {
        use lpfps_tasks::exec::AlwaysWcet;
        for ts in lpfps_workloads::applications() {
            let horizon = ts.iter().map(|(_, t, _)| t.period()).max().unwrap() * 2;
            let js = JobSet::from_taskset(&ts, horizon, &AlwaysWcet, 0);
            let sched = YdsSchedule::compute(&js);
            assert!(sched.peak_speed() <= 1.0 + 1e-9, "{}", ts.name());
        }
    }

    #[test]
    fn optimal_beats_constant_full_speed() {
        let pm = PowerModel::default();
        let js = JobSet::new(vec![job(0, 100, 20), job(40, 60, 15)]);
        let sched = YdsSchedule::compute(&js);
        // Full speed energy: run 35us of work at speed 1 -> 35us * 1.0.
        let full = 35e-6;
        assert!(sched.energy(&pm) < full * 0.7, "YDS should save a lot");
    }

    #[test]
    fn empty_set_is_an_empty_schedule() {
        let sched = YdsSchedule::compute(&JobSet::default());
        assert!(sched.segments().is_empty());
        assert_eq!(sched.busy_time(), Dur::ZERO);
        assert_eq!(sched.peak_speed(), 0.0);
    }
}
