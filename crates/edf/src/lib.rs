//! # lpfps-edf
//!
//! The dynamic-priority DVS baselines discussed (but not evaluated) in
//! §2.2 of *Power Conscious Fixed Priority Scheduling for Hard Real-Time
//! Systems* (Shin & Choi, DAC 1999):
//!
//! * the **YDS optimal offline** speed schedule of Yao, Demers & Shenker
//!   (the paper’s reference \[14\]) — [`yds::YdsSchedule`];
//! * the **AVR (Average Rate) heuristic** from the same work —
//!   [`profile::SpeedProfile::avr`] executed by the EDF simulator in
//!   [`sim`];
//! * the **Ishihara–Yasuura discrete-voltage theorem** (reference \[16\]):
//!   realizing a continuous schedule on a finite frequency ladder with at
//!   most two adjacent levels per segment — [`discrete`];
//! * a full-speed EDF baseline for reference.
//!
//! These run in Yao's *idealized* processor model — continuous speeds,
//! instantaneous transitions, free idle time — which is deliberately more
//! generous than the LPFPS model (discrete 1 MHz ladder, linear voltage
//! ramps, 20 % NOP idle). Results are therefore comparable *within* this
//! crate, and the `related_work_dvs` experiment binary uses them to
//! demonstrate the paper's §2.2 argument: AVR's rates are computed from
//! worst-case cycles, so it cannot exploit execution-time variation —
//! its energy is flat in BCET while the clairvoyant optimal (YDS on the
//! realized work) keeps dropping; LPFPS reclaims that gap at run time.
//!
//! **Run-time EDF lives elsewhere.** Since the kernel grew a pluggable
//! dispatch discipline (`lpfps_kernel::discipline`), dispatching by
//! earliest deadline is the shared engine's job (`PolicyKind::Edf` /
//! `PolicyKind::CcEdf` in the driver); the simulator in [`sim`] is *not*
//! that path — it remains a deliberately tiny idealized-model cross-check
//! for the offline analyses in this crate. The only sanctioned bridge
//! between this crate's `f64` time model and the kernel's integer grids
//! is [`convert`].
//!
//! # Example
//!
//! ```
//! use lpfps_cpu::power::PowerModel;
//! use lpfps_edf::{model::JobSet, profile::SpeedProfile, sim::simulate_edf, yds::YdsSchedule};
//! use lpfps_tasks::exec::AlwaysWcet;
//! use lpfps_tasks::time::Dur;
//!
//! let jobs = JobSet::from_taskset(
//!     &lpfps_workloads::table1(), Dur::from_us(400), &AlwaysWcet, 0);
//! let power = PowerModel::default();
//! let optimal = YdsSchedule::compute(&jobs);
//! let avr = simulate_edf(&jobs, &SpeedProfile::avr(&jobs), &power);
//! assert_eq!(avr.misses, 0);
//! // The optimum never burns more than the heuristic.
//! assert!(optimal.energy(&power) <= avr.energy + 1e-12);
//! ```

pub mod convert;
pub mod discrete;
pub mod model;
pub mod profile;
pub mod sim;
pub mod yds;

pub use convert::{speed_to_freq, work_to_dur};
pub use discrete::{DiscreteSchedule, DiscreteSegment};
pub use model::{Job, JobSet};
pub use profile::SpeedProfile;
pub use sim::{simulate_edf, simulate_edf_full_speed, EdfReport};
pub use yds::{SpeedSegment, YdsSchedule};
