//! Piecewise-constant speed profiles, including the AVR heuristic's.

use crate::model::JobSet;
use lpfps_tasks::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// A piecewise-constant speed function over `[0, end)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedProfile {
    /// Breakpoints `(start_ns, speed)` sorted by start; each speed holds
    /// until the next breakpoint (or `end`).
    points: Vec<(u64, f64)>,
    end_ns: u64,
}

impl SpeedProfile {
    /// A constant-speed profile over `[0, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the speed is not positive and finite.
    pub fn constant(speed: f64, end: Dur) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        SpeedProfile {
            points: vec![(0, speed)],
            end_ns: end.as_ns(),
        }
    }

    /// Builds a profile from `(start, speed)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, unsorted, does not start at zero, or
    /// contains a non-finite/negative speed.
    pub fn from_breakpoints(points: Vec<(Time, f64)>, end: Time) -> Self {
        assert!(!points.is_empty(), "a profile needs at least one segment");
        assert_eq!(points[0].0, Time::ZERO, "profiles start at time zero");
        let mut prev = None;
        for &(t, s) in &points {
            assert!(s.is_finite() && s >= 0.0, "speeds must be finite and >= 0");
            if let Some(p) = prev {
                assert!(t > p, "breakpoints must be strictly increasing");
            }
            prev = Some(t);
        }
        SpeedProfile {
            points: points.into_iter().map(|(t, s)| (t.as_ns(), s)).collect(),
            end_ns: end.as_ns(),
        }
    }

    /// The AVR (Average Rate) profile of Yao et al., the paper's §2.2
    /// dynamic related work: at any time `t`, the speed is the sum of the
    /// densities `w_j / (d_j - r_j)` of all jobs whose window
    /// `[r_j, d_j)` contains `t`. Breakpoints occur only at releases and
    /// deadlines.
    ///
    /// For implicit-deadline periodic tasks the windows of each task tile
    /// time exactly, so AVR degenerates to the constant utilization — the
    /// static behaviour the paper criticizes ("computed statically with
    /// fixed numbers of execution cycles").
    pub fn avr(jobs: &JobSet) -> Self {
        let mut boundaries: Vec<u64> = jobs
            .jobs()
            .iter()
            .flat_map(|j| [j.release.as_ns(), j.deadline.as_ns()])
            .collect();
        boundaries.push(0);
        boundaries.sort_unstable();
        boundaries.dedup();
        let end_ns = *boundaries.last().unwrap_or(&0);
        let mut points = Vec::with_capacity(boundaries.len());
        for &b in &boundaries {
            if b >= end_ns && end_ns > 0 {
                break;
            }
            let speed: f64 = jobs
                .jobs()
                .iter()
                .filter(|j| j.release.as_ns() <= b && b < j.deadline.as_ns())
                .map(|j| j.density())
                .sum();
            points.push((b, speed));
        }
        if points.is_empty() {
            points.push((0, 0.0));
        }
        SpeedProfile { points, end_ns }
    }

    /// The speed at time `t_ns` (nanoseconds, possibly fractional).
    pub fn speed_at(&self, t_ns: f64) -> f64 {
        let idx = self
            .points
            .partition_point(|&(start, _)| (start as f64) <= t_ns + 1e-9);
        self.points[idx.saturating_sub(1)].1
    }

    /// The next breakpoint strictly after `t_ns`, or infinity.
    pub fn next_change_after(&self, t_ns: f64) -> f64 {
        self.points
            .iter()
            .map(|&(start, _)| start as f64)
            .find(|&s| s > t_ns + 1e-9)
            .unwrap_or(f64::INFINITY)
    }

    /// The profile's end.
    pub fn end(&self) -> Time {
        Time::from_ns(self.end_ns)
    }

    /// The peak speed.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|&(_, s)| s).fold(0.0, f64::max)
    }

    /// The breakpoints `(start, speed)`.
    pub fn breakpoints(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        self.points.iter().map(|&(t, s)| (Time::from_ns(t), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Job;
    use lpfps_tasks::exec::AlwaysWcet;

    fn t(us: u64) -> Time {
        Time::from_us(us)
    }

    #[test]
    fn constant_profile_is_flat() {
        let p = SpeedProfile::constant(0.5, Dur::from_us(100));
        assert_eq!(p.speed_at(0.0), 0.5);
        assert_eq!(p.speed_at(50_000.0), 0.5);
        assert_eq!(p.next_change_after(0.0), f64::INFINITY);
        assert_eq!(p.peak(), 0.5);
    }

    #[test]
    fn avr_sums_overlapping_densities() {
        // Two overlapping windows: [0,100) at 0.2, [40,60) at 0.75.
        let js = JobSet::new(vec![
            Job::new(t(0), t(100), Dur::from_us(20)),
            Job::new(t(40), t(60), Dur::from_us(15)),
        ]);
        let p = SpeedProfile::avr(&js);
        assert!((p.speed_at(10_000.0) - 0.2).abs() < 1e-12);
        assert!((p.speed_at(50_000.0) - 0.95).abs() < 1e-12);
        assert!((p.speed_at(70_000.0) - 0.2).abs() < 1e-12);
        assert_eq!(p.end(), t(100));
    }

    #[test]
    fn avr_on_implicit_deadline_periodics_is_the_utilization() {
        // The degeneration the paper points out: windows tile time, so
        // the AVR speed is constantly U.
        let ts = lpfps_workloads::table1();
        let js = JobSet::from_taskset(&ts, Dur::from_us(400), &AlwaysWcet, 0);
        let p = SpeedProfile::avr(&js);
        for probe_us in [5u64, 55, 125, 333] {
            let s = p.speed_at(probe_us as f64 * 1_000.0);
            assert!((s - 0.85).abs() < 1e-9, "AVR speed at {probe_us}us was {s}");
        }
    }

    #[test]
    fn breakpoints_land_on_releases_and_deadlines() {
        let js = JobSet::new(vec![Job::new(t(10), t(30), Dur::from_us(5))]);
        let p = SpeedProfile::avr(&js);
        let bps: Vec<(Time, f64)> = p.breakpoints().collect();
        assert_eq!(bps[0], (t(0), 0.0));
        assert!((bps[1].1 - 0.25).abs() < 1e-12);
        assert_eq!(bps[1].0, t(10));
    }

    #[test]
    #[should_panic(expected = "start at time zero")]
    fn profiles_must_start_at_zero() {
        let _ = SpeedProfile::from_breakpoints(vec![(t(5), 1.0)], t(10));
    }
}
